//! Offline shim for `criterion`: enough of the API to compile and run the
//! workspace's benches. Each benchmark runs a short calibrated loop and
//! prints a mean time per iteration — useful as a smoke signal, not a
//! statistical harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_iters: u64,
}

impl BenchmarkGroup {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
        println!(
            "bench {}/{}: {:.1} ns/iter ({} iters)",
            self.name,
            id.into_benchmark_id(),
            per_iter,
            b.iters
        );
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_iters: 25,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loops_run() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut count = 0u64;
        g.bench_function("iter", |b| b.iter(|| count += 1));
        assert_eq!(count, 10);
        g.bench_function(BenchmarkId::new("batched", 1), |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::LargeInput)
        });
        g.finish();
    }
}
