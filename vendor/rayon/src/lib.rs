//! Offline shim for `rayon`: the `ThreadPool` + `into_par_iter().for_each`
//! subset used by the executor backend. Parallelism is real (scoped OS
//! threads with an atomic work cursor), but pools are lightweight
//! descriptors rather than persistent worker threads: `install` scopes a
//! thread-count for parallel calls made inside it.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread count installed by the innermost enclosing `ThreadPool::install`.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Error from building a thread pool (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; the shim spawns threads per call
    /// and does not name them.
    pub fn thread_name<F>(self, _f: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Shim for `rayon::ThreadPool`.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count installed for parallel
    /// iterators invoked inside it.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.num_threads);
            let out = op();
            c.set(prev);
            out
        })
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn for_each<OP>(self, op: OP)
    where
        OP: Fn(usize) + Sync + Send,
    {
        let installed = CURRENT_THREADS.with(Cell::get);
        let nthreads = if installed == 0 {
            default_threads()
        } else {
            installed
        };
        let len = self.range.len();
        if len == 0 {
            return;
        }
        if nthreads <= 1 || len == 1 {
            for i in self.range {
                op(i);
            }
            return;
        }
        let start = self.range.start;
        let end = self.range.end;
        let cursor = AtomicUsize::new(start);
        let chunk = (len / (4 * nthreads)).max(1);
        std::thread::scope(|s| {
            for _ in 0..nthreads.min(len) {
                s.spawn(|| loop {
                    let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= end {
                        break;
                    }
                    for i in lo..(lo + chunk).min(end) {
                        op(i);
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator (shim for rayon's trait).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.install(|| {
            use crate::prelude::*;
            (0..1000).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.current_num_threads(), 4);
    }

    #[test]
    fn empty_range_is_noop() {
        use crate::prelude::*;
        (0..0).into_par_iter().for_each(|_| panic!("must not run"));
    }
}
