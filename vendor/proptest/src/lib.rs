//! Offline shim for `proptest`: a functional property-testing core
//! covering the API surface this workspace uses — the `proptest!` macro,
//! range/tuple/`Just`/`prop_oneof!`/`prop_map`/collection strategies, and
//! the `prop_assert*` family. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) so failures reproduce; there
//! is no shrinking — the failing inputs are printed instead.

pub mod test_runner {
    /// Per-run configuration (shim for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Failure or rejection of one generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property does not hold.
        Fail(String),
        /// The inputs were rejected (`prop_assume!`); try another case.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic SplitMix64 source for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x5851f42d4c957f2d,
            }
        }

        /// Seed from the test name so each property gets an independent
        /// but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values (shim for `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.end > self.start);
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    debug_assert!(self.end > self.start);
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i64, i32);

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Fixed-length `Vec` of draws (`prop::collection::vec`).
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// `Vec` strategy of exactly `len` elements.
    pub fn vec<S: Strategy>(elem: S, len: usize) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}", __a, __b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} != {:?}: {}", __a, __b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($s) as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(20).max(20);
                while __accepted < __cfg.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    let __res: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __res {
                        ::std::result::Result::Ok(()) => __accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(e) => panic!(
                            "property '{}' failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name), __accepted, e, __inputs
                        ),
                    }
                }
                assert!(
                    __accepted == __cfg.cases,
                    "property '{}' rejected too many cases ({} accepted of {} wanted)",
                    stringify!($name), __accepted, __cfg.cases
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..7.5, n in 3usize..9, s in 0u64..100) {
            prop_assert!((-2.5..7.5).contains(&x), "x = {x}");
            prop_assert!((3usize..9).contains(&n));
            prop_assert!(s < 100);
        }

        #[test]
        fn map_and_tuple_compose(v in (0.0f64..1.0, 1usize..4).prop_map(|(a, b)| a * b as f64)) {
            prop_assert!((0.0..4.0).contains(&v));
        }

        #[test]
        fn oneof_picks_listed_values(k in prop_oneof![Just(1u32), Just(5u32), Just(9u32)]) {
            prop_assert!(k == 1u32 || k == 5u32 || k == 9u32);
        }

        #[test]
        fn vec_has_requested_length(vals in prop::collection::vec(-1.0f64..1.0, 16)) {
            prop_assert_eq!(vals.len(), 16);
            for v in &vals {
                prop_assert!((-1.0..1.0).contains(v));
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("t");
        let mut b = crate::test_runner::TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
