//! Offline shim for `crossbeam-deque`: `Worker`/`Stealer`/`Injector` with
//! the Chase–Lev semantics the pool relies on (LIFO owner pops, FIFO
//! steals), implemented with mutex-protected `VecDeque`s. Correctness
//! over lock-freedom: every task is delivered exactly once.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt.
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// A race was lost; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

/// Owner end of a worker deque.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// New deque whose owner pops in LIFO order.
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    /// Owner pop: LIFO (most recently pushed).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().unwrap().pop_back()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// A stealer handle for other threads (FIFO end).
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// Thief end of a worker deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the FIFO end.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

/// Shared FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, task: T) {
        self.queue.lock().unwrap().push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().unwrap().pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Number of tasks currently queued (mirrors the real crate's API).
    pub fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Move a batch into `dest` and pop one task for the caller.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap();
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Take up to half of what remains (batch heuristic, like the
        // real crate) so one hungry worker does not drain the injector.
        let batch = q.len().div_ceil(2).min(16);
        if batch > 0 {
            let mut dq = dest.queue.lock().unwrap();
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert!(matches!(s.steal(), Steal::Success(1)));
        assert_eq!(w.pop(), Some(2));
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn injector_batch_delivers_everything_once() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let mut got = Vec::new();
        loop {
            match inj.steal_batch_and_pop(&w) {
                Steal::Success(t) => got.push(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
            while let Some(t) = w.pop() {
                got.push(t);
            }
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
