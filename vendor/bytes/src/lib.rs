//! Offline shim for the `bytes` crate: the little-endian get/put surface
//! used by `rhrsc-io`, backed by `Vec<u8>` / `&[u8]`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (shim for `bytes::BytesMut`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Write side: append fixed-width little-endian values.
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Read side: consume fixed-width little-endian values from the front.
///
/// # Panics
/// Like the real crate, the getters panic when fewer than the required
/// bytes remain; callers bound-check with [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut b = BytesMut::with_capacity(32);
        b.put_slice(b"hdr");
        b.put_u32_le(0xdeadbeef);
        b.put_u64_le(42);
        b.put_f64_le(-1.5);
        let mut r: &[u8] = &b;
        assert_eq!(r.remaining(), 3 + 4 + 8 + 8);
        r.advance(3);
        assert_eq!(r.get_u32_le(), 0xdeadbeef);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }
}
