//! Offline shim for `rand`: a minimal deterministic generator. The
//! workspace currently declares `rand` only as an (unused) dev-dependency;
//! this shim keeps the manifest resolvable offline and offers a small,
//! seedable PRNG should tests want one.

/// Core RNG trait (subset of `rand::Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform f64 in [0, 1).
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in [0, n).
    fn gen_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// SplitMix64: tiny, fast, and statistically fine for test data.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x = a.gen_f64();
            assert_eq!(x, b.gen_f64());
            assert!((0.0..1.0).contains(&x));
            assert!(a.gen_below(7) < 7);
            b.next_u64();
        }
    }
}
