//! Offline shim for `crossbeam-channel`: the unbounded MPSC subset used
//! by `rhrsc-comm` and `rhrsc-runtime`, delegating to `std::sync::mpsc`.

use std::sync::mpsc;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// Sending half (shim for `crossbeam_channel::Sender`).
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    pub fn send(&self, v: T) -> Result<(), SendError<T>> {
        self.0.send(v)
    }
}

/// Receiving half (shim for `crossbeam_channel::Receiver`).
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }
}

/// Consuming iterator: yields until all senders disconnect.
pub struct IntoIter<T>(mpsc::IntoIter<T>);

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.0.next()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter(self.0.into_iter())
    }
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
    }
}
