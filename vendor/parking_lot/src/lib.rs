//! Offline shim for `parking_lot`: `Mutex`/`Condvar` with parking_lot's
//! ergonomics (non-poisoning `lock()`, `&mut guard` condvar waits),
//! delegating to `std::sync`. Poisoned std locks are transparently
//! recovered, matching parking_lot's no-poisoning semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Shim for `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so condvar waits can temporarily hand the std guard back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard absent during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard absent during wait")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Shim for `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard absent during wait");
        guard.inner = Some(self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard absent during wait");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wake one waiter. Returns whether a thread may have been woken
    /// (std cannot report this; `true` keeps callers conservative).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters. std cannot count them; returns 0.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

/// Shim for `parking_lot::RwLock` (same non-poisoning treatment).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
