//! # rhrsc — Scalable Relativistic High-Resolution Shock-Capturing for Heterogeneous Computing
//!
//! Umbrella crate re-exporting the full reproduction stack:
//!
//! * [`eos`] — equations of state (ideal Γ-law, Taub–Mathews),
//! * [`srhd`] — SRHD physics: states, conservative↔primitive conversion,
//!   fluxes, exact and approximate Riemann solvers, reconstruction,
//! * [`grid`] — patches, ghost zones, boundary conditions, decomposition,
//! * [`runtime`] — futures, work-stealing pool, simulated accelerator,
//!   load balancing,
//! * [`comm`] — simulated distributed ranks with a network cost model,
//! * [`io`] — VTK/PGM/PPM output and bit-exact checkpoint/restart,
//! * [`solver`] — SSP-RK integration, the distributed heterogeneous
//!   driver, test problems, and diagnostics,
//! * [`serve`] — the ensemble service: a multi-tenant job engine
//!   multiplexing scenario sweeps over the solver (admission control,
//!   priority classes, cancellation, content-addressed result caching).
//!
//! ## Quickstart
//!
//! ```
//! use rhrsc::solver::problems::Problem;
//! use rhrsc::solver::scheme::init_cons;
//! use rhrsc::solver::{PatchSolver, RkOrder, Scheme};
//! use rhrsc::grid::PatchGeom;
//!
//! // Relativistic Sod shock tube at N = 64, PPM + HLLC + SSP-RK3.
//! let prob = Problem::sod();
//! let scheme = Scheme::default_with_gamma(5.0 / 3.0);
//! let geom = PatchGeom::line(64, 0.0, 1.0, scheme.required_ghosts());
//! let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
//! let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
//! solver.advance_to(&mut u, 0.0, prob.t_end, 0.4, None).unwrap();
//!
//! // Compare against the exact Riemann solution.
//! let exact = prob.exact.clone().unwrap();
//! let (l1, _) = rhrsc::solver::diag::l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
//! assert!(l1 < 0.01);
//! ```

pub use rhrsc_comm as comm;
pub use rhrsc_eos as eos;
pub use rhrsc_grid as grid;
pub use rhrsc_io as io;
pub use rhrsc_runtime as runtime;
pub use rhrsc_serve as serve;
pub use rhrsc_solver as solver;
pub use rhrsc_srhd as srhd;
