//! Deterministic property tests for the v4 AMR checkpoint codec.
//!
//! No proptest/quickcheck dependency: a seeded xorshift generator drives
//! many randomized hierarchies through encode → decode, asserting exact
//! IEEE-754 bit round-trips (including negative zero and NaN payloads),
//! and that *every* single-byte flip and *every* truncation of an
//! encoded image is rejected with the documented error class.

use rhrsc_io::checkpoint::{
    decode_amr, encode_amr, AmrCheckpoint, AmrPatchRecord, CheckpointError,
};

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Adversarial f64 mix: zeros of both signs, subnormals, huge
    /// magnitudes, NaN payloads, and ordinary values.
    fn f64(&mut self) -> f64 {
        let u = self.next();
        match u % 10 {
            0 => 0.0,
            1 => -0.0,
            2 => f64::from_bits(u >> 12), // subnormal
            3 => 1e300 * ((u % 7) as f64 - 3.0),
            4 => f64::from_bits(0x7ff8_0000_0000_0000 | (u >> 32)), // NaN payload
            5 => f64::INFINITY,
            _ => (u as f64 / u64::MAX as f64) * 2e3 - 1e3,
        }
    }

    fn checkpoint(&mut self) -> AmrCheckpoint {
        let ncomp = if self.below(4) == 0 {
            1 + self.below(8) as usize
        } else {
            5
        };
        let npatches = self.below(6) as usize;
        let patches = (0..npatches)
            .map(|_| {
                let n = self.below(40);
                AmrPatchRecord {
                    level: self.below(5) as u32,
                    lo: self.below(1 << 20),
                    n,
                    data: (0..ncomp * n as usize).map(|_| self.f64()).collect(),
                }
            })
            .collect();
        AmrCheckpoint {
            time: self.f64(),
            step: self.next(),
            n0: 16 + self.below(1 << 16),
            ncomp,
            patches,
        }
    }
}

fn assert_bit_equal(a: &AmrCheckpoint, b: &AmrCheckpoint) {
    assert_eq!(a.time.to_bits(), b.time.to_bits());
    assert_eq!(a.step, b.step);
    assert_eq!(a.n0, b.n0);
    assert_eq!(a.ncomp, b.ncomp);
    assert_eq!(a.patches.len(), b.patches.len());
    for (pa, pb) in a.patches.iter().zip(&b.patches) {
        assert_eq!((pa.level, pa.lo, pa.n), (pb.level, pb.lo, pb.n));
        assert_eq!(pa.data.len(), pb.data.len());
        for (va, vb) in pa.data.iter().zip(&pb.data) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}

#[test]
fn amr_roundtrip_preserves_every_bit() {
    let mut rng = XorShift::new(0x5eed_c0de);
    for _ in 0..64 {
        let ckp = rng.checkpoint();
        let decoded = decode_amr(&encode_amr(&ckp)).expect("fresh encoding must decode");
        assert_bit_equal(&ckp, &decoded);
    }
}

#[test]
fn amr_roundtrip_handles_degenerate_hierarchies() {
    // Zero patches, and patches with zero interior cells.
    for ckp in [
        AmrCheckpoint {
            time: -0.0,
            step: 0,
            n0: 1,
            ncomp: 5,
            patches: vec![],
        },
        AmrCheckpoint {
            time: 3.5,
            step: u64::MAX,
            n0: 2,
            ncomp: 5,
            patches: vec![AmrPatchRecord {
                level: 7,
                lo: 0,
                n: 0,
                data: vec![],
            }],
        },
    ] {
        let decoded = decode_amr(&encode_amr(&ckp)).unwrap();
        assert_bit_equal(&ckp, &decoded);
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let mut rng = XorShift::new(0xbad_f1a6);
    let bytes = encode_amr(&rng.checkpoint());
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xff;
        let err = decode_amr(&bad).expect_err(&format!("flip at byte {pos} accepted"));
        // Flips in the magic/version prefix fail structurally; everything
        // after that is caught by the whole-file CRC.
        match pos {
            0..=11 => assert!(
                matches!(err, CheckpointError::Format(_)),
                "byte {pos}: expected Format, got {err:?}"
            ),
            _ => assert!(
                matches!(err, CheckpointError::Corrupt),
                "byte {pos}: expected Corrupt, got {err:?}"
            ),
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let mut rng = XorShift::new(0x7121_4c47);
    let mut ckp = rng.checkpoint();
    // Guarantee at least one non-empty patch so data-section cuts exist.
    ckp.patches.push(AmrPatchRecord {
        level: 1,
        lo: 4,
        n: 8,
        data: vec![1.25; 8 * ckp.ncomp],
    });
    let bytes = encode_amr(&ckp);
    for len in 0..bytes.len() {
        assert!(
            decode_amr(&bytes[..len]).is_err(),
            "prefix of {len}/{} bytes accepted",
            bytes.len()
        );
    }
}

#[test]
fn foreign_magic_and_future_version_are_format_errors() {
    let ckp = XorShift::new(9).checkpoint();
    let bytes = encode_amr(&ckp);

    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert!(matches!(
        decode_amr(&wrong_magic),
        Err(CheckpointError::Format(_))
    ));

    // Bump the version field and re-stamp nothing else: must be refused
    // as unsupported, not misparsed.
    let mut future = bytes.clone();
    future[8] = future[8].wrapping_add(1);
    assert!(matches!(
        decode_amr(&future),
        Err(CheckpointError::Format(m)) if m.contains("version")
    ));

    assert!(decode_amr(&[]).is_err());
    assert!(decode_amr(b"not a checkpoint at all").is_err());
}
