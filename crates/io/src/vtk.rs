//! Legacy-ASCII VTK `STRUCTURED_POINTS` writer.
//!
//! Writes the *interior* of a field (one `SCALARS` block per named
//! component) as a VTK legacy file that ParaView/VisIt load directly.
//! Cell-centered data is exported as point data at the cell centers,
//! which is the usual convention for quick-look visualization of
//! finite-volume output.

use rhrsc_grid::Field;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Write interior components of `field` as a legacy VTK file.
///
/// `components` pairs a display name with a component index; every index
/// must be `< field.ncomp()`.
pub fn write_vtk(
    path: &Path,
    title: &str,
    field: &Field,
    components: &[(&str, usize)],
) -> std::io::Result<()> {
    let geom = field.geom();
    for &(name, c) in components {
        assert!(
            c < field.ncomp(),
            "component {c} ({name}) out of range ({} components)",
            field.ncomp()
        );
    }
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "# vtk DataFile Version 3.0")?;
    // Titles are limited to 256 chars by the standard; truncate defensively.
    let title: String = title.chars().take(200).collect();
    writeln!(f, "{title}")?;
    writeln!(f, "ASCII")?;
    writeln!(f, "DATASET STRUCTURED_POINTS")?;
    writeln!(f, "DIMENSIONS {} {} {}", geom.n[0], geom.n[1], geom.n[2])?;
    let o = geom.center(geom.ng_of(0), geom.ng_of(1), geom.ng_of(2));
    writeln!(f, "ORIGIN {} {} {}", o[0], o[1], o[2])?;
    writeln!(f, "SPACING {} {} {}", geom.dx[0], geom.dx[1], geom.dx[2])?;
    writeln!(f, "POINT_DATA {}", geom.interior_len())?;
    for &(name, c) in components {
        writeln!(f, "SCALARS {name} double 1")?;
        writeln!(f, "LOOKUP_TABLE default")?;
        // VTK expects x fastest, then y, then z — matching interior_iter.
        for (i, j, k) in geom.interior_iter() {
            writeln!(f, "{}", field.at(c, i, j, k))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_grid::PatchGeom;

    #[test]
    fn writes_wellformed_header_and_data() {
        let geom = PatchGeom::rect([3, 2], [0.0, 0.0], [3.0, 2.0], 2);
        let mut field = Field::new(geom, 2);
        for (n, (i, j, k)) in geom.interior_iter().enumerate() {
            field.set(0, i, j, k, n as f64);
            field.set(1, i, j, k, -(n as f64));
        }
        let path = std::env::temp_dir().join("rhrsc-vtk-test.vtk");
        write_vtk(&path, "test output", &field, &[("rho", 0), ("neg", 1)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("DIMENSIONS 3 2 1"));
        assert!(text.contains("SPACING 1 1 1"));
        assert!(text.contains("SCALARS rho double 1"));
        assert!(text.contains("SCALARS neg double 1"));
        // 6 interior points, values 0..5 for rho.
        assert!(text.contains("POINT_DATA 6"));
        let after = text.split("LOOKUP_TABLE default").nth(1).unwrap();
        let vals: Vec<f64> = after
            .lines()
            .skip(1)
            .take(6)
            .map(|l| l.trim().parse().unwrap())
            .collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn origin_is_first_interior_center() {
        let geom = PatchGeom::line(10, 2.0, 3.0, 3);
        let field = Field::new(geom, 1);
        let path = std::env::temp_dir().join("rhrsc-vtk-origin.vtk");
        write_vtk(&path, "o", &field, &[("d", 0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("ORIGIN 2.05 0.5 0.5"), "{text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn three_d_dimensions() {
        let geom = PatchGeom::cube([2, 3, 4], [0.0; 3], [1.0; 3], 1);
        let field = Field::new(geom, 1);
        let path = std::env::temp_dir().join("rhrsc-vtk-3d.vtk");
        write_vtk(&path, "3d", &field, &[("d", 0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("DIMENSIONS 2 3 4"));
        assert!(text.contains("POINT_DATA 24"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_component() {
        let geom = PatchGeom::line(4, 0.0, 1.0, 1);
        let field = Field::new(geom, 1);
        let path = std::env::temp_dir().join("rhrsc-vtk-bad.vtk");
        let _ = write_vtk(&path, "x", &field, &[("nope", 3)]);
    }
}
