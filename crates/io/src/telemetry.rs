//! File sinks for the runtime telemetry hub: an OpenMetrics textfile
//! (node_exporter textfile-collector compatible) atomically rewritten
//! on every sample, and a streaming JSONL sink whose records share the
//! flight recorder's trace ids (`pid` = reducing rank, `t_ns` = trace
//! clock), so a JSONL sample can be lined up against the Perfetto spans
//! of the same run.
//!
//! Both are dependency-free: the OpenMetrics exposition format is plain
//! text, and the JSONL records are hand-rendered (numbers only — no
//! escaping concerns beyond the fixed field names).

use rhrsc_runtime::telemetry::{SeriesSample, TelemetryEvent, TelemetrySink, SERIES_FIELDS};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Render a finite JSON number (JSON has no NaN/Inf; clamp to 0).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render one JSONL `sample` record.
pub fn jsonl_sample(sample: &SeriesSample, pid: u32) -> String {
    let mut line = format!(
        "{{\"type\":\"sample\",\"pid\":{pid},\"step\":{},\"time\":{},\"t_ns\":{},\"fields\":{{",
        sample.step,
        num(sample.time),
        sample.t_ns
    );
    for (i, f) in SERIES_FIELDS.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let v = sample.values.get(i).copied().unwrap_or(0.0);
        line.push_str(&format!("\"{}\":{}", f.name, num(v)));
    }
    line.push_str("}}");
    line
}

/// Render one JSONL `event` record.
pub fn jsonl_event(ev: &TelemetryEvent) -> String {
    format!(
        "{{\"type\":\"event\",\"pid\":{},\"kind\":\"{}\",\"step\":{},\"t_ns\":{},\"value\":{}}}",
        ev.rank,
        ev.kind,
        ev.step,
        ev.t_ns,
        num(ev.value)
    )
}

/// Render the OpenMetrics exposition for the cumulative field totals
/// and the latest sample's gauges. Counter fields become
/// `rhrsc_<name>_total`; gauge fields become `rhrsc_<name>`. Ends with
/// the mandatory `# EOF` marker.
pub fn openmetrics_text(sample: &SeriesSample, totals: &[f64]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE rhrsc_step gauge\n# HELP rhrsc_step Committed step count\n");
    out.push_str(&format!("rhrsc_step {}\n", sample.step));
    out.push_str("# TYPE rhrsc_sim_time gauge\n# HELP rhrsc_sim_time Simulation time\n");
    out.push_str(&format!("rhrsc_sim_time {}\n", num(sample.time)));
    for (i, f) in SERIES_FIELDS.iter().enumerate() {
        let total = totals.get(i).copied().unwrap_or(0.0);
        if f.counter {
            out.push_str(&format!(
                "# TYPE rhrsc_{name} counter\n# HELP rhrsc_{name} {help}\nrhrsc_{name}_total {v}\n",
                name = f.name,
                help = f.help,
                v = num(total)
            ));
        } else {
            let v = sample.values.get(i).copied().unwrap_or(0.0);
            out.push_str(&format!(
                "# TYPE rhrsc_{name} gauge\n# HELP rhrsc_{name} {help}\nrhrsc_{name} {v}\n",
                name = f.name,
                help = f.help,
                v = num(v)
            ));
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Atomically replace `path` with `content` (write temp + rename, the
/// same pattern the checkpoint slots use): a scraper never observes a
/// torn file.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// The standard file sinks: optional OpenMetrics textfile (atomic
/// rewrite per sample) and optional JSONL stream (append + flush per
/// sample). Install on the hub with
/// [`Telemetry::set_sink`](rhrsc_runtime::telemetry::Telemetry::set_sink).
pub struct FileSinks {
    openmetrics: Option<PathBuf>,
    jsonl: Option<BufWriter<File>>,
    jsonl_path: Option<PathBuf>,
}

impl FileSinks {
    /// Open the sinks. The JSONL stream is truncated (a new run is a
    /// new stream); failures to open warn and disable that sink rather
    /// than aborting the run.
    pub fn new(openmetrics: Option<PathBuf>, jsonl: Option<PathBuf>) -> Self {
        let jsonl_file = jsonl.as_ref().and_then(|p| {
            if let Some(parent) = p.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            match OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(p)
            {
                Ok(f) => Some(BufWriter::new(f)),
                Err(e) => {
                    eprintln!("warning: cannot open telemetry JSONL {}: {e}", p.display());
                    None
                }
            }
        });
        FileSinks {
            openmetrics,
            jsonl: jsonl_file,
            jsonl_path: jsonl,
        }
    }

    /// The JSONL destination, if streaming is armed.
    pub fn jsonl_path(&self) -> Option<&Path> {
        self.jsonl_path.as_deref()
    }
}

impl TelemetrySink for FileSinks {
    fn on_sample(
        &mut self,
        sample: &SeriesSample,
        events: &[TelemetryEvent],
        totals: &[f64],
        rank: u32,
    ) {
        if let Some(w) = &mut self.jsonl {
            let mut ok = writeln!(w, "{}", jsonl_sample(sample, rank)).is_ok();
            for ev in events {
                ok &= writeln!(w, "{}", jsonl_event(ev)).is_ok();
            }
            // Flush per sample: the stream must be live (tail -f) and
            // survive an abort mid-run — that is the whole point.
            ok &= w.flush().is_ok();
            if !ok {
                eprintln!("warning: telemetry JSONL write failed; disabling sink");
                self.jsonl = None;
            }
        }
        if let Some(path) = &self.openmetrics {
            if let Err(e) = write_atomic(path, &openmetrics_text(sample, totals)) {
                eprintln!(
                    "warning: cannot rewrite OpenMetrics textfile {}: {e}; disabling sink",
                    path.display()
                );
                self.openmetrics = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_runtime::telemetry::field_index;

    fn sample() -> SeriesSample {
        let mut values = vec![0.0; SERIES_FIELDS.len()];
        values[field_index("dt").unwrap()] = 1e-3;
        values[field_index("zone_updates").unwrap()] = 4096.0;
        SeriesSample {
            step: 7,
            time: 0.25,
            t_ns: 123456,
            values,
        }
    }

    #[test]
    fn openmetrics_has_types_helps_and_eof() {
        let totals = vec![1.0; SERIES_FIELDS.len()];
        let text = openmetrics_text(&sample(), &totals);
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE rhrsc_zone_updates counter"));
        assert!(text.contains("rhrsc_zone_updates_total 1\n"));
        assert!(text.contains("# TYPE rhrsc_dt gauge"));
        assert!(text.contains("rhrsc_dt 0.001\n"));
        assert!(text.contains("rhrsc_step 7\n"));
        // Every line is either a comment or `name value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "bad exposition line: {line}"
            );
        }
    }

    #[test]
    fn jsonl_records_are_single_lines_with_trace_ids() {
        let s = jsonl_sample(&sample(), 3);
        assert!(!s.contains('\n'));
        assert!(s.contains("\"type\":\"sample\""));
        assert!(s.contains("\"pid\":3"));
        assert!(s.contains("\"t_ns\":123456"));
        assert!(s.contains("\"dt\":0.001"));
        let e = jsonl_event(&TelemetryEvent {
            t_ns: 9,
            step: 2,
            kind: "suspect",
            rank: 1,
            value: 1.0,
        });
        assert!(e.contains("\"kind\":\"suspect\""));
        assert!(e.contains("\"pid\":1"));
    }

    #[test]
    fn file_sinks_write_stream_and_atomic_textfile() {
        let dir = std::env::temp_dir().join("rhrsc_telemetry_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let om = dir.join("metrics.prom");
        let jl = dir.join("telemetry.jsonl");
        let mut sinks = FileSinks::new(Some(om.clone()), Some(jl.clone()));
        let totals = vec![2.0; SERIES_FIELDS.len()];
        let ev = TelemetryEvent {
            t_ns: 1,
            step: 7,
            kind: "sdc.detect",
            rank: 0,
            value: 1.0,
        };
        sinks.on_sample(&sample(), &[ev], &totals, 0);
        sinks.on_sample(&sample(), &[], &totals, 0);
        let om_text = std::fs::read_to_string(&om).unwrap();
        assert!(om_text.ends_with("# EOF\n"));
        assert!(!om.with_extension("tmp").exists(), "tmp must be renamed");
        let jl_text = std::fs::read_to_string(&jl).unwrap();
        assert_eq!(jl_text.lines().count(), 3, "2 samples + 1 event");
        assert!(jl_text.lines().all(|l| l.starts_with('{')));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
