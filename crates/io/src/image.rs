//! Quick-look images of 2D field slices (no plotting stack required).
//!
//! * [`write_pgm`] — binary-format PGM (grayscale), auto-normalized,
//! * [`write_ppm`] — binary-format PPM with a perceptual false-color map
//!   (a compact viridis-like polynomial ramp).
//!
//! The image is the `k = ng` slice (the only slice for 2D problems),
//! with `y` up (row 0 is the top of the image, i.e. the highest `j`).

use rhrsc_grid::Field;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Min/max of a component over the interior.
fn interior_range(field: &Field, c: usize) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, j, k) in field.geom().interior_iter() {
        let v = field.at(c, i, j, k);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Normalize `v` into [0, 1] over `(lo, hi)` (constant fields map to 0).
fn norm(v: f64, lo: f64, hi: f64) -> f64 {
    if hi > lo {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else {
        0.0
    }
}

/// Write component `c` as an auto-normalized grayscale PGM.
pub fn write_pgm(path: &Path, field: &Field, c: usize) -> std::io::Result<()> {
    let geom = *field.geom();
    let (nx, ny) = (geom.n[0], geom.n[1]);
    let (g0, g1, g2) = (geom.ng_of(0), geom.ng_of(1), geom.ng_of(2));
    let (lo, hi) = interior_range(field, c);
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P5\n{nx} {ny}\n255\n")?;
    for row in 0..ny {
        let j = g1 + (ny - 1 - row); // y up
        for i in 0..nx {
            let v = norm(field.at(c, g0 + i, j, g2), lo, hi);
            f.write_all(&[(v * 255.0).round() as u8])?;
        }
    }
    Ok(())
}

/// A compact viridis-like color ramp: `t` in [0, 1] to (r, g, b).
fn colormap(t: f64) -> [u8; 3] {
    // Piecewise-polynomial fit; dark purple -> teal -> yellow.
    let r = (0.28 + t * (-0.60 + t * (1.78 - 0.47 * t))).clamp(0.0, 1.0);
    let g = (0.0 + t * (1.38 + t * (-0.68 + 0.20 * t))).clamp(0.0, 1.0);
    let b = (0.33 + t * (1.45 + t * (-3.30 + 1.70 * t))).clamp(0.0, 1.0);
    [
        (r * 255.0).round() as u8,
        (g * 255.0).round() as u8,
        (b * 255.0).round() as u8,
    ]
}

/// Write component `c` as an auto-normalized false-color PPM.
pub fn write_ppm(path: &Path, field: &Field, c: usize) -> std::io::Result<()> {
    let geom = *field.geom();
    let (nx, ny) = (geom.n[0], geom.n[1]);
    let (g0, g1, g2) = (geom.ng_of(0), geom.ng_of(1), geom.ng_of(2));
    let (lo, hi) = interior_range(field, c);
    let mut f = BufWriter::new(std::fs::File::create(path)?);
    write!(f, "P6\n{nx} {ny}\n255\n")?;
    for row in 0..ny {
        let j = g1 + (ny - 1 - row);
        for i in 0..nx {
            let v = norm(field.at(c, g0 + i, j, g2), lo, hi);
            f.write_all(&colormap(v))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_grid::PatchGeom;

    fn gradient_field() -> Field {
        let geom = PatchGeom::rect([8, 4], [0.0, 0.0], [1.0, 1.0], 2);
        let mut f = Field::new(geom, 1);
        for (i, j, k) in geom.interior_iter() {
            f.set(0, i, j, k, i as f64);
        }
        f
    }

    #[test]
    fn pgm_header_and_size() {
        let f = gradient_field();
        let path = std::env::temp_dir().join("rhrsc-test.pgm");
        write_pgm(&path, &f, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P5\n8 4\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(bytes.len(), header.len() + 8 * 4);
        // Gradient: leftmost pixel dark, rightmost bright, per row.
        let px = &bytes[header.len()..];
        assert_eq!(px[0], 0);
        assert_eq!(px[7], 255);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ppm_is_rgb() {
        let f = gradient_field();
        let path = std::env::temp_dir().join("rhrsc-test.ppm");
        write_ppm(&path, &f, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P6\n8 4\n255\n";
        assert!(bytes.starts_with(header));
        assert_eq!(bytes.len(), header.len() + 8 * 4 * 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn constant_field_does_not_divide_by_zero() {
        let geom = PatchGeom::rect([4, 4], [0.0, 0.0], [1.0, 1.0], 2);
        let mut f = Field::new(geom, 1);
        f.raw_mut().fill(3.0);
        let path = std::env::temp_dir().join("rhrsc-const.pgm");
        write_pgm(&path, &f, 0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.ends_with(&[0u8; 16]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn colormap_endpoints_distinct() {
        let lo = colormap(0.0);
        let hi = colormap(1.0);
        assert_ne!(lo, hi);
        // Dark at 0, bright at 1 (rough perceptual check).
        let lum = |c: [u8; 3]| 0.2 * c[0] as f64 + 0.7 * c[1] as f64 + 0.1 * c[2] as f64;
        assert!(lum(hi) > lum(lo) + 80.0);
    }
}
