//! Output writers and checkpoint/restart for the HRSC solver.
//!
//! * [`vtk`] — legacy-ASCII VTK `STRUCTURED_POINTS` writer (loads directly
//!   into ParaView/VisIt) for any set of field components,
//! * [`image`] — PGM (grayscale) and PPM (false-color) images of 2D field
//!   slices, for quick looks without a plotting stack,
//! * [`checkpoint`] — versioned little-endian binary checkpoints of the
//!   solver state (time, step, conserved field) with exact round-trip:
//!   a restarted run continues **bit-identically** (asserted by the
//!   integration tests),
//! * [`snapshot`] — the diskless checkpoint tiers: FNV-stamped in-memory
//!   snapshot buffers (local + buddy replica) and ABFT state checksums
//!   for silent-data-corruption scrubbing,
//! * [`telemetry`] — file sinks for the runtime telemetry hub: an
//!   atomically-rewritten OpenMetrics textfile and a streaming JSONL
//!   record of samples and lifecycle events.

pub mod checkpoint;
pub mod image;
pub mod snapshot;
pub mod telemetry;
pub mod vtk;

pub use checkpoint::{
    load_amr_checkpoint, load_checkpoint, save_amr_checkpoint, save_checkpoint, AmrCheckpoint,
    AmrPatchRecord, Checkpoint, CheckpointError, CheckpointSlots,
};
pub use snapshot::{MemorySnapshot, StateChecksum};
pub use telemetry::FileSinks;
