//! Binary checkpoint/restart.
//!
//! Format (little-endian, version 2):
//!
//! ```text
//! magic  "RHRSCCKP"           8 bytes
//! version u32                 4
//! time    f64, step u64       12
//! geometry: n[3] u64, ng u64, origin[3] f64, dx[3] f64
//! ncomp  u64
//! data   ncomp * len f64      (ghost-inclusive, component-major)
//! fnv    u64 (FNV-1a over the data section)
//! crc32  u32 (CRC-32 over every preceding byte, header included)
//! ```
//!
//! Writes are atomic: the payload goes to a sibling temp file which is
//! fsynced and renamed into place, so a crash mid-write can never leave a
//! file that [`load_checkpoint`] accepts — at worst a stale `*.tmp`,
//! which the loaders ignore. [`CheckpointSlots`] adds a `latest`/`prev`
//! rotation on top, so one torn or corrupted checkpoint still leaves a
//! valid restart point.

use bytes::{Buf, BufMut, BytesMut};
use rhrsc_grid::{Field, PatchGeom};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"RHRSCCKP";
const VERSION: u32 = 2;
/// Version tag of the rank-count-independent global format (see
/// [`GlobalCheckpoint`]).
const GLOBAL_VERSION: u32 = 3;
/// Version tag of the AMR hierarchy format (see [`AmrCheckpoint`]).
const AMR_VERSION: u32 = 4;

/// A restartable solver state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Simulation time.
    pub time: f64,
    /// Step counter.
    pub step: u64,
    /// Ghost-inclusive conserved field.
    pub field: Field,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file, or an unsupported version.
    Format(String),
    /// Data-section checksum mismatch (truncated/corrupted file).
    Corrupt,
    /// Both slots of a rotating store were unusable. Carries each slot's
    /// own failure so the operator can tell "no checkpoint was ever
    /// written" (two `Io` not-found errors) from "both generations
    /// rotted" (`Corrupt`/`Format`) — the old fallback discarded the
    /// `latest` error and reported only whatever happened to `prev`.
    Slots {
        /// Why the `latest` slot could not be loaded.
        latest: Box<CheckpointError>,
        /// Why the `prev` slot could not be loaded either.
        prev: Box<CheckpointError>,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "bad checkpoint format: {m}"),
            CheckpointError::Corrupt => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Slots { latest, prev } => write!(
                f,
                "both checkpoint slots unusable: latest slot: {latest}; prev slot: {prev}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// FNV-1a over a byte slice (cheap integrity check, not cryptographic).
fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// CRC-32 (IEEE, reflected) over a byte slice. Covers the whole file
/// including the header, unlike the FNV data checksum — a bit flip in
/// `time` or the geometry is as fatal to a restart as one in the data.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb88320 & mask);
        }
    }
    !crc
}

/// Serialize a checkpoint to bytes.
pub fn encode(ckp: &Checkpoint) -> Vec<u8> {
    let geom = ckp.field.geom();
    let mut buf = BytesMut::with_capacity(64 + ckp.field.raw().len() * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_f64_le(ckp.time);
    buf.put_u64_le(ckp.step);
    for d in 0..3 {
        buf.put_u64_le(geom.n[d] as u64);
    }
    buf.put_u64_le(geom.ng as u64);
    for d in 0..3 {
        buf.put_f64_le(geom.origin[d]);
    }
    for d in 0..3 {
        buf.put_f64_le(geom.dx[d]);
    }
    buf.put_u64_le(ckp.field.ncomp() as u64);
    let data_start = buf.len();
    for &v in ckp.field.raw() {
        buf.put_f64_le(v);
    }
    let crc = fnv1a(&buf[data_start..]);
    buf.put_u64_le(crc);
    let footer = crc32(&buf[..]);
    buf.put_u32_le(footer);
    buf.to_vec()
}

/// Integrity passes a decoder runs before trusting the bytes.
///
/// * [`Checks::Full`] — bitwise whole-file CRC-32 plus the payload FNV:
///   the disk tier, where torn writes and media rot are real.
/// * [`Checks::SkipCrc`] — payload FNV only: buffers that never crossed
///   a device boundary but whose provenance is not re-verified.
/// * [`Checks::Trusted`] — pure parsing: the caller has just re-hashed
///   the *entire* buffer against an external stamp (e.g.
///   [`crate::MemorySnapshot::verify`], which covers every byte
///   including the header — strictly stronger than the payload FNV), so
///   either armor pass would verify the same bits twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Checks {
    Full,
    SkipCrc,
    Trusted,
}

/// Parse `len` little-endian f64s in one pass. `chunks_exact` lets the
/// compiler hoist the per-element bounds checks out of the loop — this is
/// the bulk of a decode once the CRC is skipped, so the memory-restore
/// tier's latency is essentially this loop plus one FNV pass. The caller
/// must have length-checked `bytes` already.
fn get_f64_payload(bytes: &mut &[u8], len: usize) -> Vec<f64> {
    let (head, rest) = bytes.split_at(len * 8);
    let data = head
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    *bytes = rest;
    data
}

/// Deserialize a checkpoint from bytes.
pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    decode_with(bytes, true)
}

/// Deserialize a checkpoint from bytes, skipping the bitwise whole-file
/// CRC-32 (the FNV data checksum still runs). For buffers that never
/// crossed a device boundary: the CRC is the disk tier's armor against
/// torn writes and media rot, and by far the slowest part of a decode.
/// The in-memory checkpoint tiers go one step further — see the
/// `decode_*_trusted` variants.
pub fn decode_fast(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    decode_with(bytes, false)
}

fn decode_with(bytes: &[u8], check_crc: bool) -> Result<Checkpoint, CheckpointError> {
    let orig = bytes;
    let mut bytes = bytes;
    if bytes.len() < 8 + 4 || &bytes[..8] != MAGIC {
        return Err(CheckpointError::Format("missing magic".into()));
    }
    bytes.advance(8);
    let version = bytes.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {version}"
        )));
    }
    if bytes.remaining() < 12 + 4 * 8 + 6 * 8 + 8 {
        return Err(CheckpointError::Format("truncated header".into()));
    }
    let time = bytes.get_f64_le();
    let step = bytes.get_u64_le();
    let mut n = [0usize; 3];
    for d in &mut n {
        *d = bytes.get_u64_le() as usize;
    }
    let ng = bytes.get_u64_le() as usize;
    let mut origin = [0.0; 3];
    for o in &mut origin {
        *o = bytes.get_f64_le();
    }
    let mut dx = [0.0; 3];
    for d in &mut dx {
        *d = bytes.get_f64_le();
    }
    let geom = PatchGeom { n, ng, origin, dx };
    let ncomp = bytes.get_u64_le() as usize;
    let len = ncomp * geom.len();
    if bytes.remaining() != len * 8 + 8 + 4 {
        return Err(CheckpointError::Format(format!(
            "data section: expected {} bytes, have {}",
            len * 8 + 8 + 4,
            bytes.remaining()
        )));
    }
    // Whole-file CRC first: catches header corruption the per-section FNV
    // checksum cannot see.
    if check_crc {
        let footer_off = orig.len() - 4;
        let stored = u32::from_le_bytes([
            orig[footer_off],
            orig[footer_off + 1],
            orig[footer_off + 2],
            orig[footer_off + 3],
        ]);
        if crc32(&orig[..footer_off]) != stored {
            return Err(CheckpointError::Corrupt);
        }
    }
    let data_bytes = &bytes[..len * 8];
    let crc_expected = fnv1a(data_bytes);
    let data = get_f64_payload(&mut bytes, len);
    let crc = bytes.get_u64_le();
    if crc != crc_expected {
        return Err(CheckpointError::Corrupt);
    }
    Ok(Checkpoint {
        time,
        step,
        field: Field::from_vec(geom, ncomp, data),
    })
}

/// One block of a [`GlobalCheckpoint`]: an axis-aligned box of the global
/// interior index space, keyed by the writing decomposition's block id.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockRecord {
    /// Block id in the decomposition that wrote the checkpoint.
    pub id: u64,
    /// Global index of the block's first interior cell, per axis.
    pub offset: [usize; 3],
    /// Interior extent of the block, per axis.
    pub size: [usize; 3],
    /// Interior cell data, component-major within the block
    /// (`((c*nz + z)*ny + y)*nx + x`).
    pub data: Vec<f64>,
}

/// Rank-count-independent checkpoint (format version 3): global interior
/// state stored as blocks keyed by block id, each with its global offset
/// and extent. Because every value is addressed in *global* index space,
/// the state can be restored onto any decomposition — in particular onto
/// fewer ranks after a shrinking recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalCheckpoint {
    /// Simulation time.
    pub time: f64,
    /// Step counter.
    pub step: u64,
    /// Global interior extent.
    pub global_n: [usize; 3],
    /// Components per cell.
    pub ncomp: usize,
    /// The blocks, in writing-decomposition order.
    pub blocks: Vec<BlockRecord>,
}

impl GlobalCheckpoint {
    /// Extract the component-major data of the global interior span
    /// `[lo, lo + size)` by intersecting whatever blocks cover it —
    /// regardless of how the writing decomposition tiled the domain.
    /// Returns `None` if any cell of the span is uncovered.
    pub fn extract_span(&self, lo: [usize; 3], size: [usize; 3]) -> Option<Vec<f64>> {
        let cells = size[0] * size[1] * size[2];
        let mut out = vec![0.0f64; self.ncomp * cells];
        let mut covered = vec![false; cells];
        for b in &self.blocks {
            let mut ilo = [0usize; 3];
            let mut ihi = [0usize; 3];
            let mut empty = false;
            for d in 0..3 {
                ilo[d] = lo[d].max(b.offset[d]);
                ihi[d] = (lo[d] + size[d]).min(b.offset[d] + b.size[d]);
                empty |= ilo[d] >= ihi[d];
            }
            if empty {
                continue;
            }
            let bcells = b.size[0] * b.size[1] * b.size[2];
            for c in 0..self.ncomp {
                for z in ilo[2]..ihi[2] {
                    for y in ilo[1]..ihi[1] {
                        for x in ilo[0]..ihi[0] {
                            let src = ((c * b.size[2] + (z - b.offset[2])) * b.size[1]
                                + (y - b.offset[1]))
                                * b.size[0]
                                + (x - b.offset[0]);
                            let dst = ((c * size[2] + (z - lo[2])) * size[1] + (y - lo[1]))
                                * size[0]
                                + (x - lo[0]);
                            debug_assert!(
                                src < b.data.len() && b.data.len() == self.ncomp * bcells
                            );
                            out[dst] = b.data[src];
                            if c == 0 {
                                covered[dst] = true;
                            }
                        }
                    }
                }
            }
        }
        covered.iter().all(|&c| c).then_some(out)
    }
}

/// Serialize a global checkpoint to bytes (format version 3; same
/// magic/FNV/CRC armor as the per-rank format).
pub fn encode_global(ckp: &GlobalCheckpoint) -> Vec<u8> {
    let payload: usize = ckp.blocks.iter().map(|b| 56 + b.data.len() * 8).sum();
    let mut buf = BytesMut::with_capacity(80 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(GLOBAL_VERSION);
    buf.put_f64_le(ckp.time);
    buf.put_u64_le(ckp.step);
    for d in 0..3 {
        buf.put_u64_le(ckp.global_n[d] as u64);
    }
    buf.put_u64_le(ckp.ncomp as u64);
    buf.put_u64_le(ckp.blocks.len() as u64);
    let data_start = buf.len();
    for b in &ckp.blocks {
        buf.put_u64_le(b.id);
        for d in 0..3 {
            buf.put_u64_le(b.offset[d] as u64);
        }
        for d in 0..3 {
            buf.put_u64_le(b.size[d] as u64);
        }
        for &v in &b.data {
            buf.put_f64_le(v);
        }
    }
    let fnv = fnv1a(&buf[data_start..]);
    buf.put_u64_le(fnv);
    let footer = crc32(&buf[..]);
    buf.put_u32_le(footer);
    buf.to_vec()
}

/// Deserialize a global checkpoint from bytes.
pub fn decode_global(bytes: &[u8]) -> Result<GlobalCheckpoint, CheckpointError> {
    decode_global_with(bytes, Checks::Full)
}

/// Like [`decode_global`] but without the bitwise whole-file CRC-32 —
/// see [`decode_fast`] for when that is sound.
pub fn decode_global_fast(bytes: &[u8]) -> Result<GlobalCheckpoint, CheckpointError> {
    decode_global_with(bytes, Checks::SkipCrc)
}

/// Like [`decode_global`] but with *both* integrity passes (CRC-32 and
/// the payload FNV) skipped: pure parsing. Sound **only** when the caller
/// has just re-hashed the entire byte buffer against an external stamp —
/// [`crate::MemorySnapshot::verify`] covers every byte including the
/// header, which is strictly stronger than the payload FNV — so running
/// either armor pass again would verify the same bits twice. This is
/// what makes the diskless restore tier cheap: one FNV pass plus
/// parsing, against the disk tier's read + FNV + bitwise CRC.
pub fn decode_global_trusted(bytes: &[u8]) -> Result<GlobalCheckpoint, CheckpointError> {
    decode_global_with(bytes, Checks::Trusted)
}

fn decode_global_with(bytes: &[u8], checks: Checks) -> Result<GlobalCheckpoint, CheckpointError> {
    let orig = bytes;
    let mut bytes = bytes;
    if bytes.len() < 8 + 4 || &bytes[..8] != MAGIC {
        return Err(CheckpointError::Format("missing magic".into()));
    }
    bytes.advance(8);
    let version = bytes.get_u32_le();
    if version != GLOBAL_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported global version {version}"
        )));
    }
    if bytes.remaining() < 12 + 3 * 8 + 2 * 8 + 12 {
        return Err(CheckpointError::Format("truncated header".into()));
    }
    // Whole-file CRC first: a bit flip anywhere is fatal to a restart.
    if checks == Checks::Full {
        let footer_off = orig.len() - 4;
        let stored = u32::from_le_bytes([
            orig[footer_off],
            orig[footer_off + 1],
            orig[footer_off + 2],
            orig[footer_off + 3],
        ]);
        if crc32(&orig[..footer_off]) != stored {
            return Err(CheckpointError::Corrupt);
        }
    }
    let time = bytes.get_f64_le();
    let step = bytes.get_u64_le();
    let mut global_n = [0usize; 3];
    for d in &mut global_n {
        *d = bytes.get_u64_le() as usize;
    }
    let ncomp = bytes.get_u64_le() as usize;
    let nblocks = bytes.get_u64_le() as usize;
    let data_len = bytes.remaining().saturating_sub(8 + 4);
    let fnv_expected = (checks != Checks::Trusted).then(|| fnv1a(&bytes[..data_len]));
    let mut blocks = Vec::with_capacity(nblocks.min(4096));
    for _ in 0..nblocks {
        if bytes.remaining() < 56 + 8 + 4 {
            return Err(CheckpointError::Format("truncated block header".into()));
        }
        let id = bytes.get_u64_le();
        let mut offset = [0usize; 3];
        for d in &mut offset {
            *d = bytes.get_u64_le() as usize;
        }
        let mut size = [0usize; 3];
        for d in &mut size {
            *d = bytes.get_u64_le() as usize;
        }
        let len = ncomp
            .checked_mul(size[0])
            .and_then(|v| v.checked_mul(size[1]))
            .and_then(|v| v.checked_mul(size[2]))
            .ok_or_else(|| CheckpointError::Format("block size overflow".into()))?;
        if bytes.remaining() < len * 8 + 8 + 4 {
            return Err(CheckpointError::Format("truncated block data".into()));
        }
        let data = get_f64_payload(&mut bytes, len);
        blocks.push(BlockRecord {
            id,
            offset,
            size,
            data,
        });
    }
    if bytes.remaining() != 8 + 4 {
        return Err(CheckpointError::Format("trailing bytes".into()));
    }
    let fnv_stored = bytes.get_u64_le();
    if fnv_expected.is_some_and(|f| f != fnv_stored) {
        return Err(CheckpointError::Corrupt);
    }
    Ok(GlobalCheckpoint {
        time,
        step,
        global_n,
        ncomp,
        blocks,
    })
}

/// One patch of an [`AmrCheckpoint`]: a 1D interval of its level's global
/// cell index space plus the interior conserved data (component-major).
#[derive(Debug, Clone, PartialEq)]
pub struct AmrPatchRecord {
    /// Refinement level (0 = base grid).
    pub level: u32,
    /// First cell of the patch in the level's global index space.
    pub lo: u64,
    /// Interior cell count.
    pub n: u64,
    /// Interior conserved data, component-major (`c * n + i`).
    pub data: Vec<f64>,
}

/// AMR hierarchy checkpoint (format version 4): every patch of every
/// level with its level-global placement. Ghosts, primitives and parent
/// links are reconstructed deterministically on restore, so a restarted
/// run continues bit-identically — asserted by the solver tests.
#[derive(Debug, Clone, PartialEq)]
pub struct AmrCheckpoint {
    /// Simulation time.
    pub time: f64,
    /// Base-level step counter (also fixes the regrid phase).
    pub step: u64,
    /// Base-grid interior cell count.
    pub n0: u64,
    /// Components per cell.
    pub ncomp: usize,
    /// Patches, coarse-to-fine then left-to-right.
    pub patches: Vec<AmrPatchRecord>,
}

/// Serialize an AMR checkpoint to bytes (format version 4; same
/// magic/FNV/CRC armor as the other formats).
pub fn encode_amr(ckp: &AmrCheckpoint) -> Vec<u8> {
    let payload: usize = ckp.patches.iter().map(|p| 24 + p.data.len() * 8).sum();
    let mut buf = BytesMut::with_capacity(64 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(AMR_VERSION);
    buf.put_f64_le(ckp.time);
    buf.put_u64_le(ckp.step);
    buf.put_u64_le(ckp.n0);
    buf.put_u64_le(ckp.ncomp as u64);
    buf.put_u64_le(ckp.patches.len() as u64);
    let data_start = buf.len();
    for p in &ckp.patches {
        buf.put_u32_le(p.level);
        buf.put_u64_le(p.lo);
        buf.put_u64_le(p.n);
        for &v in &p.data {
            buf.put_f64_le(v);
        }
    }
    let fnv = fnv1a(&buf[data_start..]);
    buf.put_u64_le(fnv);
    let footer = crc32(&buf[..]);
    buf.put_u32_le(footer);
    buf.to_vec()
}

/// Deserialize an AMR checkpoint from bytes.
pub fn decode_amr(bytes: &[u8]) -> Result<AmrCheckpoint, CheckpointError> {
    decode_amr_with(bytes, Checks::Full)
}

/// Like [`decode_amr`] but without the bitwise whole-file CRC-32 —
/// see [`decode_fast`] for when that is sound.
pub fn decode_amr_fast(bytes: &[u8]) -> Result<AmrCheckpoint, CheckpointError> {
    decode_amr_with(bytes, Checks::SkipCrc)
}

/// Like [`decode_amr`] but with no integrity passes at all — sound only
/// when the caller has *just* verified the whole buffer against an
/// external stamp; see [`decode_global_trusted`].
pub fn decode_amr_trusted(bytes: &[u8]) -> Result<AmrCheckpoint, CheckpointError> {
    decode_amr_with(bytes, Checks::Trusted)
}

fn decode_amr_with(bytes: &[u8], checks: Checks) -> Result<AmrCheckpoint, CheckpointError> {
    let orig = bytes;
    let mut bytes = bytes;
    if bytes.len() < 8 + 4 || &bytes[..8] != MAGIC {
        return Err(CheckpointError::Format("missing magic".into()));
    }
    bytes.advance(8);
    let version = bytes.get_u32_le();
    if version != AMR_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported AMR version {version}"
        )));
    }
    if bytes.remaining() < 8 + 8 + 8 + 8 + 8 + 12 {
        return Err(CheckpointError::Format("truncated header".into()));
    }
    // Whole-file CRC first: a bit flip anywhere is fatal to a restart.
    if checks == Checks::Full {
        let footer_off = orig.len() - 4;
        let stored = u32::from_le_bytes([
            orig[footer_off],
            orig[footer_off + 1],
            orig[footer_off + 2],
            orig[footer_off + 3],
        ]);
        if crc32(&orig[..footer_off]) != stored {
            return Err(CheckpointError::Corrupt);
        }
    }
    let time = bytes.get_f64_le();
    let step = bytes.get_u64_le();
    let n0 = bytes.get_u64_le();
    let ncomp = bytes.get_u64_le() as usize;
    let npatches = bytes.get_u64_le() as usize;
    let data_len = bytes.remaining().saturating_sub(8 + 4);
    let fnv_expected = (checks != Checks::Trusted).then(|| fnv1a(&bytes[..data_len]));
    let mut patches = Vec::with_capacity(npatches.min(4096));
    for _ in 0..npatches {
        if bytes.remaining() < 20 + 8 + 4 {
            return Err(CheckpointError::Format("truncated patch header".into()));
        }
        let level = bytes.get_u32_le();
        let lo = bytes.get_u64_le();
        let n = bytes.get_u64_le();
        let len = ncomp
            .checked_mul(n as usize)
            .ok_or_else(|| CheckpointError::Format("patch size overflow".into()))?;
        if bytes.remaining() < len * 8 + 8 + 4 {
            return Err(CheckpointError::Format("truncated patch data".into()));
        }
        let data = get_f64_payload(&mut bytes, len);
        patches.push(AmrPatchRecord { level, lo, n, data });
    }
    if bytes.remaining() != 8 + 4 {
        return Err(CheckpointError::Format("trailing bytes".into()));
    }
    let fnv_stored = bytes.get_u64_le();
    if fnv_expected.is_some_and(|f| f != fnv_stored) {
        return Err(CheckpointError::Corrupt);
    }
    Ok(AmrCheckpoint {
        time,
        step,
        n0,
        ncomp,
        patches,
    })
}

/// Write an AMR checkpoint file atomically (tmp + fsync + rename).
pub fn save_amr_checkpoint(path: &Path, ckp: &AmrCheckpoint) -> Result<(), CheckpointError> {
    let bytes = encode_amr(ckp);
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path)?;
    Ok(())
}

/// Read an AMR checkpoint file.
pub fn load_amr_checkpoint(path: &Path) -> Result<AmrCheckpoint, CheckpointError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_amr(&bytes)
}

/// Write a global checkpoint file atomically (tmp + fsync + rename).
pub fn save_global_checkpoint(path: &Path, ckp: &GlobalCheckpoint) -> Result<(), CheckpointError> {
    let bytes = encode_global(ckp);
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path)?;
    Ok(())
}

/// Read a global checkpoint file.
pub fn load_global_checkpoint(path: &Path) -> Result<GlobalCheckpoint, CheckpointError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode_global(&bytes)
}

/// Sibling temp path used for atomic writes (`state.ckp` → `state.ckp.tmp`).
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Fsync the directory containing `path`, making renames into it durable.
///
/// `rename` only updates directory entries; until the directory inode
/// itself is flushed, a crash can lose *both* the slot rotation and the
/// freshly renamed checkpoint even though the file data was fsynced. One
/// directory fsync after the final rename commits every rename performed
/// in that directory. Platforms where directories cannot be opened for
/// sync are tolerated (the open error is swallowed); an actual sync
/// failure on an opened directory is reported.
fn fsync_parent_dir(path: &Path) -> Result<(), CheckpointError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    match std::fs::File::open(parent) {
        Ok(d) => d.sync_all().map_err(CheckpointError::from),
        Err(_) => Ok(()),
    }
}

/// Write a checkpoint file atomically.
///
/// The payload goes to a sibling `<path>.tmp`, is fsynced, and renamed
/// into place. A crash at any point leaves either the old file or the new
/// one — never a torn write under `path` itself.
pub fn save_checkpoint(path: &Path, ckp: &Checkpoint) -> Result<(), CheckpointError> {
    let bytes = encode(ckp);
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path)?;
    Ok(())
}

/// Read a checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

/// Rotating two-slot checkpoint store: `latest.ckp` and `prev.ckp` in one
/// directory. Saving demotes the current `latest` to `prev` before the
/// atomic rename, so even if the new checkpoint is later found corrupted
/// (e.g. media failure after the write), the previous generation is still
/// on disk and [`CheckpointSlots::load_newest`] falls back to it.
#[derive(Debug, Clone)]
pub struct CheckpointSlots {
    dir: PathBuf,
}

impl CheckpointSlots {
    /// Open (and create if missing) a slot directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointSlots { dir })
    }

    /// Path of the most recent checkpoint slot.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("latest.ckp")
    }

    /// Path of the previous-generation checkpoint slot.
    pub fn prev_path(&self) -> PathBuf {
        self.dir.join("prev.ckp")
    }

    /// Save a checkpoint, rotating `latest` → `prev` first.
    pub fn save(&self, ckp: &Checkpoint) -> Result<(), CheckpointError> {
        let latest = self.latest_path();
        if latest.exists() {
            std::fs::rename(&latest, self.prev_path())?;
        }
        save_checkpoint(&latest, ckp)
    }

    /// Load the newest valid checkpoint: `latest` if it decodes cleanly,
    /// otherwise `prev`. When both slots are missing or corrupt the
    /// returned [`CheckpointError::Slots`] carries *both* per-slot errors.
    pub fn load_newest(&self) -> Result<Checkpoint, CheckpointError> {
        self.load_newest_with_fallback().map(|(ckp, _)| ckp)
    }

    /// Like [`load_newest`](Self::load_newest), but also reports whether
    /// the `prev` slot had to be used because `latest` was missing, torn,
    /// or corrupt — so callers can count the event in their metrics.
    pub fn load_newest_with_fallback(&self) -> Result<(Checkpoint, bool), CheckpointError> {
        match load_checkpoint(&self.latest_path()) {
            Ok(ckp) => Ok((ckp, false)),
            Err(latest_err) => match load_checkpoint(&self.prev_path()) {
                Ok(ckp) => {
                    eprintln!(
                        "checkpoint: latest slot unusable ({latest_err}), fell back to {}",
                        self.prev_path().display()
                    );
                    Ok((ckp, true))
                }
                Err(prev_err) => Err(CheckpointError::Slots {
                    latest: Box::new(latest_err),
                    prev: Box::new(prev_err),
                }),
            },
        }
    }

    /// Path of the most recent *global* (rank-count-independent) slot.
    pub fn global_latest_path(&self) -> PathBuf {
        self.dir.join("latest.gckp")
    }

    /// Path of the previous-generation global slot.
    pub fn global_prev_path(&self) -> PathBuf {
        self.dir.join("prev.gckp")
    }

    /// Save a global checkpoint, rotating `latest.gckp` → `prev.gckp`.
    pub fn save_global(&self, ckp: &GlobalCheckpoint) -> Result<(), CheckpointError> {
        let latest = self.global_latest_path();
        if latest.exists() {
            std::fs::rename(&latest, self.global_prev_path())?;
        }
        save_global_checkpoint(&latest, ckp)
    }

    /// Load the newest valid global checkpoint, reporting whether the
    /// `prev` slot was used.
    pub fn load_newest_global(&self) -> Result<(GlobalCheckpoint, bool), CheckpointError> {
        match load_global_checkpoint(&self.global_latest_path()) {
            Ok(ckp) => Ok((ckp, false)),
            Err(latest_err) => match load_global_checkpoint(&self.global_prev_path()) {
                Ok(ckp) => {
                    eprintln!(
                        "checkpoint: global latest slot unusable ({latest_err}), fell back to {}",
                        self.global_prev_path().display()
                    );
                    Ok((ckp, true))
                }
                Err(prev_err) => Err(CheckpointError::Slots {
                    latest: Box::new(latest_err),
                    prev: Box::new(prev_err),
                }),
            },
        }
    }

    /// Path of the most recent *AMR hierarchy* (format v4,
    /// rank-count-independent) slot.
    pub fn amr_latest_path(&self) -> PathBuf {
        self.dir.join("latest.ackp")
    }

    /// Path of the previous-generation AMR slot.
    pub fn amr_prev_path(&self) -> PathBuf {
        self.dir.join("prev.ackp")
    }

    /// Save an AMR checkpoint, rotating `latest.ackp` → `prev.ackp`.
    pub fn save_amr(&self, ckp: &AmrCheckpoint) -> Result<(), CheckpointError> {
        let latest = self.amr_latest_path();
        if latest.exists() {
            std::fs::rename(&latest, self.amr_prev_path())?;
        }
        save_amr_checkpoint(&latest, ckp)
    }

    /// Load the newest valid AMR checkpoint, reporting whether the `prev`
    /// slot was used because `latest` was missing, torn, or corrupt.
    pub fn load_newest_amr(&self) -> Result<(AmrCheckpoint, bool), CheckpointError> {
        match load_amr_checkpoint(&self.amr_latest_path()) {
            Ok(ckp) => Ok((ckp, false)),
            Err(latest_err) => match load_amr_checkpoint(&self.amr_prev_path()) {
                Ok(ckp) => {
                    eprintln!(
                        "checkpoint: AMR latest slot unusable ({latest_err}), fell back to {}",
                        self.amr_prev_path().display()
                    );
                    Ok((ckp, true))
                }
                Err(prev_err) => Err(CheckpointError::Slots {
                    latest: Box::new(latest_err),
                    prev: Box::new(prev_err),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let geom = PatchGeom::rect([6, 4], [0.0, -1.0], [2.0, 1.0], 3);
        let mut field = Field::cons(geom);
        for (i, v) in field.raw_mut().iter_mut().enumerate() {
            *v = (i as f64).sin() * 1e3;
        }
        Checkpoint {
            time: 0.7251,
            step: 1234,
            field,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ckp = sample();
        let out = decode(&encode(&ckp)).unwrap();
        assert_eq!(out, ckp);
    }

    #[test]
    fn file_roundtrip() {
        let ckp = sample();
        let dir = std::env::temp_dir().join("rhrsc-ckp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckp");
        save_checkpoint(&path, &ckp).unwrap();
        let out = load_checkpoint(&path).unwrap();
        assert_eq!(out, ckp);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn detects_corruption() {
        let ckp = sample();
        let mut bytes = encode(&ckp);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(decode(&bytes), Err(CheckpointError::Corrupt)));
    }

    #[test]
    fn detects_truncation() {
        let ckp = sample();
        let bytes = encode(&ckp);
        assert!(matches!(
            decode(&bytes[..bytes.len() - 9]),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            decode(b"not a checkpoint at all"),
            Err(CheckpointError::Format(_))
        ));
    }

    #[test]
    fn rejects_wrong_version() {
        let ckp = sample();
        let mut bytes = encode(&ckp);
        bytes[8] = 99; // version field LE low byte
        assert!(matches!(decode(&bytes), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn detects_header_corruption() {
        // A bit flip in the `time` field is invisible to the data-section
        // FNV checksum; the whole-file CRC must catch it.
        let ckp = sample();
        let mut bytes = encode(&ckp);
        bytes[12] ^= 0x01; // low byte of `time`
        assert!(matches!(decode(&bytes), Err(CheckpointError::Corrupt)));
    }

    #[test]
    fn save_is_atomic_over_stale_tmp() {
        // A crash mid-write leaves a garbage `<path>.tmp`. A later save
        // must still succeed, the result must load cleanly, and no tmp
        // file may survive.
        let dir = std::env::temp_dir().join("rhrsc-ckp-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckp");
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, b"torn write from a crashed run").unwrap();
        let ckp = sample();
        save_checkpoint(&path, &ckp).unwrap();
        assert!(!tmp.exists(), "tmp file must be renamed away");
        assert_eq!(load_checkpoint(&path).unwrap(), ckp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slots_rotate_and_fall_back() {
        let dir = std::env::temp_dir().join("rhrsc-ckp-slots-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();

        // Nothing saved yet: load must fail.
        assert!(slots.load_newest().is_err());

        let mut a = sample();
        a.step = 1;
        slots.save(&a).unwrap();
        assert_eq!(slots.load_newest().unwrap().step, 1);
        assert!(!slots.prev_path().exists());

        let mut b = sample();
        b.step = 2;
        slots.save(&b).unwrap();
        assert_eq!(slots.load_newest().unwrap().step, 2);
        // First generation rotated into prev.
        assert_eq!(load_checkpoint(&slots.prev_path()).unwrap().step, 1);

        // Corrupt latest: load_newest must fall back to prev.
        let mut bytes = std::fs::read(slots.latest_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(slots.latest_path(), &bytes).unwrap();
        assert_eq!(slots.load_newest().unwrap().step, 1);

        // Corrupt prev too: now everything is gone.
        std::fs::write(slots.prev_path(), b"junk").unwrap();
        assert!(slots.load_newest().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn special_values_roundtrip() {
        let geom = PatchGeom::line(4, 0.0, 1.0, 1);
        let mut field = Field::new(geom, 1);
        field.raw_mut()[0] = f64::MIN_POSITIVE;
        field.raw_mut()[1] = -0.0;
        field.raw_mut()[2] = 1e308;
        field.raw_mut()[3] = 5e-324; // subnormal
        let ckp = Checkpoint {
            time: 0.0,
            step: 0,
            field,
        };
        let out = decode(&encode(&ckp)).unwrap();
        assert_eq!(out.field.raw(), ckp.field.raw());
        assert!(out.field.raw()[1].is_sign_negative());
    }

    #[test]
    fn torn_write_mid_footer_falls_back_to_prev() {
        // Simulate a crash that tore the write mid-footer: `latest` ends
        // up truncated inside its CRC trailer. The fallback loader must
        // recover `prev` and report that it did so.
        let dir = std::env::temp_dir().join("rhrsc-ckp-torn-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();
        let mut a = sample();
        a.step = 10;
        slots.save(&a).unwrap();
        let mut b = sample();
        b.step = 11;
        slots.save(&b).unwrap();

        let bytes = std::fs::read(slots.latest_path()).unwrap();
        std::fs::write(slots.latest_path(), &bytes[..bytes.len() - 2]).unwrap();

        let (ckp, fell_back) = slots.load_newest_with_fallback().unwrap();
        assert!(fell_back, "truncated latest must trigger prev fallback");
        assert_eq!(ckp.step, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_corruption_falls_back_to_prev() {
        // Distinct failure mode from truncation: the file has the right
        // length but a flipped bit in the payload, caught by the CRC.
        let dir = std::env::temp_dir().join("rhrsc-ckp-crcfall-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();
        let mut a = sample();
        a.step = 20;
        slots.save(&a).unwrap();
        let mut b = sample();
        b.step = 21;
        slots.save(&b).unwrap();

        let mut bytes = std::fs::read(slots.latest_path()).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x40;
        std::fs::write(slots.latest_path(), &bytes).unwrap();

        let (ckp, fell_back) = slots.load_newest_with_fallback().unwrap();
        assert!(fell_back, "corrupt latest must trigger prev fallback");
        assert_eq!(ckp.step, 20);
        // The intact path must NOT report a fallback.
        slots.save(&b).unwrap(); // rotates the corrupt file away
        let (_, fell_back) = slots.load_newest_with_fallback().unwrap();
        assert!(!fell_back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A 2x2-block global checkpoint over a 6x4 interior, 3 components,
    /// with data encoding the global cell coordinate so any re-tiling can
    /// be verified cell by cell.
    fn sample_global() -> GlobalCheckpoint {
        let global_n = [6usize, 4, 1];
        let ncomp = 3usize;
        let val = |c: usize, x: usize, y: usize| (c * 1000 + y * 10 + x) as f64;
        let mut blocks = Vec::new();
        let xs = [(0usize, 3usize), (3, 3)];
        let ys = [(0usize, 2usize), (2, 2)];
        let mut id = 0u64;
        for &(y0, ny) in &ys {
            for &(x0, nx) in &xs {
                let mut data = Vec::with_capacity(ncomp * nx * ny);
                for c in 0..ncomp {
                    for y in y0..y0 + ny {
                        for x in x0..x0 + nx {
                            data.push(val(c, x, y));
                        }
                    }
                }
                blocks.push(BlockRecord {
                    id,
                    offset: [x0, y0, 0],
                    size: [nx, ny, 1],
                    data,
                });
                id += 1;
            }
        }
        GlobalCheckpoint {
            time: 0.375,
            step: 42,
            global_n,
            ncomp,
            blocks,
        }
    }

    #[test]
    fn global_roundtrip_is_exact() {
        let ckp = sample_global();
        let out = decode_global(&encode_global(&ckp)).unwrap();
        assert_eq!(out, ckp);
    }

    #[test]
    fn global_detects_corruption_and_truncation() {
        let ckp = sample_global();
        let bytes = encode_global(&ckp);
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0xff;
        assert!(matches!(decode_global(&bad), Err(CheckpointError::Corrupt)));
        assert!(decode_global(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn four_block_checkpoint_restores_onto_three_ranks() {
        // Written by a 4-rank (2x2) decomposition; restored onto a 3-rank
        // (3x1) decomposition whose spans cut straight across the old
        // block boundaries. Every cell must land where the global
        // coordinate says it belongs.
        let ckp = sample_global();
        let ckp = decode_global(&encode_global(&ckp)).unwrap();
        let val = |c: usize, x: usize, y: usize| (c * 1000 + y * 10 + x) as f64;
        let spans = [
            ([0usize, 0, 0], [2usize, 4, 1]),
            ([2, 0, 0], [2, 4, 1]),
            ([4, 0, 0], [2, 4, 1]),
        ];
        for (lo, size) in spans {
            let data = ckp.extract_span(lo, size).expect("span must be covered");
            assert_eq!(data.len(), ckp.ncomp * size[0] * size[1] * size[2]);
            for c in 0..ckp.ncomp {
                for y in 0..size[1] {
                    for x in 0..size[0] {
                        let got = data[(c * size[1] + y) * size[0] + x];
                        assert_eq!(got, val(c, lo[0] + x, lo[1] + y));
                    }
                }
            }
        }
        // A span poking outside the covered region must report a gap.
        assert!(ckp.extract_span([4, 0, 0], [3, 4, 1]).is_none());
    }

    /// A three-level AMR hierarchy with recognizable per-patch data.
    fn sample_amr() -> AmrCheckpoint {
        let mk = |level: u32, lo: u64, n: u64| {
            let data = (0..5 * n)
                .map(|i| (level as u64 * 100_000 + lo * 1000 + i) as f64 * 0.5)
                .collect();
            AmrPatchRecord { level, lo, n, data }
        };
        AmrCheckpoint {
            time: 0.125,
            step: 17,
            n0: 64,
            ncomp: 5,
            patches: vec![mk(0, 0, 64), mk(1, 20, 24), mk(1, 80, 16), mk(2, 56, 24)],
        }
    }

    #[test]
    fn amr_roundtrip_is_exact() {
        let ckp = sample_amr();
        let out = decode_amr(&encode_amr(&ckp)).unwrap();
        assert_eq!(out, ckp);
    }

    #[test]
    fn amr_detects_corruption_truncation_and_wrong_version() {
        let ckp = sample_amr();
        let bytes = encode_amr(&ckp);
        let mut bad = bytes.clone();
        bad[bytes.len() / 2] ^= 0xff;
        assert!(matches!(decode_amr(&bad), Err(CheckpointError::Corrupt)));
        assert!(decode_amr(&bytes[..bytes.len() - 5]).is_err());
        // The per-rank (v2) decoder must refuse an AMR (v4) file and vice
        // versa — the version field distinguishes the formats.
        assert!(matches!(decode(&bytes), Err(CheckpointError::Format(_))));
        let rank = encode(&sample());
        assert!(matches!(decode_amr(&rank), Err(CheckpointError::Format(_))));
    }

    #[test]
    fn amr_file_roundtrip_is_atomic() {
        let dir = std::env::temp_dir().join("rhrsc-amr-ckp-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("amr.ckp");
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, b"stale torn write").unwrap();
        let ckp = sample_amr();
        save_amr_checkpoint(&path, &ckp).unwrap();
        assert!(!tmp.exists(), "tmp file must be renamed away");
        assert_eq!(load_amr_checkpoint(&path).unwrap(), ckp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn global_slots_rotate_and_fall_back() {
        let dir = std::env::temp_dir().join("rhrsc-gckp-slots-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();
        assert!(slots.load_newest_global().is_err());

        let mut a = sample_global();
        a.step = 1;
        slots.save_global(&a).unwrap();
        let mut b = sample_global();
        b.step = 2;
        slots.save_global(&b).unwrap();
        let (got, fell_back) = slots.load_newest_global().unwrap();
        assert_eq!((got.step, fell_back), (2, false));

        // Torn latest → prev generation with a fallback report.
        let bytes = std::fs::read(slots.global_latest_path()).unwrap();
        std::fs::write(slots.global_latest_path(), &bytes[..bytes.len() - 1]).unwrap();
        let (got, fell_back) = slots.load_newest_global().unwrap();
        assert_eq!((got.step, fell_back), (1, true));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn amr_slots_rotate_and_fall_back_on_torn_write() {
        let dir = std::env::temp_dir().join("rhrsc-ackp-slots-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();
        assert!(slots.load_newest_amr().is_err());

        let mut a = sample_amr();
        a.step = 1;
        slots.save_amr(&a).unwrap();
        let mut b = sample_amr();
        b.step = 2;
        slots.save_amr(&b).unwrap();
        let (got, fell_back) = slots.load_newest_amr().unwrap();
        assert_eq!((got.step, fell_back), (2, false));
        assert_eq!(got, b);

        // Torn latest (truncated inside the CRC footer, as a crash during
        // a media flush would leave it) → prev generation, reported.
        let bytes = std::fs::read(slots.amr_latest_path()).unwrap();
        std::fs::write(slots.amr_latest_path(), &bytes[..bytes.len() - 1]).unwrap();
        let (got, fell_back) = slots.load_newest_amr().unwrap();
        assert_eq!((got.step, fell_back), (1, true));
        assert_eq!(got, a);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn both_slots_failing_surfaces_both_errors() {
        let dir = std::env::temp_dir().join("rhrsc-ckp-both-slots-test");
        let _ = std::fs::remove_dir_all(&dir);
        let slots = CheckpointSlots::new(&dir).unwrap();

        // Empty directory: both slots are missing → two Io errors, each
        // attributed to its slot.
        match slots.load_newest() {
            Err(CheckpointError::Slots { latest, prev }) => {
                assert!(matches!(*latest, CheckpointError::Io(_)));
                assert!(matches!(*prev, CheckpointError::Io(_)));
            }
            other => panic!("expected Slots error, got {other:?}"),
        }

        // Corrupt latest + missing prev: the error classes differ and both
        // must survive into the combined error (and its message).
        let ckp = sample();
        slots.save(&ckp).unwrap();
        let mut bytes = std::fs::read(slots.latest_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(slots.latest_path(), &bytes).unwrap();
        match slots.load_newest() {
            Err(err @ CheckpointError::Slots { .. }) => {
                let msg = format!("{err}");
                assert!(msg.contains("latest slot"), "message was: {msg}");
                assert!(msg.contains("prev slot"), "message was: {msg}");
                if let CheckpointError::Slots { latest, prev } = err {
                    assert!(matches!(*latest, CheckpointError::Corrupt));
                    assert!(matches!(*prev, CheckpointError::Io(_)));
                }
            }
            other => panic!("expected Slots error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fast_decoders_match_full_decoders_on_clean_bytes() {
        let ckp = sample();
        let bytes = encode(&ckp);
        assert_eq!(decode_fast(&bytes).unwrap(), decode(&bytes).unwrap());

        let g = sample_global();
        let gb = encode_global(&g);
        assert_eq!(
            decode_global_fast(&gb).unwrap(),
            decode_global(&gb).unwrap()
        );

        let a = sample_amr();
        let ab = encode_amr(&a);
        assert_eq!(decode_amr_fast(&ab).unwrap(), decode_amr(&ab).unwrap());
    }

    #[test]
    fn fast_decoders_still_reject_payload_corruption_via_fnv() {
        // decode_fast skips only the whole-file CRC-32; the per-section
        // FNV still guards the payload, so a flipped data byte is caught.
        let g = sample_global();
        let mut gb = encode_global(&g);
        let mid = gb.len() / 2;
        gb[mid] ^= 0x01;
        assert!(matches!(
            decode_global_fast(&gb),
            Err(CheckpointError::Corrupt)
        ));

        let a = sample_amr();
        let mut ab = encode_amr(&a);
        let mid = ab.len() / 2;
        ab[mid] ^= 0x01;
        assert!(matches!(
            decode_amr_fast(&ab),
            Err(CheckpointError::Corrupt)
        ));
    }

    #[test]
    fn trusted_decoders_match_full_decoders_on_clean_bytes() {
        let g = sample_global();
        let gb = encode_global(&g);
        assert_eq!(
            decode_global_trusted(&gb).unwrap(),
            decode_global(&gb).unwrap()
        );

        let a = sample_amr();
        let ab = encode_amr(&a);
        assert_eq!(decode_amr_trusted(&ab).unwrap(), decode_amr(&ab).unwrap());
    }
}
