//! Diskless checkpoint tier: in-memory snapshots and SDC scrubbing.
//!
//! FTI/SCR-style multi-level checkpointing keeps the cheapest restart
//! tiers entirely in memory: each rank holds a serialized snapshot of its
//! own state (L1) plus a *buddy replica* of a partner rank's snapshot
//! (L2), and only the last tier touches shared disk. Two integrity
//! primitives make the in-memory tiers trustworthy against silent data
//! corruption (SDC — bit flips that pass unnoticed through con2prim):
//!
//! * [`StateChecksum`] — an ABFT-style stamp over a live conserved array:
//!   a word-wise FNV-style hash of the raw f64 bits plus per-component
//!   conservation sums. Each update (xor the word in, then multiply by an
//!   odd prime) is injective in the word for a fixed state and bijective
//!   in the state for fixed words, so *any single flipped bit — in fact
//!   any single changed word — deterministically changes the hash*. The
//!   component sums add a physics-readable witness (which conserved
//!   quantity drifted) on top of the yes/no answer.
//! * [`MemorySnapshot`] — a frozen serialized checkpoint (any of the
//!   `rhrsc-io` formats) stamped with its FNV at capture time, so a scrub
//!   pass can re-verify the idle buffer long after it was written and a
//!   restore can refuse a rotted replica.
//!
//! The `decode_*_trusted` variants in [`crate::checkpoint`] skip every
//! integrity pass — the bitwise whole-file CRC-32 (the disk tier's armor
//! against torn writes and media rot, and by far the slowest part of a
//! decode) *and* the payload FNV: an in-memory snapshot that just passed
//! [`MemorySnapshot::verify`] has already had every byte re-hashed
//! against its capture stamp, which is what makes memory-tier restores an
//! order of magnitude cheaper than disk restores of the same state.

/// Word-wise FNV-style hash over the raw bit patterns of an f64 slice.
///
/// Classic FNV-1a absorbs one byte per xor-multiply round; here each
/// round absorbs a whole 64-bit word (the f64 bit pattern). Both halves
/// of the round are bijections — xor with a fixed word, multiplication
/// by an odd prime — so any single changed word deterministically
/// changes the hash, exactly the ABFT guarantee of the byte-wise
/// variant at one multiply per 8 bytes instead of eight. These stamps
/// never leave memory (they are not part of any serialized checkpoint
/// format), so the block width is a free choice — and it is what these
/// hashes cost that bounds both the per-step ABFT overhead and the
/// memory-tier restore latency.
pub fn fnv1a_f64(data: &[f64]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &v in data {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Word-wise FNV-style hash over a byte slice (see [`fnv1a_f64`]); tail
/// bytes are zero-padded into one final word, which still distinguishes
/// any two same-length buffers differing only in the tail.
pub fn fnv1a_bytes(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(0x100000001b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// ABFT-style stamp of a live conserved array (component-major layout,
/// `len = ncomp * cells`): a word-wise FNV-style hash over the raw bits
/// plus one conservation sum per component. Stamped after every committed step and
/// verified before the next one touches the state, it turns a silent bit
/// flip into a detected, containable event.
#[derive(Debug, Clone, PartialEq)]
pub struct StateChecksum {
    /// Word-wise FNV-style hash over the raw f64 bits.
    pub fnv: u64,
    /// Plain left-to-right sum of each component's values (bitwise
    /// deterministic for a fixed layout).
    pub comp_sums: Vec<f64>,
    /// Element count the stamp was taken over.
    pub len: usize,
}

impl StateChecksum {
    /// Stamp `data` (component-major, `ncomp` equal chunks; a remainder
    /// is folded into the last component's sum).
    pub fn stamp(data: &[f64], ncomp: usize) -> Self {
        let ncomp = ncomp.max(1);
        let chunk = data.len() / ncomp;
        let mut comp_sums = vec![0.0f64; ncomp];
        if chunk > 0 {
            for (c, sum) in comp_sums.iter_mut().enumerate() {
                let hi = if c + 1 == ncomp {
                    data.len()
                } else {
                    (c + 1) * chunk
                };
                let mut s = 0.0f64;
                for &v in &data[c * chunk..hi] {
                    s += v;
                }
                *sum = s;
            }
        }
        StateChecksum {
            fnv: fnv1a_f64(data),
            comp_sums,
            len: data.len(),
        }
    }

    /// Does `data` still match this stamp? Any single bit flip anywhere
    /// in the array fails the FNV comparison (see the module docs for
    /// why detection is deterministic, not probabilistic).
    pub fn verify(&self, data: &[f64]) -> bool {
        data.len() == self.len && fnv1a_f64(data) == self.fnv
    }

    /// Index of the first component whose conservation sum no longer
    /// matches `data` bitwise — the physics-readable witness of *what*
    /// was corrupted. `None` when every sum still matches (possible even
    /// under corruption if the flip cancels in the sum; the FNV is the
    /// authoritative detector).
    pub fn corrupted_component(&self, data: &[f64]) -> Option<usize> {
        if data.len() != self.len {
            return Some(0);
        }
        let fresh = StateChecksum::stamp(data, self.comp_sums.len());
        self.comp_sums
            .iter()
            .zip(&fresh.comp_sums)
            .position(|(a, b)| a.to_bits() != b.to_bits())
    }
}

/// A frozen serialized checkpoint held in memory (the L1/L2 tiers),
/// stamped with its FNV at capture time so scrubs and restores can detect
/// bit rot in the idle buffer itself.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySnapshot {
    /// Step counter the snapshot was taken at.
    pub step: u64,
    /// Simulation time the snapshot was taken at.
    pub time: f64,
    bytes: Vec<u8>,
    fnv: u64,
}

impl MemorySnapshot {
    /// Freeze `bytes` (a serialized checkpoint) taken at `(step, time)`.
    pub fn new(step: u64, time: f64, bytes: Vec<u8>) -> Self {
        let fnv = fnv1a_bytes(&bytes);
        MemorySnapshot {
            step,
            time,
            bytes,
            fnv,
        }
    }

    /// Rebuild a snapshot from parts received over the network: the
    /// sender's stamp travels with the payload, so corruption in flight
    /// or in the replica buffer is caught by [`MemorySnapshot::verify`].
    pub fn from_parts(step: u64, time: f64, bytes: Vec<u8>, fnv: u64) -> Self {
        MemorySnapshot {
            step,
            time,
            bytes,
            fnv,
        }
    }

    /// The frozen serialized checkpoint.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The FNV stamped at capture time.
    pub fn fnv(&self) -> u64 {
        self.fnv
    }

    /// Size of the frozen buffer in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the frozen buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Scrub: does the buffer still hash to the stamp taken at capture?
    pub fn verify(&self) -> bool {
        fnv1a_bytes(&self.bytes) == self.fnv
    }

    /// Fault-injection hook: flip one bit of the frozen buffer, chosen by
    /// `selector` (bit index `selector % (len * 8)`). The stamp is *not*
    /// updated — that is the point: the scrubber must catch this.
    pub fn flip_bit(&mut self, selector: u64) {
        if self.bytes.is_empty() {
            return;
        }
        let bit = (selector % (self.bytes.len() as u64 * 8)) as usize;
        self.bytes[bit / 8] ^= 1 << (bit % 8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }

    #[test]
    fn stamp_matches_clean_data() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 1e3).collect();
        let s = StateChecksum::stamp(&data, 5);
        assert!(s.verify(&data));
        assert_eq!(s.corrupted_component(&data), None);
        assert_eq!(s.comp_sums.len(), 5);
    }

    #[test]
    fn any_single_bit_flip_in_small_array_is_detected() {
        // Exhaustive over every bit of a small array: the FNV must catch
        // all of them (injectivity under a single changed byte).
        let data: Vec<f64> = (0..12).map(|i| (i as f64 + 0.25) * 1.5e2).collect();
        let s = StateChecksum::stamp(&data, 3);
        for idx in 0..data.len() {
            for bit in 0..64 {
                let mut d = data.clone();
                d[idx] = f64::from_bits(d[idx].to_bits() ^ (1u64 << bit));
                assert!(
                    !s.verify(&d),
                    "flip of bit {bit} in element {idx} went undetected"
                );
            }
        }
    }

    #[test]
    fn corrupted_component_names_the_victim() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = StateChecksum::stamp(&data, 5);
        let mut d = data.clone();
        d[57] += 1.0; // component 2 (chunk 40..60)
        assert_eq!(s.corrupted_component(&d), Some(2));
    }

    #[test]
    fn snapshot_scrub_detects_buffer_rot() {
        let bytes: Vec<u8> = (0..1024u32).map(|i| (i * 7 + 3) as u8).collect();
        let mut snap = MemorySnapshot::new(12, 0.5, bytes);
        assert!(snap.verify());
        snap.flip_bit(98765);
        assert!(!snap.verify(), "single flipped bit must fail the scrub");
    }

    #[test]
    fn seeded_flips_always_detected_and_clean_never_flagged() {
        // The scrub-correctness property at the primitive level: across
        // 1000 seeded trials, a single injected bit flip anywhere in the
        // array is detected, and the untouched array never false-positives.
        let data: Vec<f64> = (0..640).map(|i| ((i * i) as f64).cos() * 9.7e2).collect();
        let s = StateChecksum::stamp(&data, 5);
        for trial in 0..1000u64 {
            assert!(s.verify(&data), "clean data false-positived at {trial}");
            let sel = splitmix64(trial.wrapping_mul(0x9e3779b97f4a7c15));
            let idx = (sel % data.len() as u64) as usize;
            let bit = ((sel >> 32) % 64) as u32;
            let mut d = data.clone();
            d[idx] = f64::from_bits(d[idx].to_bits() ^ (1u64 << bit));
            assert!(!s.verify(&d), "trial {trial}: flip went undetected");
        }
    }

    #[test]
    fn from_parts_round_trips_the_stamp() {
        let bytes: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let a = MemorySnapshot::new(3, 1.25, bytes.clone());
        let b = MemorySnapshot::from_parts(3, 1.25, bytes, a.fnv());
        assert_eq!(a, b);
        assert!(b.verify());
    }
}
