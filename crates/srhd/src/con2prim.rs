//! Conservative → primitive variable recovery.
//!
//! Unlike Newtonian hydrodynamics, the SRHD primitives are an implicit
//! function of the conserved state: recovering `(ρ, v_i, p)` from
//! `(D, S_i, τ)` requires a nonlinear root solve. This module implements the
//! standard pressure-based scheme (Martí & Müller):
//!
//! Given a trial pressure `p`, the conserved definitions invert in closed
//! form:
//!
//! ```text
//! E  = τ + D + p          (= ρ h W²)
//! v_i = S_i / E,   W = (1 − v²)^{-1/2}
//! ρ  = D / W
//! ε  = (τ + D(1 − W) + p(1 − W²)) / (D W)
//! ```
//!
//! and the root of `f(p) = p_eos(ρ(p), ε(p)) − p` is the physical pressure.
//! `f` is solved by Newton iteration with the analytic slope approximation
//! `f'(p) ≈ v² cs² − 1` (exact in the ultrarelativistic limit, excellent
//! everywhere), guarded by a bracketing bisection fallback so the recovery
//! is *unconditionally* convergent for physical inputs — a property the
//! ultrarelativistic robustness experiment (F8) stresses to Lorentz factors
//! of order 100.

use crate::state::{Cons, Prim};
use rhrsc_eos::Eos;

/// Tunable parameters of the recovery.
#[derive(Debug, Clone, Copy)]
pub struct Con2PrimParams {
    /// Relative tolerance on the pressure root.
    pub tol: f64,
    /// Maximum Newton iterations before falling back to bisection.
    pub max_newton: usize,
    /// Maximum bisection iterations.
    pub max_bisect: usize,
    /// Density floor: states with `D` below `rho_floor` are reset to a
    /// static atmosphere.
    pub rho_floor: f64,
    /// Pressure floor applied to the recovered state.
    pub p_floor: f64,
    /// Lorentz-factor ceiling enforced by the conserved-variable limiter:
    /// momentum in inadmissible states is rescaled so the recovered flow
    /// cannot exceed this W. Keeps floor-repaired vacuum cells from
    /// acquiring |v| → 1 and destabilizing their neighborhood.
    pub w_cap: f64,
}

impl Default for Con2PrimParams {
    fn default() -> Self {
        Con2PrimParams {
            tol: 1e-12,
            max_newton: 50,
            max_bisect: 200,
            rho_floor: 1e-12,
            p_floor: 1e-14,
            w_cap: 1e3,
        }
    }
}

impl Con2PrimParams {
    /// Relaxed variant for the recovery cascade: a much looser root
    /// tolerance and widened iteration budgets. A state that converges
    /// under these parameters is still a genuine root of the pressure
    /// equation, just resolved less sharply — preferable to discarding
    /// the cell outright.
    pub fn relaxed(&self) -> Con2PrimParams {
        Con2PrimParams {
            tol: (self.tol * 1e6).clamp(self.tol, 1e-4),
            max_newton: self.max_newton * 4 + 20,
            max_bisect: self.max_bisect * 4 + 100,
            ..*self
        }
    }
}

/// Failure modes of the recovery. Carried up to the solver so failures can
/// be counted (robustness experiment) or turned into atmosphere resets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Con2PrimError {
    /// A conserved component is NaN/Inf.
    NonFinite,
    /// `S² ≥ (τ + D + p)²` for every admissible pressure: superluminal data.
    Superluminal,
    /// The root solve did not converge within the iteration budgets.
    NoConvergence {
        /// Residual |f(p)|/p at the last iterate.
        residual: f64,
    },
    /// The recovered state violated positivity beyond repair.
    Unphysical,
}

impl std::fmt::Display for Con2PrimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Con2PrimError::NonFinite => write!(f, "non-finite conserved state"),
            Con2PrimError::Superluminal => write!(f, "superluminal conserved state"),
            Con2PrimError::NoConvergence { residual } => {
                write!(f, "pressure root solve stalled (residual {residual:.3e})")
            }
            Con2PrimError::Unphysical => write!(f, "recovered state unphysical"),
        }
    }
}

impl std::error::Error for Con2PrimError {}

/// Invert the trial pressure: returns `(f(p), prim, w)` where `f` is the EOS
/// pressure residual.
#[inline]
fn residual(eos: &Eos, u: &Cons, p: f64) -> (f64, Prim, f64) {
    let e = u.tau + u.d + p;
    let ssq = u.ssq();
    let vsq = (ssq / (e * e)).min(1.0 - 1e-16);
    let w = 1.0 / (1.0 - vsq).sqrt();
    let rho = u.d / w;
    let eps = (u.tau + u.d * (1.0 - w) + p * (1.0 - w * w)) / (u.d * w);
    let p_eos = eos.pressure(rho, eps.max(0.0));
    let inv_e = 1.0 / e;
    let prim = Prim {
        rho,
        vel: [u.s[0] * inv_e, u.s[1] * inv_e, u.s[2] * inv_e],
        p,
    };
    (p_eos - p, prim, w)
}

/// Lower bound on admissible pressure: `E = τ + D + p` must exceed `|S|`
/// for the velocity to be subluminal.
#[inline]
fn p_min_bound(u: &Cons) -> f64 {
    let s = u.ssq().sqrt();
    // Strict inequality with a small safety margin relative to the scale.
    let slack = 1e-13 * (s + u.d + u.tau.abs()).max(1e-300);
    (s - u.tau - u.d + slack).max(0.0)
}

/// Recover primitives from a conserved state.
///
/// `p_guess` seeds the Newton iteration (pass the previous time level's
/// pressure when available; pass `None` for a cold start). On success
/// returns the primitive state with `prim.p ≥ params.p_floor` and
/// `prim.rho ≥ params.rho_floor`.
pub fn cons_to_prim(
    eos: &Eos,
    u: &Cons,
    p_guess: Option<f64>,
    params: &Con2PrimParams,
) -> Result<Prim, Con2PrimError> {
    cons_to_prim_counted(eos, u, p_guess, params).map(|(prim, _)| prim)
}

/// [`cons_to_prim`] that also reports the work done: the number of
/// pressure-residual evaluations (Newton iterations plus bisection
/// probes; 0 for the atmosphere short-circuit). The observability layer
/// histograms this per region to expose recovery-cost hot spots.
pub fn cons_to_prim_counted(
    eos: &Eos,
    u: &Cons,
    p_guess: Option<f64>,
    params: &Con2PrimParams,
) -> Result<(Prim, u32), Con2PrimError> {
    let mut iters: u32 = 0;
    if !u.is_finite() {
        return Err(Con2PrimError::NonFinite);
    }
    // Atmosphere short-circuit: vacuum-adjacent zones become static fluid.
    if u.d <= params.rho_floor {
        return Ok((Prim::at_rest(params.rho_floor, params.p_floor), 0));
    }

    let p_lo = p_min_bound(u);
    // A guess below the admissibility bound would start with v >= 1.
    let mut p = p_guess.unwrap_or(0.0).max(p_lo).max(params.p_floor);
    if p == 0.0 {
        p = params.p_floor;
    }

    // --- Newton phase -----------------------------------------------------
    let mut last_res = f64::INFINITY;
    for _ in 0..params.max_newton {
        iters += 1;
        let (f, prim, _w) = residual(eos, u, p);
        let scale = p.max(params.p_floor);
        last_res = (f / scale).abs();
        if last_res < params.tol {
            return finish(prim, params).map(|prim| (prim, iters));
        }
        let cs2 = eos.sound_speed_sq(prim.rho.max(params.rho_floor), p.max(params.p_floor));
        let vsq = prim.vsq();
        let df = vsq * cs2 - 1.0; // strictly negative
        let mut p_next = p - f / df;
        if !p_next.is_finite() || p_next <= p_lo {
            // Newton left the admissible region; damp toward the bound.
            p_next = 0.5 * (p + p_lo.max(params.p_floor));
        }
        if (p_next - p).abs() <= params.tol * p.max(params.p_floor) {
            iters += 1;
            let (f2, prim2, _) = residual(eos, u, p_next);
            if (f2 / p_next.max(params.p_floor)).abs() < params.tol.sqrt() {
                return finish(prim2, params).map(|prim| (prim, iters));
            }
        }
        p = p_next;
    }

    // --- Bisection fallback ------------------------------------------------
    // f(p) > 0 for p below the root and f(p) < 0 above it (f' < 0), so
    // expand an upper bracket until the sign flips.
    let mut lo = p_lo.max(params.p_floor * 1e-3);
    iters += 1;
    let (f_lo, _, _) = residual(eos, u, lo);
    if f_lo < 0.0 {
        // Root below the admissible region: pressure floor is the answer
        // (extremely cold flow).
        iters += 1;
        let (_, prim, _) = residual(eos, u, lo);
        return finish(prim, params).map(|prim| (prim, iters));
    }
    let mut hi = (p.max(lo) * 2.0).max(params.p_floor);
    let mut expanded = 0;
    loop {
        iters += 1;
        let (f_hi, _, _) = residual(eos, u, hi);
        if f_hi <= 0.0 {
            break;
        }
        hi *= 8.0;
        expanded += 1;
        if expanded > 200 || !hi.is_finite() {
            return Err(Con2PrimError::NoConvergence { residual: last_res });
        }
    }
    for _ in 0..params.max_bisect {
        let mid = 0.5 * (lo + hi);
        iters += 1;
        let (f_mid, prim, _) = residual(eos, u, mid);
        if (f_mid / mid.max(params.p_floor)).abs() < params.tol
            || (hi - lo) < params.tol * mid.max(params.p_floor)
        {
            return finish(prim, params).map(|prim| (prim, iters));
        }
        if f_mid > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Err(Con2PrimError::NoConvergence { residual: last_res })
}

/// Apply floors and final physicality checks.
#[inline]
fn finish(mut prim: Prim, params: &Con2PrimParams) -> Result<Prim, Con2PrimError> {
    prim.p = prim.p.max(params.p_floor);
    prim.rho = prim.rho.max(params.rho_floor);
    // Velocity ceiling: when the root lands at the admissibility edge
    // (E barely above |S|), round-off can push |v| marginally to or past
    // 1. Rescale marginal cases (the standard production-code velocity
    // limiter); reject anything genuinely superluminal.
    let v2 = prim.vsq();
    if v2 >= 1.0 {
        if v2 < 1.0 + 1e-9 {
            let scale = ((1.0 - 1e-12) / v2).sqrt();
            for v in &mut prim.vel {
                *v *= scale;
            }
        } else {
            return Err(Con2PrimError::Unphysical);
        }
    }
    if !prim.is_physical() {
        return Err(Con2PrimError::Unphysical);
    }
    Ok(prim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Dir;

    fn roundtrip(eos: &Eos, prim: Prim, tol: f64) -> Result<(), Con2PrimError> {
        let u = prim.to_cons(eos);
        let out = cons_to_prim(eos, &u, Some(prim.p), &Con2PrimParams::default())?;
        let scale = prim.p.max(1e-300);
        assert!(
            (out.p - prim.p).abs() <= tol * scale,
            "p: {} vs {}",
            out.p,
            prim.p
        );
        assert!((out.rho - prim.rho).abs() <= tol * prim.rho, "rho");
        for i in 0..3 {
            assert!(
                (out.vel[i] - prim.vel[i]).abs() <= tol.max(1e-11),
                "v[{i}]: {} vs {}",
                out.vel[i],
                prim.vel[i]
            );
        }
        Ok(())
    }

    #[test]
    fn roundtrip_moderate_states() -> Result<(), Con2PrimError> {
        let eos = Eos::ideal(5.0 / 3.0);
        for prim in [
            Prim::at_rest(1.0, 1.0),
            Prim::new_1d(1.0, 0.9, 0.1),
            Prim {
                rho: 0.125,
                vel: [0.3, -0.4, 0.5],
                p: 0.1,
            },
            Prim {
                rho: 10.0,
                vel: [-0.7, 0.1, 0.0],
                p: 1000.0,
            },
        ] {
            roundtrip(&eos, prim, 1e-9)?;
        }
        Ok(())
    }

    #[test]
    fn roundtrip_without_guess() {
        let eos = Eos::ideal(1.4);
        let prim = Prim {
            rho: 0.5,
            vel: [0.6, 0.2, -0.1],
            p: 2.0,
        };
        let u = prim.to_cons(&eos);
        let out = cons_to_prim(&eos, &u, None, &Con2PrimParams::default()).unwrap();
        assert!((out.p - prim.p).abs() < 1e-9 * prim.p);
    }

    #[test]
    fn roundtrip_ultrarelativistic() -> Result<(), Con2PrimError> {
        // Lorentz factors up to ~700 (v through boosting).
        let eos = Eos::ideal(4.0 / 3.0);
        for &w_target in &[10.0f64, 100.0, 700.0] {
            let v = (1.0 - 1.0 / (w_target * w_target)).sqrt();
            let prim = Prim::new_1d(1.0, v, 1e-2);
            roundtrip(&eos, prim, 1e-6)?;
        }
        Ok(())
    }

    #[test]
    fn roundtrip_extreme_pressure_ratios() -> Result<(), Con2PrimError> {
        let eos = Eos::ideal(5.0 / 3.0);
        roundtrip(&eos, Prim::new_1d(1.0, 0.5, 1e-10), 1e-6)?;
        roundtrip(&eos, Prim::new_1d(1.0, 0.5, 1e8), 1e-8)
    }

    #[test]
    fn roundtrip_taub_mathews() -> Result<(), Con2PrimError> {
        let eos = Eos::TaubMathews;
        for prim in [
            Prim::at_rest(1.0, 1.0),
            Prim::new_1d(1.0, 0.95, 10.0),
            Prim {
                rho: 0.01,
                vel: [0.2, 0.2, 0.2],
                p: 1e-5,
            },
        ] {
            roundtrip(&eos, prim, 1e-8)?;
        }
        Ok(())
    }

    #[test]
    fn atmosphere_reset_below_floor() {
        let eos = Eos::ideal(5.0 / 3.0);
        let params = Con2PrimParams::default();
        let u = Cons {
            d: params.rho_floor * 0.5,
            s: [0.0; 3],
            tau: 0.0,
        };
        let prim = cons_to_prim(&eos, &u, None, &params).unwrap();
        assert_eq!(prim.vel, [0.0; 3]);
        assert_eq!(prim.rho, params.rho_floor);
    }

    #[test]
    fn rejects_nonfinite() {
        let eos = Eos::ideal(5.0 / 3.0);
        let u = Cons {
            d: f64::NAN,
            s: [0.0; 3],
            tau: 1.0,
        };
        assert_eq!(
            cons_to_prim(&eos, &u, None, &Con2PrimParams::default()),
            Err(Con2PrimError::NonFinite)
        );
    }

    #[test]
    fn guess_quality_does_not_change_answer() {
        let eos = Eos::ideal(5.0 / 3.0);
        let prim = Prim::new_1d(1.0, 0.99, 0.3);
        let u = prim.to_cons(&eos);
        let params = Con2PrimParams::default();
        let a = cons_to_prim(&eos, &u, Some(1e-8), &params).unwrap();
        let b = cons_to_prim(&eos, &u, Some(1e6), &params).unwrap();
        assert!((a.p - b.p).abs() < 1e-9 * a.p);
    }

    #[test]
    fn boosted_blast_wave_states_recover() -> Result<(), Con2PrimError> {
        // The F8 robustness experiment boosts the Marti-Muller blast wave 1
        // left state; make sure recovery holds across a wide boost range.
        let eos = Eos::ideal(5.0 / 3.0);
        let base = Prim::at_rest(10.0, 13.33);
        for &vb in &[0.0, 0.9, 0.99, 0.999, 0.99999] {
            let prim = base.boosted(vb, Dir::X);
            roundtrip(&eos, prim, 1e-6)?;
        }
        Ok(())
    }

    #[test]
    fn counted_matches_uncounted_and_reports_work() {
        let eos = Eos::ideal(5.0 / 3.0);
        let params = Con2PrimParams::default();
        // A genuine solve reports at least one residual evaluation and
        // returns the identical primitive state.
        let prim = Prim::new_1d(1.0, 0.9, 0.1);
        let u = prim.to_cons(&eos);
        let plain = cons_to_prim(&eos, &u, None, &params).unwrap();
        let (counted, iters) = cons_to_prim_counted(&eos, &u, None, &params).unwrap();
        assert_eq!(plain, counted);
        assert!(iters >= 1, "expected work, got {iters} iterations");
        // A good guess converges in fewer iterations than a cold start.
        let (_, warm) = cons_to_prim_counted(&eos, &u, Some(prim.p), &params).unwrap();
        assert!(warm <= iters, "warm {warm} vs cold {iters}");
        // The atmosphere short-circuit does no root-solve work.
        let vac = Cons {
            d: params.rho_floor * 0.5,
            s: [0.0; 3],
            tau: 0.0,
        };
        let (_, n) = cons_to_prim_counted(&eos, &vac, None, &params).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn relaxed_params_recover_budget_starved_states() {
        // With the iteration budgets zeroed out the solver cannot converge;
        // the relaxed variant restores usable budgets — the first tier of
        // the solver-level recovery cascade depends on this.
        let eos = Eos::ideal(5.0 / 3.0);
        let prim = Prim::new_1d(1.0, 0.9, 0.1);
        let u = prim.to_cons(&eos);
        let starved = Con2PrimParams {
            max_newton: 0,
            max_bisect: 0,
            ..Con2PrimParams::default()
        };
        assert!(cons_to_prim(&eos, &u, None, &starved).is_err());
        let out = cons_to_prim(&eos, &u, None, &starved.relaxed()).unwrap();
        assert!((out.p - prim.p).abs() < 1e-3 * prim.p);
    }
}
