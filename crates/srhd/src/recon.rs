//! Spatial reconstruction of interface states from cell averages.
//!
//! High-resolution shock capturing hinges on reconstructing left/right
//! states at cell interfaces with high order in smooth flow while avoiding
//! spurious oscillations at discontinuities. This module provides, in
//! increasing formal order:
//!
//! * [`Recon::Pc`] — piecewise constant (Godunov, 1st order),
//! * [`Recon::Plm`] — piecewise linear with a TVD slope [`Limiter`]
//!   (2nd order),
//! * [`Recon::Ppm`] — the piecewise-parabolic method of Colella & Woodward
//!   (3rd order at smooth extrema-free flow; classic monotonization, no
//!   contact steepening or flattening),
//! * [`Recon::Ceno3`] — 3rd-order convex ENO (Liu & Osher 1998), the
//!   scheme family used by the authors' earlier relativistic (M)HD codes,
//! * [`Recon::Mp5`] — 5th-order monotonicity-preserving (Suresh & Huynh
//!   1997),
//! * [`Recon::Weno5`] — 5th-order weighted essentially-non-oscillatory
//!   (Jiang & Shu smoothness indicators).
//!
//! Reconstruction operates on *pencils*: 1D slices of a scalar field. The
//! convention is that interface `j` separates cells `j-1` and `j`;
//! `ql[j]` is the state reconstructed from the left (cell `j-1`) and
//! `qr[j]` from the right (cell `j`).

/// TVD slope limiter for piecewise-linear reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Limiter {
    /// Most diffusive TVD limiter; never overshoots.
    Minmod,
    /// Monotonized-central (van Leer's MC): sharper, still TVD.
    Mc,
    /// Van Leer's harmonic limiter.
    VanLeer,
}

impl Limiter {
    /// All limiters, for comparison sweeps.
    pub const ALL: [Limiter; 3] = [Limiter::Minmod, Limiter::Mc, Limiter::VanLeer];

    /// Limited slope from backward difference `a` and forward difference `b`.
    #[inline]
    pub fn slope(&self, a: f64, b: f64) -> f64 {
        match self {
            Limiter::Minmod => minmod2(a, b),
            Limiter::Mc => minmod3(2.0 * a, 0.5 * (a + b), 2.0 * b),
            Limiter::VanLeer => {
                if a * b > 0.0 {
                    2.0 * a * b / (a + b)
                } else {
                    0.0
                }
            }
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Limiter::Minmod => "minmod",
            Limiter::Mc => "mc",
            Limiter::VanLeer => "vanleer",
        }
    }
}

#[inline]
fn minmod2(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

#[inline]
fn minmod3(a: f64, b: f64, c: f64) -> f64 {
    minmod2(a, minmod2(b, c))
}

/// Reconstruction scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Recon {
    /// Piecewise constant.
    Pc,
    /// Piecewise linear with the given limiter.
    Plm(Limiter),
    /// Piecewise parabolic (Colella–Woodward).
    Ppm,
    /// 3rd-order convex ENO (Liu & Osher): the scheme of the authors'
    /// earlier relativistic (M)HD codes. A minmod-limited linear value is
    /// corrected by the minmod of three quadratic-candidate corrections,
    /// giving uniform 3rd order without the full ENO stencil logic.
    Ceno3,
    /// 5th-order monotonicity-preserving scheme (Suresh & Huynh).
    Mp5,
    /// 5th-order WENO (Jiang–Shu).
    Weno5,
}

impl Recon {
    /// A representative set for comparison tables.
    pub const SWEEP: [Recon; 7] = [
        Recon::Pc,
        Recon::Plm(Limiter::Minmod),
        Recon::Plm(Limiter::Mc),
        Recon::Ppm,
        Recon::Ceno3,
        Recon::Mp5,
        Recon::Weno5,
    ];

    /// Short display name (used in benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            Recon::Pc => "pc",
            Recon::Plm(Limiter::Minmod) => "plm-minmod",
            Recon::Plm(Limiter::Mc) => "plm-mc",
            Recon::Plm(Limiter::VanLeer) => "plm-vanleer",
            Recon::Ppm => "ppm",
            Recon::Ceno3 => "ceno3",
            Recon::Mp5 => "mp5",
            Recon::Weno5 => "weno5",
        }
    }

    /// Number of ghost cells the scheme needs on each side of a pencil.
    #[inline]
    pub fn ghost(&self) -> usize {
        match self {
            Recon::Pc => 1,
            Recon::Plm(_) => 2,
            Recon::Ppm => 3,
            Recon::Ceno3 => 3,
            Recon::Mp5 => 3,
            Recon::Weno5 => 3,
        }
    }

    /// Formal order of accuracy in smooth flow.
    pub fn order(&self) -> usize {
        match self {
            Recon::Pc => 1,
            Recon::Plm(_) => 2,
            Recon::Ppm => 3,
            Recon::Ceno3 => 3,
            Recon::Mp5 => 5,
            Recon::Weno5 => 5,
        }
    }

    /// Reconstruct interface states on a pencil.
    ///
    /// For each interface `j` in `lo..hi` (interface `j` separates cells
    /// `j-1` and `j`), writes `ql[j]` (from the left) and `qr[j]` (from
    /// the right). The caller must guarantee `lo >= ghost()` and
    /// `hi + ghost() <= q.len() + 1`.
    pub fn pencil(&self, q: &[f64], lo: usize, hi: usize, ql: &mut [f64], qr: &mut [f64]) {
        debug_assert!(lo >= self.ghost());
        debug_assert!(hi + self.ghost() <= q.len() + 1);
        match self {
            Recon::Pc => {
                ql[lo..hi].copy_from_slice(&q[lo - 1..hi - 1]);
                qr[lo..hi].copy_from_slice(&q[lo..hi]);
            }
            Recon::Plm(lim) => {
                for j in lo..hi {
                    let sl = lim.slope(q[j - 1] - q[j - 2], q[j] - q[j - 1]);
                    let sr = lim.slope(q[j] - q[j - 1], q[j + 1] - q[j]);
                    ql[j] = q[j - 1] + 0.5 * sl;
                    qr[j] = q[j] - 0.5 * sr;
                }
            }
            Recon::Ppm => {
                for j in lo..hi {
                    // Left interface state: right edge of cell j-1.
                    let (_, ar) = ppm_edges(q, j - 1);
                    ql[j] = ar;
                    // Right interface state: left edge of cell j.
                    let (al, _) = ppm_edges(q, j);
                    qr[j] = al;
                }
            }
            Recon::Ceno3 => {
                for j in lo..hi {
                    // Right edge of cell j-1; left edge of cell j via the
                    // mirrored stencil.
                    ql[j] = ceno3_edge(q[j - 3], q[j - 2], q[j - 1], q[j], q[j + 1]);
                    qr[j] = ceno3_edge(q[j + 2], q[j + 1], q[j], q[j - 1], q[j - 2]);
                }
            }
            Recon::Mp5 => {
                for j in lo..hi {
                    ql[j] = mp5_left(q[j - 3], q[j - 2], q[j - 1], q[j], q[j + 1]);
                    qr[j] = mp5_left(q[j + 2], q[j + 1], q[j], q[j - 1], q[j - 2]);
                }
            }
            Recon::Weno5 => {
                for j in lo..hi {
                    // Left-biased stencil centered on cell j-1.
                    ql[j] = weno5_left(q[j - 3], q[j - 2], q[j - 1], q[j], q[j + 1]);
                    // Right-biased stencil centered on cell j (mirror).
                    qr[j] = weno5_left(q[j + 2], q[j + 1], q[j], q[j - 1], q[j - 2]);
                }
            }
        }
    }

    /// Convenience: reconstruct both states at a single interface `j`.
    pub fn at(&self, q: &[f64], j: usize) -> (f64, f64) {
        let mut ql = vec![0.0; j + 1];
        let mut qr = vec![0.0; j + 1];
        self.pencil(q, j, j + 1, &mut ql, &mut qr);
        (ql[j], qr[j])
    }
}

/// Monotonized parabolic edge values `(a_L, a_R)` for cell `j`
/// (Colella & Woodward 1984, eqs. 1.6–1.10).
#[inline]
fn ppm_edges(q: &[f64], j: usize) -> (f64, f64) {
    // 4th-order interface interpolants with van-Leer-limited slopes for
    // monotone behaviour near discontinuities.
    let dq = |j: usize| {
        let d = 0.5 * (q[j + 1] - q[j - 1]);
        let dl = q[j] - q[j - 1];
        let dr = q[j + 1] - q[j];
        if dl * dr > 0.0 {
            d.signum() * d.abs().min(2.0 * dl.abs()).min(2.0 * dr.abs())
        } else {
            0.0
        }
    };
    let face = |j: usize| 0.5 * (q[j] + q[j + 1]) + (dq(j) - dq(j + 1)) / 6.0;
    let mut al = face(j - 1);
    let mut ar = face(j);
    let a = q[j];
    // CW monotonization.
    if (ar - a) * (a - al) <= 0.0 {
        al = a;
        ar = a;
    } else {
        let d = ar - al;
        let c = a - 0.5 * (al + ar);
        if d * c > d * d / 6.0 {
            al = 3.0 * a - 2.0 * ar;
        } else if -d * d / 6.0 > d * c {
            ar = 3.0 * a - 2.0 * al;
        }
    }
    (al, ar)
}

/// Classic 5th-order WENO reconstruction of the *right edge* of the center
/// cell from the 5-point stencil `(m2, m1, c, p1, p2)` (Jiang & Shu 1996).
#[inline]
fn weno5_left(m2: f64, m1: f64, c: f64, p1: f64, p2: f64) -> f64 {
    const EPS: f64 = 1e-40;
    // Candidate stencil reconstructions.
    let q0 = (2.0 * m2 - 7.0 * m1 + 11.0 * c) / 6.0;
    let q1 = (-m1 + 5.0 * c + 2.0 * p1) / 6.0;
    let q2 = (2.0 * c + 5.0 * p1 - p2) / 6.0;
    // Smoothness indicators.
    let b0 = 13.0 / 12.0 * (m2 - 2.0 * m1 + c).powi(2) + 0.25 * (m2 - 4.0 * m1 + 3.0 * c).powi(2);
    let b1 = 13.0 / 12.0 * (m1 - 2.0 * c + p1).powi(2) + 0.25 * (m1 - p1).powi(2);
    let b2 = 13.0 / 12.0 * (c - 2.0 * p1 + p2).powi(2) + 0.25 * (3.0 * c - 4.0 * p1 + p2).powi(2);
    // Nonlinear weights from the optimal linear weights (1, 6, 3)/10.
    let a0 = 0.1 / (EPS + b0).powi(2);
    let a1 = 0.6 / (EPS + b1).powi(2);
    let a2 = 0.3 / (EPS + b2).powi(2);
    let inv = 1.0 / (a0 + a1 + a2);
    (a0 * q0 + a1 * q1 + a2 * q2) * inv
}

/// Convex-ENO (Liu & Osher 1998) reconstruction of the *right edge* of
/// the center cell from the 5-point stencil `(m2, m1, c, p1, p2)`.
///
/// A minmod-limited linear value is corrected by the minmod of the three
/// quadratic candidates' deviations: in smooth flow the central quadratic
/// wins (uniform 3rd order); at discontinuities the correction vanishes
/// and the scheme degrades gracefully to the TVD linear value.
#[inline]
fn ceno3_edge(m2: f64, m1: f64, c: f64, p1: f64, p2: f64) -> f64 {
    let lin = c + 0.5 * minmod2(c - m1, p1 - c);
    // Quadratic candidates at the right edge (cell-average based).
    let q0 = (2.0 * m2 - 7.0 * m1 + 11.0 * c) / 6.0;
    let q1 = (-m1 + 5.0 * c + 2.0 * p1) / 6.0;
    let q2 = (2.0 * c + 5.0 * p1 - p2) / 6.0;
    lin + minmod3_sym(q0 - lin, q1 - lin, q2 - lin)
}

/// True three-way minmod: zero unless all arguments share a sign, else the
/// smallest in magnitude. (The nested [`minmod3`] used by the MC limiter
/// is equivalent for that use but not symmetric in general.)
#[inline]
fn minmod3_sym(a: f64, b: f64, c: f64) -> f64 {
    if a > 0.0 && b > 0.0 && c > 0.0 {
        a.min(b).min(c)
    } else if a < 0.0 && b < 0.0 && c < 0.0 {
        a.max(b).max(c)
    } else {
        0.0
    }
}

/// Four-way minmod used by the MP5 limiter (Suresh & Huynh 1997).
#[inline]
fn minmod4(a: f64, b: f64, c: f64, d: f64) -> f64 {
    let s = 0.125 * (sign(a) + sign(b)) * ((sign(a) + sign(c)) * (sign(a) + sign(d))).abs();
    s * a.abs().min(b.abs()).min(c.abs()).min(d.abs())
}

#[inline]
fn sign(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else if x < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// MP5 (Suresh & Huynh 1997) reconstruction of the *right edge* of the
/// center cell from the 5-point stencil `(m2, m1, c, p1, p2)`: the
/// unlimited 5th-order value, median-limited into a monotonicity- and
/// accuracy-preserving interval built from curvature measures.
#[inline]
fn mp5_left(m2: f64, m1: f64, c: f64, p1: f64, p2: f64) -> f64 {
    const ALPHA: f64 = 4.0;
    const EPS: f64 = 1e-10;
    let vor = (2.0 * m2 - 13.0 * m1 + 47.0 * c + 27.0 * p1 - 3.0 * p2) / 60.0;
    let vmp = c + minmod2(p1 - c, ALPHA * (c - m1));
    if (vor - c) * (vor - vmp) <= EPS {
        return vor;
    }
    // Curvatures at j-1, j, j+1.
    let dm = m2 + c - 2.0 * m1;
    let dc = m1 + p1 - 2.0 * c;
    let dp = c + p2 - 2.0 * p1;
    let dm4_p = minmod4(4.0 * dc - dp, 4.0 * dp - dc, dc, dp);
    let dm4_m = minmod4(4.0 * dm - dc, 4.0 * dc - dm, dm, dc);
    let vul = c + ALPHA * (c - m1);
    let vav = 0.5 * (c + p1);
    let vmd = vav - 0.5 * dm4_p;
    let vlc = c + 0.5 * (c - m1) + 4.0 / 3.0 * dm4_m;
    let vmin = (c.min(p1).min(vmd)).max(c.min(vul).min(vlc));
    let vmax = (c.max(p1).max(vmd)).min(c.max(vul).max(vlc));
    // Median of (vor, vmin, vmax).
    vor + minmod2(vmin - vor, vmax - vor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(recon: Recon, q: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let n = q.len();
        let g = recon.ghost();
        let mut ql = vec![0.0; n + 1];
        let mut qr = vec![0.0; n + 1];
        recon.pencil(q, g, n + 1 - g, &mut ql, &mut qr);
        (ql, qr)
    }

    #[test]
    fn constant_data_reproduced_exactly() {
        let q = vec![3.7; 16];
        for r in Recon::SWEEP {
            let (ql, qr) = run(r, &q);
            let g = r.ghost();
            for j in g..q.len() + 1 - g {
                assert!((ql[j] - 3.7).abs() < 1e-13, "{} ql[{j}]", r.name());
                assert!((qr[j] - 3.7).abs() < 1e-13, "{} qr[{j}]", r.name());
            }
        }
    }

    #[test]
    fn linear_data_exact_for_second_order_plus() {
        // q_i = 2i + 1 (cell averages of a linear function are its center
        // values); every scheme of order >= 2 must give the exact interface
        // value 2j (for interface j at position j-1/2 in cell units... the
        // interface between cells j-1 and j has exact value 2(j-1)+1+1 = 2j).
        let q: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 + 1.0).collect();
        for r in [
            Recon::Plm(Limiter::Minmod),
            Recon::Plm(Limiter::Mc),
            Recon::Plm(Limiter::VanLeer),
            Recon::Ppm,
            Recon::Ceno3,
            Recon::Mp5,
            Recon::Weno5,
        ] {
            let (ql, qr) = run(r, &q);
            let g = r.ghost();
            for j in g..q.len() + 1 - g {
                let exact = 2.0 * j as f64;
                assert!(
                    (ql[j] - exact).abs() < 1e-11,
                    "{} ql[{j}]={}",
                    r.name(),
                    ql[j]
                );
                assert!(
                    (qr[j] - exact).abs() < 1e-11,
                    "{} qr[{j}]={}",
                    r.name(),
                    qr[j]
                );
            }
        }
    }

    #[test]
    fn no_new_extrema_at_discontinuity() {
        // Step data: reconstructed states must stay within [min, max] of the
        // local stencil (no overshoot) for the TVD/monotonized schemes.
        let mut q = vec![0.0; 20];
        for v in q.iter_mut().skip(10) {
            *v = 1.0;
        }
        for r in [
            Recon::Pc,
            Recon::Plm(Limiter::Minmod),
            Recon::Plm(Limiter::Mc),
            Recon::Plm(Limiter::VanLeer),
            Recon::Ppm,
        ] {
            let (ql, qr) = run(r, &q);
            let g = r.ghost();
            for j in g..q.len() + 1 - g {
                for v in [ql[j], qr[j]] {
                    assert!(
                        (-1e-12..=1.0 + 1e-12).contains(&v),
                        "{} overshoot at {j}: {v}",
                        r.name()
                    );
                }
            }
        }
    }

    #[test]
    fn high_order_schemes_essentially_non_oscillatory() {
        // WENO/CENO/MP5 may overshoot slightly but must stay within a few
        // percent of the step's range.
        let mut q = vec![0.0; 20];
        for v in q.iter_mut().skip(10) {
            *v = 1.0;
        }
        for r in [Recon::Weno5, Recon::Ceno3, Recon::Mp5] {
            let (ql, qr) = run(r, &q);
            for j in 3..18 {
                for v in [ql[j], qr[j]] {
                    assert!(
                        (-0.05..=1.05).contains(&v),
                        "{} oscillation at {j}: {v}",
                        r.name()
                    );
                }
            }
        }
    }

    #[test]
    fn convergence_orders_on_smooth_data() {
        // Reconstruct cell averages of sin(x) and compare the interface
        // values to the exact point values; the L1 error must shrink at
        // (nearly) the scheme's design order. L1 is the standard metric
        // here: classic PPM monotonization clips smooth extrema, which
        // costs max-norm order at isolated points but not L1 order beyond
        // a fraction.
        let err_at = |r: Recon, n: usize| -> f64 {
            let h = 2.0 * std::f64::consts::PI / n as f64;
            // Exact cell averages: (cos(x_l) - cos(x_r)) / h.
            let q: Vec<f64> = (0..n)
                .map(|i| {
                    let xl = i as f64 * h;
                    ((xl).cos() - (xl + h).cos()) / h
                })
                .collect();
            let (ql, _qr) = run(r, &q);
            let g = r.ghost();
            let mut e = 0.0;
            for (j, l) in ql.iter().enumerate().take(n + 1 - g).skip(g) {
                let x = j as f64 * h; // interface position
                e += (l - x.sin()).abs();
            }
            e / (n + 1 - 2 * g) as f64
        };
        for (r, min_order) in [
            (Recon::Plm(Limiter::Mc), 1.9),
            (Recon::Ppm, 2.4),
            (Recon::Ceno3, 2.4),
            (Recon::Mp5, 4.0),
            (Recon::Weno5, 4.5),
        ] {
            let e1 = err_at(r, 64);
            let e2 = err_at(r, 128);
            let order = (e1 / e2).log2();
            assert!(
                order > min_order,
                "{}: measured order {order:.2} (e1={e1:.3e}, e2={e2:.3e})",
                r.name()
            );
        }
    }

    #[test]
    fn limiter_properties() {
        for lim in Limiter::ALL {
            // Zero at sign change.
            assert_eq!(lim.slope(1.0, -1.0), 0.0, "{}", lim.name());
            assert_eq!(lim.slope(-2.0, 3.0), 0.0, "{}", lim.name());
            // Symmetric.
            assert!(
                (lim.slope(1.0, 2.0) - lim.slope(2.0, 1.0)).abs() < 1e-14,
                "{}",
                lim.name()
            );
            // Between 0 and 2*min for same-signed inputs (TVD region).
            let s = lim.slope(1.0, 3.0);
            assert!(s > 0.0 && s <= 2.0, "{}: {s}", lim.name());
            // Exact for equal slopes (linear data).
            assert!((lim.slope(1.5, 1.5) - 1.5).abs() < 1e-14, "{}", lim.name());
        }
    }

    #[test]
    fn limiter_sharpness_ordering() {
        // On a smooth asymmetric stencil: minmod <= vanleer <= mc.
        let (a, b) = (1.0, 2.0);
        let m = Limiter::Minmod.slope(a, b);
        let v = Limiter::VanLeer.slope(a, b);
        let c = Limiter::Mc.slope(a, b);
        assert!(m <= v + 1e-14 && v <= c + 1e-14, "{m} {v} {c}");
    }

    #[test]
    fn single_interface_helper_matches_pencil() {
        let q: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        for r in Recon::SWEEP {
            let g = r.ghost();
            let (ql, qr) = run(r, &q);
            for j in g..q.len() + 1 - g {
                let (l, rr) = r.at(&q, j);
                assert_eq!(l, ql[j], "{} at {j}", r.name());
                assert_eq!(rr, qr[j], "{} at {j}", r.name());
            }
        }
    }

    #[test]
    fn ceno3_picks_central_candidate_on_smooth_data() {
        // On a smooth quadratic the convex-ENO value equals the central
        // (3rd-order) quadratic candidate.
        let q: Vec<f64> = (0..10).map(|i| 0.5 * (i as f64) * (i as f64)).collect();
        let v = super::ceno3_edge(q[1], q[2], q[3], q[4], q[5]);
        let central = (-q[2] + 5.0 * q[3] + 2.0 * q[4]) / 6.0;
        assert!((v - central).abs() < 1e-12, "{v} vs {central}");
    }

    #[test]
    fn mp5_unlimited_on_smooth_data() {
        // Smooth monotone data: MP5 returns the raw 5th-order value.
        let q: Vec<f64> = (0..10).map(|i| (i as f64 * 0.2).exp()).collect();
        let v = super::mp5_left(q[1], q[2], q[3], q[4], q[5]);
        let raw = (2.0 * q[1] - 13.0 * q[2] + 47.0 * q[3] + 27.0 * q[4] - 3.0 * q[5]) / 60.0;
        assert_eq!(v, raw);
    }

    #[test]
    fn mp5_clips_at_discontinuity() {
        // Downstream of a step the unlimited value overshoots; MP5 must
        // pull it into the monotone interval.
        let q = [0.0, 0.0, 0.0, 1.0, 1.0];
        let v = super::mp5_left(q[0], q[1], q[2], q[3], q[4]);
        assert!((0.0..=1.0).contains(&v), "mp5 value {v}");
    }

    #[test]
    fn minmod4_properties() {
        use super::minmod4;
        assert_eq!(minmod4(1.0, 2.0, 3.0, 4.0), 1.0);
        assert_eq!(minmod4(-1.0, -2.0, -3.0, -4.0), -1.0);
        assert_eq!(minmod4(1.0, -2.0, 3.0, 4.0), 0.0);
        assert_eq!(minmod4(1.0, 2.0, 3.0, -4.0), 0.0);
        assert_eq!(minmod4(0.0, 2.0, 3.0, 4.0), 0.0);
    }

    #[test]
    fn weno_weights_sum_via_smooth_limit() {
        // On perfectly smooth (quadratic) data WENO5 reproduces the 5th
        // order linear scheme; verify against the direct formula.
        let q: Vec<f64> = (0..10).map(|i| (i as f64) * (i as f64)).collect();
        let v = weno5_left(q[1], q[2], q[3], q[4], q[5]);
        let linear = (2.0 * q[1] - 13.0 * q[2] + 47.0 * q[3] + 27.0 * q[4] - 3.0 * q[5]) / 60.0;
        assert!((v - linear).abs() < 1e-9, "{v} vs {linear}");
    }
}
