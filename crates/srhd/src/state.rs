//! Primitive and conserved state vectors for SRHD.

use rhrsc_eos::Eos;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Number of evolved components: `(D, S_x, S_y, S_z, τ)`.
pub const NCOMP: usize = 5;

/// Coordinate direction of a flux or sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    X,
    Y,
    Z,
}

impl Dir {
    /// All three directions, in sweep order.
    pub const ALL: [Dir; 3] = [Dir::X, Dir::Y, Dir::Z];

    /// Index of the direction (0, 1, 2).
    #[inline]
    pub fn axis(self) -> usize {
        match self {
            Dir::X => 0,
            Dir::Y => 1,
            Dir::Z => 2,
        }
    }
}

/// Primitive (physical) variables of a relativistic perfect fluid element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prim {
    /// Rest-mass density `ρ > 0`.
    pub rho: f64,
    /// Coordinate three-velocity `v_i`, with `|v| < 1`.
    pub vel: [f64; 3],
    /// Pressure `p > 0`.
    pub p: f64,
}

impl Prim {
    /// A state at rest with the given density and pressure.
    #[inline]
    pub fn at_rest(rho: f64, p: f64) -> Self {
        Prim {
            rho,
            vel: [0.0; 3],
            p,
        }
    }

    /// A state with purely x-directed velocity (1D problems).
    #[inline]
    pub fn new_1d(rho: f64, vx: f64, p: f64) -> Self {
        Prim {
            rho,
            vel: [vx, 0.0, 0.0],
            p,
        }
    }

    /// Squared three-velocity `v² = v_i v^i`.
    #[inline]
    pub fn vsq(&self) -> f64 {
        let [vx, vy, vz] = self.vel;
        vx * vx + vy * vy + vz * vz
    }

    /// Lorentz factor `W = (1 − v²)^{-1/2}`.
    #[inline]
    pub fn lorentz(&self) -> f64 {
        1.0 / (1.0 - self.vsq()).sqrt()
    }

    /// Velocity component along `dir`.
    #[inline]
    pub fn vn(&self, dir: Dir) -> f64 {
        self.vel[dir.axis()]
    }

    /// Specific enthalpy under `eos`.
    #[inline]
    pub fn enthalpy(&self, eos: &Eos) -> f64 {
        eos.enthalpy(self.rho, self.p)
    }

    /// Local sound speed under `eos`.
    #[inline]
    pub fn sound_speed(&self, eos: &Eos) -> f64 {
        eos.sound_speed(self.rho, self.p)
    }

    /// Convert to conserved variables under `eos`.
    #[inline]
    pub fn to_cons(&self, eos: &Eos) -> Cons {
        let w = self.lorentz();
        let h = eos.enthalpy(self.rho, self.p);
        let rhw2 = self.rho * h * w * w;
        let d = self.rho * w;
        Cons {
            d,
            s: [rhw2 * self.vel[0], rhw2 * self.vel[1], rhw2 * self.vel[2]],
            tau: rhw2 - self.p - d,
        }
    }

    /// `true` when the state is physical: positive density and pressure,
    /// subluminal velocity, all components finite.
    #[inline]
    pub fn is_physical(&self) -> bool {
        self.rho > 0.0
            && self.p > 0.0
            && self.vsq() < 1.0
            && self.rho.is_finite()
            && self.p.is_finite()
            && self.vel.iter().all(|v| v.is_finite())
    }

    /// Lorentz-boost this state by velocity `vb` along `dir` (velocity
    /// addition). Used to construct ultrarelativistic variants of standard
    /// test problems. Thermodynamic scalars are frame-invariant.
    pub fn boosted(&self, vb: f64, dir: Dir) -> Prim {
        assert!(vb.abs() < 1.0, "boost velocity must be subluminal");
        let a = dir.axis();
        let wb = 1.0 / (1.0 - vb * vb).sqrt();
        let vn = self.vel[a];
        let denom = 1.0 + vn * vb;
        let mut vel = [0.0; 3];
        // Relativistic velocity addition: parallel component composes,
        // transverse components pick up a 1/W_b time-dilation factor.
        for (i, v) in vel.iter_mut().enumerate() {
            *v = if i == a {
                (vn + vb) / denom
            } else {
                self.vel[i] / (wb * denom)
            };
        }
        Prim {
            rho: self.rho,
            vel,
            p: self.p,
        }
    }
}

/// Conserved variables `(D, S_i, τ)`. Also used to represent fluxes and
/// Runge–Kutta residuals, which live in the same 5-vector space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cons {
    /// Conserved rest-mass density `D = ρW`.
    pub d: f64,
    /// Momentum density `S_i = ρ h W² v_i`.
    pub s: [f64; 3],
    /// Energy density `τ = ρ h W² − p − D`.
    pub tau: f64,
}

impl Cons {
    /// The zero vector.
    pub const ZERO: Cons = Cons {
        d: 0.0,
        s: [0.0; 3],
        tau: 0.0,
    };

    /// Build from a component array `[D, Sx, Sy, Sz, τ]`.
    #[inline]
    pub fn from_array(a: [f64; NCOMP]) -> Self {
        Cons {
            d: a[0],
            s: [a[1], a[2], a[3]],
            tau: a[4],
        }
    }

    /// View as a component array `[D, Sx, Sy, Sz, τ]`.
    #[inline]
    pub fn to_array(self) -> [f64; NCOMP] {
        [self.d, self.s[0], self.s[1], self.s[2], self.tau]
    }

    /// Momentum component along `dir`.
    #[inline]
    pub fn sn(&self, dir: Dir) -> f64 {
        self.s[dir.axis()]
    }

    /// Squared momentum magnitude `S² = S_i S^i`.
    #[inline]
    pub fn ssq(&self) -> f64 {
        let [sx, sy, sz] = self.s;
        sx * sx + sy * sy + sz * sz
    }

    /// Max-norm over the five components (used in convergence tests).
    #[inline]
    pub fn max_norm(&self) -> f64 {
        self.to_array().iter().fold(0.0f64, |m, c| m.max(c.abs()))
    }

    /// `true` when all components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.to_array().iter().all(|c| c.is_finite())
    }
}

impl Add for Cons {
    type Output = Cons;
    #[inline]
    fn add(self, o: Cons) -> Cons {
        Cons {
            d: self.d + o.d,
            s: [self.s[0] + o.s[0], self.s[1] + o.s[1], self.s[2] + o.s[2]],
            tau: self.tau + o.tau,
        }
    }
}

impl Sub for Cons {
    type Output = Cons;
    #[inline]
    fn sub(self, o: Cons) -> Cons {
        Cons {
            d: self.d - o.d,
            s: [self.s[0] - o.s[0], self.s[1] - o.s[1], self.s[2] - o.s[2]],
            tau: self.tau - o.tau,
        }
    }
}

impl Mul<f64> for Cons {
    type Output = Cons;
    #[inline]
    fn mul(self, k: f64) -> Cons {
        Cons {
            d: self.d * k,
            s: [self.s[0] * k, self.s[1] * k, self.s[2] * k],
            tau: self.tau * k,
        }
    }
}

impl Neg for Cons {
    type Output = Cons;
    #[inline]
    fn neg(self) -> Cons {
        self * -1.0
    }
}

impl AddAssign for Cons {
    #[inline]
    fn add_assign(&mut self, o: Cons) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorentz_factor_values() {
        assert!((Prim::at_rest(1.0, 1.0).lorentz() - 1.0).abs() < 1e-15);
        let p = Prim::new_1d(1.0, 0.6, 1.0);
        assert!((p.lorentz() - 1.25).abs() < 1e-14);
    }

    #[test]
    fn prim_to_cons_at_rest() {
        let eos = Eos::ideal(5.0 / 3.0);
        let prim = Prim::at_rest(2.0, 3.0);
        let u = prim.to_cons(&eos);
        assert!((u.d - 2.0).abs() < 1e-15);
        assert_eq!(u.s, [0.0; 3]);
        // τ = ρh − p − ρ = ρ(1+ε) − ρ = ρε  at rest.
        let eps = eos.eps(2.0, 3.0);
        assert!((u.tau - 2.0 * eps).abs() < 1e-13, "tau={}", u.tau);
    }

    #[test]
    fn cons_algebra() {
        let a = Cons::from_array([1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Cons::from_array([0.5, 0.5, 0.5, 0.5, 0.5]);
        let c = a + b * 2.0 - a;
        assert_eq!(c.to_array(), [1.0, 1.0, 1.0, 1.0, 1.0]);
        assert_eq!((-b).d, -0.5);
        assert_eq!(a.max_norm(), 5.0);
    }

    #[test]
    fn array_roundtrip() {
        let a = [0.1, -0.2, 0.3, -0.4, 0.5];
        assert_eq!(Cons::from_array(a).to_array(), a);
    }

    #[test]
    fn boost_composes_velocities() {
        let p = Prim::new_1d(1.0, 0.5, 1.0);
        let b = p.boosted(0.5, Dir::X);
        assert!((b.vel[0] - 0.8).abs() < 1e-14); // (0.5+0.5)/(1+0.25)
        assert_eq!(b.rho, 1.0);
        assert_eq!(b.p, 1.0);
    }

    #[test]
    fn boost_transverse_velocity() {
        let p = Prim {
            rho: 1.0,
            vel: [0.0, 0.6, 0.0],
            p: 1.0,
        };
        let b = p.boosted(0.8, Dir::X);
        let wb = 1.0 / (1.0 - 0.64f64).sqrt();
        assert!((b.vel[0] - 0.8).abs() < 1e-14);
        assert!((b.vel[1] - 0.6 / wb).abs() < 1e-14);
        assert!(b.vsq() < 1.0);
    }

    #[test]
    fn boost_keeps_subluminal_even_when_fast() {
        let p = Prim::new_1d(1.0, 0.999, 1.0);
        let b = p.boosted(0.999, Dir::X);
        assert!(b.vel[0] < 1.0 && b.is_physical());
    }

    #[test]
    fn physicality_checks() {
        assert!(Prim::new_1d(1.0, 0.5, 1.0).is_physical());
        assert!(!Prim::new_1d(-1.0, 0.5, 1.0).is_physical());
        assert!(!Prim::new_1d(1.0, 1.5, 1.0).is_physical());
        assert!(!Prim::new_1d(1.0, 0.5, f64::NAN).is_physical());
    }

    #[test]
    fn dir_axis() {
        assert_eq!(Dir::X.axis(), 0);
        assert_eq!(Dir::Y.axis(), 1);
        assert_eq!(Dir::Z.axis(), 2);
        let p = Prim {
            rho: 1.0,
            vel: [0.1, 0.2, 0.3],
            p: 1.0,
        };
        assert_eq!(p.vn(Dir::Y), 0.2);
        let u = p.to_cons(&Eos::ideal(1.4));
        assert_eq!(u.sn(Dir::Z), u.s[2]);
    }
}
