//! Special-relativistic hydrodynamics (SRHD) physics core.
//!
//! This crate implements the building blocks of a high-resolution
//! shock-capturing (HRSC) solver for the equations of special-relativistic
//! hydrodynamics in conservation form (Valencia formulation, flat spacetime,
//! units with `c = 1`):
//!
//! ```text
//! ∂t U + ∂k F^k(U) = 0,      U = (D, S_x, S_y, S_z, τ)
//!
//! D   = ρ W                  (conserved rest-mass density)
//! S_i = ρ h W² v_i           (momentum density)
//! τ   = ρ h W² − p − D       (energy density minus D)
//! ```
//!
//! with `W = (1 − v²)^{-1/2}` the Lorentz factor and `h` the specific
//! enthalpy given by an equation of state from [`rhrsc_eos`].
//!
//! Modules:
//! * [`state`] — primitive/conserved state vectors and conversions,
//! * [`flux`] — physical fluxes and characteristic (signal) speeds,
//! * [`con2prim`] — robust conservative → primitive recovery,
//! * [`riemann`] — exact (Martí–Müller) and approximate (HLL, HLLC,
//!   Rusanov) Riemann solvers,
//! * [`recon`] — piecewise-constant, piecewise-linear (TVD limiters), PPM
//!   and WENO5 reconstruction.

pub mod con2prim;
pub mod flux;
pub mod recon;
pub mod riemann;
pub mod state;

pub use con2prim::{cons_to_prim, cons_to_prim_counted, Con2PrimError, Con2PrimParams};
pub use state::{Cons, Dir, Prim, NCOMP};

/// Re-export of the EOS crate for convenience.
pub use rhrsc_eos::Eos;
