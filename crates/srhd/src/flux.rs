//! Physical fluxes and characteristic (signal) speeds of the SRHD system.

use crate::state::{Cons, Dir, Prim};
use rhrsc_eos::Eos;

/// Physical flux `F^n(U)` of the SRHD system along direction `dir`:
///
/// ```text
/// F_D   = D v_n
/// F_S_i = S_i v_n + p δ_{i n}
/// F_τ   = (τ + p) v_n = S_n − D v_n
/// ```
#[inline]
pub fn physical_flux(eos: &Eos, prim: &Prim, dir: Dir) -> Cons {
    let u = prim.to_cons(eos);
    physical_flux_from(prim, &u, dir)
}

/// Same as [`physical_flux`] but reusing an already-computed conserved state
/// (hot path inside the Riemann solvers).
#[inline]
pub fn physical_flux_from(prim: &Prim, u: &Cons, dir: Dir) -> Cons {
    let n = dir.axis();
    let vn = prim.vel[n];
    let mut s = [u.s[0] * vn, u.s[1] * vn, u.s[2] * vn];
    s[n] += prim.p;
    Cons {
        d: u.d * vn,
        s,
        tau: (u.tau + prim.p) * vn,
    }
}

/// Smallest and largest characteristic speeds (acoustic eigenvalues) of the
/// flux Jacobian along `dir`:
///
/// ```text
/// λ± = [ v_n (1−cs²) ± cs sqrt( (1−v²) (1−v²cs² − v_n²(1−cs²)) ) ] / (1−v²cs²)
/// ```
///
/// The middle eigenvalue (triple, material) is `λ0 = v_n`. All eigenvalues
/// are bounded by the speed of light in magnitude.
#[inline]
pub fn signal_speeds(eos: &Eos, prim: &Prim, dir: Dir) -> (f64, f64) {
    let cs2 = eos.sound_speed_sq(prim.rho, prim.p).clamp(0.0, 1.0 - 1e-15);
    let v2 = prim.vsq();
    let vn = prim.vn(dir);
    let den = 1.0 - v2 * cs2;
    // Discriminant can go slightly negative from round-off when |v| -> 1.
    let disc = ((1.0 - v2) * (1.0 - v2 * cs2 - vn * vn * (1.0 - cs2))).max(0.0);
    let root = disc.sqrt();
    let cs = cs2.sqrt();
    let lm = (vn * (1.0 - cs2) - cs * root) / den;
    let lp = (vn * (1.0 - cs2) + cs * root) / den;
    (lm.clamp(-1.0, 1.0), lp.clamp(-1.0, 1.0))
}

/// Largest absolute characteristic speed over all directions; used for the
/// CFL condition.
#[inline]
pub fn max_signal_speed(eos: &Eos, prim: &Prim) -> f64 {
    let mut m = 0.0f64;
    for dir in Dir::ALL {
        let (lm, lp) = signal_speeds(eos, prim, dir);
        m = m.max(lm.abs()).max(lp.abs());
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eos() -> Eos {
        Eos::ideal(5.0 / 3.0)
    }

    #[test]
    fn flux_at_rest_is_pressure_only() {
        let p = Prim::at_rest(1.0, 2.5);
        let f = physical_flux(&eos(), &p, Dir::X);
        assert_eq!(f.d, 0.0);
        assert_eq!(f.s, [2.5, 0.0, 0.0]);
        assert_eq!(f.tau, 0.0);
    }

    #[test]
    fn flux_tau_identity() {
        // F_τ = (τ+p) v_n must equal S_n − D v_n analytically.
        let eos = eos();
        let prim = Prim {
            rho: 1.3,
            vel: [0.4, -0.2, 0.1],
            p: 0.7,
        };
        let u = prim.to_cons(&eos);
        for dir in Dir::ALL {
            let f = physical_flux(&eos, &prim, dir);
            let alt = u.sn(dir) - u.d * prim.vn(dir);
            assert!((f.tau - alt).abs() < 1e-13, "{dir:?}: {} vs {alt}", f.tau);
        }
    }

    #[test]
    fn signal_speeds_at_rest_are_plus_minus_cs() {
        let eos = eos();
        let p = Prim::at_rest(1.0, 1.0);
        let cs = p.sound_speed(&eos);
        let (lm, lp) = signal_speeds(&eos, &p, Dir::X);
        assert!((lp - cs).abs() < 1e-14);
        assert!((lm + cs).abs() < 1e-14);
    }

    #[test]
    fn signal_speeds_ordered_and_subluminal() {
        let eos = eos();
        for &vx in &[-0.99, -0.5, 0.0, 0.5, 0.99] {
            for &vy in &[0.0, 0.09] {
                let p = Prim {
                    rho: 1.0,
                    vel: [vx, vy, 0.0],
                    p: 10.0,
                };
                for dir in Dir::ALL {
                    let (lm, lp) = signal_speeds(&eos, &p, dir);
                    let vn = p.vn(dir);
                    assert!(lm <= vn + 1e-14 && vn <= lp + 1e-14, "ordering at v={vx}");
                    assert!(lm >= -1.0 && lp <= 1.0, "causality at v={vx}");
                }
            }
        }
    }

    #[test]
    fn relativistic_velocity_addition_limit() {
        // For v ≫ cs transversally nothing exceeds light speed.
        let eos = eos();
        let p = Prim {
            rho: 1.0,
            vel: [0.0, 0.995, 0.0],
            p: 100.0,
        };
        let (lm, lp) = signal_speeds(&eos, &p, Dir::X);
        assert!(lp < 1.0 && lm > -1.0);
        // Aberration shrinks the transverse sound cone.
        let cs = p.sound_speed(&eos);
        assert!(lp < cs);
    }

    #[test]
    fn max_signal_speed_dominates_each_direction() {
        let eos = eos();
        let p = Prim {
            rho: 0.8,
            vel: [0.3, -0.6, 0.2],
            p: 1.7,
        };
        let m = max_signal_speed(&eos, &p);
        for dir in Dir::ALL {
            let (lm, lp) = signal_speeds(&eos, &p, dir);
            assert!(m >= lp.abs() - 1e-15 && m >= lm.abs() - 1e-15);
        }
        assert!(m <= 1.0);
    }

    #[test]
    fn flux_consistency_with_galilean_like_limit() {
        // For small v and small p/rho the flux approaches the Newtonian one.
        let eos = eos();
        let prim = Prim::new_1d(1.0, 1e-4, 1e-6);
        let f = physical_flux(&eos, &prim, Dir::X);
        // F_D ≈ ρ v
        assert!((f.d - 1e-4).abs() < 1e-9);
        // F_Sx ≈ ρv² + p
        assert!((f.s[0] - (1e-8 + 1e-6)).abs() < 1e-10);
    }
}
