//! HLLC approximate Riemann solver for SRHD (Mignone & Bodo 2005).
//!
//! HLL collapses the Riemann fan to two waves and therefore smears contact
//! discontinuities. HLLC restores the middle (contact) wave: the contact
//! speed `λ*` is the physically admissible root of a quadratic built from
//! the HLL fan average, and the star states on each side follow from the
//! Rankine–Hugoniot conditions across the outer waves.
//!
//! Internally the solver works with the *total* energy `E = τ + D`, for
//! which the SRHD fluxes take the compact form `F_E = S_n` and
//! `F_{S_n} = S_n v_n + p`.

use super::davis_speeds;
use super::hll::{hll_flux_from, hll_state};
use crate::flux::physical_flux_from;
use crate::state::{Cons, Dir, Prim};
use rhrsc_eos::Eos;

/// HLLC flux along `dir`.
#[inline]
pub fn hllc_flux(eos: &Eos, left: &Prim, right: &Prim, dir: Dir) -> Cons {
    let (lam_l, lam_r) = davis_speeds(eos, left, right, dir);
    let u_l = left.to_cons(eos);
    let u_r = right.to_cons(eos);
    let f_l = physical_flux_from(left, &u_l, dir);
    let f_r = physical_flux_from(right, &u_r, dir);

    // Supersonic cases: pure upwinding.
    if lam_l >= 0.0 {
        return f_l;
    }
    if lam_r <= 0.0 {
        return f_r;
    }

    let n = dir.axis();

    // Contact speed from the HLL fan average. With E = τ + D:
    //   F_E^hll λ*² − (E^hll + F_m^hll) λ* + m^hll = 0
    // where m = S_n. Take the root with |λ*| ≤ 1 (the "minus" root).
    let fan_u = hll_state(&u_l, &u_r, &f_l, &f_r, lam_l, lam_r);
    let fan_f = hll_flux_from(&u_l, &u_r, &f_l, &f_r, lam_l, lam_r);
    let e_hll = fan_u.tau + fan_u.d;
    let m_hll = fan_u.s[n];
    let fe_hll = fan_f.tau + fan_f.d; // = F_E of the fan
    let fm_hll = fan_f.s[n];

    let b = -(e_hll + fm_hll);
    let lam_star = if fe_hll.abs() < 1e-12 * (e_hll.abs() + fm_hll.abs()).max(1e-300) {
        // Quadratic degenerates to linear.
        -m_hll / b
    } else {
        let disc = (b * b - 4.0 * fe_hll * m_hll).max(0.0);
        // Numerically stable "minus" root via the q-formula.
        let q = -0.5 * (b - b.signum() * disc.sqrt());
        // The two roots are q/a and c/q; the admissible one lies in (λL, λR).
        let r1 = q / fe_hll;
        let r2 = m_hll / q;
        if r1 > lam_l && r1 < lam_r {
            r1
        } else {
            r2
        }
    };
    let lam_star = lam_star.clamp(lam_l, lam_r);

    // Star state on the side containing the interface (ξ = 0).
    let (prim, u, f, lam) = if lam_star >= 0.0 {
        (left, &u_l, &f_l, lam_l)
    } else {
        (right, &u_r, &f_r, lam_r)
    };

    let e = u.tau + u.d;
    let m = u.s[n];
    let vn = prim.vel[n];
    // Mignone & Bodo (2005): with A = λE − m and B = m(λ − v_n) − p,
    //   p* = (A λ* − B) / (1 − λ λ*)
    let a_coef = lam * e - m;
    let b_coef = m * (lam - vn) - prim.p;
    let p_star = (a_coef * lam_star - b_coef) / (1.0 - lam * lam_star);
    let p_star = p_star.max(0.0);

    // Jump conditions across the outer wave.
    let k = (lam - vn) / (lam - lam_star);
    let e_star = (lam * e - m + p_star * lam_star) / (lam - lam_star);
    let m_star = (e_star + p_star) * lam_star;
    let d_star = u.d * k;
    let mut s_star = [u.s[0] * k, u.s[1] * k, u.s[2] * k];
    s_star[n] = m_star;
    let u_star = Cons {
        d: d_star,
        s: s_star,
        tau: e_star - d_star,
    };

    // F* = F + λ (U* − U).
    *f + (u_star - *u) * lam
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flux::physical_flux;
    use crate::riemann::{hll_flux, RiemannSolver};

    fn eos() -> Eos {
        Eos::ideal(5.0 / 3.0)
    }

    #[test]
    fn moving_contact_is_exact() {
        // Isolated contact moving at v: HLLC must return the exact upwind
        // flux of the contact (HLL cannot).
        let eos = eos();
        for &v in &[0.2, -0.35, 0.8] {
            let l = Prim::new_1d(1.0, v, 1.5);
            let r = Prim::new_1d(0.05, v, 1.5);
            let f = hllc_flux(&eos, &l, &r, Dir::X);
            let upwind = if v > 0.0 { &l } else { &r };
            let expected = physical_flux(&eos, upwind, Dir::X);
            assert!(
                (f - expected).max_norm() < 1e-11,
                "v={v}: {:?} vs {:?}",
                f.to_array(),
                expected.to_array()
            );
        }
    }

    #[test]
    fn contact_with_tangential_jump() {
        // Tangential velocity jumps ride on the contact; HLLC keeps them
        // sharp when p and v_n match (note: for *nonzero* v_n with
        // tangential jumps the MB05 HLLC is exact only when the tangential
        // momentum scales with D, which holds per-side here).
        let eos = eos();
        let l = Prim {
            rho: 1.0,
            vel: [0.0, 0.3, 0.0],
            p: 1.0,
        };
        let r = Prim {
            rho: 1.0,
            vel: [0.0, -0.7, 0.0],
            p: 1.0,
        };
        let f = hllc_flux(&eos, &l, &r, Dir::X);
        // Stationary contact: no mass or energy flux through the interface.
        assert!(f.d.abs() < 1e-12, "D flux {}", f.d);
        assert!(f.tau.abs() < 1e-12, "tau flux {}", f.tau);
        assert!((f.s[0] - 1.0).abs() < 1e-12, "normal momentum flux");
    }

    #[test]
    fn pressure_star_positive_for_strong_shocks() {
        let eos = eos();
        let l = Prim::new_1d(10.0, 0.0, 1000.0);
        let r = Prim::new_1d(1.0, 0.0, 1e-8);
        let f = hllc_flux(&eos, &l, &r, Dir::X);
        assert!(f.is_finite());
        // Mass must flow left-to-right through x=0 once the shock passes.
        assert!(f.d > 0.0);
    }

    #[test]
    fn agrees_with_hll_inside_rarefaction_tolerance() {
        // HLLC and HLL differ only by contact restoration; for a symmetric
        // double-rarefaction (no contact jump) they should be close.
        let eos = eos();
        let l = Prim::new_1d(1.0, -0.3, 1.0);
        let r = Prim::new_1d(1.0, 0.3, 1.0);
        let fc = hllc_flux(&eos, &l, &r, Dir::X);
        let fh = hll_flux(&eos, &l, &r, Dir::X);
        assert!((fc.d - fh.d).abs() < 0.05, "{} vs {}", fc.d, fh.d);
    }

    #[test]
    fn works_in_all_directions() {
        let eos = eos();
        for dir in Dir::ALL {
            let mut vl = [0.0; 3];
            let mut vr = [0.0; 3];
            vl[dir.axis()] = 0.4;
            vr[dir.axis()] = -0.1;
            let l = Prim {
                rho: 1.0,
                vel: vl,
                p: 1.0,
            };
            let r = Prim {
                rho: 0.3,
                vel: vr,
                p: 0.2,
            };
            let f = RiemannSolver::Hllc.flux(&eos, &l, &r, dir);
            assert!(f.is_finite(), "{dir:?}");
            // Mirror of the X test: tangential momentum fluxes vanish when
            // tangential velocities are zero.
            for i in 0..3 {
                if i != dir.axis() {
                    assert!(f.s[i].abs() < 1e-14, "{dir:?} s[{i}]={}", f.s[i]);
                }
            }
        }
    }

    #[test]
    fn ultrarelativistic_shock_tube_finite() {
        let eos = eos();
        let l = Prim::new_1d(1.0, 0.0, 1e4);
        let r = Prim::new_1d(1.0, 0.0, 1e-8);
        let f = hllc_flux(&eos, &l, &r, Dir::X);
        assert!(f.is_finite());
    }
}
