//! Exact Riemann solver for 1D ideal-gas SRHD (Martí & Müller 1994).
//!
//! Solves the full nonlinear Riemann problem for two constant states
//! separated by a membrane, for the constant-Γ ideal gas with velocity
//! purely normal to the interface. The solution consists of a left-going
//! wave (shock or rarefaction), a contact discontinuity, and a right-going
//! wave, separated by two constant "star" states sharing pressure `p*` and
//! velocity `v*`.
//!
//! * Shocks use the relativistic Rankine–Hugoniot conditions through the
//!   Taub adiabat (which for the ideal gas reduces to a quadratic in the
//!   post-shock enthalpy).
//! * Rarefactions use the relativistic Riemann invariant
//!   `½ ln((1+v)/(1−v)) ∓ ∫ cs/(ρ... )` which for the ideal gas integrates
//!   in closed form.
//!
//! The solution is self-similar in `ξ = x/t` and can be sampled anywhere,
//! including inside rarefaction fans. This module is the ground truth for
//! the shock-capturing validation experiments (T2, F1, F2) and for the L1
//! convergence measurements.

use crate::state::Prim;
use rhrsc_eos::Eos;

/// Which nonlinear wave connects a side state to the star region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaveKind {
    Shock,
    Rarefaction,
}

/// One side's wave data.
#[derive(Debug, Clone, Copy)]
pub struct Wave {
    pub kind: WaveKind,
    /// For a shock: the shock speed. For a rarefaction: the head speed
    /// (edge adjacent to the undisturbed state).
    pub head: f64,
    /// For a shock: equal to `head`. For a rarefaction: the tail speed
    /// (edge adjacent to the star state).
    pub tail: f64,
}

/// Errors from the exact solver.
#[derive(Debug, Clone, PartialEq)]
pub enum ExactError {
    /// The initial states would generate a vacuum region (two rarefactions
    /// strong enough that the star pressure drops to zero).
    VacuumGenerated,
    /// Root bracketing for `p*` failed (unphysical inputs).
    NoBracket,
    /// Input states are unphysical.
    BadInput(&'static str),
}

impl std::fmt::Display for ExactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExactError::VacuumGenerated => write!(f, "vacuum generated between rarefactions"),
            ExactError::NoBracket => write!(f, "failed to bracket the star pressure"),
            ExactError::BadInput(m) => write!(f, "bad input: {m}"),
        }
    }
}

impl std::error::Error for ExactError {}

/// The solved Riemann problem; sample with [`ExactRiemann::sample`].
#[derive(Debug, Clone)]
pub struct ExactRiemann {
    gamma: f64,
    left: SideState,
    right: SideState,
    /// Star-region pressure.
    pub p_star: f64,
    /// Star-region (contact) velocity.
    pub v_star: f64,
    /// Density on the left side of the contact.
    pub rho_star_l: f64,
    /// Density on the right side of the contact.
    pub rho_star_r: f64,
    /// Left wave description.
    pub left_wave: Wave,
    /// Right wave description.
    pub right_wave: Wave,
}

#[derive(Debug, Clone, Copy)]
struct SideState {
    rho: f64,
    v: f64,
    p: f64,
    h: f64,
    cs: f64,
    w: f64,
}

impl SideState {
    fn new(prim: &Prim, gamma: f64) -> Result<Self, ExactError> {
        let eos = Eos::IdealGas { gamma };
        if !(prim.rho > 0.0 && prim.p > 0.0) {
            return Err(ExactError::BadInput("non-positive rho or p"));
        }
        if prim.vel[1] != 0.0 || prim.vel[2] != 0.0 {
            return Err(ExactError::BadInput(
                "exact solver requires purely normal velocity",
            ));
        }
        if prim.vel[0].abs() >= 1.0 {
            return Err(ExactError::BadInput("superluminal input"));
        }
        Ok(SideState {
            rho: prim.rho,
            v: prim.vel[0],
            p: prim.p,
            h: eos.enthalpy(prim.rho, prim.p),
            cs: eos.sound_speed(prim.rho, prim.p),
            w: prim.lorentz(),
        })
    }
}

/// Result of connecting a side state to pressure `p` through its wave:
/// flow velocity and density immediately behind the wave, and the wave
/// geometry.
struct Behind {
    v: f64,
    rho: f64,
    wave: Wave,
}

/// Post-shock enthalpy from the Taub adiabat for the ideal gas. With
/// `A = (γ−1)(p − p_a)/(γ p)` and `B = h_a² + (p − p_a) h_a / ρ_a`, the
/// adiabat reads `(1 − A) h² + A h − B = 0`.
fn taub_enthalpy(gamma: f64, p: f64, a: &SideState) -> f64 {
    let ca = (gamma - 1.0) * (p - a.p) / (gamma * p);
    let cb = a.h * a.h + (p - a.p) * a.h / a.rho;
    let one_m = 1.0 - ca;
    // Positive root of the quadratic (reduces to h_a when p = p_a).
    (-ca + (ca * ca + 4.0 * one_m * cb).sqrt()) / (2.0 * one_m)
}

/// Connect state `a` through a *shock* to pressure `p > p_a`.
/// `s = -1` for the left (1-) wave, `+1` for the right (3-) wave.
fn shock_behind(gamma: f64, p: f64, a: &SideState, s: f64) -> Behind {
    // Degenerate (vanishing-amplitude) shock: the Rankine–Hugoniot mass
    // flux j -> 0/0 as p -> p_a, so return the acoustic limit directly.
    if p - a.p <= 1e-12 * a.p {
        let v_s = acoustic_speed(a.v, a.cs, s);
        return Behind {
            v: a.v,
            rho: a.rho,
            wave: Wave {
                kind: WaveKind::Shock,
                head: v_s,
                tail: v_s,
            },
        };
    }
    let h_b = taub_enthalpy(gamma, p, a);
    let rho_b = gamma * p / ((gamma - 1.0) * (h_b - 1.0));
    // Invariant mass flux across the shock (Martí & Müller Living Review):
    //   j² = (p − p_a) / (h_a/ρ_a − h_b/ρ_b)
    let denom = a.h / a.rho - h_b / rho_b;
    let j = ((p - a.p) / denom).max(0.0).sqrt();
    // Shock velocity.
    let rw2 = a.rho * a.rho * a.w * a.w;
    let v_s =
        (rw2 * a.v + s * j * j * (1.0 + rw2 * (1.0 - a.v * a.v) / (j * j)).sqrt()) / (rw2 + j * j);
    let v_s = v_s.clamp(-1.0 + 1e-15, 1.0 - 1e-15);
    let w_s = 1.0 / (1.0 - v_s * v_s).sqrt();
    // Post-shock flow velocity (signed mass flux j_s = s·j).
    let js = s * j;
    let dp = p - a.p;
    let v_b = (a.h * a.w * a.v + w_s * dp / js)
        / (a.h * a.w + dp * (w_s * a.v / js + 1.0 / (a.rho * a.w)));
    Behind {
        v: v_b,
        rho: rho_b,
        wave: Wave {
            kind: WaveKind::Shock,
            head: v_s,
            tail: v_s,
        },
    }
}

/// Relativistic characteristic speed `(v ∓ c)/(1 ∓ v c)`; `s = -1` gives the
/// left-going acoustic speed, `s = +1` the right-going one.
#[inline]
fn acoustic_speed(v: f64, c: f64, s: f64) -> f64 {
    (v + s * c) / (1.0 + s * v * c)
}

/// Sound speed on the isentrope through `a` at pressure `p` (ideal gas).
fn isentrope_cs(gamma: f64, p: f64, a: &SideState) -> (f64, f64) {
    let rho = a.rho * (p / a.p).powf(1.0 / gamma);
    let eos = Eos::IdealGas { gamma };
    (rho, eos.sound_speed(rho, p))
}

/// Velocity behind a *rarefaction* connecting state `a` to pressure
/// `p < p_a`, via the closed-form ideal-gas Riemann invariant
/// (Martí & Müller Living Review, eq. 82):
///
/// ```text
/// A(p) = [ (√(γ−1) + c_a)(√(γ−1) − c) / ((√(γ−1) − c_a)(√(γ−1) + c)) ]^(−s·2/√(γ−1))
/// v_b  = ((1 + v_a) A − (1 − v_a)) / ((1 + v_a) A + (1 − v_a))
/// ```
fn raref_behind(gamma: f64, p: f64, a: &SideState, s: f64) -> Behind {
    let k = (gamma - 1.0).sqrt();
    let (rho_b, c_b) = isentrope_cs(gamma, p, a);
    let ratio = ((k + a.cs) * (k - c_b)) / ((k - a.cs) * (k + c_b));
    let aa = ratio.powf(-s * 2.0 / k);
    let v_b = ((1.0 + a.v) * aa - (1.0 - a.v)) / ((1.0 + a.v) * aa + (1.0 - a.v));
    let head = acoustic_speed(a.v, a.cs, s);
    let tail = acoustic_speed(v_b, c_b, s);
    Behind {
        v: v_b,
        rho: rho_b,
        wave: Wave {
            kind: WaveKind::Rarefaction,
            head,
            tail,
        },
    }
}

/// Connect side `a` to pressure `p` through the appropriate wave.
fn behind(gamma: f64, p: f64, a: &SideState, s: f64) -> Behind {
    if p > a.p {
        shock_behind(gamma, p, a, s)
    } else {
        raref_behind(gamma, p, a, s)
    }
}

impl ExactRiemann {
    /// Solve the Riemann problem between `left` and `right` for the
    /// ideal-gas EOS with adiabatic index `gamma`.
    pub fn solve(left: &Prim, right: &Prim, gamma: f64) -> Result<Self, ExactError> {
        let l = SideState::new(left, gamma)?;
        let r = SideState::new(right, gamma)?;

        // Φ(p) = v_behind_left(p) − v_behind_right(p) is strictly
        // decreasing; its root is p*.
        let phi = |p: f64| behind(gamma, p, &l, -1.0).v - behind(gamma, p, &r, 1.0).v;

        // Vacuum check: even at (numerically) zero pressure the two fans
        // fail to meet.
        let p_tiny = 1e-14 * l.p.min(r.p);
        if phi(p_tiny) < 0.0 {
            return Err(ExactError::VacuumGenerated);
        }

        // Bracket: expand upward until Φ < 0.
        let mut lo = p_tiny;
        let mut hi = 2.0 * l.p.max(r.p);
        let mut tries = 0;
        while phi(hi) > 0.0 {
            hi *= 8.0;
            tries += 1;
            if tries > 200 || !hi.is_finite() {
                return Err(ExactError::NoBracket);
            }
        }

        // Bisection to machine precision (Φ is cheap; ~120 iterations).
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            if phi(mid) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p_star = 0.5 * (lo + hi);
        let bl = behind(gamma, p_star, &l, -1.0);
        let br = behind(gamma, p_star, &r, 1.0);
        let v_star = 0.5 * (bl.v + br.v);

        Ok(ExactRiemann {
            gamma,
            left: l,
            right: r,
            p_star,
            v_star,
            rho_star_l: bl.rho,
            rho_star_r: br.rho,
            left_wave: bl.wave,
            right_wave: br.wave,
        })
    }

    /// Sample the self-similar solution at `ξ = x/t` (with the membrane at
    /// `x = 0`, `t > 0`).
    pub fn sample(&self, xi: f64) -> Prim {
        if xi < self.left_wave.head {
            return Prim::new_1d(self.left.rho, self.left.v, self.left.p);
        }
        if xi > self.right_wave.head.max(self.right_wave.tail) {
            return Prim::new_1d(self.right.rho, self.right.v, self.right.p);
        }
        // Inside the left fan?
        if self.left_wave.kind == WaveKind::Rarefaction && xi < self.left_wave.tail {
            return self.sample_fan(xi, true);
        }
        // Inside the right fan?
        if self.right_wave.kind == WaveKind::Rarefaction && xi > self.right_wave.tail {
            return self.sample_fan(xi, false);
        }
        if xi < self.v_star {
            Prim::new_1d(self.rho_star_l, self.v_star, self.p_star)
        } else {
            Prim::new_1d(self.rho_star_r, self.v_star, self.p_star)
        }
    }

    /// Sample inside a rarefaction fan by root-solving for the pressure at
    /// which the local acoustic characteristic equals ξ.
    fn sample_fan(&self, xi: f64, left_fan: bool) -> Prim {
        let (a, s) = if left_fan {
            (&self.left, -1.0)
        } else {
            (&self.right, 1.0)
        };
        // λ(p) = acoustic speed behind the partial fan; monotone in p.
        let lam = |p: f64| {
            let b = raref_behind(self.gamma, p, a, s);
            let (_, c) = isentrope_cs(self.gamma, p, a);
            acoustic_speed(b.v, c, s)
        };
        let (mut lo, mut hi) = (self.p_star.min(a.p), a.p.max(self.p_star));
        // λ is increasing in p for the left fan (tail has lower p, lower λ)
        // — determine orientation from the endpoints for robustness.
        let (l_lo, l_hi) = (lam(lo), lam(hi));
        let increasing = l_hi >= l_lo;
        for _ in 0..120 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            let l_mid = lam(mid);
            if (l_mid < xi) == increasing {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let b = raref_behind(self.gamma, p, a, s);
        Prim::new_1d(b.rho, b.v, p)
    }

    /// Evaluate the solution at physical coordinates `(x, t)` with the
    /// membrane initially at `x0`.
    pub fn eval(&self, x: f64, t: f64, x0: f64) -> Prim {
        if t <= 0.0 {
            return if x < x0 {
                Prim::new_1d(self.left.rho, self.left.v, self.left.p)
            } else {
                Prim::new_1d(self.right.rho, self.right.v, self.right.p)
            };
        }
        self.sample((x - x0) / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Dir;

    /// Velocities transformed to the frame moving at `u`.
    fn to_frame(v: f64, u: f64) -> f64 {
        (v - u) / (1.0 - v * u)
    }

    /// Verify the relativistic Rankine–Hugoniot conditions across a shock
    /// in the shock rest frame: continuity of ρWv, ρhW²v² + p, ρhW²v.
    fn check_rh(gamma: f64, ahead: (f64, f64, f64), behind_: (f64, f64, f64), v_s: f64) {
        let eos = Eos::IdealGas { gamma };
        let flux3 = |(rho, v, p): (f64, f64, f64)| {
            let vt = to_frame(v, v_s);
            let w = 1.0 / (1.0 - vt * vt).sqrt();
            let h = eos.enthalpy(rho, p);
            (
                rho * w * vt,
                rho * h * w * w * vt * vt + p,
                rho * h * w * w * vt,
            )
        };
        let (m1, p1, e1) = flux3(ahead);
        let (m2, p2, e2) = flux3(behind_);
        assert!(
            (m1 - m2).abs() < 1e-7 * m1.abs().max(1.0),
            "mass: {m1} vs {m2}"
        );
        assert!(
            (p1 - p2).abs() < 1e-7 * p1.abs().max(1.0),
            "mom: {p1} vs {p2}"
        );
        assert!(
            (e1 - e2).abs() < 1e-7 * e1.abs().max(1.0),
            "en: {e1} vs {e2}"
        );
    }

    #[test]
    fn sod_like_problem_structure() {
        // Relativistic Sod: left rarefaction, right shock.
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        assert_eq!(sol.left_wave.kind, WaveKind::Rarefaction);
        assert_eq!(sol.right_wave.kind, WaveKind::Shock);
        assert!(sol.p_star > 0.1 && sol.p_star < 1.0);
        assert!(sol.v_star > 0.0);
        // Wave ordering.
        assert!(sol.left_wave.head <= sol.left_wave.tail);
        assert!(sol.left_wave.tail <= sol.v_star + 1e-12);
        assert!(sol.v_star <= sol.right_wave.head + 1e-12);
    }

    #[test]
    fn blast_wave_1_reference_values() {
        // Martí & Müller blast wave problem 1 (γ = 5/3):
        // ρ_L=10, p_L=13.33, ρ_R=1, p_R=1e-7 (near-vacuum ahead).
        // Literature: p* ≈ 1.448, v* ≈ 0.714 (Living Review Table 4 region).
        let l = Prim::new_1d(10.0, 0.0, 13.33);
        let r = Prim::new_1d(1.0, 0.0, 1e-7);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        assert!(
            (sol.p_star - 1.448).abs() < 0.02,
            "p* = {} (expected ≈1.448)",
            sol.p_star
        );
        assert!(
            (sol.v_star - 0.714).abs() < 0.01,
            "v* = {} (expected ≈0.714)",
            sol.v_star
        );
        // Shock compression into cold medium approaches the relativistic
        // limit (> classical (γ+1)/(γ−1) = 4).
        assert!(sol.rho_star_r / 1.0 > 4.0, "rho*R = {}", sol.rho_star_r);
    }

    #[test]
    fn blast_wave_2_reference_values() {
        // Martí & Müller blast wave problem 2 (γ = 5/3):
        // ρ_L=1, p_L=1000, ρ_R=1, p_R=0.01. Strong relativistic blast:
        // v* ≈ 0.960, thin shell with large compression.
        let l = Prim::new_1d(1.0, 0.0, 1000.0);
        let r = Prim::new_1d(1.0, 0.0, 0.01);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        assert!(
            (sol.v_star - 0.960).abs() < 0.005,
            "v* = {} (expected ≈0.960)",
            sol.v_star
        );
        assert!(
            sol.rho_star_r > 10.0,
            "relativistic compression, got {}",
            sol.rho_star_r
        );
        assert_eq!(sol.right_wave.kind, WaveKind::Shock);
        // Shock moves near light speed.
        assert!(sol.right_wave.head > 0.98, "V_s = {}", sol.right_wave.head);
    }

    #[test]
    fn shock_satisfies_rankine_hugoniot() {
        let l = Prim::new_1d(10.0, 0.0, 13.33);
        let r = Prim::new_1d(1.0, 0.0, 1e-7);
        let g = 5.0 / 3.0;
        let sol = ExactRiemann::solve(&l, &r, g).unwrap();
        check_rh(
            g,
            (1.0, 0.0, 1e-7),
            (sol.rho_star_r, sol.v_star, sol.p_star),
            sol.right_wave.head,
        );
    }

    #[test]
    fn double_shock_collision() {
        // Colliding flows -> two shocks.
        let l = Prim::new_1d(1.0, 0.9, 1.0);
        let r = Prim::new_1d(1.0, -0.9, 1.0);
        let g = 5.0 / 3.0;
        let sol = ExactRiemann::solve(&l, &r, g).unwrap();
        assert_eq!(sol.left_wave.kind, WaveKind::Shock);
        assert_eq!(sol.right_wave.kind, WaveKind::Shock);
        assert!(sol.p_star > 1.0);
        // Symmetric problem: contact is stationary.
        assert!(sol.v_star.abs() < 1e-9, "v* = {}", sol.v_star);
        check_rh(
            g,
            (1.0, 0.9, 1.0),
            (sol.rho_star_l, sol.v_star, sol.p_star),
            sol.left_wave.head,
        );
        check_rh(
            g,
            (1.0, -0.9, 1.0),
            (sol.rho_star_r, sol.v_star, sol.p_star),
            sol.right_wave.head,
        );
    }

    #[test]
    fn double_rarefaction() {
        // Receding flows -> two rarefactions, pressure drop in the middle.
        let l = Prim::new_1d(1.0, -0.4, 1.0);
        let r = Prim::new_1d(1.0, 0.4, 1.0);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        assert_eq!(sol.left_wave.kind, WaveKind::Rarefaction);
        assert_eq!(sol.right_wave.kind, WaveKind::Rarefaction);
        assert!(sol.p_star < 1.0);
        assert!(sol.v_star.abs() < 1e-9);
    }

    #[test]
    fn vacuum_detection() {
        let l = Prim::new_1d(1.0, -0.999, 1e-3);
        let r = Prim::new_1d(1.0, 0.999, 1e-3);
        assert_eq!(
            ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap_err(),
            ExactError::VacuumGenerated
        );
    }

    #[test]
    fn trivial_problem_returns_constant_state() {
        let s = Prim::new_1d(1.0, 0.3, 2.0);
        let sol = ExactRiemann::solve(&s, &s, 1.4).unwrap();
        assert!((sol.p_star - 2.0).abs() < 1e-9);
        assert!((sol.v_star - 0.3).abs() < 1e-9);
        for &xi in &[-0.9, -0.3, 0.0, 0.3, 0.9] {
            let p = sol.sample(xi);
            assert!((p.rho - 1.0).abs() < 1e-9, "xi={xi}");
            assert!((p.vel[0] - 0.3).abs() < 1e-9, "xi={xi}");
        }
    }

    #[test]
    fn sample_is_continuous_across_fan() {
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        // March across the left fan; density must decrease monotonically,
        // velocity increase, no jumps bigger than the sampling step allows.
        let (head, tail) = (sol.left_wave.head, sol.left_wave.tail);
        let mut prev = sol.sample(head - 1e-9);
        let n = 200;
        for i in 0..=n {
            let xi = head + (tail - head) * i as f64 / n as f64;
            let s = sol.sample(xi);
            assert!(s.rho <= prev.rho + 1e-9, "rho monotone at xi={xi}");
            assert!(s.vel[0] >= prev.vel[0] - 1e-9, "v monotone at xi={xi}");
            assert!((s.rho - prev.rho).abs() < 0.02, "continuity at xi={xi}");
            prev = s;
        }
        // Tail matches the star state.
        assert!((prev.p - sol.p_star).abs() < 1e-6);
        assert!((prev.vel[0] - sol.v_star).abs() < 1e-6);
    }

    #[test]
    fn contact_jump_only_in_density() {
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        let eps = 1e-9;
        let a = sol.sample(sol.v_star - eps);
        let b = sol.sample(sol.v_star + eps);
        assert!((a.p - b.p).abs() < 1e-8);
        assert!((a.vel[0] - b.vel[0]).abs() < 1e-8);
        assert!((a.rho - b.rho).abs() > 1e-3, "density must jump at contact");
    }

    #[test]
    fn mirror_symmetry() {
        // Mirroring left<->right with negated velocities mirrors the solution.
        let l = Prim::new_1d(1.0, 0.2, 1.0);
        let r = Prim::new_1d(0.125, -0.1, 0.1);
        let g = 1.4;
        let sol = ExactRiemann::solve(&l, &r, g).unwrap();
        let lm = Prim::new_1d(0.125, 0.1, 0.1);
        let rm = Prim::new_1d(1.0, -0.2, 1.0);
        let solm = ExactRiemann::solve(&lm, &rm, g).unwrap();
        assert!((sol.p_star - solm.p_star).abs() < 1e-9);
        assert!((sol.v_star + solm.v_star).abs() < 1e-9);
        for &xi in &[-0.8, -0.2, 0.05, 0.4, 0.9] {
            let a = sol.sample(xi);
            let b = solm.sample(-xi);
            assert!((a.rho - b.rho).abs() < 1e-7, "xi={xi}");
            assert!((a.vel[0] + b.vel[0]).abs() < 1e-7, "xi={xi}");
        }
    }

    #[test]
    fn eval_before_t0_returns_initial_data() {
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        let sol = ExactRiemann::solve(&l, &r, 5.0 / 3.0).unwrap();
        assert_eq!(sol.eval(0.2, 0.0, 0.5).rho, 1.0);
        assert_eq!(sol.eval(0.7, 0.0, 0.5).rho, 0.125);
    }

    #[test]
    fn rejects_tangential_velocity() {
        let l = Prim {
            rho: 1.0,
            vel: [0.0, 0.1, 0.0],
            p: 1.0,
        };
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        assert!(matches!(
            ExactRiemann::solve(&l, &r, 5.0 / 3.0),
            Err(ExactError::BadInput(_))
        ));
    }

    #[test]
    fn boosted_problem_consistency() {
        // Solving in a boosted frame then un-boosting the star velocity must
        // agree with the lab-frame solution (p* is frame-dependent only
        // through the wave structure, but v* composes relativistically and
        // p* at the contact is invariant for this 1D flow).
        let g = 5.0 / 3.0;
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.125, 0.0, 0.1);
        let lab = ExactRiemann::solve(&l, &r, g).unwrap();
        let vb = 0.3;
        let lb = l.boosted(vb, Dir::X);
        let rb = r.boosted(vb, Dir::X);
        let boosted = ExactRiemann::solve(&lb, &rb, g).unwrap();
        // Pressure at the contact is invariant under boosts along x.
        assert!(
            (lab.p_star - boosted.p_star).abs() < 1e-7,
            "{} vs {}",
            lab.p_star,
            boosted.p_star
        );
        let v_expected = (lab.v_star + vb) / (1.0 + lab.v_star * vb);
        assert!(
            (boosted.v_star - v_expected).abs() < 1e-7,
            "{} vs {v_expected}",
            boosted.v_star
        );
    }
}
