//! Riemann solvers for the SRHD interface flux.
//!
//! Approximate solvers (used in the HRSC scheme, in increasing order of
//! sharpness at contact discontinuities):
//! * [`rusanov_flux`] — local Lax–Friedrichs, maximally diffusive,
//!   bulletproof;
//! * [`hll_flux`] — two-wave HLL with Davis speed estimates;
//! * [`hllc_flux`] — Mignone & Bodo (2005) three-wave solver restoring
//!   the contact wave.
//!
//! The [`exact`] module implements the exact ideal-gas SRHD Riemann solver
//! (Martí & Müller) used as ground truth by the validation experiments.

pub mod exact;
mod hll;
mod hllc;
mod rusanov;

pub use hll::hll_flux;
pub use hllc::hllc_flux;
pub use rusanov::rusanov_flux;

use crate::state::{Cons, Dir, Prim};
use rhrsc_eos::Eos;

/// Choice of approximate Riemann solver for the interface flux.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RiemannSolver {
    /// Local Lax–Friedrichs (Rusanov).
    Rusanov,
    /// Harten–Lax–van Leer two-wave solver.
    Hll,
    /// Mignone–Bodo HLLC three-wave solver.
    Hllc,
}

impl RiemannSolver {
    /// All solvers, for comparison sweeps.
    pub const ALL: [RiemannSolver; 3] = [
        RiemannSolver::Rusanov,
        RiemannSolver::Hll,
        RiemannSolver::Hllc,
    ];

    /// Short display name (used in benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            RiemannSolver::Rusanov => "rusanov",
            RiemannSolver::Hll => "hll",
            RiemannSolver::Hllc => "hllc",
        }
    }

    /// Numerical flux through the interface between `left` and `right`
    /// states, along direction `dir`.
    #[inline]
    pub fn flux(&self, eos: &Eos, left: &Prim, right: &Prim, dir: Dir) -> Cons {
        match self {
            RiemannSolver::Rusanov => rusanov_flux(eos, left, right, dir),
            RiemannSolver::Hll => hll_flux(eos, left, right, dir),
            RiemannSolver::Hllc => hllc_flux(eos, left, right, dir),
        }
    }
}

/// Davis-type wave-speed estimate: the outermost characteristic speeds over
/// both interface states.
#[inline]
pub(crate) fn davis_speeds(eos: &Eos, left: &Prim, right: &Prim, dir: Dir) -> (f64, f64) {
    let (lm_l, lp_l) = crate::flux::signal_speeds(eos, left, dir);
    let (lm_r, lp_r) = crate::flux::signal_speeds(eos, right, dir);
    (lm_l.min(lm_r), lp_l.max(lp_r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flux::physical_flux;

    fn eos() -> Eos {
        Eos::ideal(5.0 / 3.0)
    }

    fn states() -> Vec<(Prim, Prim)> {
        vec![
            (Prim::new_1d(1.0, 0.0, 1.0), Prim::new_1d(0.125, 0.0, 0.1)),
            (Prim::new_1d(10.0, 0.0, 13.33), Prim::new_1d(1.0, 0.0, 1e-7)),
            (Prim::new_1d(1.0, 0.9, 1.0), Prim::new_1d(1.0, -0.9, 1.0)),
            (
                Prim {
                    rho: 1.0,
                    vel: [0.5, 0.3, -0.1],
                    p: 0.4,
                },
                Prim {
                    rho: 2.0,
                    vel: [-0.2, 0.6, 0.0],
                    p: 5.0,
                },
            ),
        ]
    }

    #[test]
    fn consistency_f_uu_equals_physical_flux() {
        // Every Riemann solver must reduce to the physical flux for equal
        // states (consistency requirement of a conservative scheme).
        let eos = eos();
        for (l, _) in states() {
            let f_phys = physical_flux(&eos, &l, Dir::X);
            for rs in RiemannSolver::ALL {
                let f = rs.flux(&eos, &l, &l, Dir::X);
                let diff = (f - f_phys).max_norm();
                assert!(diff < 1e-12, "{}: diff {diff}", rs.name());
            }
        }
    }

    #[test]
    fn supersonic_upwinding() {
        // For flow faster than every wave, all solvers must return the
        // upwind physical flux exactly.
        let eos = eos();
        let l = Prim::new_1d(1.0, 0.99, 1e-3);
        let r = Prim::new_1d(0.5, 0.99, 1e-3);
        let f_l = physical_flux(&eos, &l, Dir::X);
        for rs in [RiemannSolver::Hll, RiemannSolver::Hllc] {
            let f = rs.flux(&eos, &l, &r, Dir::X);
            assert!((f - f_l).max_norm() < 1e-12, "{}", rs.name());
        }
    }

    #[test]
    fn fluxes_finite_for_strong_jumps() {
        let eos = eos();
        for (l, r) in states() {
            for rs in RiemannSolver::ALL {
                for dir in Dir::ALL {
                    let f = rs.flux(&eos, &l, &r, dir);
                    assert!(f.is_finite(), "{} {dir:?}", rs.name());
                }
            }
        }
    }

    #[test]
    fn hllc_resolves_stationary_contact_exactly() {
        // Pure contact: equal p and v=0, jump in rho. HLLC must return zero
        // flux (stationary contact), HLL/Rusanov smear it.
        let eos = eos();
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r = Prim::new_1d(0.1, 0.0, 1.0);
        let f_hllc = hllc_flux(&eos, &l, &r, Dir::X);
        assert!(f_hllc.d.abs() < 1e-12, "HLLC D-flux {}", f_hllc.d);
        assert!(f_hllc.tau.abs() < 1e-12, "HLLC tau-flux {}", f_hllc.tau);
        assert!(
            (f_hllc.s[0] - 1.0).abs() < 1e-12,
            "HLLC Sx-flux {}",
            f_hllc.s[0]
        );
        let f_hll = hll_flux(&eos, &l, &r, Dir::X);
        assert!(f_hll.d.abs() > 1e-3, "HLL should diffuse the contact");
    }

    #[test]
    fn diffusivity_ordering_on_contact() {
        // |F_D| at a moving contact: rusanov >= hll >= hllc (~0 error terms).
        let eos = eos();
        let l = Prim::new_1d(1.0, 0.1, 1.0);
        let r = Prim::new_1d(0.1, 0.1, 1.0);
        let exact_fd = 1.0 * Prim::new_1d(1.0, 0.1, 1.0).lorentz() * 0.1; // upwind D*vn
        let e_rus = (rusanov_flux(&eos, &l, &r, Dir::X).d - exact_fd).abs();
        let e_hll = (hll_flux(&eos, &l, &r, Dir::X).d - exact_fd).abs();
        let e_hllc = (hllc_flux(&eos, &l, &r, Dir::X).d - exact_fd).abs();
        assert!(e_rus >= e_hll * 0.99, "rusanov {e_rus} vs hll {e_hll}");
        assert!(e_hll >= e_hllc * 0.99, "hll {e_hll} vs hllc {e_hllc}");
        assert!(
            e_hllc < 1e-10,
            "hllc should be (near-)exact on contacts: {e_hllc}"
        );
    }

    #[test]
    fn symmetry_mirror_invariance() {
        // Mirroring the problem (x -> -x) must negate the D and tau fluxes
        // and preserve the normal-momentum flux.
        let eos = eos();
        for (l, r) in states() {
            let mirror = |p: &Prim| Prim {
                rho: p.rho,
                vel: [-p.vel[0], p.vel[1], p.vel[2]],
                p: p.p,
            };
            for rs in RiemannSolver::ALL {
                let f = rs.flux(&eos, &l, &r, Dir::X);
                let fm = rs.flux(&eos, &mirror(&r), &mirror(&l), Dir::X);
                assert!((f.d + fm.d).abs() < 1e-12, "{} D", rs.name());
                assert!((f.tau + fm.tau).abs() < 1e-12, "{} tau", rs.name());
                assert!((f.s[0] - fm.s[0]).abs() < 1e-12, "{} Sx", rs.name());
            }
        }
    }

    #[test]
    fn davis_speeds_bracket_both_states() {
        let eos = eos();
        for (l, r) in states() {
            let (lm, lp) = davis_speeds(&eos, &l, &r, Dir::X);
            assert!(lm <= lp);
            assert!(lm >= -1.0 && lp <= 1.0);
        }
    }
}
