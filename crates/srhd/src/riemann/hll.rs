//! HLL (Harten–Lax–van Leer) two-wave approximate Riemann solver.

use super::davis_speeds;
use crate::flux::physical_flux_from;
use crate::state::{Cons, Dir, Prim};
use rhrsc_eos::Eos;

/// HLL flux with Davis wave-speed estimates:
///
/// ```text
///        ⎧ F_L                                              λ_L ≥ 0
/// F_hll =⎨ (λ_R F_L − λ_L F_R + λ_L λ_R (U_R − U_L)) / (λ_R − λ_L)
///        ⎩ F_R                                              λ_R ≤ 0
/// ```
#[inline]
pub fn hll_flux(eos: &Eos, left: &Prim, right: &Prim, dir: Dir) -> Cons {
    let (lam_l, lam_r) = davis_speeds(eos, left, right, dir);
    let u_l = left.to_cons(eos);
    let u_r = right.to_cons(eos);
    let f_l = physical_flux_from(left, &u_l, dir);
    let f_r = physical_flux_from(right, &u_r, dir);
    hll_flux_from(&u_l, &u_r, &f_l, &f_r, lam_l, lam_r)
}

/// HLL flux from precomputed states/fluxes/speeds (shared with HLLC).
#[inline]
pub(crate) fn hll_flux_from(
    u_l: &Cons,
    u_r: &Cons,
    f_l: &Cons,
    f_r: &Cons,
    lam_l: f64,
    lam_r: f64,
) -> Cons {
    if lam_l >= 0.0 {
        *f_l
    } else if lam_r <= 0.0 {
        *f_r
    } else {
        let inv = 1.0 / (lam_r - lam_l);
        (*f_l * lam_r - *f_r * lam_l + (*u_r - *u_l) * (lam_l * lam_r)) * inv
    }
}

/// The HLL *intermediate state* (the fan average), used by HLLC to locate
/// the contact wave.
#[inline]
pub(crate) fn hll_state(
    u_l: &Cons,
    u_r: &Cons,
    f_l: &Cons,
    f_r: &Cons,
    lam_l: f64,
    lam_r: f64,
) -> Cons {
    let inv = 1.0 / (lam_r - lam_l);
    (*u_r * lam_r - *u_l * lam_l + (*f_l - *f_r)) * inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flux::physical_flux;

    #[test]
    fn reduces_to_upwind_for_supersonic() {
        let eos = Eos::ideal(5.0 / 3.0);
        let l = Prim::new_1d(1.0, -0.99, 1e-3);
        let r = Prim::new_1d(0.5, -0.99, 1e-3);
        let f = hll_flux(&eos, &l, &r, Dir::X);
        let expected = physical_flux(&eos, &r, Dir::X);
        assert!((f - expected).max_norm() < 1e-13);
    }

    #[test]
    fn hll_state_is_consistent_average() {
        // For equal states the fan average is the state itself.
        let eos = Eos::ideal(5.0 / 3.0);
        let p = Prim::new_1d(1.0, 0.3, 2.0);
        let u = p.to_cons(&eos);
        let f = physical_flux(&eos, &p, Dir::X);
        let fan = hll_state(&u, &u, &f, &f, -0.9, 0.9);
        assert!((fan - u).max_norm() < 1e-14);
    }

    #[test]
    fn hll_state_conserves_integral() {
        // Integral consistency: λR UR − λL UL − (FR − FL) = (λR−λL) U_hll.
        let eos = Eos::ideal(5.0 / 3.0);
        let l = Prim::new_1d(1.0, 0.5, 1.0);
        let r = Prim::new_1d(0.2, -0.3, 0.05);
        let u_l = l.to_cons(&eos);
        let u_r = r.to_cons(&eos);
        let f_l = physical_flux(&eos, &l, Dir::X);
        let f_r = physical_flux(&eos, &r, Dir::X);
        let (lam_l, lam_r) = super::super::davis_speeds(&eos, &l, &r, Dir::X);
        let fan = hll_state(&u_l, &u_r, &f_l, &f_r, lam_l, lam_r);
        let lhs = u_r * lam_r - u_l * lam_l + (f_l - f_r);
        let rhs = fan * (lam_r - lam_l);
        assert!((lhs - rhs).max_norm() < 1e-13);
    }
}
