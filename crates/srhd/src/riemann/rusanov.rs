//! Rusanov (local Lax–Friedrichs) flux.

use crate::flux::physical_flux_from;
use crate::state::{Cons, Dir, Prim};
use rhrsc_eos::Eos;

/// Rusanov flux: central average plus maximal-wave-speed dissipation,
///
/// ```text
/// F = ½ (F_L + F_R) − ½ a (U_R − U_L),   a = max(|λ±_L|, |λ±_R|)
/// ```
///
/// The most diffusive of the solvers here, but positivity-preserving and a
/// useful robustness fallback at extreme Lorentz factors.
#[inline]
pub fn rusanov_flux(eos: &Eos, left: &Prim, right: &Prim, dir: Dir) -> Cons {
    let u_l = left.to_cons(eos);
    let u_r = right.to_cons(eos);
    let f_l = physical_flux_from(left, &u_l, dir);
    let f_r = physical_flux_from(right, &u_r, dir);
    let (lm_l, lp_l) = crate::flux::signal_speeds(eos, left, dir);
    let (lm_r, lp_r) = crate::flux::signal_speeds(eos, right, dir);
    let a = lm_l.abs().max(lp_l.abs()).max(lm_r.abs()).max(lp_r.abs());
    (f_l + f_r) * 0.5 - (u_r - u_l) * (0.5 * a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissipation_vanishes_for_equal_states() {
        let eos = Eos::ideal(1.4);
        let p = Prim {
            rho: 1.0,
            vel: [0.2, -0.3, 0.4],
            p: 2.0,
        };
        let f = rusanov_flux(&eos, &p, &p, Dir::Y);
        let expected = crate::flux::physical_flux(&eos, &p, Dir::Y);
        assert!((f - expected).max_norm() < 1e-14);
    }

    #[test]
    fn adds_dissipation_proportional_to_jump() {
        let eos = Eos::ideal(1.4);
        let l = Prim::new_1d(1.0, 0.0, 1.0);
        let r_small = Prim::new_1d(0.9, 0.0, 1.0);
        let r_big = Prim::new_1d(0.5, 0.0, 1.0);
        let f_small = rusanov_flux(&eos, &l, &r_small, Dir::X).d.abs();
        let f_big = rusanov_flux(&eos, &l, &r_big, Dir::X).d.abs();
        assert!(f_big > f_small, "{f_big} vs {f_small}");
    }
}
