//! Single-assignment promise/future pairs.
//!
//! The minimal futurization primitive: a [`Promise`] is the write end, a
//! [`Future`] the read end. `Future::get` blocks on a condition variable
//! until the value arrives. These are *not* `std::future::Future`s — the
//! runtime is a blocking work-stealing pool, not an async executor, which
//! matches the HPX-style model where lightweight tasks block on futures
//! and the scheduler runs other work.
//!
//! A promise that cannot deliver — its producer panicked, or it was
//! dropped unfulfilled — *poisons* the cell instead of leaving waiters
//! blocked forever: `get` re-raises the producer's panic message on the
//! waiting thread, turning a silent distributed hang into a local,
//! attributable panic.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

enum State<T> {
    /// Neither value nor continuation yet.
    Empty,
    /// Value arrived, no consumer yet.
    Value(T),
    /// Producer failed; the message re-raises in the consumer.
    Poisoned(String),
    /// Continuation attached, waiting for the value (or the poison).
    Continuation(Box<dyn FnOnce(Result<T, String>) + Send>),
    /// Value consumed or continuation fired.
    Done,
}

struct Shared<T> {
    slot: Mutex<State<T>>,
    cv: Condvar,
}

/// Write end of a single-assignment cell.
///
/// Dropping a promise without fulfilling it poisons the cell, so waiters
/// fail loudly rather than hang.
pub struct Promise<T> {
    shared: Option<Arc<Shared<T>>>,
}

/// Read end of a single-assignment cell.
pub struct Future<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future")
            .field("ready", &self.is_ready())
            .finish()
    }
}

/// Create a connected promise/future pair.
pub fn promise<T>() -> (Promise<T>, Future<T>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(State::Empty),
        cv: Condvar::new(),
    });
    (
        Promise {
            shared: Some(shared.clone()),
        },
        Future { shared },
    )
}

fn fulfil<T>(shared: &Shared<T>, outcome: Result<T, String>) {
    let mut slot = shared.slot.lock();
    match std::mem::replace(&mut *slot, State::Empty) {
        State::Empty => {
            *slot = match outcome {
                Ok(v) => State::Value(v),
                Err(msg) => State::Poisoned(msg),
            };
            shared.cv.notify_all();
        }
        State::Continuation(cb) => {
            *slot = State::Done;
            drop(slot);
            cb(outcome);
        }
        State::Value(_) | State::Poisoned(_) | State::Done => panic!("promise fulfilled twice"),
    }
}

impl<T> Promise<T> {
    /// Fulfil the promise: wakes blocked waiters, or — if a continuation
    /// was attached with [`Future::then`] — runs it on this thread.
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn set(mut self, value: T) {
        let shared = self.shared.take().expect("promise already consumed");
        fulfil(&shared, Ok(value));
    }

    /// Poison the promise: waiters' `get` re-raises `msg` as a panic, and
    /// `then` continuations propagate the poison downstream. Used by the
    /// pool to surface a task panic to whoever holds the future.
    ///
    /// # Panics
    /// Panics if the promise was already fulfilled.
    pub fn poison(mut self, msg: String) {
        let shared = self.shared.take().expect("promise already consumed");
        fulfil(&shared, Err(msg));
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        // A promise abandoned without set/poison (producer dropped the
        // write end — e.g. a queued job discarded at pool shutdown)
        // poisons the cell so waiters don't block forever.
        if let Some(shared) = self.shared.take() {
            let mut slot = shared.slot.lock();
            match std::mem::replace(&mut *slot, State::Empty) {
                State::Empty => {
                    *slot = State::Poisoned("promise dropped without a value".to_string());
                    shared.cv.notify_all();
                }
                State::Continuation(cb) => {
                    *slot = State::Done;
                    drop(slot);
                    cb(Err("promise dropped without a value".to_string()));
                }
                other => *slot = other,
            }
        }
    }
}

impl<T> Future<T> {
    /// Block until the value arrives and take it.
    ///
    /// # Panics
    /// Panics with the producer's message if the promise was poisoned.
    pub fn get(self) -> T {
        let mut slot = self.shared.slot.lock();
        loop {
            match std::mem::replace(&mut *slot, State::Empty) {
                State::Value(v) => {
                    *slot = State::Done;
                    return v;
                }
                State::Poisoned(msg) => {
                    *slot = State::Done;
                    drop(slot);
                    panic!("broken promise: {msg}");
                }
                State::Empty => {
                    self.shared.cv.wait(&mut slot);
                }
                State::Continuation(_) | State::Done => {
                    panic!("future already consumed (get after then)")
                }
            }
        }
    }

    /// Non-blocking poll: `true` once the value (or poison) has arrived.
    pub fn is_ready(&self) -> bool {
        matches!(
            &*self.shared.slot.lock(),
            State::Value(_) | State::Poisoned(_)
        )
    }

    /// Block with a timeout; returns the future back on timeout.
    ///
    /// # Panics
    /// Panics with the producer's message if the promise was poisoned.
    pub fn get_timeout(self, d: Duration) -> Result<T, Future<T>> {
        let deadline = std::time::Instant::now() + d;
        {
            let mut slot = self.shared.slot.lock();
            loop {
                match std::mem::replace(&mut *slot, State::Empty) {
                    State::Value(v) => {
                        *slot = State::Done;
                        return Ok(v);
                    }
                    State::Poisoned(msg) => {
                        *slot = State::Done;
                        drop(slot);
                        panic!("broken promise: {msg}");
                    }
                    State::Empty => {
                        if self.shared.cv.wait_until(&mut slot, deadline).timed_out() {
                            break;
                        }
                    }
                    State::Continuation(_) | State::Done => {
                        panic!("future already consumed")
                    }
                }
            }
        }
        Err(self)
    }

    /// Attach a dataflow continuation: when the value arrives, `f` runs
    /// with it (immediately on this thread if it is already here,
    /// otherwise on the thread that fulfils the promise). Returns the
    /// future of `f`'s result. Poison skips `f` and propagates to the
    /// returned future. This is the "futurization" combinator the
    /// HPX-style execution model builds dependency graphs from.
    pub fn then<U, F>(self, f: F) -> Future<U>
    where
        U: Send + 'static,
        T: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (p, fut) = promise();
        let mut slot = self.shared.slot.lock();
        match std::mem::replace(&mut *slot, State::Empty) {
            State::Value(v) => {
                *slot = State::Done;
                drop(slot);
                p.set(f(v));
            }
            State::Poisoned(msg) => {
                *slot = State::Done;
                drop(slot);
                p.poison(msg);
            }
            State::Empty => {
                *slot = State::Continuation(Box::new(move |r| match r {
                    Ok(v) => p.set(f(v)),
                    Err(msg) => p.poison(msg),
                }));
            }
            State::Continuation(_) | State::Done => panic!("future already consumed"),
        }
        fut
    }
}

/// Wait for every future in a collection, returning the values in order.
pub fn wait_all<T>(futures: Vec<Future<T>>) -> Vec<T> {
    futures.into_iter().map(|f| f.get()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_get() {
        let (p, f) = promise();
        p.set(42);
        assert!(f.is_ready());
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = promise();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.set("done");
        });
        assert_eq!(f.get(), "done");
        t.join().unwrap();
    }

    #[test]
    fn timeout_returns_future() {
        let (_p, f) = promise::<i32>();
        let f = f.get_timeout(Duration::from_millis(5)).unwrap_err();
        assert!(!f.is_ready());
    }

    #[test]
    fn timeout_succeeds_when_ready() {
        let (p, f) = promise();
        p.set(7);
        assert_eq!(f.get_timeout(Duration::from_millis(1)).unwrap(), 7);
    }

    #[test]
    fn wait_all_preserves_order() {
        let pairs: Vec<_> = (0..8).map(|_| promise()).collect();
        let mut futures = Vec::new();
        let mut handles = Vec::new();
        for (i, (p, f)) in pairs.into_iter().enumerate() {
            futures.push(f);
            handles.push(thread::spawn(move || {
                thread::sleep(Duration::from_millis((8 - i as u64) * 2));
                p.set(i);
            }));
        }
        assert_eq!(wait_all(futures), (0..8).collect::<Vec<_>>());
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn then_on_ready_future_runs_inline() {
        let (p, f) = promise();
        p.set(10);
        let g = f.then(|v| v * 2).then(|v| v + 1);
        assert_eq!(g.get(), 21);
    }

    #[test]
    fn then_fires_on_completing_thread() {
        let (p, f) = promise();
        let g = f.then(|v: i32| v * v);
        assert!(!g.is_ready());
        let t = thread::spawn(move || p.set(9));
        assert_eq!(g.get(), 81);
        t.join().unwrap();
    }

    #[test]
    fn then_chain_builds_dataflow_graph() {
        // A diamond-free chain of 100 continuations resolves in order.
        let (p, mut f) = promise();
        for _ in 0..100 {
            f = f.then(|v: u64| v + 1);
        }
        p.set(0);
        assert_eq!(f.get(), 100);
    }

    #[test]
    fn then_interops_with_pool_spawn() {
        let pool = crate::pool::WorkStealingPool::new(2);
        let f = pool.spawn(|| 6).then(|v| v * 7);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn many_waiters_one_value() {
        // is_ready can be polled from other threads while one consumes.
        let (p, f) = promise();
        let probe = thread::spawn({
            let ready_before = f.is_ready();
            move || ready_before
        });
        assert!(!probe.join().unwrap());
        p.set(5);
        assert_eq!(f.get(), 5);
    }

    #[test]
    fn poisoned_promise_panics_waiter_with_message() {
        let (p, f) = promise::<i32>();
        p.poison("producer exploded".to_string());
        assert!(f.is_ready());
        let e = catch_unwind(AssertUnwindSafe(move || f.get())).unwrap_err();
        let msg = e.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("producer exploded"), "{msg}");
    }

    #[test]
    fn dropped_promise_poisons_future() {
        let (p, f) = promise::<u8>();
        drop(p);
        let e = catch_unwind(AssertUnwindSafe(move || f.get())).unwrap_err();
        let msg = e.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("dropped without a value"), "{msg}");
    }

    #[test]
    fn poison_propagates_through_then_chain() {
        let (p, f) = promise::<i32>();
        let g = f.then(|v| v + 1).then(|v| v * 2);
        p.poison("upstream failure".to_string());
        let e = catch_unwind(AssertUnwindSafe(move || g.get())).unwrap_err();
        let msg = e.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("upstream failure"), "{msg}");
    }

    #[test]
    fn poison_on_already_poisoned_then_is_immediate() {
        let (p, f) = promise::<i32>();
        p.poison("early".to_string());
        let e = catch_unwind(AssertUnwindSafe(move || f.then(|v| v).get())).unwrap_err();
        let msg = e.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("early"), "{msg}");
    }
}
