//! Load-balancing policies across heterogeneous workers.
//!
//! A step's work is a set of tiles with (estimated) costs; the cluster has
//! workers with differing throughputs (host sockets vs. accelerators).
//! Three policies are compared by experiment F6:
//!
//! * [`Policy::Static`] — homogeneous round-robin that ignores
//!   throughput (what a non-heterogeneity-aware code does),
//! * [`Policy::Weighted`] — longest-processing-time greedy onto the
//!   worker with the smallest *normalized* finish time (uses measured
//!   throughputs),
//! * [`Policy::Stealing`] — no plan at all; workers self-schedule from a
//!   shared queue at runtime ([`run_dynamic`]).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Load-balancing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Round-robin, throughput-oblivious.
    Static,
    /// Throughput-weighted LPT greedy.
    Weighted,
    /// Dynamic self-scheduling from a shared queue.
    Stealing,
}

impl Policy {
    /// All policies, for comparison sweeps.
    pub const ALL: [Policy; 3] = [Policy::Static, Policy::Weighted, Policy::Stealing];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::Weighted => "weighted",
            Policy::Stealing => "stealing",
        }
    }
}

/// Round-robin assignment of `ntiles` tiles over `nworkers` workers.
pub fn plan_static(ntiles: usize, nworkers: usize) -> Vec<Vec<usize>> {
    assert!(nworkers > 0);
    let mut plan = vec![Vec::new(); nworkers];
    for t in 0..ntiles {
        plan[t % nworkers].push(t);
    }
    plan
}

/// Throughput-weighted longest-processing-time greedy: tiles are assigned
/// in descending cost order to the worker whose finish time
/// `(load + cost) / speed` would be smallest.
pub fn plan_weighted(costs: &[f64], speeds: &[f64]) -> Vec<Vec<usize>> {
    assert!(!speeds.is_empty());
    assert!(speeds.iter().all(|&s| s > 0.0), "speeds must be positive");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].partial_cmp(&costs[a]).unwrap());
    let mut plan = vec![Vec::new(); speeds.len()];
    let mut load = vec![0.0f64; speeds.len()];
    for t in order {
        let (w, _) = load
            .iter()
            .enumerate()
            .map(|(w, &l)| (w, (l + costs[t]) / speeds[w]))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        plan[w].push(t);
        load[w] += costs[t];
    }
    plan
}

/// Predicted makespan of a plan: `max_w (Σ costs of w's tiles) / speed_w`.
pub fn predicted_makespan(plan: &[Vec<usize>], costs: &[f64], speeds: &[f64]) -> f64 {
    plan.iter()
        .zip(speeds)
        .map(|(tiles, &s)| tiles.iter().map(|&t| costs[t]).sum::<f64>() / s)
        .fold(0.0, f64::max)
}

/// Execute `ntiles` tiles dynamically: each worker closure runs on its own
/// thread and claims tiles from a shared counter until exhaustion
/// (self-scheduling — the [`Policy::Stealing`] runtime). Returns the
/// number of tiles each worker processed.
pub fn run_dynamic(workers: Vec<Box<dyn Fn(usize) + Send>>, ntiles: usize) -> Vec<usize> {
    let cursor = AtomicUsize::new(0);
    let counts: Vec<AtomicUsize> = workers.iter().map(|_| AtomicUsize::new(0)).collect();
    std::thread::scope(|s| {
        for (w, worker) in workers.into_iter().enumerate() {
            let cursor = &cursor;
            let counts = &counts;
            s.spawn(move || loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= ntiles {
                    break;
                }
                worker(t);
                counts[w].fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    counts.into_iter().map(|c| c.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn static_plan_is_balanced_in_counts() {
        let plan = plan_static(10, 3);
        let counts: Vec<usize> = plan.iter().map(Vec::len).collect();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts.iter().max().unwrap() - counts.iter().min().unwrap() <= 1);
    }

    #[test]
    fn static_plan_covers_all_tiles_once() {
        let plan = plan_static(17, 4);
        let mut seen = [false; 17];
        for tiles in &plan {
            for &t in tiles {
                assert!(!seen[t]);
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_plan_respects_speeds() {
        // Worker 1 is 3x faster; with uniform costs it should get ~3x the
        // tiles.
        let costs = vec![1.0; 40];
        let plan = plan_weighted(&costs, &[1.0, 3.0]);
        let (a, b) = (plan[0].len(), plan[1].len());
        assert_eq!(a + b, 40);
        assert!(b > 2 * a, "fast worker got {b}, slow got {a}");
    }

    #[test]
    fn weighted_beats_static_under_heterogeneity() {
        let costs = vec![1.0; 64];
        let speeds = [1.0, 1.0, 8.0];
        let m_static = predicted_makespan(&plan_static(64, 3), &costs, &speeds);
        let m_weighted = predicted_makespan(&plan_weighted(&costs, &speeds), &costs, &speeds);
        assert!(
            m_weighted < 0.5 * m_static,
            "weighted {m_weighted} vs static {m_static}"
        );
    }

    #[test]
    fn weighted_handles_nonuniform_costs() {
        let costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let speeds = [1.0, 1.0];
        let plan = plan_weighted(&costs, &speeds);
        let m = predicted_makespan(&plan, &costs, &speeds);
        // LPT achieves the optimum here: 10 on one worker, 9x1 on the other.
        assert!((m - 10.0).abs() < 1e-12, "makespan {m}");
    }

    #[test]
    fn run_dynamic_processes_every_tile() {
        let n = 500;
        let hits: std::sync::Arc<Vec<AtomicU64>> =
            std::sync::Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let mk = |h: std::sync::Arc<Vec<AtomicU64>>| -> Box<dyn Fn(usize) + Send> {
            Box::new(move |t| {
                h[t].fetch_add(1, Ordering::Relaxed);
            })
        };
        let counts = run_dynamic(
            vec![mk(hits.clone()), mk(hits.clone()), mk(hits.clone())],
            n,
        );
        assert_eq!(counts.iter().sum::<usize>(), n);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn run_dynamic_adapts_to_slow_workers() {
        // One worker sleeps per tile; the fast worker should claim the
        // lion's share without any planning.
        let n = 60;
        let slow: Box<dyn Fn(usize) + Send> =
            Box::new(|_| std::thread::sleep(std::time::Duration::from_millis(3)));
        let fast: Box<dyn Fn(usize) + Send> = Box::new(|_| {});
        let counts = run_dynamic(vec![slow, fast], n);
        assert_eq!(counts.iter().sum::<usize>(), n);
        assert!(
            counts[1] > counts[0] * 3,
            "fast {} vs slow {}",
            counts[1],
            counts[0]
        );
    }

    #[test]
    fn empty_tiles_ok() {
        assert_eq!(plan_static(0, 2), vec![Vec::<usize>::new(), Vec::new()]);
        let counts = run_dynamic(vec![Box::new(|_| {})], 0);
        assert_eq!(counts, vec![0]);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Static.name(), "static");
        assert_eq!(Policy::ALL.len(), 3);
    }
}
