//! Simulated accelerator device.
//!
//! The paper's heterogeneous nodes offload HRSC kernels to GPUs. No GPU is
//! available here, so this module provides the closest synthetic
//! equivalent that exercises the same *code structure* a GPU port needs:
//!
//! * **explicit device memory** — kernels only see [`BufId`]-addressed
//!   buffers that live on the device; host data must be staged in/out,
//! * **an in-order command queue** — allocations, copies, launches and
//!   fences execute asynchronously on a dedicated device thread, with
//!   completion reported through futures (stream/event semantics),
//! * **a performance envelope** — each kernel launch pays a configurable
//!   latency (kernel-launch overhead) and host↔device copies pay a
//!   modeled bandwidth cost, while kernels execute on an internal compute
//!   gang of `compute_threads` workers.
//!
//! Because the kernels are the *real* SRHD kernels running on real data,
//! device results are bit-identical to the host path — which the
//! integration tests assert — while the throughput/overhead trade-off
//! (crossover tile size, T3) matches the shape of a genuine offload
//! device.

use crate::fault::FaultInjector;
use crate::future::{promise, Future, Promise};
use crate::metrics::Registry;
use crate::pool::WorkStealingPool;
use crate::spin_for;
use crate::trace::{Tracer, Track};
use crossbeam_channel::{unbounded, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Opaque handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(u64);

/// Tuning knobs of the simulated device.
#[derive(Debug, Clone)]
pub struct AcceleratorConfig {
    /// Width of the device's internal compute gang.
    pub compute_threads: usize,
    /// Fixed cost charged per kernel launch (models driver/queue latency).
    pub launch_overhead: Duration,
    /// Host↔device copy bandwidth in bytes/second (`f64::INFINITY` for
    /// free copies).
    pub copy_bandwidth: f64,
    /// Modeled device speed relative to the executing host threads. The
    /// device's *virtual clock* charges `kernel_wall_time / multiplier`
    /// per launch (plus the launch overhead), so a value of 8 models an
    /// accelerator whose kernels run 8× faster than the host gang that
    /// physically executes them. Physical execution time is unchanged —
    /// results stay bit-identical; only [`Accelerator::virtual_time`]
    /// reflects the model.
    pub throughput_multiplier: f64,
    /// Device name for benchmark tables.
    pub name: String,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            compute_threads: 4,
            launch_overhead: Duration::from_micros(20),
            copy_bandwidth: 8e9, // ~PCIe3 x8
            throughput_multiplier: 1.0,
            name: "sim-accel".to_string(),
        }
    }
}

/// Kernel execution context: device buffers plus the compute gang.
pub struct DeviceCtx<'a> {
    buffers: &'a mut HashMap<u64, Vec<f64>>,
    gang: &'a WorkStealingPool,
}

impl DeviceCtx<'_> {
    /// Borrow a buffer immutably.
    ///
    /// # Panics
    /// Panics on an unknown (or currently taken) buffer id.
    pub fn buf(&self, id: BufId) -> &[f64] {
        self.buffers
            .get(&id.0)
            .unwrap_or_else(|| panic!("unknown device buffer {id:?}"))
    }

    /// Borrow a buffer mutably.
    pub fn buf_mut(&mut self, id: BufId) -> &mut [f64] {
        self.buffers
            .get_mut(&id.0)
            .unwrap_or_else(|| panic!("unknown device buffer {id:?}"))
    }

    /// Temporarily remove a buffer from the arena (take/put lets a kernel
    /// hold one buffer mutably while reading others).
    pub fn take(&mut self, id: BufId) -> Vec<f64> {
        self.buffers
            .remove(&id.0)
            .unwrap_or_else(|| panic!("unknown device buffer {id:?}"))
    }

    /// Return a buffer taken with [`DeviceCtx::take`].
    pub fn put(&mut self, id: BufId, data: Vec<f64>) {
        self.buffers.insert(id.0, data);
    }

    /// Gang-parallel loop over `0..n` (the device's "grid launch").
    pub fn par_for(&self, n: usize, chunk: usize, f: &(dyn Fn(usize) + Sync)) {
        self.gang.par_for(n, chunk, f);
    }

    /// The device's internal compute gang, for code that wants to drive
    /// its own parallel structure.
    pub fn gang(&self) -> &WorkStealingPool {
        self.gang
    }

    /// Gang width.
    pub fn parallelism(&self) -> usize {
        self.gang.nthreads()
    }
}

type Kernel = Box<dyn FnOnce(&mut DeviceCtx) + Send + 'static>;

enum Command {
    Alloc(u64, usize),
    Free(u64),
    /// Bool flags a fault-injected copy: the transfer cost is paid twice
    /// (one failed attempt + the retry).
    H2D(u64, Vec<f64>, Promise<()>, bool),
    D2H(u64, Promise<Vec<f64>>),
    /// Bool flags a fault-injected launch: the kernel still executes (the
    /// transparent host fallback), but its time is charged at host speed
    /// instead of through the throughput multiplier.
    Launch(Kernel, Promise<()>, bool),
    Fence(Promise<()>),
    SetMetrics(Arc<Registry>),
    SetTrace(Arc<Tracer>, Arc<Track>),
    Shutdown,
}

/// Host-side handle to a simulated accelerator.
pub struct Accelerator {
    tx: Sender<Command>,
    next_id: AtomicU64,
    cfg: AcceleratorConfig,
    /// Modeled device-time consumed, in nanoseconds.
    vclock_ns: std::sync::Arc<AtomicU64>,
    worker: Option<JoinHandle<()>>,
    /// Optional fault injector (failed launches fall back to host-speed
    /// execution, failed copies are retried — both transparently).
    injector: Option<Arc<FaultInjector>>,
}

impl Accelerator {
    /// Bring up a device with the given configuration.
    pub fn new(cfg: AcceleratorConfig) -> Self {
        let (tx, rx) = unbounded::<Command>();
        let dev_cfg = cfg.clone();
        let vclock_ns = std::sync::Arc::new(AtomicU64::new(0));
        let vclock = vclock_ns.clone();
        let worker = std::thread::Builder::new()
            .name(format!("{}-queue", cfg.name))
            .spawn(move || {
                let gang = WorkStealingPool::new(dev_cfg.compute_threads.max(1));
                let mut buffers: HashMap<u64, Vec<f64>> = HashMap::new();
                let mut metrics: Option<Arc<Registry>> = None;
                let mut trace: Option<(Arc<Tracer>, Arc<Track>)> = None;
                // Record a *modeled* duration (what the virtual clock was
                // charged) into a phase histogram.
                let record = |metrics: &Option<Arc<Registry>>, name: &str, secs: f64| {
                    if let Some(m) = metrics {
                        m.histogram(name).record((secs * 1e9) as u64);
                    }
                };
                // Flight-recorder spans cover the *physical* queue-thread
                // occupancy (wall clock); the modeled charge rides along
                // as the span argument.
                let tstart = |trace: &Option<(Arc<Tracer>, Arc<Track>)>| {
                    trace.as_ref().map(|(tr, _)| tr.now_ns())
                };
                let tspan = |trace: &Option<(Arc<Tracer>, Arc<Track>)>,
                             name: &'static str,
                             t0: Option<u64>,
                             secs: f64| {
                    if let (Some((tr, tk)), Some(t0)) = (trace, t0) {
                        tk.span_arg(name, t0, tr.now_ns(), secs);
                    }
                };
                for cmd in rx {
                    match cmd {
                        Command::Alloc(id, len) => {
                            buffers.insert(id, vec![0.0; len]);
                        }
                        Command::Free(id) => {
                            buffers.remove(&id);
                        }
                        Command::H2D(id, data, done, faulted) => {
                            let t0 = tstart(&trace);
                            charge_copy(&dev_cfg, data.len());
                            let mut secs = copy_secs(&dev_cfg, data.len());
                            if faulted {
                                // The failed first attempt paid the link
                                // cost too before the retry succeeded.
                                secs *= 2.0;
                            }
                            charge_vclock(&vclock, secs);
                            record(&metrics, "phase.dev.h2d", secs);
                            tspan(&trace, "phase.dev.h2d", t0, secs);
                            if let Some(m) = &metrics {
                                m.counter("dev.h2d.bytes")
                                    .add(std::mem::size_of_val(&data[..]) as u64);
                            }
                            let buf = buffers.get_mut(&id).expect("H2D into unallocated buffer");
                            assert_eq!(buf.len(), data.len(), "H2D size mismatch");
                            buf.copy_from_slice(&data);
                            done.set(());
                        }
                        Command::D2H(id, done) => {
                            let t0 = tstart(&trace);
                            let buf = buffers.get(&id).expect("D2H from unallocated buffer");
                            charge_copy(&dev_cfg, buf.len());
                            let secs = copy_secs(&dev_cfg, buf.len());
                            charge_vclock(&vclock, secs);
                            record(&metrics, "phase.dev.d2h", secs);
                            tspan(&trace, "phase.dev.d2h", t0, secs);
                            if let Some(m) = &metrics {
                                m.counter("dev.d2h.bytes")
                                    .add(std::mem::size_of_val(&buf[..]) as u64);
                            }
                            done.set(buf.clone());
                        }
                        Command::Launch(kernel, done, host_fallback) => {
                            let lt0 = tstart(&trace);
                            spin_for(dev_cfg.launch_overhead);
                            let mut ctx = DeviceCtx {
                                buffers: &mut buffers,
                                gang: &gang,
                            };
                            let t0 = std::time::Instant::now();
                            kernel(&mut ctx);
                            // A failed launch re-runs on the host: same
                            // kernel, same data (results stay
                            // bit-identical), but no accelerator speedup.
                            let multiplier = if host_fallback {
                                1.0
                            } else {
                                dev_cfg.throughput_multiplier.max(1e-9)
                            };
                            let secs = dev_cfg.launch_overhead.as_secs_f64()
                                + t0.elapsed().as_secs_f64() / multiplier;
                            charge_vclock(&vclock, secs);
                            record(&metrics, "phase.dev.launch", secs);
                            tspan(&trace, "phase.dev.launch", lt0, secs);
                            if host_fallback {
                                if let Some((tr, tk)) = &trace {
                                    tk.instant("dev.launch.host_fallback", tr.now_ns(), 1.0);
                                }
                            }
                            done.set(());
                        }
                        Command::Fence(done) => done.set(()),
                        Command::SetMetrics(m) => metrics = Some(m),
                        Command::SetTrace(tr, tk) => trace = Some((tr, tk)),
                        Command::Shutdown => break,
                    }
                }
            })
            .expect("failed to spawn device thread");
        Accelerator {
            tx,
            next_id: AtomicU64::new(1),
            cfg,
            vclock_ns,
            worker: Some(worker),
            injector: None,
        }
    }

    /// Attach a fault injector: subsequent launches/copies may be failed
    /// according to its plan, with transparent recovery (host-fallback
    /// execution and copy retries). Results are unaffected; only the
    /// virtual clock and the injector's counters change.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The attached fault injector's counters, if any.
    pub fn fault_stats(&self) -> Option<crate::fault::FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Attach a metrics registry. Subsequent queue commands record their
    /// *modeled* durations — the same values charged to the virtual
    /// clock — into `phase.dev.h2d` / `phase.dev.d2h` / `phase.dev.launch`
    /// histograms, and staging volume into `dev.{h2d,d2h}.bytes`
    /// counters. Takes effect in queue order, like every other command.
    pub fn set_metrics(&self, metrics: Arc<Registry>) {
        self.tx
            .send(Command::SetMetrics(metrics))
            .expect("device queue closed");
    }

    /// Attach a flight-recorder track: subsequent queue commands record
    /// wall-clock spans of the queue thread's occupancy (`phase.dev.*`),
    /// with the modeled virtual-clock charge carried as the span
    /// argument, plus a `dev.launch.host_fallback` instant per
    /// fault-injected launch. Takes effect in queue order.
    pub fn set_trace(&self, tracer: Arc<Tracer>, track: Arc<Track>) {
        self.tx
            .send(Command::SetTrace(tracer, track))
            .expect("device queue closed");
    }

    /// Modeled device time consumed so far (launch overheads + kernel
    /// times scaled by the throughput multiplier + copy times). This is
    /// what a timer on a real accelerator of the configured speed would
    /// read; compare against host wall time for offload studies (T3).
    pub fn virtual_time(&self) -> Duration {
        Duration::from_nanos(self.vclock_ns.load(Ordering::Relaxed))
    }

    /// Device configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Allocate a zero-initialized device buffer of `len` doubles.
    pub fn alloc(&self, len: usize) -> BufId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Command::Alloc(id, len))
            .expect("device queue closed");
        BufId(id)
    }

    /// Free a device buffer.
    pub fn free(&self, id: BufId) {
        let _ = self.tx.send(Command::Free(id.0));
    }

    /// Asynchronously copy host data into a device buffer. An injected
    /// copy fault costs one failed attempt (charged to the virtual clock)
    /// before the transparent retry.
    pub fn copy_to_device(&self, id: BufId, data: &[f64]) -> Future<()> {
        let faulted = self.injector.as_ref().is_some_and(|i| i.should_fail_copy());
        let (p, f) = promise();
        self.tx
            .send(Command::H2D(id.0, data.to_vec(), p, faulted))
            .expect("device queue closed");
        f
    }

    /// Asynchronously copy a device buffer back to the host.
    pub fn copy_to_host(&self, id: BufId) -> Future<Vec<f64>> {
        let (p, f) = promise();
        self.tx
            .send(Command::D2H(id.0, p))
            .expect("device queue closed");
        f
    }

    /// Asynchronously launch a kernel on the device's command queue. An
    /// injected launch fault executes the kernel anyway — the transparent
    /// host fallback — but at host speed on the virtual clock.
    pub fn launch(&self, kernel: impl FnOnce(&mut DeviceCtx) + Send + 'static) -> Future<()> {
        let host_fallback = self
            .injector
            .as_ref()
            .is_some_and(|i| i.should_fail_launch());
        let (p, f) = promise();
        self.tx
            .send(Command::Launch(Box::new(kernel), p, host_fallback))
            .expect("device queue closed");
        f
    }

    /// Block until every previously enqueued command has completed.
    pub fn sync(&self) {
        let (p, f) = promise();
        self.tx
            .send(Command::Fence(p))
            .expect("device queue closed");
        f.get();
    }
}

impl Drop for Accelerator {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// Model the time cost of moving `len` doubles across the host↔device link.
fn charge_copy(cfg: &AcceleratorConfig, len: usize) {
    let secs = copy_secs(cfg, len);
    if secs > 0.0 {
        spin_for(Duration::from_secs_f64(secs));
    }
}

/// Modeled transfer time of `len` doubles, in seconds.
fn copy_secs(cfg: &AcceleratorConfig, len: usize) -> f64 {
    if cfg.copy_bandwidth.is_finite() && cfg.copy_bandwidth > 0.0 {
        (len * std::mem::size_of::<f64>()) as f64 / cfg.copy_bandwidth
    } else {
        0.0
    }
}

/// Accumulate seconds onto the device's virtual clock.
fn charge_vclock(clock: &AtomicU64, secs: f64) {
    clock.fetch_add((secs * 1e9) as u64, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> AcceleratorConfig {
        AcceleratorConfig {
            compute_threads: 2,
            launch_overhead: Duration::ZERO,
            copy_bandwidth: f64::INFINITY,
            throughput_multiplier: 1.0,
            name: "test-accel".to_string(),
        }
    }

    #[test]
    fn h2d_d2h_roundtrip() {
        let dev = Accelerator::new(fast_cfg());
        let buf = dev.alloc(5);
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        dev.copy_to_device(buf, &data).get();
        assert_eq!(dev.copy_to_host(buf).get(), data);
    }

    #[test]
    fn kernel_transforms_buffer() {
        let dev = Accelerator::new(fast_cfg());
        let buf = dev.alloc(100);
        dev.copy_to_device(buf, &vec![2.0; 100]).get();
        dev.launch(move |ctx| {
            let b = ctx.buf_mut(buf);
            for v in b.iter_mut() {
                *v *= 3.0;
            }
        })
        .get();
        assert!(dev.copy_to_host(buf).get().iter().all(|&v| v == 6.0));
    }

    #[test]
    fn gang_parallel_kernel() {
        let dev = Accelerator::new(fast_cfg());
        let n = 1024;
        let src = dev.alloc(n);
        let dst = dev.alloc(n);
        let input: Vec<f64> = (0..n).map(|i| i as f64).collect();
        dev.copy_to_device(src, &input).get();
        dev.launch(move |ctx| {
            let a = ctx.take(src);
            let mut b = ctx.take(dst);
            // Gang-parallel elementwise op over disjoint chunks.
            {
                let cells: Vec<_> = b.chunks_mut(64).collect();
                let cells: Vec<parking_lot::Mutex<&mut [f64]>> =
                    cells.into_iter().map(parking_lot::Mutex::new).collect();
                ctx.par_for(cells.len(), 1, &|c| {
                    let mut chunk = cells[c].lock();
                    let off = c * 64;
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = a[off + i] * a[off + i];
                    }
                });
            }
            ctx.put(src, a);
            ctx.put(dst, b);
        })
        .get();
        let out = dev.copy_to_host(dst).get();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as f64);
        }
    }

    #[test]
    fn commands_execute_in_order_without_waiting() {
        // Enqueue H2D, two kernels, D2H without waiting in between; the
        // in-order queue must produce the composed result.
        let dev = Accelerator::new(fast_cfg());
        let buf = dev.alloc(4);
        let _ = dev.copy_to_device(buf, &[1.0, 1.0, 1.0, 1.0]);
        let _ = dev.launch(move |ctx| {
            for v in ctx.buf_mut(buf) {
                *v += 1.0;
            }
        });
        let _ = dev.launch(move |ctx| {
            for v in ctx.buf_mut(buf) {
                *v *= 10.0;
            }
        });
        assert_eq!(dev.copy_to_host(buf).get(), vec![20.0; 4]);
    }

    #[test]
    fn sync_is_a_full_fence() {
        let dev = Accelerator::new(fast_cfg());
        let buf = dev.alloc(1);
        let done = dev.launch(move |ctx| {
            ctx.buf_mut(buf)[0] = 42.0;
        });
        dev.sync();
        // After sync the earlier launch must have completed.
        assert!(done.is_ready());
    }

    #[test]
    fn launch_overhead_is_charged() {
        let mut cfg = fast_cfg();
        cfg.launch_overhead = Duration::from_millis(5);
        let dev = Accelerator::new(cfg);
        let buf = dev.alloc(1);
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            dev.launch(move |ctx| {
                ctx.buf_mut(buf)[0] += 1.0;
            });
        }
        dev.sync();
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "4 launches at 5ms overhead should take >= 20ms, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn free_then_realloc() {
        let dev = Accelerator::new(fast_cfg());
        let a = dev.alloc(10);
        dev.free(a);
        let b = dev.alloc(10);
        assert_ne!(a, b, "buffer ids are never recycled");
        dev.copy_to_device(b, &[1.0; 10]).get();
    }

    #[test]
    fn buffers_start_zeroed() {
        let dev = Accelerator::new(fast_cfg());
        let b = dev.alloc(8);
        assert_eq!(dev.copy_to_host(b).get(), vec![0.0; 8]);
    }

    #[test]
    fn metrics_record_staging_and_launch() {
        let mut cfg = fast_cfg();
        cfg.copy_bandwidth = 8e9;
        cfg.launch_overhead = Duration::from_micros(100);
        let dev = Accelerator::new(cfg);
        let reg = Arc::new(Registry::new());
        dev.set_metrics(reg.clone());
        let buf = dev.alloc(1000);
        dev.copy_to_device(buf, &vec![1.0; 1000]).get();
        dev.launch(move |ctx| {
            for v in ctx.buf_mut(buf) {
                *v += 1.0;
            }
        })
        .get();
        let back = dev.copy_to_host(buf).get();
        assert!(back.iter().all(|&v| v == 2.0));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dev.h2d.bytes"], 8000);
        assert_eq!(snap.counters["dev.d2h.bytes"], 8000);
        assert_eq!(snap.histograms["phase.dev.h2d"].count, 1);
        assert_eq!(snap.histograms["phase.dev.d2h"].count, 1);
        // 8000 B at 8 GB/s = 1 µs modeled copy time.
        assert!(snap.histograms["phase.dev.h2d"].sum >= 900);
        // The launch charge includes the 100 µs overhead.
        assert!(snap.histograms["phase.dev.launch"].sum >= 100_000);
        // Modeled staging time matches the virtual clock's copy charges.
        let copies = snap.phase_secs("phase.dev.h2d") + snap.phase_secs("phase.dev.d2h");
        assert!(copies <= dev.virtual_time().as_secs_f64());
    }

    #[test]
    fn injected_faults_are_transparent() {
        use crate::fault::{FaultInjector, FaultPlan};
        // Every launch fails, every copy fails: results must still be
        // exactly what a healthy device produces, with the faults counted.
        let mut dev = Accelerator::new(fast_cfg());
        let plan = FaultPlan {
            seed: 11,
            launch_fail_prob: 1.0,
            copy_fail_prob: 1.0,
            ..FaultPlan::disabled()
        };
        dev.set_fault_injector(Arc::new(FaultInjector::new(plan, 0)));
        let buf = dev.alloc(16);
        dev.copy_to_device(buf, &[3.0; 16]).get();
        dev.launch(move |ctx| {
            for v in ctx.buf_mut(buf) {
                *v += 1.0;
            }
        })
        .get();
        assert_eq!(dev.copy_to_host(buf).get(), vec![4.0; 16]);
        let st = dev.fault_stats().unwrap();
        assert_eq!(st.launches_failed, 1);
        assert_eq!(st.copies_failed, 1);
    }

    #[test]
    fn launch_fallback_charges_host_speed() {
        use crate::fault::{FaultInjector, FaultPlan};
        // A failed launch loses the accelerator speedup: its virtual-time
        // charge must exceed a healthy launch's by about the multiplier.
        let mut cfg = fast_cfg();
        cfg.throughput_multiplier = 16.0;
        let busy = || {
            move |ctx: &mut DeviceCtx| {
                let b = ctx.buf_mut(BufId(1));
                for _ in 0..2000 {
                    for v in b.iter_mut() {
                        *v = (*v + 1.0).sin();
                    }
                }
            }
        };
        let healthy = Accelerator::new(cfg.clone());
        let hb = healthy.alloc(512);
        assert_eq!(hb, BufId(1));
        healthy.launch(busy()).get();
        let t_healthy = healthy.virtual_time();

        let mut faulty = Accelerator::new(cfg);
        let plan = FaultPlan {
            seed: 1,
            launch_fail_prob: 1.0,
            ..FaultPlan::disabled()
        };
        faulty.set_fault_injector(Arc::new(FaultInjector::new(plan, 0)));
        let fb = faulty.alloc(512);
        assert_eq!(fb, BufId(1));
        faulty.launch(busy()).get();
        let t_faulty = faulty.virtual_time();
        assert!(
            t_faulty > t_healthy * 4,
            "host fallback {t_faulty:?} should dwarf accelerated {t_healthy:?}"
        );
    }
}
