//! Deterministic fault injection.
//!
//! Long campaigns on heterogeneous clusters see three practical failure
//! classes: corrupted cells (recovery breakdown at strong shocks), lost or
//! truncated halo traffic, and device-offload failures. This module
//! provides a seed-driven [`FaultPlan`] that injects all three on demand,
//! so every recovery path in the stack is exercisable in tests and in the
//! F10 experiment — reproducibly, because every draw comes from a counted
//! splitmix64 stream rather than ambient randomness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where in the step a *scheduled* rank-level fault (crash/stall) fires.
///
/// The distributed AMR driver has several communication windows per step;
/// killing a rank inside a specific one (mid-regrid, mid-reflux) exercises
/// recovery paths that a between-steps crash never reaches. `Step` keeps
/// the historical behaviour: the fault fires at the top of the step loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RankSite {
    /// Top of the step loop (the classic f11 crash site).
    #[default]
    Step,
    /// Inside a cross-rank halo/prolongation exchange window.
    Exchange,
    /// Inside the flux-register (reflux) exchange window.
    Reflux,
    /// Inside the regrid allgather/migration window.
    Regrid,
}

/// Which in-memory snapshot tier a scheduled bit flip targets.
///
/// The multi-level checkpoint stack keeps two frozen buffers per rank —
/// its own local snapshot (L1) and a buddy replica of a partner rank's
/// snapshot (L2). Rotting them selectively lets tests walk the recovery
/// ladder tier by tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotTarget {
    /// The rank's own local snapshot buffer.
    #[default]
    Local,
    /// The buddy replica held for a partner rank.
    Buddy,
    /// Both tiers (each probe of either tier may fire).
    Both,
}

/// What to inject, and how often. All probabilities are per opportunity
/// (per message, per launch, per copy, per step) in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the deterministic draw stream.
    pub seed: u64,
    /// Probability that a halo message is truncated in flight.
    pub msg_truncate_prob: f64,
    /// Probability that a message is delayed by [`FaultPlan::msg_delay`].
    pub msg_delay_prob: f64,
    /// Extra latency applied to delayed messages.
    pub msg_delay: Duration,
    /// Probability that a kernel launch fails on the device (the runtime
    /// falls back to host-speed execution).
    pub launch_fail_prob: f64,
    /// Probability that a host→device copy fails once and is retried.
    pub copy_fail_prob: f64,
    /// Probability per step that one cell of the evolved state is
    /// corrupted (models recovery breakdown; exercised by the cascade).
    pub cell_poison_prob: f64,
    /// Rank that crashes (stops sending and never answers again), if any.
    pub crash_rank: Option<usize>,
    /// Step at which [`FaultPlan::crash_rank`] dies.
    pub crash_step: u64,
    /// Window within the crash step where the victim dies.
    pub crash_site: RankSite,
    /// Straggler rank whose modeled work/comm time is multiplied, if any.
    pub stall_rank: Option<usize>,
    /// Slowdown multiplier applied to the straggler (`> 1.0` slows it).
    pub stall_factor: f64,
    /// Window where the straggler's slowdown applies (`Step` = everywhere,
    /// matching the historical behaviour).
    pub stall_site: RankSite,
    /// Probability per step that one bit of the evolved conserved state
    /// flips silently (SDC — the flip passes through con2prim unnoticed;
    /// only the ABFT scrub can catch it).
    pub bitflip_prob: f64,
    /// Probability per scrub opportunity that one bit of a frozen
    /// in-memory snapshot buffer flips (models memory rot in the diskless
    /// checkpoint tiers).
    pub snapshot_bitflip_prob: f64,
    /// Which snapshot tier [`FaultPlan::snapshot_bitflip_prob`] targets.
    pub snapshot_flip_target: SnapshotTarget,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            msg_truncate_prob: 0.0,
            msg_delay_prob: 0.0,
            msg_delay: Duration::ZERO,
            launch_fail_prob: 0.0,
            copy_fail_prob: 0.0,
            cell_poison_prob: 0.0,
            crash_rank: None,
            crash_step: 0,
            crash_site: RankSite::Step,
            stall_rank: None,
            stall_factor: 1.0,
            stall_site: RankSite::Step,
            bitflip_prob: 0.0,
            snapshot_bitflip_prob: 0.0,
            snapshot_flip_target: SnapshotTarget::Local,
        }
    }

    /// `true` if any fault class has nonzero probability.
    pub fn is_active(&self) -> bool {
        self.msg_truncate_prob > 0.0
            || self.msg_delay_prob > 0.0
            || self.launch_fail_prob > 0.0
            || self.copy_fail_prob > 0.0
            || self.cell_poison_prob > 0.0
            || self.crash_rank.is_some()
            || (self.stall_rank.is_some() && self.stall_factor != 1.0)
            || self.bitflip_prob > 0.0
            || self.snapshot_bitflip_prob > 0.0
    }
}

/// Counters of faults actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Halo messages truncated.
    pub msgs_truncated: u64,
    /// Messages delayed.
    pub msgs_delayed: u64,
    /// Kernel launches failed (and recovered via host fallback).
    pub launches_failed: u64,
    /// Host→device copies failed (and retried).
    pub copies_failed: u64,
    /// Cells poisoned.
    pub cells_poisoned: u64,
    /// Rank crashes fired (at most one per injector).
    pub ranks_crashed: u64,
    /// Stall multipliers applied to straggler work/comm sections.
    pub stall_events: u64,
    /// Silent bit flips injected into live conserved state.
    pub bits_flipped: u64,
    /// Bit flips injected into frozen in-memory snapshot buffers.
    pub snapshot_bits_flipped: u64,
}

/// Independent draw sites, so adding one fault class never perturbs the
/// draw sequence of another.
#[derive(Debug, Clone, Copy)]
enum Site {
    Truncate = 0,
    Delay = 1,
    Launch = 2,
    Copy = 3,
    Poison = 4,
    Retry = 5,
    BitFlip = 6,
    SnapshotFlip = 7,
}

const NSITES: usize = 8;

/// Thread-safe deterministic fault source. Each holder (rank, device)
/// gets its own injector salted by its identity; draws advance a per-site
/// counter, so the decision sequence is a pure function of
/// `(seed, salt, site, call index)`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    salt: u64,
    counters: [AtomicU64; NSITES],
    truncated: AtomicU64,
    delayed: AtomicU64,
    launches: AtomicU64,
    copies: AtomicU64,
    poisoned: AtomicU64,
    crashed: AtomicU64,
    stalled: AtomicU64,
    flipped: AtomicU64,
    snapshot_flipped: AtomicU64,
}

/// splitmix64: cheap, high-quality 64-bit mixing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// Build an injector for one holder (`salt` distinguishes holders —
    /// typically the rank id or a device index).
    pub fn new(plan: FaultPlan, salt: u64) -> Self {
        FaultInjector {
            plan,
            salt,
            counters: Default::default(),
            truncated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            copies: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            crashed: AtomicU64::new(0),
            stalled: AtomicU64::new(0),
            flipped: AtomicU64::new(0),
            snapshot_flipped: AtomicU64::new(0),
        }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A uniform draw in `[0, 1)` for `site`, advancing its counter.
    fn draw(&self, site: Site) -> f64 {
        let n = self.counters[site as usize].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan
                .seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(self.salt)
                .wrapping_add((site as u64) << 32)
                .wrapping_add(n.wrapping_mul(0x2545f4914f6cdd1d)),
        );
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the next halo message be truncated?
    pub fn should_truncate_msg(&self) -> bool {
        let hit = self.draw(Site::Truncate) < self.plan.msg_truncate_prob;
        if hit {
            self.truncated.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should the next message be delayed? Returns the extra latency.
    pub fn should_delay_msg(&self) -> Option<Duration> {
        let hit = self.draw(Site::Delay) < self.plan.msg_delay_prob;
        if hit {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            Some(self.plan.msg_delay)
        } else {
            None
        }
    }

    /// Should the next kernel launch fail?
    pub fn should_fail_launch(&self) -> bool {
        let hit = self.draw(Site::Launch) < self.plan.launch_fail_prob;
        if hit {
            self.launches.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Should the next host→device copy fail?
    pub fn should_fail_copy(&self) -> bool {
        let hit = self.draw(Site::Copy) < self.plan.copy_fail_prob;
        if hit {
            self.copies.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Is a modeled link-level *retransmit* of a damaged halo payload
    /// damaged again? Draws from its own site (so enabling the retry tier
    /// never shifts the original truncation stream) against the same
    /// per-message damage probability, and does **not** bump the
    /// truncation counter — retransmits are accounted by the comm layer.
    pub fn should_corrupt_retry(&self) -> bool {
        self.draw(Site::Retry) < self.plan.msg_truncate_prob
    }

    /// Should a cell be poisoned this step? Returns a deterministic index
    /// selector in `[0, 2^32)` for the caller to pick the victim cell.
    pub fn should_poison_cell(&self) -> Option<u64> {
        let v = self.draw(Site::Poison);
        if v < self.plan.cell_poison_prob {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            // Re-mix the draw for a victim selector independent of the
            // accept threshold.
            Some(splitmix64((v.to_bits()).wrapping_add(self.salt)) & 0xffff_ffff)
        } else {
            None
        }
    }

    /// Should one bit of the evolved conserved state flip this step?
    /// Returns a deterministic 64-bit selector the caller reduces to a
    /// victim (element, bit) pair. Unlike [`should_poison_cell`], the
    /// flipped value is *not* non-finite or out of range in general — it
    /// models SDC that con2prim cannot see, so only an ABFT checksum
    /// comparison against the last committed stamp detects it.
    ///
    /// [`should_poison_cell`]: FaultInjector::should_poison_cell
    pub fn should_flip_bit(&self) -> Option<u64> {
        let v = self.draw(Site::BitFlip);
        if v < self.plan.bitflip_prob {
            self.flipped.fetch_add(1, Ordering::Relaxed);
            Some(splitmix64((v.to_bits()).wrapping_add(self.salt)))
        } else {
            None
        }
    }

    /// Should a frozen in-memory snapshot buffer of `tier` rot? Only
    /// fires when the plan's [`FaultPlan::snapshot_flip_target`] covers
    /// `tier` ([`SnapshotTarget::Both`] covers either); probes for
    /// non-targeted tiers still consume a draw so the stream position is
    /// a pure function of the probe count, not of the configured target.
    pub fn should_flip_snapshot_bit(&self, tier: SnapshotTarget) -> Option<u64> {
        let v = self.draw(Site::SnapshotFlip);
        let targeted = self.plan.snapshot_flip_target == SnapshotTarget::Both
            || self.plan.snapshot_flip_target == tier;
        if targeted && v < self.plan.snapshot_bitflip_prob {
            self.snapshot_flipped.fetch_add(1, Ordering::Relaxed);
            Some(splitmix64(
                (v.to_bits()).wrapping_add(self.salt.rotate_left(17)),
            ))
        } else {
            None
        }
    }

    /// Should `rank` crash at `step`? Rank-level faults are *scheduled*
    /// rather than probabilistic — "rank r dies at step s" — so the
    /// predicate is a pure function of the plan and consumes no draws
    /// (the existing per-site streams are untouched). Fires on every call
    /// at or past the crash step; the first hit is counted. Equivalent to
    /// [`FaultInjector::should_crash_at`] with [`RankSite::Step`].
    pub fn should_crash_rank(&self, rank: usize, step: u64) -> bool {
        self.should_crash_at(rank, step, RankSite::Step)
    }

    /// Site-gated crash predicate: within the crash step the victim dies
    /// only inside the configured [`FaultPlan::crash_site`] window (so a
    /// `Regrid` crash survives the earlier exchange windows of that step);
    /// past the crash step it reads dead from every site. Pure function of
    /// the plan — consumes no draws.
    pub fn should_crash_at(&self, rank: usize, step: u64, site: RankSite) -> bool {
        if self.plan.crash_rank != Some(rank) {
            return false;
        }
        let hit = step > self.plan.crash_step
            || (step == self.plan.crash_step && site == self.plan.crash_site);
        if hit && step == self.plan.crash_step {
            self.crashed.store(1, Ordering::Relaxed);
        }
        hit
    }

    /// Work/comm-time multiplier for `rank` if it is the configured
    /// straggler (`None` for healthy ranks). Like
    /// [`FaultInjector::should_crash_rank`] this is scheduled, not drawn,
    /// so it cannot perturb the probabilistic streams. Equivalent to
    /// [`FaultInjector::should_stall_at`] with [`RankSite::Step`].
    pub fn should_stall_rank(&self, rank: usize) -> Option<f64> {
        self.should_stall_at(rank, RankSite::Step)
    }

    /// Site-gated stall predicate. A plan whose
    /// [`FaultPlan::stall_site`] is [`RankSite::Step`] stalls the
    /// straggler everywhere (the historical behaviour); any other site
    /// stalls it only inside that window.
    pub fn should_stall_at(&self, rank: usize, site: RankSite) -> Option<f64> {
        if self.plan.stall_rank == Some(rank)
            && self.plan.stall_factor != 1.0
            && (self.plan.stall_site == RankSite::Step || self.plan.stall_site == site)
        {
            self.stalled.fetch_add(1, Ordering::Relaxed);
            Some(self.plan.stall_factor)
        } else {
            None
        }
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            msgs_truncated: self.truncated.load(Ordering::Relaxed),
            msgs_delayed: self.delayed.load(Ordering::Relaxed),
            launches_failed: self.launches.load(Ordering::Relaxed),
            copies_failed: self.copies.load(Ordering::Relaxed),
            cells_poisoned: self.poisoned.load(Ordering::Relaxed),
            ranks_crashed: self.crashed.load(Ordering::Relaxed),
            stall_events: self.stalled.load(Ordering::Relaxed),
            bits_flipped: self.flipped.load(Ordering::Relaxed),
            snapshot_bits_flipped: self.snapshot_flipped.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            msg_truncate_prob: 0.25,
            msg_delay_prob: 0.25,
            msg_delay: Duration::from_micros(10),
            launch_fail_prob: 0.25,
            copy_fail_prob: 0.25,
            cell_poison_prob: 0.25,
            ..FaultPlan::disabled()
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = FaultInjector::new(plan(42), 3);
        let b = FaultInjector::new(plan(42), 3);
        for _ in 0..256 {
            assert_eq!(a.should_truncate_msg(), b.should_truncate_msg());
            assert_eq!(a.should_fail_launch(), b.should_fail_launch());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn sites_are_independent_streams() {
        // Drawing from one site must not shift another's sequence.
        let a = FaultInjector::new(plan(7), 0);
        let b = FaultInjector::new(plan(7), 0);
        for _ in 0..64 {
            let _ = a.should_fail_copy();
        }
        for _ in 0..64 {
            assert_eq!(a.should_truncate_msg(), b.should_truncate_msg());
        }
    }

    #[test]
    fn seeds_and_salts_differ() {
        let hits = |seed: u64, salt: u64| -> u64 {
            let inj = FaultInjector::new(plan(seed), salt);
            (0..512).filter(|_| inj.should_truncate_msg()).count() as u64
        };
        // Same plan, different salts should not produce the same pattern
        // (astronomically unlikely with 512 ~25% draws unless the salt is
        // ignored). Compare sequences, not just totals.
        let seq = |seed: u64, salt: u64| -> Vec<bool> {
            let inj = FaultInjector::new(plan(seed), salt);
            (0..128).map(|_| inj.should_truncate_msg()).collect()
        };
        assert_ne!(seq(1, 0), seq(1, 1));
        assert_ne!(seq(1, 0), seq(2, 0));
        // Hit rate is in the right ballpark for p = 0.25.
        let h = hits(9, 0);
        assert!((64..192).contains(&h), "hit count {h} of 512 at p=0.25");
    }

    #[test]
    fn disabled_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::disabled(), 0);
        for _ in 0..128 {
            assert!(!inj.should_truncate_msg());
            assert!(inj.should_delay_msg().is_none());
            assert!(!inj.should_fail_launch());
            assert!(!inj.should_fail_copy());
            assert!(inj.should_poison_cell().is_none());
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(!FaultPlan::disabled().is_active());
    }

    #[test]
    fn rank_crash_fires_at_chosen_step_only_for_victim() {
        let p = FaultPlan {
            crash_rank: Some(2),
            crash_step: 5,
            ..FaultPlan::disabled()
        };
        assert!(p.is_active());
        let inj = FaultInjector::new(p, 2);
        assert!(!inj.should_crash_rank(2, 4));
        assert!(!inj.should_crash_rank(0, 5));
        assert!(inj.should_crash_rank(2, 5));
        assert!(
            inj.should_crash_rank(2, 9),
            "stays dead after the crash step"
        );
        assert_eq!(inj.stats().ranks_crashed, 1);
    }

    #[test]
    fn crash_site_gates_within_the_crash_step() {
        let p = FaultPlan {
            crash_rank: Some(1),
            crash_step: 4,
            crash_site: RankSite::Regrid,
            ..FaultPlan::disabled()
        };
        let inj = FaultInjector::new(p, 1);
        // Before the crash step: alive at every site.
        for site in [
            RankSite::Step,
            RankSite::Exchange,
            RankSite::Reflux,
            RankSite::Regrid,
        ] {
            assert!(!inj.should_crash_at(1, 3, site));
        }
        // At the crash step: survives the earlier windows, dies in regrid.
        assert!(!inj.should_crash_at(1, 4, RankSite::Step));
        assert!(!inj.should_crash_at(1, 4, RankSite::Exchange));
        assert!(!inj.should_crash_at(1, 4, RankSite::Reflux));
        assert!(inj.should_crash_at(1, 4, RankSite::Regrid));
        // Past the crash step: dead from every site.
        assert!(inj.should_crash_at(1, 5, RankSite::Step));
        assert!(inj.should_crash_at(1, 7, RankSite::Exchange));
        // Non-victims never crash.
        assert!(!inj.should_crash_at(0, 9, RankSite::Regrid));
        assert_eq!(inj.stats().ranks_crashed, 1);
    }

    #[test]
    fn stall_site_gates_but_step_means_everywhere() {
        let everywhere = FaultPlan {
            stall_rank: Some(2),
            stall_factor: 2.5,
            ..FaultPlan::disabled()
        };
        let inj = FaultInjector::new(everywhere, 2);
        assert_eq!(inj.should_stall_at(2, RankSite::Exchange), Some(2.5));
        assert_eq!(inj.should_stall_at(2, RankSite::Regrid), Some(2.5));
        let gated = FaultPlan {
            stall_rank: Some(2),
            stall_factor: 2.5,
            stall_site: RankSite::Reflux,
            ..FaultPlan::disabled()
        };
        let inj = FaultInjector::new(gated, 2);
        assert_eq!(inj.should_stall_at(2, RankSite::Exchange), None);
        assert_eq!(inj.should_stall_rank(2), None);
        assert_eq!(inj.should_stall_at(2, RankSite::Reflux), Some(2.5));
        assert_eq!(inj.stats().stall_events, 1);
    }

    #[test]
    fn stall_applies_only_to_straggler() {
        let p = FaultPlan {
            stall_rank: Some(1),
            stall_factor: 3.0,
            ..FaultPlan::disabled()
        };
        assert!(p.is_active());
        let inj = FaultInjector::new(p, 1);
        assert_eq!(inj.should_stall_rank(0), None);
        assert_eq!(inj.should_stall_rank(1), Some(3.0));
        assert_eq!(inj.should_stall_rank(1), Some(3.0));
        assert_eq!(inj.stats().stall_events, 2);
        // A unit factor is a no-op and keeps the plan inactive.
        let noop = FaultPlan {
            stall_rank: Some(1),
            ..FaultPlan::disabled()
        };
        assert!(!noop.is_active());
    }

    #[test]
    fn rank_level_sites_do_not_perturb_draw_streams() {
        let mut with_rank_faults = plan(7);
        with_rank_faults.crash_rank = Some(3);
        with_rank_faults.crash_step = 2;
        with_rank_faults.stall_rank = Some(1);
        with_rank_faults.stall_factor = 4.0;
        let a = FaultInjector::new(plan(7), 0);
        let b = FaultInjector::new(with_rank_faults, 0);
        for step in 0..64 {
            let _ = b.should_crash_rank(3, step);
            let _ = b.should_stall_rank(1);
            assert_eq!(a.should_truncate_msg(), b.should_truncate_msg());
            assert_eq!(a.should_fail_launch(), b.should_fail_launch());
        }
    }

    #[test]
    fn bitflip_sites_do_not_perturb_existing_streams() {
        // Enabling (and drawing from) the SDC sites must leave every
        // pre-existing site's sequence untouched — same guarantee the
        // rank-level sites give.
        let mut with_flips = plan(7);
        with_flips.bitflip_prob = 0.5;
        with_flips.snapshot_bitflip_prob = 0.5;
        with_flips.snapshot_flip_target = SnapshotTarget::Both;
        let a = FaultInjector::new(plan(7), 0);
        let b = FaultInjector::new(with_flips, 0);
        for _ in 0..64 {
            let _ = b.should_flip_bit();
            let _ = b.should_flip_snapshot_bit(SnapshotTarget::Local);
            let _ = b.should_flip_snapshot_bit(SnapshotTarget::Buddy);
            assert_eq!(a.should_truncate_msg(), b.should_truncate_msg());
            assert_eq!(a.should_fail_launch(), b.should_fail_launch());
            assert_eq!(
                a.should_poison_cell().is_some(),
                b.should_poison_cell().is_some()
            );
        }
    }

    #[test]
    fn bitflips_are_deterministic_and_counted() {
        let mut p = plan(11);
        p.bitflip_prob = 0.5;
        let a = FaultInjector::new(p.clone(), 4);
        let b = FaultInjector::new(p, 4);
        let sa: Vec<Option<u64>> = (0..128).map(|_| a.should_flip_bit()).collect();
        let sb: Vec<Option<u64>> = (0..128).map(|_| b.should_flip_bit()).collect();
        assert_eq!(sa, sb);
        let hits = sa.iter().filter(|s| s.is_some()).count() as u64;
        assert!(hits > 0, "p=0.5 over 128 draws must hit");
        assert_eq!(a.stats().bits_flipped, hits);
        assert_eq!(a.stats().snapshot_bits_flipped, 0);
    }

    #[test]
    fn snapshot_flip_target_gates_tiers() {
        let mut p = plan(13);
        p.snapshot_bitflip_prob = 1.0;
        p.snapshot_flip_target = SnapshotTarget::Buddy;
        let inj = FaultInjector::new(p.clone(), 0);
        for _ in 0..16 {
            assert!(inj
                .should_flip_snapshot_bit(SnapshotTarget::Local)
                .is_none());
            assert!(inj
                .should_flip_snapshot_bit(SnapshotTarget::Buddy)
                .is_some());
        }
        assert_eq!(inj.stats().snapshot_bits_flipped, 16);
        // `Both` hits either tier's probes.
        p.snapshot_flip_target = SnapshotTarget::Both;
        let inj = FaultInjector::new(p, 0);
        assert!(inj
            .should_flip_snapshot_bit(SnapshotTarget::Local)
            .is_some());
        assert!(inj
            .should_flip_snapshot_bit(SnapshotTarget::Buddy)
            .is_some());
        // Flip plans register as active.
        let only_flips = FaultPlan {
            bitflip_prob: 0.01,
            ..FaultPlan::disabled()
        };
        assert!(only_flips.is_active());
    }

    #[test]
    fn stats_count_hits() {
        let mut p = plan(5);
        p.msg_truncate_prob = 1.0;
        p.copy_fail_prob = 1.0;
        let inj = FaultInjector::new(p, 0);
        for _ in 0..10 {
            assert!(inj.should_truncate_msg());
            assert!(inj.should_fail_copy());
        }
        let st = inj.stats();
        assert_eq!(st.msgs_truncated, 10);
        assert_eq!(st.copies_failed, 10);
        assert_eq!(st.launches_failed, 0);
    }
}
