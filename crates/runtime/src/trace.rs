//! Span-based flight-recorder tracing.
//!
//! The metrics layer ([`crate::metrics`]) aggregates *how much* time each
//! phase costs; this module records *when* — a bounded, always-on event
//! timeline per rank/thread ("flight recorder" semantics: fixed-capacity
//! ring buffers, old events overwritten, so a run can trace forever and
//! still replay its last moments after a fault).
//!
//! * [`Tracer`] owns the per-track ring buffers and the trace epoch. One
//!   tracer is shared by every rank of a run, like a metrics `Registry`.
//! * [`Track`] is one timeline: `pid` is the owning rank (a Perfetto
//!   *process*), `tid` a thread/stream within it (main loop, device
//!   queue). Tracks record three event kinds: **spans** (begin/end with a
//!   duration), **instants** (points in time: a suspicion, a breaker
//!   trip) and **counters** (sampled values: the physics-health series).
//! * Timestamps use the same virtual-time-aware convention as the phase
//!   histograms: in virtual-time universes the caller stamps events with
//!   the rank's virtual clock (wall clocks there are distorted by
//!   CPU-token serialization); otherwise with wall time since the trace
//!   epoch. [`Tracer::stamp`] implements the choice.
//!
//! The sink is the Chrome trace-event JSON format, loadable by Perfetto
//! (`ui.perfetto.dev`) and `chrome://tracing`: one process per rank, one
//! track per thread, hand-rolled JSON like the BENCH reports (this crate
//! stays dependency-free). [`Tracer::write`] exports on demand;
//! [`Tracer::dump_on_fault`] is a one-shot latch the driver pulls on
//! fault escalation so the recorder's last window survives a dying run.
//!
//! Enabled via the environment ([`Tracer::from_env`]): `RHRSC_TRACE=<path>`
//! attaches a tracer whose fault dumps and on-demand writes go to
//! `<path>`; `RHRSC_TRACE_BUF=<events>` sizes each ring (default
//! [`DEFAULT_CAPACITY`]). Disabled tracing is one `Option` check per
//! event site, and instrumentation never changes the numbers.

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-track ring capacity (events), overridable with
/// `RHRSC_TRACE_BUF`.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A begin/end interval; `dur_ns` holds the duration.
    Span,
    /// A point in time (`arg` carries a small payload, e.g. a peer rank).
    Instant,
    /// A sampled value series (`arg` is the sample).
    Counter,
}

/// One trace event. 40 bytes, `Copy`, no allocation on the record path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Start time in nanoseconds since the trace epoch (virtual
    /// nanoseconds in virtual-time universes).
    pub t_ns: u64,
    /// Span duration in nanoseconds (0 for instants/counters).
    pub dur_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Static event name (`phase.halo.wait`, `liveness.suspect`, …).
    pub name: &'static str,
    /// Payload: counter value, instant argument, span annotation.
    pub arg: f64,
}

/// Fixed-capacity overwrite-oldest ring.
struct Ring {
    cap: usize,
    buf: Vec<Event>,
    /// Next write position once the buffer has filled.
    next: usize,
    /// Events overwritten (total recorded = buf.len() + dropped).
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap,
            buf: Vec::with_capacity(cap),
            next: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events oldest-first.
    fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

/// One timeline of the flight recorder (a Perfetto thread track).
pub struct Track {
    pid: u32,
    tid: u32,
    name: String,
    ring: Mutex<Ring>,
}

impl Track {
    /// The owning rank (Perfetto process id).
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Thread/stream id within the rank.
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Record a completed span `[t0_ns, t1_ns]`.
    pub fn span(&self, name: &'static str, t0_ns: u64, t1_ns: u64) {
        self.span_arg(name, t0_ns, t1_ns, 0.0);
    }

    /// Record a completed span with an annotation payload.
    pub fn span_arg(&self, name: &'static str, t0_ns: u64, t1_ns: u64, arg: f64) {
        self.ring.lock().push(Event {
            t_ns: t0_ns,
            dur_ns: t1_ns.saturating_sub(t0_ns),
            kind: EventKind::Span,
            name,
            arg,
        });
    }

    /// Record an instant event.
    pub fn instant(&self, name: &'static str, t_ns: u64, arg: f64) {
        self.ring.lock().push(Event {
            t_ns,
            dur_ns: 0,
            kind: EventKind::Instant,
            name,
            arg,
        });
    }

    /// Record a counter sample.
    pub fn counter(&self, name: &'static str, t_ns: u64, value: f64) {
        self.ring.lock().push(Event {
            t_ns,
            dur_ns: 0,
            kind: EventKind::Counter,
            name,
            arg: value,
        });
    }

    /// Snapshot the ring: events oldest-first, plus the overwrite count.
    pub fn events(&self) -> (Vec<Event>, u64) {
        let ring = self.ring.lock();
        (ring.ordered(), ring.dropped)
    }
}

/// The flight recorder: a set of ring-buffer tracks plus the export
/// sinks. Shared across ranks behind an `Arc`, like a metrics registry.
pub struct Tracer {
    capacity: usize,
    epoch: Instant,
    tracks: Mutex<Vec<Arc<Track>>>,
    dump_path: Mutex<Option<PathBuf>>,
    dumped: AtomicBool,
}

impl Tracer {
    /// A tracer whose tracks each hold `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            capacity: capacity.max(16),
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
            dump_path: Mutex::new(None),
            dumped: AtomicBool::new(false),
        }
    }

    /// Build a tracer from the environment: `Some` when `RHRSC_TRACE` is
    /// set (its value is the dump/export path), ring capacity from
    /// `RHRSC_TRACE_BUF` (default [`DEFAULT_CAPACITY`]).
    pub fn from_env() -> Option<Arc<Tracer>> {
        let path = std::env::var("RHRSC_TRACE")
            .ok()
            .filter(|s| !s.is_empty())?;
        let tracer = Tracer::new_env_sized();
        tracer.set_dump_path(Some(PathBuf::from(path)));
        Some(tracer)
    }

    /// A tracer sized by `RHRSC_TRACE_BUF` (default
    /// [`DEFAULT_CAPACITY`]) with no dump path — for callers that pick
    /// the export destination themselves (e.g. a bench's `--trace-out`).
    pub fn new_env_sized() -> Arc<Tracer> {
        Arc::new(Tracer::new(capacity_from_env()))
    }

    /// Per-track ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Where [`Tracer::dump_on_fault`] writes (also the default export
    /// path benches use when only `RHRSC_TRACE` is given).
    pub fn dump_path(&self) -> Option<PathBuf> {
        self.dump_path.lock().clone()
    }

    /// Set the fault-dump/export path.
    pub fn set_dump_path(&self, path: Option<PathBuf>) {
        *self.dump_path.lock() = path;
    }

    /// Wall nanoseconds since the trace epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Timestamp "now" for an event: the rank's virtual clock when
    /// `vtime` is `Some` (virtual-time universes), wall time otherwise.
    pub fn stamp(&self, vtime: Option<f64>) -> u64 {
        match vtime {
            Some(v) => (v.max(0.0) * 1e9) as u64,
            None => self.now_ns(),
        }
    }

    /// Get or create the track `(pid, tid)`. The first creation names
    /// it; later callers share the same ring.
    pub fn track(&self, pid: u32, tid: u32, name: &str) -> Arc<Track> {
        let mut tracks = self.tracks.lock();
        if let Some(t) = tracks.iter().find(|t| t.pid == pid && t.tid == tid) {
            return t.clone();
        }
        let t = Arc::new(Track {
            pid,
            tid,
            name: name.to_string(),
            ring: Mutex::new(Ring::new(self.capacity)),
        });
        tracks.push(t.clone());
        t
    }

    /// All tracks, in creation order.
    pub fn tracks(&self) -> Vec<Arc<Track>> {
        self.tracks.lock().clone()
    }

    /// Every event of every track, merged into one globally ordered
    /// timeline: sorted by timestamp, ties broken by `(pid, tid)` and
    /// then per-track record order (the sort is stable), so merged order
    /// is deterministic under virtual time.
    pub fn merged_events(&self) -> Vec<(u32, u32, Event)> {
        let mut all = Vec::new();
        for track in self.tracks.lock().iter() {
            let (events, _) = track.events();
            all.extend(events.into_iter().map(|e| (track.pid, track.tid, e)));
        }
        all.sort_by_key(|e| (e.2.t_ns, e.0, e.1));
        all
    }

    /// Render the whole recorder as Chrome trace-event JSON (Perfetto
    /// loadable): process/thread metadata per track, `"X"` complete
    /// events for spans, `"i"` instants, `"C"` counters, timestamps in
    /// microseconds.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 * 1024);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&s);
        };
        let tracks = self.tracks.lock().clone();
        let mut seen_pids = Vec::new();
        for track in &tracks {
            if !seen_pids.contains(&track.pid) {
                seen_pids.push(track.pid);
                emit(
                    format!(
                        "{{\"ph\":\"M\",\"pid\":{},\"name\":\"process_name\",\
                         \"args\":{{\"name\":\"rank{}\"}}}}",
                        track.pid, track.pid
                    ),
                    &mut out,
                );
            }
            let (_, dropped) = track.events();
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{},\"dropped\":{}}}}}",
                    track.pid,
                    track.tid,
                    json_str(&track.name),
                    dropped
                ),
                &mut out,
            );
        }
        for (pid, tid, ev) in self.merged_events() {
            let ts = ev.t_ns as f64 / 1e3;
            let common = format!(
                "\"pid\":{},\"tid\":{},\"ts\":{},\"name\":{}",
                pid,
                tid,
                json_num(ts),
                json_str(ev.name)
            );
            let line = match ev.kind {
                EventKind::Span => format!(
                    "{{\"ph\":\"X\",{common},\"dur\":{},\"args\":{{\"arg\":{}}}}}",
                    json_num(ev.dur_ns as f64 / 1e3),
                    json_num(ev.arg)
                ),
                EventKind::Instant => format!(
                    "{{\"ph\":\"i\",{common},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
                    json_num(ev.arg)
                ),
                EventKind::Counter => format!(
                    "{{\"ph\":\"C\",{common},\"args\":{{\"value\":{}}}}}",
                    json_num(ev.arg)
                ),
            };
            emit(line, &mut out);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Write the trace to `path`, creating missing parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }

    /// Like [`Tracer::write`], but degrades gracefully: on failure (e.g.
    /// a read-only results tree) it warns on stderr and skips the write
    /// instead of erroring. Returns whether the file was written.
    pub fn write_or_warn(&self, path: &Path) -> bool {
        match self.write(path) {
            Ok(()) => true,
            Err(e) => {
                eprintln!(
                    "[trace] warning: cannot write trace to {}: {e}; skipping",
                    path.display()
                );
                false
            }
        }
    }

    /// One-shot fault dump: the first call writes the trace to the
    /// configured dump path (see [`Tracer::set_dump_path`]) with a
    /// `fault.dump` instant appended; later calls (and runs with no dump
    /// path) are no-ops. The driver pulls this on fault escalation so
    /// the recorder's last window survives the crash.
    pub fn dump_on_fault(&self, pid: u32, reason: &'static str, t_ns: u64) {
        let Some(path) = self.dump_path() else {
            return;
        };
        if self.dumped.swap(true, Ordering::SeqCst) {
            return;
        }
        self.track(pid, 0, "main").instant("fault.dump", t_ns, 0.0);
        eprintln!(
            "[trace] fault escalation ({reason}) on rank {pid}: dumping flight record to {}",
            path.display()
        );
        self.write_or_warn(&path);
    }
}

/// JSON string literal with escaping (control chars, quotes, backslash).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite `f64` (non-finite values clamp to 0, which JSON
/// cannot represent), trimmed via Rust's round-trip `Display`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn capacity_from_env() -> usize {
    std::env::var("RHRSC_TRACE_BUF")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_CAPACITY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest() {
        let tracer = Tracer::new(16);
        let track = tracer.track(0, 0, "main");
        for i in 0..40u64 {
            track.instant("tick", i, i as f64);
        }
        let (events, dropped) = track.events();
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 24);
        // The survivors are exactly the newest 16, oldest-first.
        let ts: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, (24..40).collect::<Vec<_>>());
    }

    #[test]
    fn wraparound_is_deterministic_across_capacities() {
        // A fixed pseudo-random event sequence recorded into a small and
        // a large ring: the small ring's content must equal the tail of
        // the large ring's — crossing the wrap boundary changes what is
        // *kept*, never the sequence itself.
        let gen_events = |n: usize| -> Vec<Event> {
            let mut state = 0x9e3779b97f4a7c15u64; // fixed seed
            (0..n)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let kind = match state % 3 {
                        0 => EventKind::Span,
                        1 => EventKind::Instant,
                        _ => EventKind::Counter,
                    };
                    Event {
                        t_ns: i as u64 * 10 + (state % 7),
                        dur_ns: if kind == EventKind::Span {
                            state % 100
                        } else {
                            0
                        },
                        kind,
                        name: "e",
                        arg: (state % 1000) as f64,
                    }
                })
                .collect()
        };
        let seq = gen_events(1000);
        let record = |cap: usize| -> Vec<Event> {
            let tracer = Tracer::new(cap);
            let track = tracer.track(0, 0, "t");
            for e in &seq {
                match e.kind {
                    EventKind::Span => track.span_arg(e.name, e.t_ns, e.t_ns + e.dur_ns, e.arg),
                    EventKind::Instant => track.instant(e.name, e.t_ns, e.arg),
                    EventKind::Counter => track.counter(e.name, e.t_ns, e.arg),
                }
            }
            track.events().0
        };
        let small = record(64);
        let large = record(512);
        assert_eq!(small.len(), 64);
        assert_eq!(large.len(), 512);
        assert_eq!(
            small[..],
            large[512 - 64..],
            "small ring must be the tail of the large one"
        );
        // And the large ring is itself the tail of the full sequence.
        assert_eq!(large[..], seq[1000 - 512..]);
    }

    #[test]
    fn tracks_are_shared_by_id() {
        let tracer = Tracer::new(64);
        let a = tracer.track(3, 1, "dev");
        let b = tracer.track(3, 1, "other-name-ignored");
        assert!(Arc::ptr_eq(&a, &b));
        a.instant("x", 5, 0.0);
        assert_eq!(b.events().0.len(), 1);
        assert_eq!(tracer.tracks().len(), 1);
    }

    #[test]
    fn merged_events_are_time_ordered() {
        let tracer = Tracer::new(64);
        let r0 = tracer.track(0, 0, "rank0");
        let r1 = tracer.track(1, 0, "rank1");
        r1.instant("b", 20, 0.0);
        r0.instant("a", 10, 0.0);
        r0.span("s", 5, 30);
        r1.instant("c", 10, 0.0);
        let merged = tracer.merged_events();
        let ts: Vec<u64> = merged.iter().map(|(_, _, e)| e.t_ns).collect();
        assert_eq!(ts, vec![5, 10, 10, 20]);
        // Equal timestamps break ties by pid.
        assert_eq!(merged[1].0, 0);
        assert_eq!(merged[2].0, 1);
    }

    #[test]
    fn chrome_json_shape() {
        let tracer = Tracer::new(64);
        let t = tracer.track(0, 0, "main");
        t.span("phase.x", 1000, 3000);
        t.instant("evt \"quoted\"", 1500, 2.0);
        t.counter("health.drift", 2000, 1e-9);
        let json = tracer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\\\"quoted\\\""));
        // Non-finite payloads never reach the JSON.
        t.counter("bad", 2500, f64::NAN);
        assert!(!tracer.to_chrome_json().contains("NaN"));
    }

    #[test]
    fn write_creates_parent_dirs_and_degrades_gracefully() {
        let dir = std::env::temp_dir().join("rhrsc-trace-writer-test");
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::new(64);
        tracer.track(0, 0, "main").instant("x", 1, 0.0);
        let nested = dir.join("a/b/trace.json");
        assert!(tracer.write_or_warn(&nested));
        assert!(nested.exists());
        // A path whose "parent directory" is a regular file cannot be
        // created: the writer must warn and skip, not panic or error.
        let file = dir.join("plainfile");
        std::fs::write(&file, b"x").unwrap();
        let bad = file.join("sub/trace.json");
        assert!(!tracer.write_or_warn(&bad));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_dump_latches_once() {
        let dir = std::env::temp_dir().join("rhrsc-trace-dump-test");
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::new(64);
        // No dump path: a no-op.
        tracer.dump_on_fault(0, "test", 10);
        let path = dir.join("fault/trace.json");
        tracer.set_dump_path(Some(path.clone()));
        tracer.track(0, 0, "main").instant("x", 1, 0.0);
        tracer.dump_on_fault(0, "test", 20);
        assert!(path.exists());
        let first = std::fs::read_to_string(&path).unwrap();
        // Second dump is a no-op even after more events.
        tracer.track(0, 0, "main").instant("y", 30, 0.0);
        tracer.dump_on_fault(0, "again", 40);
        assert_eq!(std::fs::read_to_string(&path).unwrap(), first);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stamp_prefers_virtual_time() {
        let tracer = Tracer::new(16);
        assert_eq!(tracer.stamp(Some(1.5)), 1_500_000_000);
        assert_eq!(tracer.stamp(Some(-1.0)), 0);
        let w = tracer.stamp(None);
        assert!(w < 10_000_000_000, "wall stamp should be near the epoch");
    }
}
