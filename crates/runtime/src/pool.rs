//! Work-stealing thread pool.
//!
//! A classic Chase–Lev work-stealing pool built from `crossbeam-deque`:
//! each worker owns a LIFO deque, new external work lands in a shared
//! injector, and idle workers steal — first batches from the injector,
//! then singles from siblings — before parking on a condition variable.
//! The park/wake protocol follows the lost-wakeup-free pattern from
//! *Rust Atomics and Locks*: waiters re-check the queues under the lock,
//! and submitters notify after publishing work.

use crate::future::{promise, Future};
use crate::metrics::Registry;
use crossbeam_deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Stuck-job watchdog fires across every pool in the process: one per
/// [`await_job_for`] deadline expiry. Process-global because the waiter
/// holds only a future, not the pool that owes it the value.
static WATCHDOG_FIRES: AtomicU64 = AtomicU64::new(0);

/// Directory of live pools' shared state, for timeout diagnostics: the
/// waiter in [`await_job_for`] only holds a future, so the message's
/// queue-depth context comes from here. Weak entries are purged lazily.
static POOL_DIRECTORY: Mutex<Vec<Weak<Shared>>> = Mutex::new(Vec::new());

/// Total [`await_job_for`] deadline expiries (stuck-job watchdog fires)
/// since process start, across all pools.
pub fn watchdog_fires() -> u64 {
    WATCHDOG_FIRES.load(Ordering::Relaxed)
}

/// Jobs currently queued (not yet claimed by a worker) across every live
/// pool in the process.
pub fn global_queue_depth() -> usize {
    let mut dir = POOL_DIRECTORY.lock();
    dir.retain(|w| w.strong_count() > 0);
    dir.iter()
        .filter_map(Weak::upgrade)
        .map(|s| s.injector.len())
        .sum()
}

/// Deadline for waiting on pool futures in tests and drivers. Defaults to
/// 5 s; override with `RHRSC_POOL_TIMEOUT_MS` (e.g. on loaded CI machines
/// or under heavy sanitizer slowdowns).
pub fn pool_timeout() -> Duration {
    let ms = std::env::var("RHRSC_POOL_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5_000);
    Duration::from_millis(ms.max(1))
}

/// Wait for a pool future up to [`pool_timeout`].
///
/// # Panics
/// Panics with a message naming the stuck `job` if the deadline expires —
/// a hung worker should fail loudly and identifiably, not block forever.
pub fn await_job<T>(fut: Future<T>, job: &str) -> T {
    await_job_for(fut, job, pool_timeout())
}

/// [`await_job`] with an explicit deadline.
///
/// On expiry the panic message carries the stuck job's name, the
/// measured elapsed wait, and the number of jobs still queued across the
/// process's pools — enough to tell a deadlocked worker (depth 0, nobody
/// will ever produce the value) from a starved queue (depth > 0, the job
/// may simply never have been claimed).
pub fn await_job_for<T>(fut: Future<T>, job: &str, d: Duration) -> T {
    let start = Instant::now();
    match fut.get_timeout(d) {
        Ok(v) => v,
        Err(_) => {
            WATCHDOG_FIRES.fetch_add(1, Ordering::Relaxed);
            let elapsed = start.elapsed();
            let queued = global_queue_depth();
            panic!(
                "pool job '{job}' produced no result within {d:?} \
                 (waited {elapsed:?}, {queued} job(s) still queued; tune \
                 with RHRSC_POOL_TIMEOUT_MS): worker hung or deadlocked"
            )
        }
    }
}

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    executed: AtomicU64,
    steals: AtomicU64,
}

/// A fixed-size work-stealing thread pool.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    nthreads: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        assert!(nthreads > 0);
        let workers: Vec<Worker<Job>> = (0..nthreads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(idx, worker)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rhrsc-worker-{idx}"))
                    .spawn(move || worker_loop(idx, worker, shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        {
            let mut dir = POOL_DIRECTORY.lock();
            dir.retain(|w| w.strong_count() > 0);
            dir.push(Arc::downgrade(&shared));
        }
        WorkStealingPool {
            shared,
            handles,
            nthreads,
        }
    }

    /// Number of worker threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Submit a job, returning a future for its result. If the job
    /// panics, the future is poisoned: `get` re-raises the panic message
    /// on the waiting thread instead of blocking forever.
    pub fn spawn<T, F>(&self, f: F) -> Future<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (p, fut) = promise();
        self.inject(Box::new(move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => p.set(v),
            Err(e) => p.poison(format!("pool task panicked: {}", panic_msg(e))),
        }));
        fut
    }

    /// Submit a job that may panic; the future resolves to `Err` with the
    /// panic message instead of hanging.
    pub fn spawn_checked<T, F>(&self, f: F) -> Future<Result<T, String>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (p, fut) = promise();
        self.inject(Box::new(move || {
            let r = catch_unwind(AssertUnwindSafe(f)).map_err(panic_msg);
            p.set(r);
        }));
        fut
    }

    fn inject(&self, job: Job) {
        self.shared.injector.push(job);
        // Publish-then-notify under the sleep lock so parked workers
        // cannot miss the wakeup. One job needs one worker: notify_one
        // avoids the O(threads²) wakeup storm par_for's helper fan-out
        // would otherwise cause (notify_all remains only for shutdown;
        // the workers' timed re-check covers any straggler).
        let _g = self.shared.sleep_lock.lock();
        self.shared.wake.notify_one();
    }

    /// Blocking data-parallel for-loop: run `f(i)` for every `i in 0..n`,
    /// distributed over the pool in contiguous chunks of `chunk` indices.
    /// Returns once every iteration has completed; panics in `f` propagate
    /// to the caller.
    ///
    /// The *calling thread participates*: chunks are claimed from a shared
    /// counter by the caller and by up to `nthreads` helper jobs, so
    /// `par_for` is deadlock-free even when invoked from inside a pool
    /// worker or on a single-threaded pool.
    pub fn par_for<'env>(&self, n: usize, chunk: usize, f: &(dyn Fn(usize) + Sync + 'env)) {
        if n == 0 {
            return;
        }
        let chunk = chunk.max(1);
        let ntasks = n.div_ceil(chunk);
        let nhelpers = self.nthreads.min(ntasks.saturating_sub(1));
        let latch = Arc::new(Latch::new(nhelpers));
        let cursor = Arc::new(AtomicUsize::new(0));
        // SAFETY: `par_for` blocks on the latch until every helper has
        // finished, and runs the remaining chunks itself, so `f` (and
        // everything it borrows) strictly outlives all uses of the
        // transmuted reference. This is the standard scoped-parallelism
        // pattern (cf. rayon's scope) expressed on our own pool.
        let f_static: &(dyn Fn(usize) + Sync + 'static) = unsafe { std::mem::transmute(f) };
        let fr = SendPtr(f_static as *const (dyn Fn(usize) + Sync));
        let run_chunks = move |fr: &SendPtr, cursor: &AtomicUsize| {
            let f = unsafe { &*fr.0 };
            loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= ntasks {
                    break;
                }
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                for i in lo..hi {
                    f(i);
                }
            }
        };
        for _ in 0..nhelpers {
            let latch = latch.clone();
            let cursor = cursor.clone();
            let fr = SendPtr(fr.0);
            self.inject(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(|| run_chunks(&fr, &cursor)));
                latch.count_down(r.err().map(panic_msg));
            }));
        }
        // Caller participates.
        let own = catch_unwind(AssertUnwindSafe(|| run_chunks(&fr, &cursor)));
        let helper_err = latch.wait();
        if let Err(e) = own {
            panic!("par_for task panicked: {}", panic_msg(e));
        }
        if let Some(msg) = helper_err {
            panic!("par_for task panicked: {msg}");
        }
    }

    /// Total jobs executed by the workers.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Total successful steals from sibling deques.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Jobs currently sitting in the shared injector — submitted but not
    /// yet claimed by any worker. Per-worker deques are excluded (their
    /// jobs are already owned), so this is the backlog a new submission
    /// queues behind.
    pub fn queue_depth(&self) -> usize {
        self.shared.injector.len()
    }

    /// Sync the pool's health counters into `reg` as monotonic `pool.*`
    /// counters: `pool.executed`, `pool.steals` and the process-wide
    /// `pool.watchdog.fires`. Call on a sampling cadence (the telemetry
    /// sampler's `Source::Counter` deltas then expose them as series
    /// fields). Delta-synced, so repeated calls are idempotent; use one
    /// registry per pool — two pools exporting into the same registry
    /// would race to the larger value.
    pub fn export_health(&self, reg: &Registry) {
        for (name, cur) in [
            ("pool.executed", self.executed()),
            ("pool.steals", self.steals()),
            ("pool.watchdog.fires", watchdog_fires()),
        ] {
            let c = reg.counter(name);
            let prev = c.get();
            if cur > prev {
                c.add(cur - prev);
            }
        }
    }
}

struct SendPtr(*const (dyn Fn(usize) + Sync));
unsafe impl Send for SendPtr {}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        if let Some(job) = next_job(idx, &local, &shared) {
            let _ = catch_unwind(AssertUnwindSafe(job));
            shared.executed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        // Park. Re-check under the lock to avoid lost wakeups; a timed
        // wait is belt-and-braces against scheduler edge cases.
        let mut guard = shared.sleep_lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if !shared.injector.is_empty() {
            continue;
        }
        shared.wake.wait_for(&mut guard, Duration::from_millis(5));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

fn next_job(idx: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    // Refill from the injector in batches.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam_deque::Steal::Success(job) => return Some(job),
            crossbeam_deque::Steal::Retry => continue,
            crossbeam_deque::Steal::Empty => break,
        }
    }
    // Steal from siblings.
    for (i, st) in shared.stealers.iter().enumerate() {
        if i == idx {
            continue;
        }
        loop {
            match st.steal() {
                crossbeam_deque::Steal::Success(job) => {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(job);
                }
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
    }
    None
}

/// Countdown latch that also carries the first panic message.
struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<Option<String>>,
    cv: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(n),
            lock: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self, err: Option<String>) {
        if let Some(e) = err {
            let mut g = self.lock.lock();
            g.get_or_insert(e);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<String> {
        let mut g = self.lock.lock();
        while self.remaining.load(Ordering::Acquire) != 0 {
            self.cv.wait(&mut g);
        }
        g.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_returns_results() {
        let pool = WorkStealingPool::new(4);
        let futs: Vec<_> = (0..100).map(|i| pool.spawn(move || i * i)).collect();
        let sum: i64 = futs.into_iter().map(|f| f.get()).sum();
        assert_eq!(sum, (0..100).map(|i| i * i).sum::<i64>());
    }

    #[test]
    fn par_for_covers_every_index_once() {
        let pool = WorkStealingPool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.par_for(n, 64, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_borrowed_mutable_data_via_chunks() {
        // The idiomatic borrowed-data usage: index into disjoint cells.
        let pool = WorkStealingPool::new(3);
        let data: Vec<AtomicU64> = (0..257).map(|_| AtomicU64::new(0)).collect();
        pool.par_for(data.len(), 16, &|i| {
            data[i].store(i as u64 + 1, Ordering::Relaxed);
        });
        for (i, d) in data.iter().enumerate() {
            assert_eq!(d.load(Ordering::Relaxed), i as u64 + 1);
        }
    }

    #[test]
    fn par_for_zero_iterations_is_noop() {
        let pool = WorkStealingPool::new(2);
        pool.par_for(0, 8, &|_| panic!("must not run"));
    }

    #[test]
    fn par_for_propagates_panics() {
        let pool = WorkStealingPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.par_for(10, 1, &|i| {
                if i == 7 {
                    panic!("boom at 7");
                }
            });
        }));
        let msg = panic_msg(r.unwrap_err());
        assert!(msg.contains("boom at 7"), "{msg}");
    }

    #[test]
    fn spawn_panicking_job_resolves_with_message() {
        // Regression: spawn used to leave the future pending forever when
        // the job panicked (the worker's catch_unwind swallowed it before
        // the promise was set). The future must now resolve promptly by
        // re-raising the panic message in the waiter.
        let pool = WorkStealingPool::new(2);
        let f = pool.spawn(|| -> i32 { panic!("boom-spawn") });
        match catch_unwind(AssertUnwindSafe(move || await_job(f, "panicking-spawn"))) {
            Ok(v) => panic!("panicking job produced a value: {v}"),
            Err(e) => {
                let msg = panic_msg(e);
                // Either the re-raised job panic (expected) or, on a hang
                // regression, the await_job deadline naming the job.
                assert!(msg.contains("boom-spawn"), "{msg}");
            }
        }
        // The pool remains usable afterwards.
        assert_eq!(pool.spawn(|| 5).get(), 5);
    }

    #[test]
    fn spawn_checked_reports_panics() {
        let pool = WorkStealingPool::new(2);
        let f = pool.spawn_checked(|| -> i32 { panic!("kaboom") });
        let err = f.get().unwrap_err();
        assert!(err.contains("kaboom"));
        // The pool remains usable afterwards.
        assert_eq!(pool.spawn(|| 5).get(), 5);
    }

    #[test]
    fn work_is_distributed() {
        // With many blocking-ish tasks, more than one worker should run them.
        let pool = WorkStealingPool::new(4);
        let ids = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let futs: Vec<_> = (0..64)
            .map(|_| {
                let ids = ids.clone();
                pool.spawn(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    ids.lock().insert(std::thread::current().id());
                })
            })
            .collect();
        for f in futs {
            f.get();
        }
        assert!(ids.lock().len() >= 2, "expected multiple workers");
    }

    #[test]
    fn executed_counter_increments() {
        let pool = WorkStealingPool::new(2);
        let futs: Vec<_> = (0..10).map(|_| pool.spawn(|| ())).collect();
        for f in futs {
            f.get();
        }
        assert!(pool.executed() >= 10);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_futures_resolved() {
        let pool = WorkStealingPool::new(2);
        let f = pool.spawn(|| 99);
        assert_eq!(f.get(), 99);
        drop(pool); // must not hang
    }

    #[test]
    fn nested_spawn_from_worker() {
        let pool = Arc::new(WorkStealingPool::new(3));
        let p2 = pool.clone();
        let f = pool.spawn(move || {
            let inner: Vec<_> = (0..8).map(|i| p2.spawn(move || i + 1)).collect();
            inner.into_iter().map(|f| f.get()).sum::<i32>()
        });
        assert_eq!(f.get(), 36);
    }

    #[test]
    fn await_job_names_the_stuck_job() {
        // A future whose promise is parked and never set: the deadline
        // must fire with an error that says *which* job hung.
        let (_p, fut) = promise::<i32>();
        let r = catch_unwind(AssertUnwindSafe(|| {
            await_job_for(fut, "halo-unpack[rank 3]", Duration::from_millis(20))
        }));
        let msg = panic_msg(r.unwrap_err());
        assert!(msg.contains("halo-unpack[rank 3]"), "{msg}");
        assert!(msg.contains("RHRSC_POOL_TIMEOUT_MS"), "{msg}");
    }

    #[test]
    fn await_job_timeout_reports_elapsed_and_queue_depth() {
        let (_p, fut) = promise::<i32>();
        let r = catch_unwind(AssertUnwindSafe(|| {
            await_job_for(fut, "stuck-diag", Duration::from_millis(20))
        }));
        let msg = panic_msg(r.unwrap_err());
        assert!(msg.contains("stuck-diag"), "{msg}");
        assert!(msg.contains("waited"), "missing elapsed wait: {msg}");
        assert!(msg.contains("queued"), "missing queue depth: {msg}");
    }

    #[test]
    fn watchdog_counter_increments_on_timeout() {
        let before = watchdog_fires();
        let (_p, fut) = promise::<i32>();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            await_job_for(fut, "watchdog-probe", Duration::from_millis(5))
        }));
        assert!(watchdog_fires() > before);
    }

    #[test]
    fn queue_depth_sees_unclaimed_backlog() {
        // One worker, blocked on a gate: everything submitted after the
        // blocker stays in the injector and must be visible as depth.
        let pool = WorkStealingPool::new(1);
        let gate = Arc::new(Latch::new(1));
        let g2 = gate.clone();
        let blocker = pool.spawn(move || g2.wait());
        // Give the worker a moment to claim the blocker.
        std::thread::sleep(Duration::from_millis(20));
        let futs: Vec<_> = (0..8).map(|i| pool.spawn(move || i)).collect();
        assert!(
            pool.queue_depth() >= 1,
            "expected queued backlog, got {}",
            pool.queue_depth()
        );
        assert!(global_queue_depth() >= pool.queue_depth());
        gate.count_down(None);
        blocker.get();
        for f in futs {
            f.get();
        }
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn drop_with_queued_jobs_does_not_hang() {
        // Shutdown race: a single worker is pinned on a gate while more
        // jobs sit in the injector. Dropping the pool must release the
        // gate path and join without deadlocking, and the never-run jobs'
        // futures must be poisoned (dropped promises), not left pending.
        let pool = WorkStealingPool::new(1);
        let gate = Arc::new(Latch::new(1));
        let g2 = gate.clone();
        let _blocker = pool.spawn(move || g2.wait());
        std::thread::sleep(Duration::from_millis(20));
        let queued: Vec<_> = (0..4).map(|i| pool.spawn(move || i)).collect();
        gate.count_down(None);
        drop(pool); // must not hang: workers drain the injector on shutdown
        for f in queued {
            // Either the job ran during drain (value) or its promise was
            // dropped (poisoned -> panic); both are prompt, neither hangs.
            let _ = catch_unwind(AssertUnwindSafe(move || f.get()));
        }
    }

    #[test]
    fn export_health_delta_syncs_into_registry() {
        let pool = WorkStealingPool::new(2);
        let futs: Vec<_> = (0..16).map(|_| pool.spawn(|| ())).collect();
        for f in futs {
            f.get();
        }
        let reg = Registry::new();
        pool.export_health(&reg);
        let first = reg.counter("pool.executed").get();
        assert!(first >= 16, "executed counter not exported: {first}");
        // Re-export with no new work: idempotent, no double counting.
        pool.export_health(&reg);
        assert_eq!(reg.counter("pool.executed").get(), first);
        // New work shows up as a delta.
        pool.spawn(|| ()).get();
        pool.export_health(&reg);
        assert!(reg.counter("pool.executed").get() > first);
    }

    #[test]
    fn pool_timeout_reads_env_override() {
        std::env::set_var("RHRSC_POOL_TIMEOUT_MS", "1234");
        let d = pool_timeout();
        std::env::remove_var("RHRSC_POOL_TIMEOUT_MS");
        assert_eq!(d, Duration::from_millis(1234));
        // Unset (or garbage) falls back to the 5 s default.
        std::env::set_var("RHRSC_POOL_TIMEOUT_MS", "not-a-number");
        let d = pool_timeout();
        std::env::remove_var("RHRSC_POOL_TIMEOUT_MS");
        assert_eq!(d, Duration::from_secs(5));
        assert_eq!(pool_timeout(), Duration::from_secs(5));
    }
}
