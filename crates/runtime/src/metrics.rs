//! Dependency-free observability: counters, histograms, phase timers.
//!
//! The performance claims this code line reproduces (scaling, overlap,
//! offload efficiency) are attribution claims — *where* does a step's
//! time go — so the runtime carries a small metrics layer that is cheap
//! enough to stay compiled in for release builds:
//!
//! * [`Counter`] — a monotonic `AtomicU64` (messages, bytes, cascade
//!   tier hits),
//! * [`Histogram`] — log₂-bucketed distribution with exact count and sum
//!   (con2prim iteration counts; phase durations in nanoseconds),
//! * [`PhaseTimer`] — an RAII guard that records its lifetime into a
//!   duration histogram, so a phase's *total* time is the histogram sum
//!   and its invocation count falls out for free,
//! * [`Registry`] — a name-keyed home for all of the above, shared
//!   `Arc`-style between the solver, the comm layer and the device,
//! * [`Snapshot`] — a plain-data copy that merges across ranks and
//!   serialises into the BENCH report.
//!
//! Instrumented components hold an `Option<Arc<Registry>>`; the disabled
//! path is a branch on `None` — no allocation, no atomics — so leaving
//! the hooks in costs nothing measurable when profiling is off.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log₂ buckets. Bucket 0 holds exact zeros; bucket `k ≥ 1`
/// holds values in `[2^(k-1), 2^k - 1]`; the last bucket absorbs the
/// tail. 64 buckets cover the full `u64` range.
pub const NBUCKETS: usize = 64;

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`, capped.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(NBUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `k` (0 for buckets 0 and 1).
pub fn bucket_lo(k: usize) -> u64 {
    if k <= 1 {
        if k == 0 {
            0
        } else {
            1
        }
    } else {
        1u64 << (k - 1)
    }
}

/// A monotonic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram with exact count and sum.
///
/// `record` is three relaxed atomic adds — cheap enough for per-message
/// and per-phase paths. (Per-*cell* paths should batch: see the con2prim
/// iteration accounting in the solver, which records once per region.)
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` observations totalling `sum` that all fall in the
    /// bucket of `representative` (batched per-cell accounting).
    #[inline]
    pub fn record_batch(&self, n: u64, sum: u64, representative: u64) {
        if n == 0 {
            return;
        }
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        self.buckets[bucket_index(representative)].fetch_add(n, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// RAII phase timer: records its lifetime (ns) into a histogram on drop.
///
/// Owns its `Arc<Histogram>`, so it can be created from a registry held
/// behind `&self` and moved into worker closures.
pub struct PhaseTimer {
    start: Instant,
    hist: Arc<Histogram>,
}

impl PhaseTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        PhaseTimer {
            start: Instant::now(),
            hist,
        }
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// Name-keyed registry of counters and histograms.
///
/// Lookup takes a mutex on a `BTreeMap`; hot paths should cache the
/// returned `Arc` (the solver caches its con2prim histogram), while
/// per-phase and per-message paths can afford the lookup.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock();
        if let Some(c) = m.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::default());
        m.insert(name.to_string(), c.clone());
        c
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.histograms.lock();
        if let Some(h) = m.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::default());
        m.insert(name.to_string(), h.clone());
        h
    }

    /// Start an RAII timer recording into the duration histogram `name`.
    /// Phase names use the `phase.` prefix for disjoint top-level step
    /// phases and `sub.` for nested sections (see DESIGN.md).
    pub fn phase(&self, name: &str) -> PhaseTimer {
        PhaseTimer::new(self.histogram(name))
    }

    /// Plain-data copy of every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistSnapshot {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            histograms,
        }
    }
}

/// Plain-data copy of a histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_index`]).
    pub buckets: [u64; NBUCKETS],
}

impl HistSnapshot {
    /// Mean observation, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another histogram snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the log₂ bucket holding the target rank. Bucket `k ≥ 1`
    /// spans `[2^(k-1), 2^k - 1]`, so the estimate is exact for bucket 0
    /// (zeros) and within a factor of 2 otherwise — plenty for the
    /// order-of-magnitude p50/p99 columns of the phase tables. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Rank of the target observation in [1, count].
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if (seen + n) as f64 >= target {
                let lo = bucket_lo(k) as f64;
                let hi = match k {
                    0 => 0.0,
                    _ if k >= NBUCKETS - 1 => u64::MAX as f64,
                    _ => ((1u64 << k) - 1) as f64,
                };
                let frac = (target - seen as f64) / n as f64;
                return lo + frac.clamp(0.0, 1.0) * (hi - lo);
            }
            seen += n;
        }
        // Unreachable for a consistent snapshot (counts sum to `count`);
        // fall back to the largest representable bound.
        u64::MAX as f64
    }
}

/// Plain-data copy of a whole registry, mergeable across ranks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Merge another snapshot into this one (counters add, histograms
    /// merge bucket-wise). Used to aggregate per-rank registries.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|mine| mine.merge(h))
                .or_insert_with(|| h.clone());
        }
    }

    /// Sum (as seconds) of the duration histogram `name`, or 0.
    pub fn phase_secs(&self, name: &str) -> f64 {
        self.histograms
            .get(name)
            .map(|h| h.sum as f64 * 1e-9)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), NBUCKETS - 1);
        // Every bucket's lower bound maps back into that bucket.
        for k in 0..NBUCKETS {
            assert_eq!(bucket_index(bucket_lo(k)), k, "bucket {k}");
        }
    }

    #[test]
    fn histogram_count_sum_and_buckets() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap_owner = Registry::new();
        let hh = snap_owner.histogram("x");
        hh.record(5);
        hh.record_batch(3, 30, 10);
        let s = snap_owner.snapshot();
        let hs = &s.histograms["x"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 35);
        assert_eq!(hs.buckets[bucket_index(5)], 1);
        assert_eq!(hs.buckets[bucket_index(10)], 3);
        assert!((hs.mean() - 35.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn registry_returns_same_instance_by_name() {
        let r = Registry::new();
        let c1 = r.counter("a");
        let c2 = r.counter("a");
        c1.add(2);
        c2.add(3);
        assert_eq!(r.counter("a").get(), 5);
        let h1 = r.histogram("h");
        let h2 = r.histogram("h");
        h1.record(1);
        h2.record(1);
        assert_eq!(r.histogram("h").count(), 2);
    }

    #[test]
    fn phase_timer_records_on_drop() {
        let r = Registry::new();
        {
            let _t = r.phase("phase.test");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = r.snapshot();
        let h = &s.histograms["phase.test"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 2_000_000, "recorded {} ns", h.sum);
        assert!(s.phase_secs("phase.test") >= 2e-3);
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = Registry::new();
        a.counter("msgs").add(3);
        a.histogram("h").record(4);
        let b = Registry::new();
        b.counter("msgs").add(5);
        b.counter("only_b").add(1);
        b.histogram("h").record(100);
        b.histogram("only_b_h").record(7);

        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counters["msgs"], 8);
        assert_eq!(s.counters["only_b"], 1);
        let h = &s.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 104);
        assert_eq!(h.buckets[bucket_index(4)], 1);
        assert_eq!(h.buckets[bucket_index(100)], 1);
        assert_eq!(s.histograms["only_b_h"].count, 1);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // Empty histogram: 0 by convention.
        let empty = Registry::new().snapshot();
        assert!(empty.histograms.is_empty());
        let h = Histogram::default();
        let reg = Registry::new();
        let hh = reg.histogram("q");
        assert_eq!(
            HistSnapshot {
                count: 0,
                sum: 0,
                buckets: [0; NBUCKETS]
            }
            .quantile(0.5),
            0.0
        );
        // All zeros: every quantile is exactly 0 (bucket 0 is exact).
        for _ in 0..10 {
            h.record(0);
            hh.record(0);
        }
        let s = reg.snapshot().histograms["q"].clone();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        // A spread of values: quantiles are monotone in q, bracketed by
        // the log2 bucket of the true order statistic.
        let reg = Registry::new();
        let hh = reg.histogram("q2");
        for v in 1..=1000u64 {
            hh.record(v);
        }
        let s = reg.snapshot().histograms["q2"].clone();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(p50 > 0.0 && p99 >= p50, "p50={p50} p99={p99}");
        // True p50 is 500 (bucket [256,511]), true p99 is 990
        // (bucket [512,1023]): the estimate must land in the bucket.
        assert!((256.0..=511.0).contains(&p50), "p50={p50}");
        assert!((512.0..=1023.0).contains(&p99), "p99={p99}");
        // Extremes stay within the recorded range's buckets.
        assert!(s.quantile(0.0) >= 1.0);
        assert!(s.quantile(1.0) <= 1023.0);
    }

    #[test]
    fn merge_is_commutative_on_totals() {
        let a = Registry::new();
        a.histogram("h").record(10);
        a.counter("c").add(1);
        let b = Registry::new();
        b.histogram("h").record(20);
        b.counter("c").add(2);
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
    }
}
