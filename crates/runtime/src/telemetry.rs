//! Time-resolved telemetry: cadenced delta sampling of the metrics
//! [`Registry`](crate::metrics::Registry) into fixed-capacity rings,
//! with a structured fault/recovery event log and anomaly watchdogs.
//!
//! The end-of-run [`Snapshot`] answers "how much, in total" — this
//! module answers "when". A [`TelemetrySampler`] runs on every rank at
//! a step cadence (`RHRSC_TELEMETRY_INTERVAL`), turning consecutive
//! registry snapshots into *deltas* over a fixed field schema
//! ([`SERIES_FIELDS`]): per-phase time rates, zone updates, Δt,
//! halo-wait, con2prim cascade tiers, and the `solver::health` gauges.
//! The distributed driver reduces the per-rank samples to block rank 0
//! over a dedicated data-class comm tag, so a run carries one global
//! time series instead of `p` private ones. Rank 0 pushes the merged
//! samples into the shared [`Telemetry`] hub, which
//!
//! * keeps the series in a bounded ring (overwrite-oldest, like the
//!   flight recorder),
//! * derives lifecycle *events* (suspect, evict, breaker trip, SDC
//!   detect, tier restore, shrink) from the counter deltas,
//! * runs rate-of-change *watchdogs* on conservation drift and cascade
//!   activation rates — a trip emits an event and tells the caller to
//!   dump the flight recorder pre-emptively, before any escalation,
//! * forwards every sample to an optional [`TelemetrySink`] (the io
//!   crate provides OpenMetrics textfile + streaming JSONL sinks).
//!
//! Everything here is read-only over the registry and allocation-light
//! on the sampling path; the solver state stays bit-identical with
//! telemetry armed or detached (asserted by the solver tests).

use crate::metrics::Snapshot;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Environment variable selecting the sampling cadence in steps
/// (`1` = every step). Unset or `0` disarms telemetry.
pub const TELEMETRY_INTERVAL_ENV: &str = "RHRSC_TELEMETRY_INTERVAL";

/// How per-rank field values combine when rank 0 reduces a sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOp {
    /// Add across ranks (extensive deltas: times, counts).
    Sum,
    /// Max across ranks (intensive gauges: drift, Lorentz factor).
    Max,
    /// Identical on every rank by construction (Δt, steps); the
    /// reducing root keeps its own value.
    First,
}

/// Where a field's per-sample value comes from on the local rank.
#[derive(Clone, Copy, Debug)]
pub enum Source {
    /// Delta of a registry counter.
    Counter(&'static str),
    /// Delta of the summed value of every counter with this prefix.
    CounterPrefix(&'static str),
    /// Delta of a duration histogram's sum, nanoseconds → seconds.
    HistSumSecs(&'static str),
    /// Delta of the summed durations of every histogram with this
    /// prefix, nanoseconds → seconds.
    HistSumPrefixSecs(&'static str),
    /// Delta of a value histogram's sum (unit-less).
    HistSum(&'static str),
    /// Supplied by the caller via [`SampleInputs`].
    Extern(Ext),
}

/// Caller-supplied inputs (things the registry does not carry).
#[derive(Clone, Copy, Debug)]
pub enum Ext {
    /// Steps since the previous sample.
    Steps,
    /// Committed Δt of the sampled step.
    Dt,
    /// Zone updates since the previous sample (local rank).
    ZoneUpdates,
    /// Wall (or virtual) seconds since the previous sample.
    ElapsedS,
    /// Latest conservation drift gauge from the health monitor.
    Drift,
    /// Latest atmosphere-fraction gauge.
    AtmoFrac,
    /// Latest maximum Lorentz factor gauge.
    MaxLorentz,
    /// Jobs queued (submitted, unclaimed) in the work-stealing pool.
    PoolQueueDepth,
    /// Jobs admitted but not yet finished in the ensemble service.
    ServeQueueDepth,
}

/// Caller-supplied per-sample values, resolved by [`Ext`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleInputs {
    /// Steps since the previous sample.
    pub steps: f64,
    /// Committed Δt of the sampled step.
    pub dt: f64,
    /// Zone updates since the previous sample (local rank).
    pub zone_updates: f64,
    /// Wall (or virtual) seconds since the previous sample.
    pub elapsed_s: f64,
    /// Latest conservation drift gauge (0 without a health monitor).
    pub drift: f64,
    /// Latest atmosphere-fraction gauge.
    pub atmo_frac: f64,
    /// Latest maximum Lorentz factor gauge.
    pub max_lorentz: f64,
    /// Jobs queued (submitted, unclaimed) in the work-stealing pool.
    pub pool_queue_depth: f64,
    /// Jobs admitted but not yet finished in the ensemble service.
    pub serve_queue_depth: f64,
}

impl SampleInputs {
    fn get(&self, e: Ext) -> f64 {
        match e {
            Ext::Steps => self.steps,
            Ext::Dt => self.dt,
            Ext::ZoneUpdates => self.zone_updates,
            Ext::ElapsedS => self.elapsed_s,
            Ext::Drift => self.drift,
            Ext::AtmoFrac => self.atmo_frac,
            Ext::MaxLorentz => self.max_lorentz,
            Ext::PoolQueueDepth => self.pool_queue_depth,
            Ext::ServeQueueDepth => self.serve_queue_depth,
        }
    }
}

/// One column of the time series.
#[derive(Clone, Copy, Debug)]
pub struct FieldDef {
    /// Stable series/OpenMetrics name (no dots: `rhrsc_<name>[_total]`).
    pub name: &'static str,
    /// Cross-rank reduction for this field.
    pub merge: MergeOp,
    /// True for cumulative deltas (OpenMetrics counters), false for
    /// point-in-time gauges.
    pub counter: bool,
    /// Lifecycle event kind emitted when this field's delta is positive.
    pub event: Option<&'static str>,
    /// One-line OpenMetrics HELP text.
    pub help: &'static str,
    /// Local-rank value source.
    pub source: Source,
}

const fn field(
    name: &'static str,
    merge: MergeOp,
    counter: bool,
    event: Option<&'static str>,
    help: &'static str,
    source: Source,
) -> FieldDef {
    FieldDef {
        name,
        merge,
        counter,
        event,
        help,
        source,
    }
}

/// The fixed field schema of every [`SeriesSample`]. Order is the wire
/// and export order; the `IDX_*` constants below are kept in sync by a
/// unit test.
pub const SERIES_FIELDS: &[FieldDef] = &[
    field(
        "steps",
        MergeOp::First,
        true,
        None,
        "Committed steps since the previous sample",
        Source::Extern(Ext::Steps),
    ),
    field(
        "dt",
        MergeOp::First,
        false,
        None,
        "Committed timestep of the sampled step",
        Source::Extern(Ext::Dt),
    ),
    field(
        "zone_updates",
        MergeOp::Sum,
        true,
        None,
        "Zone updates (cells x RK stages x steps) since the previous sample",
        Source::Extern(Ext::ZoneUpdates),
    ),
    field(
        "elapsed_s",
        MergeOp::Max,
        true,
        None,
        "Wall (or virtual) seconds since the previous sample, max across ranks",
        Source::Extern(Ext::ElapsedS),
    ),
    field(
        "rhs_s",
        MergeOp::Sum,
        true,
        None,
        "Seconds spent in RHS evaluation since the previous sample, summed across ranks",
        Source::HistSumPrefixSecs("phase.rhs"),
    ),
    field(
        "halo_wait_s",
        MergeOp::Sum,
        true,
        None,
        "Seconds blocked on halo-class receives since the previous sample",
        Source::HistSumSecs("sub.comm.wait.halo"),
    ),
    field(
        "coll_wait_s",
        MergeOp::Sum,
        true,
        None,
        "Seconds blocked on collective-class receives since the previous sample",
        Source::HistSumSecs("sub.comm.wait.collective"),
    ),
    field(
        "dt_allreduce_s",
        MergeOp::Sum,
        true,
        None,
        "Seconds spent in the cadenced dt allreduce since the previous sample",
        Source::HistSumSecs("phase.dt.allreduce"),
    ),
    field(
        "dt_violations",
        MergeOp::Sum,
        true,
        None,
        "Coast-guard violations (coasted dt overran a local CFL bound)",
        Source::Counter("dt.cadence.violation"),
    ),
    field(
        "c2p_iters",
        MergeOp::Sum,
        true,
        None,
        "Con2prim Newton iterations since the previous sample",
        Source::HistSum("c2p.newton_iters"),
    ),
    field(
        "c2p_relaxed",
        MergeOp::Sum,
        true,
        None,
        "Cascade tier-1 repairs (relaxed tolerance) since the previous sample",
        Source::Counter("c2p.cascade.relaxed_tol"),
    ),
    field(
        "c2p_neighbor",
        MergeOp::Sum,
        true,
        None,
        "Cascade tier-2 repairs (neighbor average) since the previous sample",
        Source::Counter("c2p.cascade.neighbor_avg"),
    ),
    field(
        "c2p_atmo",
        MergeOp::Sum,
        true,
        None,
        "Cascade tier-3 floor activations (atmosphere reset) since the previous sample",
        Source::Counter("c2p.cascade.atmosphere"),
    ),
    field(
        "drift",
        MergeOp::Max,
        false,
        None,
        "Relative conservation drift vs the step-0 baseline, max across ranks",
        Source::Extern(Ext::Drift),
    ),
    field(
        "atmo_frac",
        MergeOp::Max,
        false,
        None,
        "Fraction of interior cells at the atmosphere floor, max across ranks",
        Source::Extern(Ext::AtmoFrac),
    ),
    field(
        "max_lorentz",
        MergeOp::Max,
        false,
        None,
        "Maximum Lorentz factor, max across ranks",
        Source::Extern(Ext::MaxLorentz),
    ),
    field(
        "suspicions",
        MergeOp::Sum,
        true,
        Some("suspect"),
        "Liveness suspicions raised since the previous sample",
        Source::Counter("comm.liveness.suspicions"),
    ),
    field(
        "evictions",
        MergeOp::Sum,
        true,
        Some("evict"),
        "Ranks confirmed dead by consensus since the previous sample",
        Source::Counter("comm.liveness.confirmed_dead"),
    ),
    field(
        "breaker_trips",
        MergeOp::Sum,
        true,
        Some("breaker.trip"),
        "Device circuit-breaker trips since the previous sample",
        Source::Counter("dev.breaker.trips"),
    ),
    field(
        "sdc_detected",
        MergeOp::Sum,
        true,
        Some("sdc.detect"),
        "Silent-data-corruption detections since the previous sample",
        Source::Counter("sdc.detected"),
    ),
    field(
        "tier_restores",
        MergeOp::Sum,
        true,
        Some("tier.restore"),
        "Checkpoint-tier restores (local/buddy/disk) since the previous sample",
        Source::CounterPrefix("ckp.tier."),
    ),
    field(
        "shrinks",
        MergeOp::Sum,
        true,
        Some("shrink"),
        "Shrinking recoveries since the previous sample",
        Source::Counter("driver.shrinks"),
    ),
    // -- pool health (PR 10): exported by WorkStealingPool::export_health.
    field(
        "pool_queue_depth",
        MergeOp::Sum,
        false,
        None,
        "Jobs queued in the work-stealing pool injector at the sample point, summed across ranks",
        Source::Extern(Ext::PoolQueueDepth),
    ),
    field(
        "pool_steals",
        MergeOp::Sum,
        true,
        None,
        "Successful work steals from sibling deques since the previous sample",
        Source::Counter("pool.steals"),
    ),
    field(
        "pool_watchdog_fires",
        MergeOp::Sum,
        true,
        Some("pool.watchdog"),
        "Stuck-job watchdog fires (await_job_for deadline expiries) since the previous sample",
        Source::Counter("pool.watchdog.fires"),
    ),
    // -- ensemble service (PR 10): per-engine serve.* accounting.
    field(
        "serve_queue_depth",
        MergeOp::Sum,
        false,
        None,
        "Jobs admitted but not yet finished in the ensemble service at the sample point",
        Source::Extern(Ext::ServeQueueDepth),
    ),
    field(
        "serve_jobs_completed",
        MergeOp::Sum,
        true,
        None,
        "Ensemble jobs completed since the previous sample",
        Source::Counter("serve.jobs.completed"),
    ),
    field(
        "serve_jobs_failed",
        MergeOp::Sum,
        true,
        Some("serve.fail"),
        "Ensemble jobs failed (retries exhausted) since the previous sample",
        Source::Counter("serve.jobs.failed"),
    ),
    field(
        "serve_jobs_cancelled",
        MergeOp::Sum,
        true,
        None,
        "Ensemble jobs cancelled (token, deadline, or shutdown) since the previous sample",
        Source::Counter("serve.jobs.cancelled"),
    ),
    field(
        "serve_rejections",
        MergeOp::Sum,
        true,
        Some("serve.reject"),
        "Ensemble submissions rejected by admission control since the previous sample",
        Source::Counter("serve.admission.rejected"),
    ),
    field(
        "serve_cache_hits",
        MergeOp::Sum,
        true,
        None,
        "Ensemble result-cache hits since the previous sample",
        Source::Counter("serve.cache.hits"),
    ),
];

/// Index of `steps` in [`SERIES_FIELDS`] / `SeriesSample::values`.
pub const IDX_STEPS: usize = 0;
/// Index of `dt`.
pub const IDX_DT: usize = 1;
/// Index of `zone_updates`.
pub const IDX_ZONE_UPDATES: usize = 2;
/// Index of `elapsed_s`.
pub const IDX_ELAPSED_S: usize = 3;
/// Index of `c2p_relaxed` (first cascade tier).
pub const IDX_C2P_RELAXED: usize = 10;
/// Index of `c2p_atmo` (floor activations).
pub const IDX_C2P_ATMO: usize = 12;
/// Index of the `drift` gauge.
pub const IDX_DRIFT: usize = 13;

/// Position of `name` in [`SERIES_FIELDS`].
pub fn field_index(name: &str) -> Option<usize> {
    SERIES_FIELDS.iter().position(|f| f.name == name)
}

/// One reduced point of the global time series.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesSample {
    /// Committed step count at the sample point.
    pub step: u64,
    /// Simulation time at the sample point.
    pub time: f64,
    /// Trace-clock timestamp (same clock as the flight-recorder spans:
    /// virtual ns in virtual-time universes, wall ns otherwise).
    pub t_ns: u64,
    /// Field values, aligned with [`SERIES_FIELDS`].
    pub values: Vec<f64>,
}

impl SeriesSample {
    /// Value of the named field, if it exists.
    pub fn get(&self, name: &str) -> Option<f64> {
        field_index(name).and_then(|i| self.values.get(i).copied())
    }

    /// Merge a peer rank's sample into this one field-wise per
    /// [`MergeOp`]. The trace timestamp takes the max (latest rank to
    /// reach the sample point).
    pub fn merge(&mut self, other: &SeriesSample) {
        self.t_ns = self.t_ns.max(other.t_ns);
        for (i, f) in SERIES_FIELDS.iter().enumerate() {
            let b = other.values.get(i).copied().unwrap_or(0.0);
            match f.merge {
                MergeOp::Sum => self.values[i] += b,
                MergeOp::Max => self.values[i] = self.values[i].max(b),
                MergeOp::First => {}
            }
        }
    }

    /// Flatten to an `f64` wire buffer for the reduction tag.
    pub fn pack(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(3 + self.values.len());
        out.push(self.step as f64);
        out.push(self.time);
        out.push(self.t_ns as f64);
        out.extend_from_slice(&self.values);
        out
    }

    /// Inverse of [`pack`](Self::pack); `None` on a malformed buffer.
    pub fn unpack(buf: &[f64]) -> Option<SeriesSample> {
        if buf.len() != 3 + SERIES_FIELDS.len() {
            return None;
        }
        Some(SeriesSample {
            step: buf[0] as u64,
            time: buf[1],
            t_ns: buf[2] as u64,
            values: buf[3..].to_vec(),
        })
    }
}

/// A structured lifecycle event (fault/recovery/watchdog), derived from
/// counter deltas or emitted directly.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryEvent {
    /// Trace-clock timestamp (shared with the flight-recorder spans).
    pub t_ns: u64,
    /// Committed step count when the event was observed.
    pub step: u64,
    /// Event kind: `suspect`, `evict`, `breaker.trip`, `sdc.detect`,
    /// `tier.restore`, `shrink`, `watchdog.drift`, `watchdog.cascade`.
    pub kind: &'static str,
    /// Rank that observed/reduced the event (the reducing root for
    /// derived events).
    pub rank: u32,
    /// Event magnitude (counter delta, or the rate that tripped).
    pub value: f64,
}

/// Sink interface for streaming exports; implemented by the io crate
/// (OpenMetrics textfile + JSONL). Called under the hub lock on the
/// reducing root's sampling cadence only.
pub trait TelemetrySink: Send {
    /// One reduced sample, the events it produced, the cumulative
    /// per-field totals (aligned with [`SERIES_FIELDS`], counters only
    /// meaningful — gauges hold their latest value), and the reducing
    /// rank (the `pid` of the corresponding flight-recorder track).
    fn on_sample(
        &mut self,
        sample: &SeriesSample,
        events: &[TelemetryEvent],
        totals: &[f64],
        rank: u32,
    );
}

/// Telemetry configuration.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Sampling cadence in steps (0 = disarmed, 1 = every step).
    pub interval: u64,
    /// Ring capacity in samples (and events); overwrite-oldest beyond.
    pub capacity: usize,
    /// Watchdog: warn when conservation drift grows faster than this
    /// per step (rate of change, not absolute level — the health
    /// monitor alarms on the level).
    pub drift_rate_warn: f64,
    /// Watchdog: warn when cascade repairs exceed this fraction of zone
    /// updates within a sample window.
    pub cascade_rate_warn: f64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            interval: 1,
            capacity: 4096,
            drift_rate_warn: 1e-3,
            cascade_rate_warn: 0.05,
        }
    }
}

impl TelemetryConfig {
    /// Read the cadence from `RHRSC_TELEMETRY_INTERVAL`; `None` when
    /// unset, unparsable or zero (telemetry disarmed).
    pub fn from_env() -> Option<Self> {
        let interval = std::env::var(TELEMETRY_INTERVAL_ENV)
            .ok()?
            .trim()
            .parse::<u64>()
            .ok()?;
        (interval > 0).then(|| TelemetryConfig {
            interval,
            ..TelemetryConfig::default()
        })
    }
}

/// Per-rank sampling state: the previous registry snapshot (for deltas)
/// and the cadence. Owned by the solver driver, one per rank.
#[derive(Debug, Default)]
pub struct TelemetrySampler {
    interval: u64,
    prev: Option<Snapshot>,
    last_step: u64,
}

impl TelemetrySampler {
    /// A sampler on the given step cadence (0 disarms `due`).
    pub fn new(interval: u64) -> Self {
        TelemetrySampler {
            interval,
            prev: None,
            last_step: 0,
        }
    }

    /// The sampling cadence in steps.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// True when `step` is on the cadence (step counts start at 1).
    pub fn due(&self, step: u64) -> bool {
        self.interval > 0 && step > 0 && step.is_multiple_of(self.interval)
    }

    /// Steps covered by the next sample at `step`.
    pub fn steps_since(&self, step: u64) -> u64 {
        step.saturating_sub(self.last_step)
    }

    /// Turn the current registry snapshot into a delta sample against
    /// the previous call, consuming `snap` as the new baseline.
    pub fn sample(
        &mut self,
        step: u64,
        time: f64,
        t_ns: u64,
        snap: Snapshot,
        inputs: &SampleInputs,
    ) -> SeriesSample {
        let values = SERIES_FIELDS
            .iter()
            .map(|f| match f.source {
                Source::Counter(name) => {
                    delta_u64(counter_of(&snap, name), self.prev_counter(name))
                }
                Source::CounterPrefix(prefix) => delta_u64(
                    counter_prefix(&snap, prefix),
                    self.prev
                        .as_ref()
                        .map(|p| counter_prefix(p, prefix))
                        .unwrap_or(0),
                ),
                Source::HistSumSecs(name) => {
                    delta_u64(hist_sum(&snap, name), self.prev_hist_sum(name)) * 1e-9
                }
                Source::HistSumPrefixSecs(prefix) => {
                    delta_u64(
                        hist_sum_prefix(&snap, prefix),
                        self.prev
                            .as_ref()
                            .map(|p| hist_sum_prefix(p, prefix))
                            .unwrap_or(0),
                    ) * 1e-9
                }
                Source::HistSum(name) => delta_u64(hist_sum(&snap, name), self.prev_hist_sum(name)),
                Source::Extern(e) => inputs.get(e),
            })
            .collect();
        self.prev = Some(snap);
        self.last_step = step;
        SeriesSample {
            step,
            time,
            t_ns,
            values,
        }
    }

    fn prev_counter(&self, name: &str) -> u64 {
        self.prev.as_ref().map(|p| counter_of(p, name)).unwrap_or(0)
    }

    fn prev_hist_sum(&self, name: &str) -> u64 {
        self.prev.as_ref().map(|p| hist_sum(p, name)).unwrap_or(0)
    }
}

fn counter_of(s: &Snapshot, name: &str) -> u64 {
    s.counters.get(name).copied().unwrap_or(0)
}

fn counter_prefix(s: &Snapshot, prefix: &str) -> u64 {
    s.counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

fn hist_sum(s: &Snapshot, name: &str) -> u64 {
    s.histograms.get(name).map(|h| h.sum).unwrap_or(0)
}

fn hist_sum_prefix(s: &Snapshot, prefix: &str) -> u64 {
    s.histograms
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, h)| h.sum)
        .sum()
}

fn delta_u64(cur: u64, prev: u64) -> f64 {
    cur.saturating_sub(prev) as f64
}

/// Watchdog verdict from a [`Telemetry::push_sample`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct WatchdogVerdict {
    /// Number of watchdogs that tripped on this sample.
    pub trips: u64,
    /// True when the caller should dump the flight recorder now —
    /// pre-emptively, before any escalation destroys the evidence.
    pub dump: bool,
}

struct HubInner {
    ring: VecDeque<SeriesSample>,
    events: VecDeque<TelemetryEvent>,
    totals: Vec<f64>,
    dropped_samples: u64,
    prev_drift: Option<(u64, f64)>,
    sink: Option<Box<dyn TelemetrySink>>,
}

/// The shared telemetry hub: bounded sample/event rings, cumulative
/// totals, watchdogs and the sink fan-out. Shared `Arc`-style between
/// the per-rank solvers like the metrics registry; only the reducing
/// root pushes, everyone may read.
pub struct Telemetry {
    cfg: TelemetryConfig,
    inner: Mutex<HubInner>,
}

impl Telemetry {
    /// A hub with the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            cfg,
            inner: Mutex::new(HubInner {
                ring: VecDeque::new(),
                events: VecDeque::new(),
                totals: vec![0.0; SERIES_FIELDS.len()],
                dropped_samples: 0,
                prev_drift: None,
                sink: None,
            }),
        }
    }

    /// The hub configuration.
    pub fn cfg(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Install (or replace) the streaming sink.
    pub fn set_sink(&self, sink: Box<dyn TelemetrySink>) {
        self.inner.lock().unwrap().sink = Some(sink);
    }

    /// Push a reduced sample: derive lifecycle events, update totals,
    /// run the watchdogs, ring-buffer the sample, and forward to the
    /// sink. Returns the watchdog verdict so the caller can trigger a
    /// pre-emptive flight-record dump.
    pub fn push_sample(&self, sample: SeriesSample, rank: u32) -> WatchdogVerdict {
        let mut inner = self.inner.lock().unwrap();
        let mut new_events = Vec::new();
        for (i, f) in SERIES_FIELDS.iter().enumerate() {
            let v = sample.values.get(i).copied().unwrap_or(0.0);
            if f.counter {
                inner.totals[i] += v;
            } else {
                inner.totals[i] = v;
            }
            if let Some(kind) = f.event {
                if v > 0.0 {
                    new_events.push(TelemetryEvent {
                        t_ns: sample.t_ns,
                        step: sample.step,
                        kind,
                        rank,
                        value: v,
                    });
                }
            }
        }
        let mut verdict = WatchdogVerdict::default();
        // Drift watchdog: rate of change per step, not absolute level.
        let drift = sample.values.get(IDX_DRIFT).copied().unwrap_or(0.0);
        if let Some((pstep, pdrift)) = inner.prev_drift {
            let dsteps = sample.step.saturating_sub(pstep).max(1) as f64;
            let rate = (drift - pdrift) / dsteps;
            if rate > self.cfg.drift_rate_warn {
                new_events.push(TelemetryEvent {
                    t_ns: sample.t_ns,
                    step: sample.step,
                    kind: "watchdog.drift",
                    rank,
                    value: rate,
                });
                verdict.trips += 1;
            }
        }
        inner.prev_drift = Some((sample.step, drift));
        // Cascade watchdog: repairs as a fraction of zone updates in
        // this window — a con2prim meltdown shows up here steps before
        // the run aborts.
        let zu = sample
            .values
            .get(IDX_ZONE_UPDATES)
            .copied()
            .unwrap_or(0.0)
            .max(1.0);
        let repairs: f64 = (IDX_C2P_RELAXED..=IDX_C2P_ATMO)
            .map(|i| sample.values.get(i).copied().unwrap_or(0.0))
            .sum();
        if repairs / zu > self.cfg.cascade_rate_warn {
            new_events.push(TelemetryEvent {
                t_ns: sample.t_ns,
                step: sample.step,
                kind: "watchdog.cascade",
                rank,
                value: repairs / zu,
            });
            verdict.trips += 1;
        }
        verdict.dump = verdict.trips > 0;
        for ev in &new_events {
            if inner.events.len() >= self.cfg.capacity {
                inner.events.pop_front();
            }
            inner.events.push_back(ev.clone());
        }
        if inner.sink.is_some() {
            let totals = inner.totals.clone();
            let sink = inner.sink.as_mut().expect("checked above");
            sink.on_sample(&sample, &new_events, &totals, rank);
        }
        if inner.ring.len() >= self.cfg.capacity {
            inner.ring.pop_front();
            inner.dropped_samples += 1;
        }
        inner.ring.push_back(sample);
        verdict
    }

    /// Record a lifecycle event directly (driver escalation paths).
    pub fn push_event(&self, ev: TelemetryEvent) {
        let mut inner = self.inner.lock().unwrap();
        if inner.events.len() >= self.cfg.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(ev);
    }

    /// Copy of the retained sample ring, oldest first.
    pub fn samples(&self) -> Vec<SeriesSample> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Copy of the retained event ring, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Cumulative per-field totals (counters summed, gauges latest).
    pub fn totals(&self) -> Vec<f64> {
        self.inner.lock().unwrap().totals.clone()
    }

    /// Samples overwritten because the ring was full.
    pub fn dropped_samples(&self) -> u64 {
        self.inner.lock().unwrap().dropped_samples
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("cfg", &self.cfg).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn field_indices_match_schema() {
        assert_eq!(SERIES_FIELDS[IDX_STEPS].name, "steps");
        assert_eq!(SERIES_FIELDS[IDX_DT].name, "dt");
        assert_eq!(SERIES_FIELDS[IDX_ZONE_UPDATES].name, "zone_updates");
        assert_eq!(SERIES_FIELDS[IDX_ELAPSED_S].name, "elapsed_s");
        assert_eq!(SERIES_FIELDS[IDX_C2P_RELAXED].name, "c2p_relaxed");
        assert_eq!(SERIES_FIELDS[IDX_C2P_ATMO].name, "c2p_atmo");
        assert_eq!(SERIES_FIELDS[IDX_DRIFT].name, "drift");
        // Names are unique and OpenMetrics-safe (no dots).
        for (i, f) in SERIES_FIELDS.iter().enumerate() {
            assert!(!f.name.contains('.'), "{} contains a dot", f.name);
            assert_eq!(field_index(f.name), Some(i));
        }
        // PR 10 appended the pool/serve columns at the end of the schema
        // (wire format compatibility: older indices must not shift).
        for name in [
            "pool_queue_depth",
            "pool_steals",
            "pool_watchdog_fires",
            "serve_queue_depth",
            "serve_jobs_completed",
            "serve_jobs_failed",
            "serve_jobs_cancelled",
            "serve_rejections",
            "serve_cache_hits",
        ] {
            assert!(
                field_index(name).unwrap() > IDX_DRIFT,
                "{name} must be appended after the PR 9 fields"
            );
        }
    }

    #[test]
    fn sampler_produces_deltas_not_totals() {
        let r = Registry::new();
        let mut s = TelemetrySampler::new(1);
        r.counter("dt.cadence.violation").add(3);
        r.histogram("phase.rhs.interior").record(2_000_000_000);
        let a = s.sample(1, 0.1, 10, r.snapshot(), &SampleInputs::default());
        assert_eq!(a.get("dt_violations"), Some(3.0));
        assert!((a.get("rhs_s").unwrap() - 2.0).abs() < 1e-12);
        // Second sample sees only the increment.
        r.counter("dt.cadence.violation").add(2);
        let b = s.sample(2, 0.2, 20, r.snapshot(), &SampleInputs::default());
        assert_eq!(b.get("dt_violations"), Some(2.0));
        assert_eq!(b.get("rhs_s"), Some(0.0));
    }

    #[test]
    fn pack_unpack_round_trips() {
        let r = Registry::new();
        let mut s = TelemetrySampler::new(2);
        r.counter("sdc.detected").add(1);
        let inputs = SampleInputs {
            steps: 2.0,
            dt: 1e-3,
            zone_updates: 4096.0,
            elapsed_s: 0.5,
            drift: 1e-12,
            atmo_frac: 0.01,
            max_lorentz: 1.5,
            pool_queue_depth: 3.0,
            serve_queue_depth: 7.0,
        };
        let a = s.sample(2, 0.25, 42, r.snapshot(), &inputs);
        let b = SeriesSample::unpack(&a.pack()).unwrap();
        assert_eq!(a, b);
        assert!(SeriesSample::unpack(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn merge_respects_field_ops() {
        let mk = |dt: f64, zu: f64, drift: f64| {
            let mut values = vec![0.0; SERIES_FIELDS.len()];
            values[IDX_DT] = dt;
            values[IDX_ZONE_UPDATES] = zu;
            values[IDX_DRIFT] = drift;
            SeriesSample {
                step: 4,
                time: 0.5,
                t_ns: 100,
                values,
            }
        };
        let mut root = mk(1e-3, 100.0, 1e-12);
        root.merge(&mk(9e9, 50.0, 5e-12));
        assert_eq!(root.values[IDX_DT], 1e-3); // First: root wins
        assert_eq!(root.values[IDX_ZONE_UPDATES], 150.0); // Sum
        assert_eq!(root.values[IDX_DRIFT], 5e-12); // Max
    }

    #[test]
    fn hub_derives_events_and_trips_watchdogs() {
        let hub = Telemetry::new(TelemetryConfig {
            interval: 1,
            capacity: 8,
            drift_rate_warn: 1e-6,
            cascade_rate_warn: 0.1,
        });
        let mut values = vec![0.0; SERIES_FIELDS.len()];
        values[field_index("suspicions").unwrap()] = 2.0;
        values[IDX_ZONE_UPDATES] = 100.0;
        let v = hub.push_sample(
            SeriesSample {
                step: 1,
                time: 0.1,
                t_ns: 1,
                values: values.clone(),
            },
            0,
        );
        assert_eq!(v.trips, 0, "first sample has no drift rate yet");
        let evs = hub.events();
        assert!(evs.iter().any(|e| e.kind == "suspect" && e.value == 2.0));
        // Next sample: drift jumps and the cascade floods -> both trip.
        values[field_index("suspicions").unwrap()] = 0.0;
        values[IDX_DRIFT] = 1.0;
        values[IDX_C2P_ATMO] = 50.0;
        let v = hub.push_sample(
            SeriesSample {
                step: 2,
                time: 0.2,
                t_ns: 2,
                values,
            },
            0,
        );
        assert_eq!(v.trips, 2);
        assert!(v.dump);
        let kinds: Vec<_> = hub.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&"watchdog.drift"));
        assert!(kinds.contains(&"watchdog.cascade"));
        // Totals accumulated the counter fields.
        let totals = hub.totals();
        assert_eq!(totals[IDX_ZONE_UPDATES], 200.0);
    }

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let hub = Telemetry::new(TelemetryConfig {
            capacity: 3,
            ..TelemetryConfig::default()
        });
        for step in 1..=5u64 {
            hub.push_sample(
                SeriesSample {
                    step,
                    time: step as f64,
                    t_ns: step,
                    values: vec![0.0; SERIES_FIELDS.len()],
                },
                0,
            );
        }
        let s = hub.samples();
        assert_eq!(s.len(), 3);
        assert_eq!(s.first().unwrap().step, 3);
        assert_eq!(hub.dropped_samples(), 2);
    }

    #[test]
    fn config_from_env_requires_positive_interval() {
        // Serialize env mutation within this test only.
        std::env::remove_var(TELEMETRY_INTERVAL_ENV);
        assert!(TelemetryConfig::from_env().is_none());
        std::env::set_var(TELEMETRY_INTERVAL_ENV, "0");
        assert!(TelemetryConfig::from_env().is_none());
        std::env::set_var(TELEMETRY_INTERVAL_ENV, "5");
        assert_eq!(TelemetryConfig::from_env().unwrap().interval, 5);
        std::env::remove_var(TELEMETRY_INTERVAL_ENV);
    }
}
