//! Uniform tile-parallel execution over heterogeneous backends.
//!
//! The solver expresses one time-step stage as "run this kernel over N
//! tiles"; an [`Executor`] decides *where and how* those tile kernels run.
//! Host-side backends (serial, our work-stealing pool, rayon) share this
//! trait. The simulated accelerator has an explicit-memory API (see
//! [`crate::device`]) and is driven through its own staged path by the
//! solver, exactly as a real GPU port would be.

use crate::pool::WorkStealingPool;

/// A backend that can execute a kernel over `n` independent tiles.
pub trait Executor: Send + Sync {
    /// Human-readable backend name (appears in benchmark tables).
    fn name(&self) -> &str;

    /// Execute `kernel(i)` for every tile `i in 0..n`, returning when all
    /// tiles are done. Tiles must be independent.
    fn run_tiles(&self, n: usize, kernel: &(dyn Fn(usize) + Sync));

    /// Degree of parallelism (worker count), for scheduling heuristics.
    fn parallelism(&self) -> usize;
}

/// Runs every tile on the calling thread. Baseline for scaling studies.
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn name(&self) -> &str {
        "serial"
    }

    fn run_tiles(&self, n: usize, kernel: &(dyn Fn(usize) + Sync)) {
        for i in 0..n {
            kernel(i);
        }
    }

    fn parallelism(&self) -> usize {
        1
    }
}

/// Runs tiles on the crate's own work-stealing pool.
pub struct CpuExecutor {
    pool: WorkStealingPool,
    label: String,
}

impl CpuExecutor {
    /// Create an executor backed by a fresh pool of `nthreads` workers.
    pub fn new(nthreads: usize) -> Self {
        CpuExecutor {
            pool: WorkStealingPool::new(nthreads),
            label: format!("cpu-pool({nthreads})"),
        }
    }

    /// Access the underlying pool (e.g. for task spawning).
    pub fn pool(&self) -> &WorkStealingPool {
        &self.pool
    }
}

impl Executor for CpuExecutor {
    fn name(&self) -> &str {
        &self.label
    }

    fn run_tiles(&self, n: usize, kernel: &(dyn Fn(usize) + Sync)) {
        self.pool.par_for(n, 1, kernel);
    }

    fn parallelism(&self) -> usize {
        self.pool.nthreads()
    }
}

/// Runs tiles on a dedicated rayon pool (the guide-idiomatic data-parallel
/// backend; compared against [`CpuExecutor`] in the kernel benches).
pub struct RayonExecutor {
    pool: rayon::ThreadPool,
    label: String,
}

impl RayonExecutor {
    /// Create an executor backed by a fresh rayon pool of `nthreads`.
    pub fn new(nthreads: usize) -> Self {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(nthreads)
            .thread_name(|i| format!("rhrsc-rayon-{i}"))
            .build()
            .expect("failed to build rayon pool");
        RayonExecutor {
            pool,
            label: format!("cpu-rayon({nthreads})"),
        }
    }
}

impl Executor for RayonExecutor {
    fn name(&self) -> &str {
        &self.label
    }

    fn run_tiles(&self, n: usize, kernel: &(dyn Fn(usize) + Sync)) {
        self.pool.install(|| {
            use rayon::prelude::*;
            (0..n).into_par_iter().for_each(kernel);
        });
    }

    fn parallelism(&self) -> usize {
        self.pool.current_num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn exercise(ex: &dyn Executor) {
        let n = 1000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        ex.run_tiles(n, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "{} missed or repeated tiles",
            ex.name()
        );
    }

    #[test]
    fn serial_covers_all_tiles() {
        exercise(&SerialExecutor);
        assert_eq!(SerialExecutor.parallelism(), 1);
    }

    #[test]
    fn cpu_pool_covers_all_tiles() {
        let ex = CpuExecutor::new(4);
        exercise(&ex);
        assert_eq!(ex.parallelism(), 4);
        assert!(ex.name().contains("cpu-pool"));
    }

    #[test]
    fn rayon_covers_all_tiles() {
        let ex = RayonExecutor::new(3);
        exercise(&ex);
        assert_eq!(ex.parallelism(), 3);
    }

    #[test]
    fn backends_agree_on_results() {
        // Same reduction computed on each backend must agree exactly
        // (order-independent sum into atomics).
        let compute = |ex: &dyn Executor| -> usize {
            let acc = AtomicUsize::new(0);
            ex.run_tiles(100, &|i| {
                acc.fetch_add(i * i, Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        };
        let s = compute(&SerialExecutor);
        let c = compute(&CpuExecutor::new(2));
        let r = compute(&RayonExecutor::new(2));
        assert_eq!(s, c);
        assert_eq!(s, r);
    }

    #[test]
    fn zero_tiles_is_noop() {
        let ex = CpuExecutor::new(2);
        ex.run_tiles(0, &|_| panic!("must not run"));
    }
}
