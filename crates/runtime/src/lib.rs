//! HPX-inspired heterogeneous task runtime.
//!
//! The CLUSTER-2015-era execution model this reproduces pairs a futurized
//! task runtime with heterogeneous executors (host cores + accelerators).
//! This crate provides that substrate in pure Rust:
//!
//! * [`future`] — single-assignment promise/future pairs for dependency
//!   expression (the "futurization" primitive),
//! * [`pool`] — a work-stealing thread pool built on `crossbeam-deque`,
//! * [`device`] — a *simulated accelerator*: a command-queue device with
//!   explicit device buffers, host↔device copies, modeled kernel-launch
//!   latency, and an internal compute gang. It executes real kernels, so
//!   results are bit-identical to the host path while the performance
//!   envelope (launch overhead vs. throughput) matches an offload device,
//! * [`executor`] — a uniform tile-parallel execution abstraction over
//!   serial, pooled-CPU, rayon and device backends,
//! * [`sched`] — load-balancing policies (static, throughput-weighted,
//!   dynamic work-stealing) across heterogeneous executors,
//! * [`metrics`] — dependency-free counters, log-bucketed histograms and
//!   RAII phase timers shared across the stack for phase-resolved
//!   profiling (see DESIGN.md "Observability"),
//! * [`trace`] — a span-based flight recorder (fixed-capacity per-track
//!   ring buffers) with Chrome/Perfetto `trace.json` export (see
//!   DESIGN.md "Tracing & flight recorder"),
//! * [`telemetry`] — cadenced delta sampling of the metrics registry
//!   into bounded time-series rings, with a fault/recovery event log,
//!   anomaly watchdogs and pluggable streaming sinks (see DESIGN.md
//!   "Telemetry & regression sentinel").

pub mod device;
pub mod executor;
pub mod fault;
pub mod future;
pub mod metrics;
pub mod pool;
pub mod sched;
pub mod telemetry;
pub mod trace;

pub use device::{Accelerator, AcceleratorConfig, BufId};
pub use executor::{CpuExecutor, Executor, RayonExecutor, SerialExecutor};
pub use fault::{FaultInjector, FaultPlan, FaultStats, RankSite, SnapshotTarget};
pub use future::{promise, Future, Promise};
pub use metrics::{Counter, HistSnapshot, Histogram, PhaseTimer, Registry, Snapshot};
pub use pool::{
    await_job, await_job_for, global_queue_depth, pool_timeout, watchdog_fires, WorkStealingPool,
};
pub use sched::{plan_static, plan_weighted, Policy};
pub use telemetry::{
    SampleInputs, SeriesSample, Telemetry, TelemetryConfig, TelemetryEvent, TelemetrySampler,
    TelemetrySink,
};
pub use trace::{Tracer, Track};

use std::time::{Duration, Instant};

/// Busy-wait for `d` (used to model launch latencies and network delays
/// without yielding the core, mimicking a polling runtime).
pub fn spin_for(d: Duration) {
    let end = Instant::now() + d;
    while Instant::now() < end {
        std::hint::spin_loop();
    }
}
