//! Typed scenario specifications and their canonical content hash.
//!
//! A [`ScenarioSpec`] is the unit of work the ensemble service accepts:
//! a named test problem with physical parameters, the numerical scheme
//! knobs that affect the answer, the resolution, and the budgets that
//! bound the run. Two specs that would produce bit-identical results
//! hash to the same [`canonical_hash`](ScenarioSpec::canonical_hash) —
//! that hash is the key of the content-addressed result cache, so a
//! duplicated sweep point is served for free.
//!
//! Hashing is FNV-1a over a canonical byte encoding: enum discriminants
//! as tagged strings and every `f64` parameter via `to_bits` (so `-0.0`
//! vs `0.0` or NaN payload differences are *distinct*, exactly like the
//! solver would see them). Nothing run-dependent (tenant, priority,
//! deadline, fault plan) enters the hash.

use rhrsc_solver::problems::Problem;
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::recon::Recon;
use rhrsc_srhd::riemann::RiemannSolver;

/// The test problem a scenario runs, with its physical parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProblemKind {
    /// Relativistic Sod shock tube.
    Sod,
    /// Martí–Müller blast wave 1 (mildly relativistic).
    BlastWave1,
    /// Martí–Müller blast wave 2 (strongly relativistic).
    BlastWave2,
    /// Smooth density-wave advection (the sweep workhorse: two
    /// continuous parameters).
    DensityWave {
        /// Advection velocity, `|v| < 1`.
        v: f64,
        /// Density perturbation amplitude, `|a| < 1`.
        amplitude: f64,
    },
    /// Sod tube boosted along +x.
    BoostedSod {
        /// Boost velocity, `|vb| < 1`.
        vb: f64,
    },
}

impl ProblemKind {
    /// Stable short name (hash component and metrics label).
    pub fn name(&self) -> &'static str {
        match self {
            ProblemKind::Sod => "sod",
            ProblemKind::BlastWave1 => "blast1",
            ProblemKind::BlastWave2 => "blast2",
            ProblemKind::DensityWave { .. } => "density-wave",
            ProblemKind::BoostedSod { .. } => "boosted-sod",
        }
    }

    /// Instantiate the full problem definition (IC, EOS, BCs, exact
    /// solution when known).
    pub fn build(&self) -> Problem {
        match *self {
            ProblemKind::Sod => Problem::sod(),
            ProblemKind::BlastWave1 => Problem::blast_wave_1(),
            ProblemKind::BlastWave2 => Problem::blast_wave_2(),
            ProblemKind::DensityWave { v, amplitude } => Problem::density_wave(v, amplitude),
            ProblemKind::BoostedSod { vb } => Problem::boosted_sod(vb),
        }
    }

    fn write_canonical(&self, h: &mut Fnv1a) {
        h.write_str(self.name());
        match *self {
            ProblemKind::DensityWave { v, amplitude } => {
                h.write_f64(v);
                h.write_f64(amplitude);
            }
            ProblemKind::BoostedSod { vb } => h.write_f64(vb),
            _ => {}
        }
    }
}

/// A fully-specified scenario: problem + scheme + resolution + budgets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Problem and physical parameters.
    pub problem: ProblemKind,
    /// Interior cells along x.
    pub nx: usize,
    /// Spatial reconstruction.
    pub recon: Recon,
    /// Interface Riemann solver.
    pub riemann: RiemannSolver,
    /// Runge–Kutta order.
    pub rk: RkOrder,
    /// CFL number.
    pub cfl: f64,
    /// Integration end time; `None` runs to the problem's standard
    /// `t_end`.
    pub t_end: Option<f64>,
    /// Step budget: the run stops (successfully) after this many steps
    /// even short of `t_end`. Bounds the cost of any single job.
    pub max_steps: u64,
}

impl ScenarioSpec {
    /// A spec with production-default numerics (PPM + HLLC + SSP-RK3,
    /// CFL 0.4) at resolution `nx`.
    pub fn new(problem: ProblemKind, nx: usize) -> Self {
        ScenarioSpec {
            problem,
            nx,
            recon: Recon::Ppm,
            riemann: RiemannSolver::Hllc,
            rk: RkOrder::Rk3,
            cfl: 0.4,
            t_end: None,
            max_steps: 100_000,
        }
    }

    /// The numerical scheme this spec selects (EOS taken from the
    /// problem definition).
    pub fn scheme(&self) -> Scheme {
        let prob = self.problem.build();
        let mut scheme = Scheme::default_with_gamma(5.0 / 3.0);
        scheme.eos = prob.eos;
        scheme.recon = self.recon;
        scheme.riemann = self.riemann;
        scheme
    }

    /// Hash of the *setup* this spec needs — problem + resolution +
    /// ghost width. Two specs with equal setup hashes share a grid
    /// geometry and initial state, so a batch submit computes the IC
    /// once per distinct setup and warm-starts the rest (bit-identical:
    /// the shared state is exactly what each job would have built).
    pub fn setup_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("rhrsc-setup-v1");
        self.problem.write_canonical(&mut h);
        h.write_u64(self.nx as u64);
        h.write_u64(self.recon.ghost() as u64);
        h.finish()
    }

    /// Content address of this spec: equal results ⇔ equal hash. Stable
    /// within a build; not a cross-version wire format.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("rhrsc-scenario-v1");
        self.problem.write_canonical(&mut h);
        h.write_u64(self.nx as u64);
        // Debug names of the scheme enums are stable identifiers
        // (`Ppm`, `Hllc`, ...) — cheaper than hand-written tags and
        // covered by the spec tests.
        h.write_str(&format!("{:?}", self.recon));
        h.write_str(&format!("{:?}", self.riemann));
        h.write_str(&format!("{:?}", self.rk));
        h.write_f64(self.cfl);
        match self.t_end {
            Some(t) => {
                h.write_str("t_end");
                h.write_f64(t);
            }
            None => h.write_str("t_default"),
        }
        h.write_u64(self.max_steps);
        h.finish()
    }
}

/// 64-bit FNV-1a over a canonical byte stream. Dependency-free and
/// deterministic across runs (unlike `DefaultHasher`, which is
/// randomly keyed per process).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
        // Length-delimit so ("ab","c") != ("a","bc").
        self.write_u64(s.len() as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_hash_equal() {
        let a = ScenarioSpec::new(ProblemKind::Sod, 64);
        let b = ScenarioSpec::new(ProblemKind::Sod, 64);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn every_knob_perturbs_the_hash() {
        let base = ScenarioSpec::new(
            ProblemKind::DensityWave {
                v: 0.3,
                amplitude: 0.5,
            },
            64,
        );
        let h0 = base.canonical_hash();
        let variants = [
            ScenarioSpec {
                problem: ProblemKind::DensityWave {
                    v: 0.31,
                    amplitude: 0.5,
                },
                ..base
            },
            ScenarioSpec {
                problem: ProblemKind::DensityWave {
                    v: 0.3,
                    amplitude: 0.51,
                },
                ..base
            },
            ScenarioSpec { nx: 65, ..base },
            ScenarioSpec {
                recon: Recon::Weno5,
                ..base
            },
            ScenarioSpec {
                riemann: RiemannSolver::Hll,
                ..base
            },
            ScenarioSpec {
                rk: RkOrder::Rk2,
                ..base
            },
            ScenarioSpec { cfl: 0.5, ..base },
            ScenarioSpec {
                t_end: Some(0.1),
                ..base
            },
            ScenarioSpec {
                max_steps: 17,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(v.canonical_hash(), h0, "{v:?} collided with base");
        }
    }

    #[test]
    fn negative_zero_is_distinct() {
        let a = ScenarioSpec::new(
            ProblemKind::DensityWave {
                v: 0.0,
                amplitude: 0.1,
            },
            32,
        );
        let b = ScenarioSpec::new(
            ProblemKind::DensityWave {
                v: -0.0,
                amplitude: 0.1,
            },
            32,
        );
        assert_ne!(a.canonical_hash(), b.canonical_hash());
    }

    #[test]
    fn problem_kinds_build() {
        for k in [
            ProblemKind::Sod,
            ProblemKind::BlastWave1,
            ProblemKind::BlastWave2,
            ProblemKind::DensityWave {
                v: 0.2,
                amplitude: 0.3,
            },
            ProblemKind::BoostedSod { vb: 0.5 },
        ] {
            let p = k.build();
            assert!(p.t_end > 0.0, "{} has no t_end", p.name);
        }
    }
}
