//! Ensemble service: the solver as a multi-tenant engine.
//!
//! "Millions of users" for a hydro code means *ensembles* — thousands
//! of concurrent small scenarios (parameter sweeps, UQ, regression
//! farms) multiplexed over one resilient runtime, not one big run per
//! process. This crate is that serving layer (ROADMAP item 4), built on
//! `rhrsc_runtime::pool` and the metrics/telemetry hub:
//!
//! * [`spec`] — typed [`ScenarioSpec`]s with a canonical content hash,
//! * [`cache`] — the content-addressed [`ResultCache`] keyed on that
//!   hash (repeated sweep points are free, bit-identically),
//! * [`engine`] — the [`EnsembleEngine`]: bounded per-tenant admission
//!   with backpressure, strict priority classes, per-job deadlines and
//!   cooperative [`CancelToken`]s checked at step boundaries, seeded
//!   per-job fault injection routed through the retry ladder, and
//!   `serve.*` accounting the telemetry schema exports.
//!
//! See DESIGN.md "Ensemble service" and the `f15_ensemble_service`
//! benchmark.

pub mod cache;
pub mod engine;
pub mod spec;

pub use cache::{JobResult, ResultCache};
pub use engine::{
    AdmissionError, CancelReason, CancelToken, EngineConfig, EnsembleEngine, JobHandle, JobOutcome,
    JobRequest, Priority,
};
pub use spec::{ProblemKind, ScenarioSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_runtime::fault::FaultPlan;
    use rhrsc_runtime::metrics::Registry;
    use rhrsc_runtime::WorkStealingPool;
    use std::sync::Arc;
    use std::time::Duration;

    fn engine(nthreads: usize, cfg: EngineConfig) -> EnsembleEngine {
        let pool = Arc::new(WorkStealingPool::new(nthreads));
        let reg = Arc::new(Registry::new());
        EnsembleEngine::new(pool, reg, cfg)
    }

    fn quick_spec() -> ScenarioSpec {
        ScenarioSpec {
            max_steps: 40,
            ..ScenarioSpec::new(ProblemKind::Sod, 32)
        }
    }

    /// A spec big enough to span many step boundaries (cancellation
    /// window) without being slow.
    fn long_spec() -> ScenarioSpec {
        ScenarioSpec::new(ProblemKind::Sod, 128)
    }

    #[test]
    fn job_runs_to_completion() {
        let eng = engine(2, EngineConfig::default());
        let h = eng
            .submit(JobRequest::new("t0", Priority::Batch, quick_spec()))
            .unwrap();
        match h.wait() {
            JobOutcome::Done(r) => {
                assert!(r.steps > 0 && r.steps <= 40);
                assert!(r.t_final > 0.0);
                assert!(r.data.iter().all(|v| v.is_finite()));
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(eng.registry().counter("serve.jobs.completed").get(), 1);
        assert_eq!(eng.queue_depth(), 0);
    }

    #[test]
    fn cached_job_is_bit_identical_to_uncached_run() {
        // Run the same spec on a caching engine (twice) and on a
        // cache-disabled engine; all three results must carry the very
        // same bits.
        let spec = quick_spec();
        let eng = engine(2, EngineConfig::default());
        let r1 = eng
            .submit(JobRequest::new("t0", Priority::Batch, spec))
            .unwrap()
            .wait();
        let r2 = eng
            .submit(JobRequest::new("t1", Priority::Interactive, spec))
            .unwrap()
            .wait();
        let (a, b) = (r1.result().unwrap(), r2.result().unwrap());
        assert!(Arc::ptr_eq(a, b), "second run must be served from cache");
        assert_eq!(eng.registry().counter("serve.cache.hits").get(), 1);

        let uncached = engine(
            2,
            EngineConfig {
                cache_capacity: 0,
                ..EngineConfig::default()
            },
        );
        let r3 = uncached
            .submit(JobRequest::new("t0", Priority::Batch, spec))
            .unwrap()
            .wait();
        let c = r3.result().unwrap();
        assert_eq!(a.data, c.data, "cached bits differ from a fresh solve");
        assert_eq!(a.steps, c.steps);
        assert_eq!(a.t_final.to_bits(), c.t_final.to_bits());
        assert_eq!(uncached.registry().counter("serve.cache.hits").get(), 0);
    }

    #[test]
    fn batch_submit_warm_start_is_bit_identical() {
        let spec = quick_spec();
        let eng = engine(2, EngineConfig::default());
        let cold = eng
            .submit(JobRequest::new("cold", Priority::Batch, spec))
            .unwrap()
            .wait();
        // Different spec (step budget) so the cache can't serve it, but
        // same setup — exercises the warm-start path.
        let warm_spec = ScenarioSpec {
            max_steps: 41,
            ..spec
        };
        let eng2 = engine(2, EngineConfig::default());
        let mut handles = eng2.submit_batch(vec![
            JobRequest::new("warm", Priority::Batch, spec),
            JobRequest::new("warm", Priority::Batch, warm_spec),
        ]);
        let r_b = handles.pop().unwrap().unwrap().wait();
        let r_a = handles.pop().unwrap().unwrap().wait();
        assert_eq!(
            cold.result().unwrap().data,
            r_a.result().unwrap().data,
            "warm-started job diverged from the cold run"
        );
        assert!(r_b.result().is_some());
        assert_eq!(eng2.registry().counter("serve.batch.setups").get(), 1);
        assert_eq!(
            eng2.registry().counter("serve.batch.reused_setups").get(),
            1
        );
    }

    #[test]
    fn admission_rejects_over_tenant_cap_and_recovers() {
        let eng = engine(
            1,
            EngineConfig {
                tenant_queue_cap: 2,
                max_pending: 100,
                ..EngineConfig::default()
            },
        );
        let mut handles = Vec::new();
        let mut rejected = 0;
        for _ in 0..6 {
            match eng.submit(JobRequest::new("greedy", Priority::Batch, long_spec())) {
                Ok(h) => handles.push(h),
                Err(AdmissionError::TenantQueueFull { tenant, cap }) => {
                    assert_eq!(tenant, "greedy");
                    assert_eq!(cap, 2);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(rejected > 0, "tenant cap never engaged");
        assert_eq!(
            eng.registry().counter("serve.admission.rejected").get(),
            rejected
        );
        // Another tenant is unaffected by the greedy tenant's cap.
        let other = eng
            .submit(JobRequest::new(
                "polite",
                Priority::Interactive,
                quick_spec(),
            ))
            .unwrap();
        assert!(matches!(other.wait(), JobOutcome::Done(_)));
        for h in handles {
            h.cancel();
            let _ = h.wait();
        }
    }

    #[test]
    fn cancellation_mid_step_releases_worker_without_poisoned_promise() {
        // Single worker: cancel a running job, then prove the worker is
        // free by completing another job on the same pool. wait() must
        // return Cancelled — a poisoned promise would panic instead.
        let eng = engine(1, EngineConfig::default());
        let victim = eng
            .submit(JobRequest::new("t0", Priority::Batch, long_spec()))
            .unwrap();
        // Let it start stepping, then cancel mid-run.
        std::thread::sleep(Duration::from_millis(10));
        victim.cancel();
        match victim.wait() {
            JobOutcome::Cancelled(_) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(eng.registry().counter("serve.jobs.cancelled").get() >= 1);
        let follow_up = eng
            .submit(JobRequest::new("t0", Priority::Batch, quick_spec()))
            .unwrap();
        assert!(
            matches!(follow_up.wait(), JobOutcome::Done(_)),
            "worker not released after cancellation"
        );
    }

    #[test]
    fn deadline_expiry_cancels() {
        let eng = engine(1, EngineConfig::default());
        let h = eng
            .submit(
                JobRequest::new("t0", Priority::Batch, long_spec())
                    .with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        match h.wait() {
            JobOutcome::Cancelled(CancelReason::Deadline) => {}
            other => panic!("expected Cancelled(Deadline), got {other:?}"),
        }
    }

    #[test]
    fn shutdown_with_queued_jobs_resolves_them_cancelled() {
        // One worker, several queued jobs: shutdown must resolve every
        // queued promise promptly (no hang, no poison) and the engine
        // must refuse new work.
        let eng = engine(1, EngineConfig::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                eng.submit(JobRequest::new("t0", Priority::Batch, long_spec()))
                    .unwrap()
            })
            .collect();
        std::thread::sleep(Duration::from_millis(5));
        eng.shutdown();
        assert!(matches!(
            eng.submit(JobRequest::new("t0", Priority::Batch, quick_spec())),
            Err(AdmissionError::ShuttingDown)
        ));
        let mut cancelled = 0;
        let mut done = 0;
        for h in handles {
            // The running job may finish; every queued one must be
            // Cancelled(Shutdown). Nothing may hang or panic.
            match h.wait_for(Duration::from_secs(30)) {
                Ok(JobOutcome::Cancelled(_)) => cancelled += 1,
                Ok(JobOutcome::Done(_)) => done += 1,
                Ok(other) => panic!("unexpected outcome {other:?}"),
                Err(_) => panic!("job hung across shutdown"),
            }
        }
        assert!(cancelled >= 3, "{cancelled} cancelled / {done} done");
    }

    #[test]
    fn faulty_tenant_is_isolated_and_clean_tenant_unharmed() {
        let eng = engine(
            2,
            EngineConfig {
                max_retries: 1,
                ..EngineConfig::default()
            },
        );
        // Poison every step: the job fails deterministically through
        // the retry ladder.
        let plan = FaultPlan {
            cell_poison_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let faulty = eng
            .submit(JobRequest::new("chaos", Priority::Batch, quick_spec()).with_faults(plan))
            .unwrap();
        let clean = eng
            .submit(JobRequest::new("steady", Priority::Batch, quick_spec()))
            .unwrap();
        match faulty.wait() {
            JobOutcome::Failed(msg) => assert!(msg.contains("attempts"), "{msg}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(matches!(clean.wait(), JobOutcome::Done(_)));
        let reg = eng.registry();
        assert_eq!(reg.counter("serve.jobs.failed").get(), 1);
        assert!(reg.counter("serve.retries").get() >= 1);
        assert!(reg.counter("serve.faults.poisoned").get() >= 1);
        assert_eq!(
            reg.counter("serve.isolation.breach").get(),
            0,
            "clean tenant bled into the failure counters"
        );
        assert_eq!(reg.counter("serve.tenant.steady.completed").get(), 1);
        assert_eq!(reg.counter("serve.tenant.chaos.failed").get(), 1);
    }

    #[test]
    fn strict_priority_claims_interactive_first() {
        // Single worker, pre-loaded queues: after the running job, the
        // runner must claim the interactive job before the batch
        // backlog submitted ahead of it.
        let eng = engine(1, EngineConfig::default());
        let first = eng
            .submit(JobRequest::new("t", Priority::Scavenger, quick_spec()))
            .unwrap();
        // These queue behind the running job.
        let batch_spec = ScenarioSpec {
            max_steps: 41,
            ..quick_spec()
        };
        let inter_spec = ScenarioSpec {
            max_steps: 42,
            ..quick_spec()
        };
        let batch = eng
            .submit(JobRequest::new("t", Priority::Batch, batch_spec))
            .unwrap();
        let inter = eng
            .submit(JobRequest::new("t", Priority::Interactive, inter_spec))
            .unwrap();
        let _ = first.wait();
        let r_inter = inter.wait();
        let r_batch = batch.wait();
        let (ri, rb) = (r_inter.result().unwrap(), r_batch.result().unwrap());
        // Both completed; the wait histograms carry the ordering (the
        // interactive job waited less than the batch job despite being
        // submitted later). Spot-check via the per-class wait p99.
        let snap = eng.registry().snapshot();
        let wi = snap.histograms.get("serve.wait.interactive").unwrap();
        let wb = snap.histograms.get("serve.wait.batch").unwrap();
        assert!(ri.steps > 0 && rb.steps > 0);
        assert!(
            wi.quantile(0.99) <= wb.quantile(0.99),
            "interactive waited longer than batch: {} vs {}",
            wi.quantile(0.99),
            wb.quantile(0.99)
        );
    }

    #[test]
    fn queue_depth_gauge_tracks_inflight() {
        let eng = engine(1, EngineConfig::default());
        assert_eq!(eng.queue_depth(), 0);
        let handles: Vec<_> = (0..3)
            .map(|_| {
                eng.submit(JobRequest::new("t", Priority::Batch, quick_spec()))
                    .unwrap()
            })
            .collect();
        assert!(eng.queue_depth() >= 1);
        for h in handles {
            let _ = h.wait();
        }
        assert_eq!(eng.queue_depth(), 0);
    }
}
