//! Content-addressed result cache.
//!
//! Keys are [`ScenarioSpec::canonical_hash`](crate::ScenarioSpec::canonical_hash)
//! values; a hit returns the *same* `Arc`'d result a previous run
//! produced, so repeated sweep points cost a map lookup instead of a
//! solve and cached answers are trivially bit-identical to the run that
//! populated them. Bounded FIFO eviction (oldest insertion out first)
//! keeps memory flat under unbounded sweep diversity; fault-injected
//! jobs never enter the cache (their results are deliberately not a
//! pure function of the spec).

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// The completed state of a scenario run.
#[derive(Debug, PartialEq)]
pub struct JobResult {
    /// Canonical hash of the producing spec.
    pub spec_hash: u64,
    /// Steps actually taken.
    pub steps: u64,
    /// Simulation time reached (equals the spec's end time unless the
    /// step budget stopped the run first).
    pub t_final: f64,
    /// Raw conserved field (ghost-inclusive), bit-exact.
    pub data: Vec<f64>,
}

/// Bounded content-addressed cache of [`JobResult`]s.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<u64, Arc<JobResult>>,
    fifo: VecDeque<u64>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                fifo: VecDeque::new(),
            }),
            capacity,
        }
    }

    /// Look up a result by spec hash.
    pub fn get(&self, hash: u64) -> Option<Arc<JobResult>> {
        self.inner.lock().map.get(&hash).cloned()
    }

    /// Insert a result, evicting the oldest entry beyond capacity.
    /// First write wins on a racing duplicate (both racers computed the
    /// same bits, so either is correct — keeping the incumbent preserves
    /// pointer identity for earlier hits).
    pub fn insert(&self, result: Arc<JobResult>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&result.spec_hash) {
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(old) = inner.fifo.pop_front() {
                inner.map.remove(&old);
            }
        }
        inner.fifo.push_back(result.spec_hash);
        inner.map.insert(result.spec_hash, result);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(hash: u64) -> Arc<JobResult> {
        Arc::new(JobResult {
            spec_hash: hash,
            steps: 1,
            t_final: 0.1,
            data: vec![hash as f64],
        })
    }

    #[test]
    fn hit_returns_the_same_arc() {
        let c = ResultCache::new(4);
        let r = result(7);
        c.insert(r.clone());
        let hit = c.get(7).unwrap();
        assert!(Arc::ptr_eq(&r, &hit));
        assert!(c.get(8).is_none());
    }

    #[test]
    fn fifo_eviction_beyond_capacity() {
        let c = ResultCache::new(2);
        c.insert(result(1));
        c.insert(result(2));
        c.insert(result(3)); // evicts 1
        assert!(c.get(1).is_none());
        assert!(c.get(2).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn duplicate_insert_keeps_incumbent() {
        let c = ResultCache::new(2);
        let first = result(5);
        c.insert(first.clone());
        c.insert(result(5));
        assert!(Arc::ptr_eq(&first, &c.get(5).unwrap()));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.insert(result(9));
        assert!(c.is_empty());
    }
}
