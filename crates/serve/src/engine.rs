//! The multi-tenant ensemble engine.
//!
//! [`EnsembleEngine`] multiplexes many small scenario jobs over one
//! [`WorkStealingPool`]: tenants submit [`JobRequest`]s, admission
//! control bounds per-tenant and global backlog (backpressure instead
//! of unbounded memory), a strict-priority scheduler orders the queue,
//! and a fixed set of *runner* tasks — at most one per pool worker —
//! claims jobs and integrates them to completion. Cooperative
//! [`CancelToken`]s and per-job deadlines are checked at every step
//! boundary, so a cancelled job releases its worker within one step and
//! its promise resolves to [`JobOutcome::Cancelled`] (never poisoned).
//!
//! Isolation is the core multi-tenancy property: each job runs under
//! `catch_unwind` with its own solver state and (optionally) its own
//! seeded [`FaultInjector`], so a poisoned or panicking scenario is
//! retried from its initial condition and, if it keeps failing, marked
//! [`JobOutcome::Failed`] — the engine, the runners, and other tenants'
//! jobs keep going. A clean job that fails anyway increments
//! `serve.isolation.breach`, the counter CI pins to zero.
//!
//! Completed clean runs enter the content-addressed [`ResultCache`], so
//! a duplicated sweep point resolves at submit time with the *same*
//! `Arc`'d result bits. All accounting flows through the shared metrics
//! [`Registry`] under `serve.*` names, which the telemetry schema picks
//! up as series fields (see `rhrsc_runtime::telemetry::SERIES_FIELDS`).

use crate::cache::{JobResult, ResultCache};
use crate::spec::ScenarioSpec;
use parking_lot::Mutex;
use rhrsc_grid::{Field, PatchGeom};
use rhrsc_runtime::fault::{FaultInjector, FaultPlan};
use rhrsc_runtime::future::{promise, Future, Promise};
use rhrsc_runtime::metrics::Registry;
use rhrsc_runtime::WorkStealingPool;
use rhrsc_solver::scheme::{init_cons, SolverError};
use rhrsc_solver::PatchSolver;
use rhrsc_srhd::NCOMP;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Priority class of a job. Lower classes preempt higher ones at claim
/// time (strict priority: a runner always takes the lowest non-empty
/// class), which is what orders per-class p99 latency under load.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive: claimed before everything else.
    Interactive,
    /// Normal sweep traffic.
    Batch,
    /// Only runs when nothing else is queued.
    Scavenger,
}

impl Priority {
    /// All classes, scheduling order.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Batch, Priority::Scavenger];

    /// Stable lowercase label (metrics suffix).
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::Scavenger => "scavenger",
        }
    }

    fn idx(&self) -> usize {
        *self as usize
    }
}

/// Cooperative cancellation flag, checked at step boundaries.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
}

impl CancelToken {
    /// Request cancellation; the job observes it at its next step
    /// boundary (or at claim time if still queued).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a job ended as [`JobOutcome::Cancelled`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The handle's [`CancelToken`] was triggered.
    Token,
    /// The per-job deadline expired.
    Deadline,
    /// The engine shut down with the job still queued.
    Shutdown,
}

/// Terminal state of a job.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The scenario ran to its end time (or step budget).
    Done(Arc<JobResult>),
    /// The job was cancelled cooperatively; no result.
    Cancelled(CancelReason),
    /// Retries exhausted (solver error or panic); message names the
    /// last failure.
    Failed(String),
}

impl JobOutcome {
    /// The result, if the job completed.
    pub fn result(&self) -> Option<&Arc<JobResult>> {
        match self {
            JobOutcome::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// This tenant's queue is at capacity — backpressure; resubmit
    /// after some of its jobs finish.
    TenantQueueFull {
        /// The tenant whose queue is full.
        tenant: String,
        /// Its configured queue bound.
        cap: usize,
    },
    /// The engine-wide pending bound is reached.
    EngineFull {
        /// The configured global bound.
        cap: usize,
    },
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TenantQueueFull { tenant, cap } => {
                write!(f, "tenant '{tenant}' queue full (cap {cap})")
            }
            AdmissionError::EngineFull { cap } => write!(f, "engine pending cap {cap} reached"),
            AdmissionError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Engine tuning; every knob has an `RHRSC_SERVE_*` env override.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Max queued-or-running jobs per tenant (`RHRSC_SERVE_TENANT_QUEUE`).
    pub tenant_queue_cap: usize,
    /// Max queued-or-running jobs engine-wide (`RHRSC_SERVE_MAX_PENDING`).
    pub max_pending: usize,
    /// Result-cache capacity in entries (`RHRSC_SERVE_CACHE_CAP`;
    /// 0 disables caching).
    pub cache_capacity: usize,
    /// Attempts after the first failure before a job is Failed
    /// (`RHRSC_SERVE_MAX_RETRIES`).
    pub max_retries: u32,
    /// Base per-step busy-wait a stalled job multiplies by its plan's
    /// `stall_factor − 1` — models a slow worker without slowing real
    /// physics.
    pub stall_slice: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tenant_queue_cap: 64,
            max_pending: 1024,
            cache_capacity: 256,
            max_retries: 2,
            stall_slice: Duration::from_micros(200),
        }
    }
}

impl EngineConfig {
    /// Defaults overridden by `RHRSC_SERVE_*` environment variables.
    pub fn from_env() -> Self {
        let d = EngineConfig::default();
        EngineConfig {
            tenant_queue_cap: env_usize("RHRSC_SERVE_TENANT_QUEUE", d.tenant_queue_cap).max(1),
            max_pending: env_usize("RHRSC_SERVE_MAX_PENDING", d.max_pending).max(1),
            cache_capacity: env_usize("RHRSC_SERVE_CACHE_CAP", d.cache_capacity),
            max_retries: env_usize("RHRSC_SERVE_MAX_RETRIES", d.max_retries as usize) as u32,
            stall_slice: d.stall_slice,
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

/// A submission: who, how urgent, what to run, and under what budget.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Tenant identity (accounting + per-tenant admission bound).
    pub tenant: String,
    /// Priority class.
    pub class: Priority,
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// Wall-clock budget from submission; past it the job resolves
    /// `Cancelled(Deadline)` at its next step boundary.
    pub deadline: Option<Duration>,
    /// Per-job fault plan (seeded per job id); jobs with a plan bypass
    /// the result cache.
    pub faults: Option<FaultPlan>,
}

impl JobRequest {
    /// A clean request with no deadline.
    pub fn new(tenant: impl Into<String>, class: Priority, spec: ScenarioSpec) -> Self {
        JobRequest {
            tenant: tenant.into(),
            class,
            spec,
            deadline: None,
            faults: None,
        }
    }

    /// Attach a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Attach a fault plan (exercises the isolation machinery).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// The caller's side of an admitted job.
#[derive(Debug)]
pub struct JobHandle {
    /// Canonical hash of the submitted spec (the cache key).
    pub spec_hash: u64,
    /// The class it was admitted under.
    pub class: Priority,
    fut: Future<JobOutcome>,
    cancel: Arc<CancelToken>,
}

impl JobHandle {
    /// Request cooperative cancellation.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Block until the job reaches a terminal state.
    pub fn wait(self) -> JobOutcome {
        self.fut.get()
    }

    /// [`wait`](Self::wait) with a deadline; `Err(self)` on timeout.
    pub fn wait_for(self, d: Duration) -> Result<JobOutcome, JobHandle> {
        let JobHandle {
            spec_hash,
            class,
            fut,
            cancel,
        } = self;
        match fut.get_timeout(d) {
            Ok(v) => Ok(v),
            Err(fut) => Err(JobHandle {
                spec_hash,
                class,
                fut,
                cancel,
            }),
        }
    }

    /// True once the outcome is available.
    pub fn is_ready(&self) -> bool {
        self.fut.is_ready()
    }
}

struct QueuedJob {
    id: u64,
    tenant: String,
    class: Priority,
    spec: ScenarioSpec,
    hash: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    faults: Option<FaultPlan>,
    cancel: Arc<CancelToken>,
    prom: Promise<JobOutcome>,
    /// Batch-amortized initial state (bit-identical to a cold init).
    warm_start: Option<Arc<Vec<f64>>>,
}

struct SchedState {
    queues: [VecDeque<QueuedJob>; 3],
    pending_per_tenant: HashMap<String, usize>,
    pending_total: usize,
    runners: usize,
    shutdown: bool,
}

struct EngineShared {
    pool: Arc<WorkStealingPool>,
    reg: Arc<Registry>,
    cache: ResultCache,
    cfg: EngineConfig,
    sched: Mutex<SchedState>,
    next_job_id: AtomicU64,
    /// Admitted-but-not-terminal jobs (queued + running): the
    /// `serve_queue_depth` telemetry gauge.
    inflight: AtomicUsize,
}

/// The multi-tenant job engine. See the module docs for the model.
pub struct EnsembleEngine {
    shared: Arc<EngineShared>,
}

impl EnsembleEngine {
    /// An engine running jobs on `pool`, accounting into `reg`.
    pub fn new(pool: Arc<WorkStealingPool>, reg: Arc<Registry>, cfg: EngineConfig) -> Self {
        EnsembleEngine {
            shared: Arc::new(EngineShared {
                pool,
                reg,
                cache: ResultCache::new(cfg.cache_capacity),
                cfg,
                sched: Mutex::new(SchedState {
                    queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                    pending_per_tenant: HashMap::new(),
                    pending_total: 0,
                    runners: 0,
                    shutdown: false,
                }),
                next_job_id: AtomicU64::new(0),
                inflight: AtomicUsize::new(0),
            }),
        }
    }

    /// [`new`](Self::new) with [`EngineConfig::from_env`].
    pub fn with_env(pool: Arc<WorkStealingPool>, reg: Arc<Registry>) -> Self {
        EnsembleEngine::new(pool, reg, EngineConfig::from_env())
    }

    /// The engine's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.reg
    }

    /// The engine configuration.
    pub fn cfg(&self) -> &EngineConfig {
        &self.shared.cfg
    }

    /// Admitted-but-not-terminal jobs (queued + running) — the
    /// `serve_queue_depth` telemetry gauge.
    pub fn queue_depth(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Submit one job. A clean spec already in the result cache
    /// resolves immediately (`serve.cache.hits`); otherwise the job is
    /// admitted against its tenant's and the engine's pending bounds.
    pub fn submit(&self, req: JobRequest) -> Result<JobHandle, AdmissionError> {
        self.submit_inner(req, None)
    }

    /// Submit a batch, computing each distinct (problem, resolution)
    /// initial state once and warm-starting every job that shares it.
    /// Per-job admission still applies — the returned vector is aligned
    /// with the input, rejections in place.
    pub fn submit_batch(&self, reqs: Vec<JobRequest>) -> Vec<Result<JobHandle, AdmissionError>> {
        let reg = &self.shared.reg;
        let mut setups: HashMap<u64, Arc<Vec<f64>>> = HashMap::new();
        reqs.into_iter()
            .map(|req| {
                let key = req.spec.setup_hash();
                let warm = match setups.get(&key) {
                    Some(w) => {
                        reg.counter("serve.batch.reused_setups").inc();
                        w.clone()
                    }
                    None => {
                        reg.counter("serve.batch.setups").inc();
                        let w = Arc::new(build_initial_state(&req.spec).into_vec());
                        setups.insert(key, w.clone());
                        w
                    }
                };
                self.submit_inner(req, Some(warm))
            })
            .collect()
    }

    fn submit_inner(
        &self,
        req: JobRequest,
        warm_start: Option<Arc<Vec<f64>>>,
    ) -> Result<JobHandle, AdmissionError> {
        let s = &self.shared;
        let hash = req.spec.canonical_hash();
        let cancel = Arc::new(CancelToken::default());
        // Cache fast path: clean specs only — a fault-injected run is
        // deliberately not a pure function of its spec.
        if req.faults.is_none() {
            if let Some(hit) = s.cache.get(hash) {
                s.reg.counter("serve.cache.hits").inc();
                s.reg.counter("serve.admitted").inc();
                s.reg.counter("serve.jobs.completed").inc();
                tenant_counter(&s.reg, &req.tenant, "completed").inc();
                class_hist(&s.reg, "latency", req.class).record(1);
                let (prom, fut) = promise();
                prom.set(JobOutcome::Done(hit));
                return Ok(JobHandle {
                    spec_hash: hash,
                    class: req.class,
                    fut,
                    cancel,
                });
            }
            s.reg.counter("serve.cache.misses").inc();
        }
        let (prom, fut) = promise();
        let submitted = Instant::now();
        let need_runner;
        {
            let mut st = s.sched.lock();
            if st.shutdown {
                return Err(AdmissionError::ShuttingDown);
            }
            let tenant_pending = st.pending_per_tenant.get(&req.tenant).copied().unwrap_or(0);
            if tenant_pending >= s.cfg.tenant_queue_cap {
                s.reg.counter("serve.admission.rejected").inc();
                tenant_counter(&s.reg, &req.tenant, "rejected").inc();
                return Err(AdmissionError::TenantQueueFull {
                    tenant: req.tenant,
                    cap: s.cfg.tenant_queue_cap,
                });
            }
            if st.pending_total >= s.cfg.max_pending {
                s.reg.counter("serve.admission.rejected").inc();
                tenant_counter(&s.reg, &req.tenant, "rejected").inc();
                return Err(AdmissionError::EngineFull {
                    cap: s.cfg.max_pending,
                });
            }
            *st.pending_per_tenant.entry(req.tenant.clone()).or_insert(0) += 1;
            st.pending_total += 1;
            let id = s.next_job_id.fetch_add(1, Ordering::Relaxed);
            st.queues[req.class.idx()].push_back(QueuedJob {
                id,
                tenant: req.tenant,
                class: req.class,
                spec: req.spec,
                hash,
                submitted,
                deadline: req.deadline.map(|d| submitted + d),
                faults: req.faults,
                cancel: cancel.clone(),
                prom,
                warm_start,
            });
            // One runner per pool worker at most: runners claim jobs
            // until the queues drain, so an idle engine holds no
            // workers hostage.
            need_runner = st.runners < s.pool.nthreads();
            if need_runner {
                st.runners += 1;
            }
        }
        s.reg.counter("serve.admitted").inc();
        s.inflight.fetch_add(1, Ordering::Relaxed);
        if need_runner {
            let shared = s.clone();
            drop(s.pool.spawn(move || runner_loop(shared)));
        }
        Ok(JobHandle {
            spec_hash: hash,
            class: req.class,
            fut,
            cancel,
        })
    }

    /// Stop admitting, drain the queues (each queued job resolves
    /// `Cancelled(Shutdown)`), and let running jobs finish on the pool.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) {
        let drained: Vec<QueuedJob> = {
            let mut st = self.shared.sched.lock();
            st.shutdown = true;
            let SchedState {
                queues,
                pending_per_tenant,
                pending_total,
                ..
            } = &mut *st;
            let mut out = Vec::new();
            for q in queues {
                while let Some(j) = q.pop_front() {
                    if let Some(tp) = pending_per_tenant.get_mut(&j.tenant) {
                        *tp = tp.saturating_sub(1);
                    }
                    *pending_total = pending_total.saturating_sub(1);
                    out.push(j);
                }
            }
            out
        };
        for j in drained {
            self.shared.reg.counter("serve.jobs.cancelled").inc();
            tenant_counter(&self.shared.reg, &j.tenant, "cancelled").inc();
            self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
            j.prom.set(JobOutcome::Cancelled(CancelReason::Shutdown));
        }
    }
}

impl Drop for EnsembleEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn tenant_counter(
    reg: &Registry,
    tenant: &str,
    what: &str,
) -> Arc<rhrsc_runtime::metrics::Counter> {
    reg.counter(&format!("serve.tenant.{tenant}.{what}"))
}

fn class_hist(
    reg: &Registry,
    what: &str,
    class: Priority,
) -> Arc<rhrsc_runtime::metrics::Histogram> {
    reg.histogram(&format!("serve.{what}.{}", class.label()))
}

/// Claim jobs in strict priority order until the queues drain.
fn runner_loop(shared: Arc<EngineShared>) {
    loop {
        let job = {
            let mut st = shared.sched.lock();
            match pop_highest(&mut st) {
                Some(j) => j,
                None => {
                    st.runners -= 1;
                    return;
                }
            }
        };
        run_job(&shared, job);
    }
}

fn pop_highest(st: &mut SchedState) -> Option<QueuedJob> {
    let SchedState {
        queues,
        pending_per_tenant,
        pending_total,
        ..
    } = st;
    for q in queues {
        if let Some(j) = q.pop_front() {
            if let Some(tp) = pending_per_tenant.get_mut(&j.tenant) {
                *tp = tp.saturating_sub(1);
            }
            *pending_total = pending_total.saturating_sub(1);
            return Some(j);
        }
    }
    None
}

/// Run one claimed job to a terminal state and resolve its promise.
/// Never panics out (the promise is always set), so a poisoned scenario
/// cannot take the runner — or another tenant's job — down with it.
fn run_job(shared: &EngineShared, job: QueuedJob) {
    let reg = &shared.reg;
    class_hist(reg, "wait", job.class).record(job.submitted.elapsed().as_nanos().max(1) as u64);
    let outcome = execute_with_retries(shared, &job);
    class_hist(reg, "latency", job.class).record(job.submitted.elapsed().as_nanos().max(1) as u64);
    match &outcome {
        JobOutcome::Done(result) => {
            reg.counter("serve.jobs.completed").inc();
            tenant_counter(reg, &job.tenant, "completed").inc();
            if job.faults.is_none() {
                shared.cache.insert(result.clone());
            }
        }
        JobOutcome::Cancelled(_) => {
            reg.counter("serve.jobs.cancelled").inc();
            tenant_counter(reg, &job.tenant, "cancelled").inc();
        }
        JobOutcome::Failed(_) => {
            reg.counter("serve.jobs.failed").inc();
            tenant_counter(reg, &job.tenant, "failed").inc();
            if job.faults.is_none() {
                // A clean job must not fail: any failure here leaked
                // out of some other tenant's blast radius (or is an
                // engine bug). CI pins this counter to zero.
                reg.counter("serve.isolation.breach").inc();
            }
        }
    }
    shared.inflight.fetch_sub(1, Ordering::Relaxed);
    job.prom.set(outcome);
}

enum ExecStop {
    Cancelled(CancelReason),
    Solver(SolverError),
}

fn execute_with_retries(shared: &EngineShared, job: &QueuedJob) -> JobOutcome {
    // One injector across attempts: the draw stream continues through
    // retries, so a retried job faces fresh (still deterministic) luck
    // rather than replaying the exact fault that killed it.
    let injector = job
        .faults
        .clone()
        .map(|plan| FaultInjector::new(plan, job.id));
    let mut attempt = 0u32;
    loop {
        if job.cancel.is_cancelled() {
            return JobOutcome::Cancelled(CancelReason::Token);
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            execute_spec(shared, job, injector.as_ref())
        }));
        let failure = match run {
            Ok(Ok(result)) => return JobOutcome::Done(Arc::new(result)),
            Ok(Err(ExecStop::Cancelled(reason))) => return JobOutcome::Cancelled(reason),
            Ok(Err(ExecStop::Solver(e))) => format!("solver error: {e}"),
            Err(payload) => format!("job panicked: {}", panic_msg(payload)),
        };
        attempt += 1;
        if attempt > shared.cfg.max_retries {
            return JobOutcome::Failed(format!("{failure} (after {attempt} attempts)"));
        }
        shared.reg.counter("serve.retries").inc();
    }
}

fn panic_msg(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn build_initial_state(spec: &ScenarioSpec) -> Field {
    let prob = spec.problem.build();
    let scheme = spec.scheme();
    let geom = PatchGeom::line(
        spec.nx,
        prob.domain.0[0],
        prob.domain.1[0],
        scheme.required_ghosts(),
    );
    init_cons(geom, &scheme.eos, &|x| (prob.ic)(x))
}

/// Integrate one scenario, checking cancellation/deadline and injecting
/// per-job faults at every step boundary. Runs without the pool — the
/// job *is* the unit of parallelism; nesting `par_for` under thousands
/// of concurrent jobs would only thrash the deques.
fn execute_spec(
    shared: &EngineShared,
    job: &QueuedJob,
    injector: Option<&FaultInjector>,
) -> Result<JobResult, ExecStop> {
    let spec = &job.spec;
    let prob = spec.problem.build();
    let scheme = spec.scheme();
    let geom = PatchGeom::line(
        spec.nx,
        prob.domain.0[0],
        prob.domain.1[0],
        scheme.required_ghosts(),
    );
    let mut u = match &job.warm_start {
        Some(data) => Field::from_vec(geom, NCOMP, data.as_ref().clone()),
        None => init_cons(geom, &scheme.eos, &|x| (prob.ic)(x)),
    };
    let mut solver = PatchSolver::new(scheme, prob.bcs, spec.rk, geom);
    let t_end = spec.t_end.unwrap_or(prob.t_end);
    let mut t = 0.0_f64;
    let mut steps = 0u64;
    while t < t_end - 1e-14 && steps < spec.max_steps {
        if job.cancel.is_cancelled() {
            return Err(ExecStop::Cancelled(CancelReason::Token));
        }
        if let Some(dl) = job.deadline {
            if Instant::now() >= dl {
                return Err(ExecStop::Cancelled(CancelReason::Deadline));
            }
        }
        if let Some(inj) = injector {
            // Deterministic cell poisoning: one interior conserved
            // value becomes NaN; primitive recovery trips on it and
            // the retry ladder takes over.
            if let Some(victim) = inj.should_poison_cell() {
                let cells: Vec<_> = geom.interior_iter().collect();
                let (i, j, k) = cells[victim as usize % cells.len()];
                u.set(0, i, j, k, f64::NAN);
                shared.reg.counter("serve.faults.poisoned").inc();
            }
            // Straggler injection: burn real wall time so healthy
            // tenants genuinely contend with a slow job.
            if let Some(factor) = inj.should_stall_rank(0) {
                let extra = shared.cfg.stall_slice.mul_f64((factor - 1.0).max(0.0));
                rhrsc_runtime::spin_for(extra);
                shared.reg.counter("serve.faults.stalls").inc();
            }
        }
        let mut dt = solver
            .stable_dt(&mut u, spec.cfl)
            .map_err(ExecStop::Solver)?;
        // Negated form deliberately catches NaN as a collapse.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(dt > 1e-14) {
            return Err(ExecStop::Solver(SolverError::TimestepCollapse { dt }));
        }
        if t + dt > t_end {
            dt = t_end - t;
        }
        solver.step(&mut u, dt, None).map_err(ExecStop::Solver)?;
        t += dt;
        steps += 1;
    }
    Ok(JobResult {
        spec_hash: job.hash,
        steps,
        t_final: t,
        data: u.into_vec(),
    })
}
