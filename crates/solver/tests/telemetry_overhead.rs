//! Overhead bound for telemetry sampling on the distributed driver loop.
//!
//! Run manually (timing tests are noisy under CI load):
//!
//! ```sh
//! cargo test --release -p rhrsc-solver --test telemetry_overhead -- --ignored --nocapture
//! ```
//!
//! Measures the metrics-enabled loop with and without the telemetry hub
//! armed at the default cadence (every step — the worst case; coarser
//! cadences do strictly less work). A sample is one registry snapshot,
//! one fixed-size delta pack, and (on >1 rank) one point-to-point
//! reduction per cadence, against milliseconds of physics per step, so
//! the target is <2% with slack for machine noise.

use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::{Registry, Telemetry, TelemetryConfig};
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Instant;

fn cfg() -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [64, 64, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [1, 1, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

fn ic(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
        vel: [0.2, 0.1, 0.0],
        p: 1.0,
    }
}

/// Seconds for `nsteps` on one ideal-network rank, best of `reps`;
/// metrics always attached, telemetry optionally armed at cadence 1.
fn time_loop(nsteps: usize, reps: usize, telemetry: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let hub = telemetry.then(|| Arc::new(Telemetry::new(TelemetryConfig::default())));
        let secs = run(1, NetworkModel::ideal(), move |rank| {
            let reg = Arc::new(Registry::new());
            rank.set_metrics(reg.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg(), rank.rank(), &ic);
            solver.set_metrics(reg);
            if let Some(h) = &hub {
                solver.set_telemetry(h.clone());
            }
            let t0 = Instant::now();
            solver.advance_steps(rank, &mut u, nsteps).unwrap();
            t0.elapsed().as_secs_f64()
        })[0];
        best = best.min(secs);
    }
    best
}

#[test]
#[ignore = "timing measurement; run manually with --release --ignored"]
fn telemetry_overhead_is_small() {
    let (nsteps, reps) = (40, 5);
    time_loop(4, 1, false); // warm up
    let off = time_loop(nsteps, reps, false);
    let on = time_loop(nsteps, reps, true);
    let ratio = on / off;
    println!("telemetry off: {off:.4}s  on: {on:.4}s  ratio: {ratio:.4}");
    // Target <2% at the every-step cadence; allow generous slack for
    // machine noise (same bound discipline as metrics_overhead).
    assert!(
        ratio < 1.10,
        "telemetry-armed loop {ratio:.3}x slower than detached (off {off:.4}s, on {on:.4}s)"
    );
}
