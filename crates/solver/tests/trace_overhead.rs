//! Overhead bound for the flight recorder on the distributed driver loop.
//!
//! Run manually (timing tests are noisy under CI load):
//!
//! ```sh
//! cargo test --release -p rhrsc-solver --test trace_overhead -- --ignored --nocapture
//! ```
//!
//! The *disabled* path (no tracer attached) costs one `Option` check per
//! phase boundary and per liveness event, so it does strictly less work
//! than the *enabled* path measured here; showing enabled-vs-disabled is
//! within 2% bounds the disabled-path overhead from above.

use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::trace::Tracer;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Instant;

fn cfg() -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [64, 64, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [1, 1, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

fn ic(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
        vel: [0.2, 0.1, 0.0],
        p: 1.0,
    }
}

/// Seconds for `nsteps` on one ideal-network rank, best of `reps`.
fn time_loop(nsteps: usize, reps: usize, tracer: Option<Arc<Tracer>>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let tracer = tracer.clone();
        let secs = run(1, NetworkModel::ideal(), move |rank| {
            if let Some(tr) = &tracer {
                rank.set_trace(tr.clone());
            }
            let (mut solver, mut u) = BlockSolver::new(cfg(), rank.rank(), &ic);
            let t0 = Instant::now();
            solver.advance_steps(rank, &mut u, nsteps).unwrap();
            t0.elapsed().as_secs_f64()
        })[0];
        best = best.min(secs);
    }
    best
}

#[test]
#[ignore = "timing measurement; run manually with --release --ignored"]
fn trace_overhead_is_small() {
    let (nsteps, reps) = (40, 5);
    time_loop(4, 1, None); // warm up
    let off = time_loop(nsteps, reps, None);
    let on = time_loop(nsteps, reps, Some(Arc::new(Tracer::new(16 * 1024))));
    let ratio = on / off;
    println!("trace off: {off:.4}s  on: {on:.4}s  ratio: {ratio:.4}");
    // The enabled path pushes a handful of ring events per step (fixed
    // capacity, no allocation after warm-up) against ~10 ms of physics.
    assert!(
        ratio < 1.02,
        "trace-enabled loop {ratio:.3}x slower than disabled (off {off:.4}s, on {on:.4}s)"
    );
}
