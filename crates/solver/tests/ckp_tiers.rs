//! Recovery-ladder ordering for the multi-level checkpoint hierarchy.
//!
//! The resilient driver restores from the cheapest tier that can serve a
//! globally consistent state: L1 (own diskless snapshot) → L2 (buddy
//! replica shipped back by the guardian) → L3 (disk slots). These tests
//! pin the ordering by arming all tiers and then invalidating them one at
//! a time with targeted snapshot bit-flip injection, asserting which tier
//! counters move — and, crucially, which stay zero.

use rhrsc_comm::{run, run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::fault::SnapshotTarget;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode, ResilienceConfig};
use rhrsc_solver::integrate::RkOrder;
use rhrsc_solver::scheme::{Scheme, SolverError};
use rhrsc_srhd::Prim;
use std::time::Duration;

fn sod_cfg(nranks: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk3,
        global_n: [128, 1, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp::line(nranks, false),
        bcs: bc::uniform(Bc::Outflow),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

fn sod_ic(x: [f64; 3]) -> Prim {
    if x[0] < 0.5 {
        Prim::new_1d(1.0, 0.0, 1.0)
    } else {
        Prim::new_1d(0.125, 0.0, 0.1)
    }
}

/// All memory tiers armed on a fast cadence; the disk tier configured but
/// expected to stay cold.
fn tiered_res(dir: Option<std::path::PathBuf>) -> ResilienceConfig {
    ResilienceConfig {
        max_step_retries: 0,
        max_restarts: 200,
        checkpoint_interval: 3,
        checkpoint_dir: dir,
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 1,
        ..ResilienceConfig::default()
    }
}

/// With healthy memory tiers, every retry-exhaustion restore is served
/// from the rank's own L1 snapshot: the disk slots exist but are never
/// read.
#[test]
fn memory_tier_serves_restores_before_disk() {
    let cfg = sod_cfg(2);
    let dir = std::env::temp_dir().join("rhrsc-tiers-local-first");
    let _ = std::fs::remove_dir_all(&dir);
    let res = tiered_res(Some(dir.clone()));
    let plan = FaultPlan {
        seed: 11,
        msg_truncate_prob: 0.02,
        ..FaultPlan::disabled()
    };
    let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
        solver
            .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
            .unwrap()
    });
    for (_, r) in &outs {
        assert!(r.restarts > 0, "faults must force at least one restore");
        assert_eq!(
            r.restarts, r.local_restores,
            "every restore must come from the L1 tier: {r:?}"
        );
        assert_eq!(r.buddy_restores, 0, "{r:?}");
        assert_eq!(r.disk_restores, 0, "the disk tier must stay cold: {r:?}");
        assert!(r.local_snapshots > 0 && r.buddy_exchanges > 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rot every rank's *own* snapshot at capture time: the scrub drops the
/// L1 tier, and restores fall back to the buddy replicas (which were
/// shipped clean, before the rot was injected) — still no disk reads.
#[test]
fn rotted_local_snapshots_fall_back_to_buddy_replicas() {
    let cfg = sod_cfg(2);
    let dir = std::env::temp_dir().join("rhrsc-tiers-buddy-fallback");
    let _ = std::fs::remove_dir_all(&dir);
    let res = tiered_res(Some(dir.clone()));
    let plan = FaultPlan {
        seed: 11,
        msg_truncate_prob: 0.02,
        snapshot_bitflip_prob: 1.0,
        snapshot_flip_target: SnapshotTarget::Local,
        ..FaultPlan::disabled()
    };
    let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
        solver
            .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
            .unwrap()
    });
    for (_, r) in &outs {
        assert!(r.restarts > 0, "faults must force at least one restore");
        assert_eq!(r.local_restores, 0, "every L1 copy is rotted: {r:?}");
        assert_eq!(
            r.restarts, r.buddy_restores,
            "every restore must come from the buddy replica: {r:?}"
        );
        assert_eq!(r.disk_restores, 0, "the disk tier must stay cold: {r:?}");
        assert!(
            r.snapshots_rotted > 0,
            "the scrub must catch the injected rot: {r:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rot both memory tiers: the collective memory restore cannot cover the
/// blocks, and the ladder falls all the way through to the disk slots.
#[test]
fn fully_rotted_memory_tiers_fall_through_to_disk() {
    let cfg = sod_cfg(2);
    let dir = std::env::temp_dir().join("rhrsc-tiers-disk-fallback");
    let _ = std::fs::remove_dir_all(&dir);
    let res = ResilienceConfig {
        // Checkpoint every committed step so the disk tier tracks the
        // memory tier and restores converge.
        checkpoint_interval: 1,
        ..tiered_res(Some(dir.clone()))
    };
    let plan = FaultPlan {
        seed: 11,
        msg_truncate_prob: 0.02,
        snapshot_bitflip_prob: 1.0,
        snapshot_flip_target: SnapshotTarget::Both,
        ..FaultPlan::disabled()
    };
    let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
        solver
            .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
            .unwrap()
    });
    for (_, r) in &outs {
        assert!(r.restarts > 0, "faults must force at least one restore");
        assert_eq!(r.local_restores, 0, "{r:?}");
        assert_eq!(r.buddy_restores, 0, "{r:?}");
        assert_eq!(
            r.restarts, r.disk_restores,
            "with both memory tiers rotted only disk can serve: {r:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A confirmed rank death with *no checkpoint directory*: the survivors
/// reassemble the lost block from the buddy replicas and re-tile onto the
/// shrunken decomposition — a fully diskless shrinking recovery.
#[test]
fn buddy_shrink_survives_rank_death_without_disk() {
    let cfg = sod_cfg(3);
    let res = ResilienceConfig {
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 2,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let plan = FaultPlan {
        seed: 5,
        crash_rank: Some(0),
        crash_step: 4,
        ..FaultPlan::disabled()
    };
    let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
    let outs = run_with_faults(3, model, Some(plan), |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
        match solver.advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res) {
            Ok((_, rstats)) => {
                assert!(u.raw().iter().all(|v| v.is_finite()));
                Some(rstats)
            }
            Err(SolverError::RankFailed { .. }) => None,
            Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
        }
    });
    assert!(outs[0].is_none(), "the victim must report RankFailed");
    let survivors: Vec<_> = outs.iter().flatten().collect();
    assert_eq!(survivors.len(), 2, "both survivors must finish");
    for r in &survivors {
        assert_eq!(r.shrinks, 1, "{r:?}");
        assert_eq!(r.ranks_lost, 1, "{r:?}");
        assert_eq!(
            r.buddy_shrinks, 1,
            "the shrink must be served from replicas: {r:?}"
        );
        assert_eq!(r.disk_restores, 0, "no disk tier exists: {r:?}");
    }
}

/// Injected live-state bit flips are caught by the per-step ABFT verify
/// and repaired from the memory tier without consuming the restart
/// budget (a deterministic replay cannot re-draw the same flip).
#[test]
fn live_sdc_is_detected_and_repaired_from_memory() {
    let cfg = sod_cfg(2);
    let res = ResilienceConfig {
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 1,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let plan = FaultPlan {
        seed: 42,
        bitflip_prob: 0.05,
        ..FaultPlan::disabled()
    };
    let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
        let out = solver
            .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
            .unwrap();
        assert!(u.raw().iter().all(|v| v.is_finite()));
        out
    });
    let detected: u64 = outs.iter().map(|(_, r)| r.sdc_detected).sum();
    assert!(detected > 0, "expected at least one live-state detection");
    for (_, r) in &outs {
        assert_eq!(
            r.restarts, 0,
            "SDC repairs must not consume the restart budget: {r:?}"
        );
        assert!(
            r.local_restores + r.buddy_restores > 0,
            "detections must be repaired from the memory tier: {r:?}"
        );
    }
}

/// Arming the memory tiers and the per-step ABFT verify on a fault-free
/// run must be bit-invisible: snapshots are pure reads of the state.
#[test]
fn armed_tiers_are_bit_invisible_without_faults() {
    let cfg = sod_cfg(2);
    let bare = ResilienceConfig {
        local_interval: 0,
        scrub_interval: 0,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let armed = ResilienceConfig {
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 1,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let run_one = |res: ResilienceConfig| {
        let cfg = cfg.clone();
        run(2, NetworkModel::ideal(), move |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &sod_ic);
            solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
                .unwrap();
            u.raw().to_vec()
        })
    };
    let plain = run_one(bare);
    let tiered = run_one(armed);
    for (rank, (a, b)) in plain.iter().zip(&tiered).enumerate() {
        let identical = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "rank {rank}: armed tiers changed the numbers");
    }
}
