//! Overhead bound for the metrics layer on the distributed driver loop.
//!
//! Run manually (timing tests are noisy under CI load):
//!
//! ```sh
//! cargo test --release -p rhrsc-solver --test metrics_overhead -- --ignored --nocapture
//! ```
//!
//! The *disabled* path (no registry attached) costs one `Option` check
//! per phase boundary, so it does strictly less work than the *enabled*
//! path measured here; showing enabled-vs-disabled is within a few
//! percent bounds the disabled-path overhead from above.

use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Instant;

fn cfg() -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [64, 64, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [1, 1, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

fn ic(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
        vel: [0.2, 0.1, 0.0],
        p: 1.0,
    }
}

/// Seconds for `nsteps` on one ideal-network rank, best of `reps`.
fn time_loop(nsteps: usize, reps: usize, metrics: Option<Arc<Registry>>) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let metrics = metrics.clone();
        let secs = run(1, NetworkModel::ideal(), move |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg(), rank.rank(), &ic);
            if let Some(m) = &metrics {
                rank.set_metrics(m.clone());
                solver.set_metrics(m.clone());
            }
            let t0 = Instant::now();
            solver.advance_steps(rank, &mut u, nsteps).unwrap();
            t0.elapsed().as_secs_f64()
        })[0];
        best = best.min(secs);
    }
    best
}

#[test]
#[ignore = "timing measurement; run manually with --release --ignored"]
fn metrics_overhead_is_small() {
    let (nsteps, reps) = (40, 5);
    time_loop(4, 1, None); // warm up
    let off = time_loop(nsteps, reps, None);
    let on = time_loop(nsteps, reps, Some(Arc::new(Registry::new())));
    let ratio = on / off;
    println!("metrics off: {off:.4}s  on: {on:.4}s  ratio: {ratio:.4}");
    // The enabled path records ~16 histogram entries per step against
    // ~10ms of physics (measured ~3% here, ~1.6% with the registry
    // detached); allow generous slack for machine noise.
    assert!(
        ratio < 1.10,
        "metrics-enabled loop {ratio:.3}x slower than disabled (off {off:.4}s, on {on:.4}s)"
    );
}
