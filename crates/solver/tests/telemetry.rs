//! Cross-rank telemetry aggregation tests.
//!
//! 1. **Merge-order determinism**: the root merges per-rank samples in
//!    block order (not arrival order), so two identical runs produce
//!    bit-identical series for every deterministic field, at 2 and 4
//!    ranks. Wall-clock-derived fields (phase seconds, elapsed time,
//!    trace timestamps) are excluded — they are honest measurements and
//!    legitimately vary run to run.
//! 2. **Bit-identity**: arming telemetry must not perturb the solver —
//!    the final conserved state is bit-for-bit identical with the hub
//!    armed vs detached. Sampling only *reads* solver state, and the
//!    reduction travels over the dedicated reliable `TELEMETRY_TAG`,
//!    which never touches the fault-injection op counter.

use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::telemetry::field_index;
use rhrsc_runtime::{Registry, SeriesSample, Telemetry, TelemetryConfig};
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 32;
const NSTEPS: usize = 6;

fn cfg(p: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [N, N, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp::auto(p, [N, N, 1], [true, true, false]),
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

fn ic(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
        vel: [0.2, 0.1, 0.0],
        p: 1.0,
    }
}

/// Run `NSTEPS` on `p` virtual-cluster ranks with telemetry armed at
/// cadence 1; returns the reduced series and the final per-rank states.
fn run_armed(p: usize) -> (Vec<SeriesSample>, Vec<Vec<f64>>) {
    let hub = Arc::new(Telemetry::new(TelemetryConfig::default()));
    let model = NetworkModel::virtual_cluster(Duration::from_micros(10), 10e9);
    let regs: Vec<Arc<Registry>> = (0..p).map(|_| Arc::new(Registry::new())).collect();
    let states = {
        let hub = hub.clone();
        run(p, model, move |rank| {
            let reg = regs[rank.rank()].clone();
            rank.set_metrics(reg.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg(p), rank.rank(), &ic);
            solver.set_metrics(reg);
            solver.set_telemetry(hub.clone());
            solver.advance_steps(rank, &mut u, NSTEPS).unwrap();
            u.raw().to_vec()
        })
    };
    (hub.samples(), states)
}

fn run_detached(p: usize) -> Vec<Vec<f64>> {
    let model = NetworkModel::virtual_cluster(Duration::from_micros(10), 10e9);
    run(p, model, move |rank| {
        let (mut solver, mut u) = BlockSolver::new(cfg(p), rank.rank(), &ic);
        solver.advance_steps(rank, &mut u, NSTEPS).unwrap();
        u.raw().to_vec()
    })
}

/// Wall-clock-derived fields, excluded from the determinism check.
const TIMING_FIELDS: &[&str] = &[
    "elapsed_s",
    "rhs_s",
    "halo_wait_s",
    "coll_wait_s",
    "dt_allreduce_s",
];

fn deterministic_bits(samples: &[SeriesSample]) -> Vec<u64> {
    let timing: Vec<usize> = TIMING_FIELDS
        .iter()
        .map(|n| field_index(n).expect("schema field"))
        .collect();
    let mut bits = Vec::new();
    for s in samples {
        bits.push(s.step);
        bits.push(s.time.to_bits());
        for (i, v) in s.values.iter().enumerate() {
            if !timing.contains(&i) {
                bits.push(v.to_bits());
            }
        }
    }
    bits
}

#[test]
fn reduced_series_is_deterministic_across_runs() {
    for p in [2usize, 4] {
        let (a, _) = run_armed(p);
        let (b, _) = run_armed(p);
        assert_eq!(a.len(), NSTEPS, "one sample per committed step at p={p}");
        assert_eq!(
            deterministic_bits(&a),
            deterministic_bits(&b),
            "reduced series differs between identical runs at p={p}"
        );
        // Every rank contributed to the Sum-merged fields: the global
        // zone-update count per step is cells × RK stages, independent
        // of the decomposition.
        let zu = field_index("zone_updates").unwrap();
        let expect = (N * N * 2) as f64;
        for s in &a {
            assert_eq!(s.values[zu], expect, "p={p} sample missing rank shares");
        }
        // First-merge fields come from block 0, not arrival order: dt
        // is collectively agreed, so it must match the sample's committed
        // step regardless of which rank's packet landed first.
        let dt = field_index("dt").unwrap();
        assert!(a.iter().all(|s| s.values[dt] > 0.0));
    }
}

#[test]
fn solver_state_is_bit_identical_with_telemetry_armed() {
    for p in [2usize, 4] {
        let (_, armed) = run_armed(p);
        let detached = run_detached(p);
        assert_eq!(armed.len(), detached.len());
        for (r, (a, d)) in armed.iter().zip(&detached).enumerate() {
            assert_eq!(a.len(), d.len());
            let diff = a
                .iter()
                .zip(d)
                .filter(|(x, y)| x.to_bits() != y.to_bits())
                .count();
            assert_eq!(
                diff, 0,
                "rank {r}/{p}: {diff} conserved values differ with telemetry armed"
            );
        }
    }
}
