//! The fused wave-speed scan must reproduce the two-pass Δt *bitwise*.
//!
//! The driver's hot loop no longer runs a dedicated primitive-recovery +
//! `max_dt` pass: the stage-0 residual sweep accumulates each cell's CFL
//! rate `Σ_d max(|λ−|, |λ+|) / Δx_d` into a rate bank as a side effect
//! ([`accumulate_rhs_region_scan`]), and [`dt_from_rates`] folds it into
//! the step. These tests pin the fused scan to the historical two-pass
//! [`max_dt`] down to the last bit, including when the interior is
//! tiled into multiple regions (the gang-parallel decomposition).

use rhrsc_grid::{bc, fill_ghosts, Bc, Field, PatchGeom};
use rhrsc_solver::scheme::{dt_from_rates, init_cons, max_dt, recover_prims};
use rhrsc_solver::step::{accumulate_rhs_region_scan, Region};
use rhrsc_solver::Scheme;
use rhrsc_srhd::recon::Recon;
use rhrsc_srhd::Prim;

fn prepared(s: &Scheme, geom: PatchGeom, ic: &dyn Fn([f64; 3]) -> Prim) -> Field {
    let mut u = init_cons(geom, &s.eos, ic);
    fill_ghosts(&mut u, &bc::uniform(Bc::Periodic));
    let mut prim = Field::new(geom, 5);
    recover_prims(s, &u, &mut prim).unwrap();
    prim
}

fn scanned_rates(s: &Scheme, prim: &Field, regions: &[Region]) -> Vec<f64> {
    let geom = *prim.geom();
    let mut rhs = Field::cons(geom);
    let mut rates = vec![0.0; geom.len()];
    for r in regions {
        accumulate_rhs_region_scan(s, prim, &mut rhs, r, Some(&mut rates[..]), None);
    }
    rates
}

fn check_bitwise(s: &Scheme, geom: PatchGeom, ic: &dyn Fn([f64; 3]) -> Prim) {
    let cfl = 0.4;
    let prim = prepared(s, geom, ic);
    let two_pass = max_dt(s, &prim, cfl);
    let rates = scanned_rates(s, &prim, &[Region::interior(&geom)]);
    let fused = dt_from_rates(cfl, &rates);
    assert_eq!(
        fused.to_bits(),
        two_pass.to_bits(),
        "fused {fused:e} vs two-pass {two_pass:e}"
    );
}

fn wavy(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.4 * (5.0 * x[0]).sin() * (3.0 * x[1]).cos(),
        vel: [
            0.5 * (2.0 * x[1]).sin(),
            -0.4 * (4.0 * x[0]).cos(),
            0.2 * (3.0 * x[2]).sin(),
        ],
        p: 1.0 + 0.3 * (4.0 * x[2]).cos() * (2.0 * x[0]).sin(),
    }
}

#[test]
fn fused_scan_matches_two_pass_1d() {
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    check_bitwise(&s, PatchGeom::line(64, 0.0, 1.0, 3), &wavy);
}

#[test]
fn fused_scan_matches_two_pass_2d() {
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    check_bitwise(&s, PatchGeom::rect([20, 14], [0.0; 2], [1.0; 2], 3), &wavy);
}

#[test]
fn fused_scan_matches_two_pass_3d() {
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    check_bitwise(
        &s,
        PatchGeom::cube([10, 8, 6], [0.0; 3], [1.0; 3], 3),
        &wavy,
    );
}

#[test]
fn fused_scan_matches_two_pass_weno5_hll() {
    let s = Scheme {
        recon: Recon::Weno5,
        riemann: rhrsc_srhd::riemann::RiemannSolver::Hll,
        ..Scheme::default_with_gamma(5.0 / 3.0)
    };
    check_bitwise(&s, PatchGeom::rect([16, 12], [0.0; 2], [1.0; 2], 3), &wavy);
}

#[test]
fn region_tiling_leaves_rates_intact() {
    // Tiling the interior (as the work-stealing gang does) must leave the
    // rate bank bitwise identical to the single-region sweep: every
    // cell's dimension-sum completes inside its own tile.
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::rect([20, 14], [0.0; 2], [1.0; 2], 3);
    let prim = prepared(&s, geom, &wavy);
    let whole = Region::interior(&geom);
    let single = scanned_rates(&s, &prim, &[whole]);
    let mid = whole.lo[0] + (whole.hi[0] - whole.lo[0]) / 2;
    let left = Region {
        lo: whole.lo,
        hi: [mid, whole.hi[1], whole.hi[2]],
    };
    let right = Region {
        lo: [mid, whole.lo[1], whole.lo[2]],
        hi: whole.hi,
    };
    let tiled = scanned_rates(&s, &prim, &[left, right]);
    for (i, (a, b)) in single.iter().zip(&tiled).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "rate mismatch at flat index {i}");
    }
    assert_eq!(
        dt_from_rates(0.4, &single).to_bits(),
        dt_from_rates(0.4, &tiled).to_bits()
    );
}
