//! Bit-identity regression for the `SmrSolver` → shared `refine` ops
//! refactor: the a5_smr_efficiency numbers (Sod, ppm + hllc + rk3,
//! coarse 100 with a ratio-2 fine level over cells 20..95) must be
//! *bit-for-bit* unchanged. The expected constants below were recorded
//! from the pre-refactor solver; any deviation means the refactor
//! altered floating-point behaviour, not just code layout.

use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::smr::SmrSolver;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};

/// Replicates the a5 bench loop exactly (same dt policy, same t_end).
fn run_smr(subcycled: bool) -> f64 {
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let exact = prob.exact.clone().unwrap();
    let mut smr = SmrSolver::new(scheme, prob.bcs, RkOrder::Rk3, 100, 0.0, 1.0, 20, 95);
    if subcycled {
        smr = smr.with_subcycling();
    }
    smr.init(&|x| (prob.ic)(x));
    let mut t = 0.0;
    while t < prob.t_end - 1e-14 {
        let mut dt = smr.stable_dt(0.4).unwrap();
        if t + dt > prob.t_end {
            dt = prob.t_end - t;
        }
        smr.step(dt).unwrap();
        t += dt;
    }
    smr.l1_density_error(&*exact, prob.t_end).unwrap()
}

fn run_uniform(n: usize) -> f64 {
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let exact = prob.exact.clone().unwrap();
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
        .unwrap();
    l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap().0
}

/// IEEE-754 bit patterns of the four a5 L1(ρ) errors, recorded from the
/// pre-refactor solver (debug and release builds agree bit-for-bit —
/// rustc does not contract or reorder float ops).
const BITS_UNIFORM_100: u64 = 0x3f7734650b4d7149; // 5.66520185824643478e-3
const BITS_UNIFORM_200: u64 = 0x3f6949b449f62b96; // 3.08690273931717506e-3
const BITS_SMR_LOCKSTEP: u64 = 0x3f6949b448af67d6; // 3.08690273002996517e-3
const BITS_SMR_SUBCYCLED: u64 = 0x3f6951a2da380235; // 3.09068495857924919e-3

#[test]
fn a5_values_are_bit_identical_to_pre_refactor() {
    let e_coarse = run_uniform(100);
    let e_fine = run_uniform(200);
    let e_smr = run_smr(false);
    let e_sub = run_smr(true);
    for (name, got, want) in [
        ("uniform-100", e_coarse, BITS_UNIFORM_100),
        ("uniform-200", e_fine, BITS_UNIFORM_200),
        ("smr-100+2x", e_smr, BITS_SMR_LOCKSTEP),
        ("smr+subcycle", e_sub, BITS_SMR_SUBCYCLED),
    ] {
        assert_eq!(
            got.to_bits(),
            want,
            "{name}: L1 changed from pre-refactor baseline: got {got:.17e} ({:#x}), want {:#x}",
            got.to_bits(),
            want
        );
    }
}
