//! Golden bit-identity pins for the SoA hot-loop refactor.
//!
//! The fused structure-of-arrays kernels (pencil scratch reuse, fused
//! HLLC interface kernel, fused wave-speed scan, component-major RK
//! combines) must reproduce the pre-refactor floating-point behaviour
//! **exactly** on the scalar path. These constants were recorded from
//! the AoS `Cons`/`Prim` implementation immediately before the refactor;
//! any deviation means a kernel rewrite altered an expression tree.
//!
//! The checksum folds every `f64` bit pattern of the output with a
//! rotate-xor so a single-ULP change anywhere flips the digest.

use rhrsc_grid::{bc, fill_ghosts, Bc, Field, PatchGeom};
use rhrsc_solver::scheme::{init_cons, recover_prims};
use rhrsc_solver::step::compute_rhs;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::Recon;
use rhrsc_srhd::Prim;

/// Rotate-xor digest over the raw IEEE-754 bit patterns of a field.
fn digest(raw: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in raw {
        h = h.rotate_left(7) ^ v.to_bits();
    }
    h
}

fn smooth_2d(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (6.0 * x[0]).sin() * (4.0 * x[1]).cos(),
        vel: [0.2 * (3.0 * x[1]).sin(), -0.3 * (5.0 * x[0]).cos(), 0.0],
        p: 1.0 + 0.1 * (5.0 * x[1]).sin() * (2.0 * x[0]).cos(),
    }
}

fn smooth_3d(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0 + 0.3 * (7.0 * x[0] + 3.0 * x[1]).sin() * (2.0 * x[2]).cos(),
        vel: [0.3 * (4.0 * x[1]).sin(), -0.2, 0.1 * (3.0 * x[0]).cos()],
        p: 1.0 + 0.2 * (3.0 * x[2]).cos(),
    }
}

/// Residual digest for one scheme/geometry/IC combination on the scalar
/// (poolless) path.
fn rhs_digest(s: &Scheme, geom: PatchGeom, ic: &dyn Fn([f64; 3]) -> Prim) -> u64 {
    let mut u = init_cons(geom, &s.eos, ic);
    fill_ghosts(&mut u, &bc::uniform(Bc::Periodic));
    let mut prim = Field::new(geom, 5);
    recover_prims(s, &u, &mut prim).unwrap();
    let mut rhs = Field::cons(geom);
    compute_rhs(s, &prim, &mut rhs, None);
    digest(rhs.raw())
}

#[test]
fn rhs_ppm_hllc_2d_golden() {
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::rect([16, 12], [0.0; 2], [1.0; 2], 3);
    assert_eq!(
        rhs_digest(&s, geom, &smooth_2d),
        GOLD_RHS_PPM_HLLC_2D,
        "PPM+HLLC 2D residual bits drifted"
    );
}

#[test]
fn rhs_ppm_hllc_3d_golden() {
    // Covers the strided d=1/d=2 pencil gather paths.
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::cube([10, 8, 6], [0.0; 3], [1.0; 3], 3);
    assert_eq!(
        rhs_digest(&s, geom, &smooth_3d),
        GOLD_RHS_PPM_HLLC_3D,
        "PPM+HLLC 3D residual bits drifted"
    );
}

#[test]
fn rhs_weno5_hll_2d_golden() {
    // A second recon/Riemann pair so the non-HLLC dispatch path is pinned
    // too.
    let s = Scheme {
        recon: Recon::Weno5,
        riemann: rhrsc_srhd::riemann::RiemannSolver::Hll,
        ..Scheme::default_with_gamma(5.0 / 3.0)
    };
    let geom = PatchGeom::rect([12, 10], [0.0; 2], [1.0; 2], 3);
    assert_eq!(
        rhs_digest(&s, geom, &smooth_2d),
        GOLD_RHS_WENO5_HLL_2D,
        "WENO5+HLL 2D residual bits drifted"
    );
}

#[test]
fn patch_advance_2d_golden() {
    // Full RK2 advance through PatchSolver: pins the fused Δt scan,
    // sanitize-in-place, and component-major combines end to end.
    let s = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::rect([16, 12], [0.0; 2], [1.0; 2], 3);
    let mut u = init_cons(geom, &s.eos, &smooth_2d);
    fill_ghosts(&mut u, &bc::uniform(Bc::Periodic));
    let mut solver = PatchSolver::new(s, bc::uniform(Bc::Periodic), RkOrder::Rk2, geom);
    solver.advance_to(&mut u, 0.0, 0.05, 0.4, None).unwrap();
    assert_eq!(
        digest(u.raw()),
        GOLD_PATCH_ADVANCE_2D,
        "RK2 patch advance bits drifted"
    );
}

// Recorded from the pre-refactor AoS implementation (see module docs).
const GOLD_RHS_PPM_HLLC_2D: u64 = 13870554578895400533;
const GOLD_RHS_PPM_HLLC_3D: u64 = 4489079224270625668;
const GOLD_RHS_WENO5_HLL_2D: u64 = 7171657146777795118;
const GOLD_PATCH_ADVANCE_2D: u64 = 6270256117186819669;
