//! The spatial residual `L(U)`: dimension-by-dimension reconstruction,
//! Riemann fluxes, and flux divergence.
//!
//! For each active dimension the solver sweeps 1D *pencils*: the five
//! primitive components are reconstructed to cell interfaces, an
//! approximate Riemann solver produces the interface flux, and the flux
//! difference is accumulated into the residual. Pencils are independent,
//! so within-patch parallelism distributes pencils over a gang
//! ([`rhrsc_runtime::WorkStealingPool`]); across dimensions the sweeps
//! accumulate sequentially.
//!
//! The residual can be evaluated on a sub-[`Region`] of the patch. That is
//! the mechanism behind communication/computation overlap: the *deep*
//! region (cells whose stencils never touch ghost zones) is computed while
//! halos are in flight, and the remaining boundary *shell* afterwards.

use crate::scheme::{prim_at, Geometry, Scheme, PRIM_P, PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ};
use rhrsc_grid::{Field, PatchGeom};
use rhrsc_runtime::WorkStealingPool;
use rhrsc_srhd::{Cons, Dir, Prim, NCOMP};

/// A rectangular sub-region of a patch, in ghost-inclusive cell indices
/// (`lo` inclusive, `hi` exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive lower cell indices.
    pub lo: [usize; 3],
    /// Exclusive upper cell indices.
    pub hi: [usize; 3],
}

impl Region {
    /// The full interior of a patch.
    pub fn interior(geom: &PatchGeom) -> Region {
        let lo = [geom.ng_of(0), geom.ng_of(1), geom.ng_of(2)];
        Region {
            lo,
            hi: [lo[0] + geom.n[0], lo[1] + geom.n[1], lo[2] + geom.n[2]],
        }
    }

    /// Number of cells in the region.
    pub fn len(&self) -> usize {
        (0..3)
            .map(|d| self.hi[d].saturating_sub(self.lo[d]))
            .product()
    }

    /// `true` when the region contains no cells.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    /// Split the interior into a *deep* core (cells at distance `>= depth`
    /// from every active block face) and boundary *shell* slabs. The deep
    /// core's stencils (width `depth`) never read ghost cells, so it can
    /// be computed before halos arrive. Returns `(deep, shells)`; the
    /// shells and the deep core are disjoint and cover the interior.
    pub fn split_deep_shell(geom: &PatchGeom, depth: usize) -> (Region, Vec<Region>) {
        let interior = Region::interior(geom);
        let mut deep = interior;
        for d in 0..3 {
            if geom.active(d) {
                deep.lo[d] = (deep.lo[d] + depth).min(interior.hi[d]);
                deep.hi[d] = deep.hi[d].saturating_sub(depth).max(deep.lo[d]);
            }
        }
        let mut shells = Vec::new();
        let mut cur = interior;
        for d in 0..3 {
            if !geom.active(d) {
                continue;
            }
            if cur.lo[d] < deep.lo[d] {
                let mut s = cur;
                s.hi[d] = deep.lo[d];
                shells.push(s);
            }
            if deep.hi[d] < cur.hi[d] {
                let mut s = cur;
                s.lo[d] = deep.hi[d];
                shells.push(s);
            }
            cur.lo[d] = deep.lo[d];
            cur.hi[d] = deep.hi[d];
        }
        (deep, shells)
    }
}

/// Compute the full residual `rhs = L(U)` over the patch interior.
/// `prim` must hold valid primitives everywhere the stencil reaches
/// (interior + ghosts). `rhs` is zeroed first. Pass a pool for gang
/// parallelism over pencils.
pub fn compute_rhs(
    scheme: &Scheme,
    prim: &Field,
    rhs: &mut Field,
    pool: Option<&WorkStealingPool>,
) {
    rhs.raw_mut().fill(0.0);
    let region = Region::interior(prim.geom());
    accumulate_rhs_region(scheme, prim, rhs, &region, pool);
}

/// Accumulate the residual over `region` into `rhs` **without zeroing**.
/// Calling this over disjoint regions that tile the interior is exactly
/// equivalent to one full [`compute_rhs`].
pub fn accumulate_rhs_region(
    scheme: &Scheme,
    prim: &Field,
    rhs: &mut Field,
    region: &Region,
    pool: Option<&WorkStealingPool>,
) {
    if region.is_empty() {
        return;
    }
    let geom = *prim.geom();
    debug_assert!(
        (0..3).all(|d| !geom.active(d) || geom.ng >= scheme.recon.ghost()),
        "patch has {} ghosts, reconstruction needs {}",
        geom.ng,
        scheme.recon.ghost()
    );
    let raw = RawRhs {
        ptr: rhs.raw_mut().as_mut_ptr(),
        comp_stride: geom.len(),
    };
    for d in 0..3 {
        if !geom.active(d) {
            continue;
        }
        // Transverse dims in ascending order.
        let (a, b) = match d {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (na, nb) = (region.hi[a] - region.lo[a], region.hi[b] - region.lo[b]);
        let npencils = na * nb;
        let task = |p: usize| {
            let ta = region.lo[a] + p % na;
            let tb = region.lo[b] + p / na;
            // SAFETY: each pencil writes only the rhs cells on its own
            // (d, ta, tb) line; pencils within one sweep are disjoint.
            unsafe { sweep_pencil(scheme, prim, &geom, d, a, b, ta, tb, region, &raw) };
        };
        match pool {
            Some(pool) if npencils > 1 => pool.par_for(npencils, 1, &task),
            _ => {
                for p in 0..npencils {
                    task(p);
                }
            }
        }
    }
    if scheme.geometry != Geometry::Cartesian {
        accumulate_geometric_sources(scheme, prim, rhs, region);
    }
}

/// Geometric source terms for symmetry-reduced radial coordinates:
/// `S = −(α/r)·(D v, S_r v, 0, 0, (τ+p) v)` with `x` as the radius.
fn accumulate_geometric_sources(scheme: &Scheme, prim: &Field, rhs: &mut Field, region: &Region) {
    let geom = *prim.geom();
    assert_eq!(
        geom.ndim(),
        1,
        "curvilinear geometry requires a 1D (radial) grid"
    );
    let alpha = scheme.geometry.alpha();
    for k in region.lo[2]..region.hi[2] {
        for j in region.lo[1]..region.hi[1] {
            for i in region.lo[0]..region.hi[0] {
                let r = geom.center(i, j, k)[0];
                assert!(r > 0.0, "radial grid must satisfy r > 0 at cell centers");
                let w = prim_at(prim, i, j, k);
                let u = w.to_cons(&scheme.eos);
                let v = w.vel[0];
                let f = alpha / r;
                let src = Cons {
                    d: -f * u.d * v,
                    s: [-f * u.s[0] * v, 0.0, 0.0],
                    tau: -f * (u.tau + w.p) * v,
                };
                let cur = rhs.get_cons(i, j, k);
                rhs.set_cons(i, j, k, cur + src);
            }
        }
    }
}

/// Raw pointer to the rhs storage, shared across pencil tasks. Soundness
/// relies on pencils writing disjoint cells (see `sweep_pencil`).
#[derive(Clone, Copy)]
struct RawRhs {
    ptr: *mut f64,
    comp_stride: usize,
}

unsafe impl Send for RawRhs {}
unsafe impl Sync for RawRhs {}

/// Process one pencil: reconstruct, solve Riemann problems, accumulate
/// flux differences along direction `d` at transverse coordinates
/// `(ta, tb)` (dims `a`, `b`).
///
/// # Safety
/// The caller must guarantee that no other thread concurrently accesses
/// the rhs cells on this pencil.
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_pencil(
    scheme: &Scheme,
    prim: &Field,
    geom: &PatchGeom,
    d: usize,
    _a: usize,
    _b: usize,
    ta: usize,
    tb: usize,
    region: &Region,
    raw: &RawRhs,
) {
    let nt = geom.ntot(d);
    let dir = Dir::ALL[d];
    let inv_dx = 1.0 / geom.dx[d];
    let (lo, hi) = (region.lo[d], region.hi[d]);

    // Scratch: five component pencils, left/right interface states, fluxes.
    let mut q = [const { Vec::new() }; NCOMP];
    let mut wl = [const { Vec::new() }; NCOMP];
    let mut wr = [const { Vec::new() }; NCOMP];
    for c in 0..NCOMP {
        q[c] = vec![0.0; nt];
        wl[c] = vec![0.0; nt + 1];
        wr[c] = vec![0.0; nt + 1];
    }

    // `read_pencil` wants transverse indices in ascending dim order.
    let (t1, t2) = (ta, tb);
    for (c, comp) in [PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ, PRIM_P]
        .into_iter()
        .enumerate()
    {
        prim.read_pencil(comp, d, t1, t2, &mut q[c]);
        scheme
            .recon
            .pencil(&q[c], lo, hi + 1, &mut wl[c], &mut wr[c]);
    }

    // Interface fluxes for j in lo..=hi.
    let mut flux = vec![Cons::ZERO; nt + 1];
    for j in lo..=hi {
        let left = scheme.sanitize(Prim {
            rho: wl[0][j],
            vel: [wl[1][j], wl[2][j], wl[3][j]],
            p: wl[4][j],
        });
        let right = scheme.sanitize(Prim {
            rho: wr[0][j],
            vel: [wr[1][j], wr[2][j], wr[3][j]],
            p: wr[4][j],
        });
        flux[j] = scheme.riemann.flux(&scheme.eos, &left, &right, dir);
    }

    // Accumulate -dF/dx into rhs along the pencil.
    for i in lo..hi {
        let df = (flux[i + 1] - flux[i]) * inv_dx;
        let (ii, jj, kk) = match d {
            0 => (i, ta, tb),
            1 => (ta, i, tb),
            _ => (ta, tb, i),
        };
        let ix = geom.idx(ii, jj, kk);
        let arr = df.to_array();
        for (c, v) in arr.into_iter().enumerate() {
            unsafe {
                *raw.ptr.add(c * raw.comp_stride + ix) -= v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{init_cons, recover_prims};
    use rhrsc_grid::{fill_ghosts, Bc, PatchGeom};
    use rhrsc_srhd::recon::Recon;

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    fn prims_for(s: &Scheme, geom: PatchGeom, ic: &dyn Fn([f64; 3]) -> Prim) -> Field {
        let mut u = init_cons(geom, &s.eos, ic);
        fill_ghosts(&mut u, &rhrsc_grid::bc::uniform(Bc::Periodic));
        let mut prim = Field::new(geom, 5);
        recover_prims(s, &u, &mut prim).unwrap();
        prim
    }

    #[test]
    fn uniform_state_has_zero_residual() {
        let s = scheme();
        for geom in [
            PatchGeom::line(16, 0.0, 1.0, 3),
            PatchGeom::rect([8, 8], [0.0; 2], [1.0; 2], 3),
            PatchGeom::cube([6, 6, 6], [0.0; 3], [1.0; 3], 3),
        ] {
            let prim = prims_for(&s, geom, &|_| Prim {
                rho: 1.0,
                vel: [0.3, -0.2, 0.1],
                p: 2.0,
            });
            let mut rhs = Field::cons(geom);
            compute_rhs(&s, &prim, &mut rhs, None);
            let m = rhs.raw().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(m < 1e-11, "max |rhs| = {m} on {:?}D", geom.ndim());
        }
    }

    #[test]
    fn periodic_residual_conserves_totals() {
        // Telescoping fluxes: the cell-volume-weighted sum of L(U) must be
        // zero to round-off for each component under periodic ghosts.
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let prim = prims_for(&s, geom, &|x| {
            Prim::new_1d(
                1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.4,
                1.5,
            )
        });
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        for c in 0..NCOMP {
            let total = rhs.interior_integral(c);
            assert!(total.abs() < 1e-12, "component {c}: {total}");
        }
    }

    #[test]
    fn region_tiling_matches_full_residual() {
        let s = scheme();
        let geom = PatchGeom::rect([16, 12], [0.0; 2], [1.0, 1.0], 3);
        let prim = prims_for(&s, geom, &|x| Prim {
            rho: 1.0 + 0.3 * (6.0 * x[0]).sin() * (4.0 * x[1]).cos(),
            vel: [0.2, -0.3, 0.0],
            p: 1.0 + 0.1 * (5.0 * x[1]).sin(),
        });
        let mut full = Field::cons(geom);
        compute_rhs(&s, &prim, &mut full, None);

        let (deep, shells) = Region::split_deep_shell(&geom, 3);
        let mut tiled = Field::cons(geom);
        tiled.raw_mut().fill(0.0);
        accumulate_rhs_region(&s, &prim, &mut tiled, &deep, None);
        for sh in &shells {
            accumulate_rhs_region(&s, &prim, &mut tiled, sh, None);
        }
        assert_eq!(full.raw(), tiled.raw(), "deep+shell must be bit-identical");
    }

    #[test]
    fn deep_shell_partition_is_exact() {
        for geom in [
            PatchGeom::line(20, 0.0, 1.0, 3),
            PatchGeom::rect([10, 8], [0.0; 2], [1.0; 2], 3),
            PatchGeom::cube([6, 7, 8], [0.0; 3], [1.0; 3], 3),
        ] {
            let (deep, shells) = Region::split_deep_shell(&geom, 3);
            let mut count = vec![0u8; geom.len()];
            let mut mark = |r: &Region| {
                for k in r.lo[2]..r.hi[2] {
                    for j in r.lo[1]..r.hi[1] {
                        for i in r.lo[0]..r.hi[0] {
                            count[geom.idx(i, j, k)] += 1;
                        }
                    }
                }
            };
            mark(&deep);
            for s in &shells {
                mark(s);
            }
            for (i, j, k) in geom.interior_iter() {
                assert_eq!(count[geom.idx(i, j, k)], 1, "cell ({i},{j},{k})");
            }
            assert_eq!(
                count.iter().map(|&c| c as usize).sum::<usize>(),
                geom.interior_len(),
                "no coverage outside interior"
            );
        }
    }

    #[test]
    fn deep_region_empty_for_small_patches() {
        let geom = PatchGeom::line(4, 0.0, 1.0, 3);
        let (deep, shells) = Region::split_deep_shell(&geom, 3);
        assert!(deep.is_empty() || deep.len() < 4);
        // Shells still cover everything deep doesn't.
        let covered: usize = shells.iter().map(Region::len).sum::<usize>() + deep.len();
        assert_eq!(covered, 4);
    }

    #[test]
    fn parallel_rhs_bitwise_matches_serial() {
        let s = Scheme {
            recon: Recon::Weno5,
            ..scheme()
        };
        let geom = PatchGeom::cube([12, 10, 8], [0.0; 3], [1.0; 3], 3);
        let prim = prims_for(&s, geom, &|x| Prim {
            rho: 1.0 + 0.3 * (7.0 * x[0] + 3.0 * x[1]).sin() * (2.0 * x[2]).cos(),
            vel: [0.3 * (4.0 * x[1]).sin(), -0.2, 0.1],
            p: 1.0 + 0.2 * (3.0 * x[0]).cos(),
        });
        let mut serial = Field::cons(geom);
        compute_rhs(&s, &prim, &mut serial, None);
        let pool = WorkStealingPool::new(4);
        let mut par = Field::cons(geom);
        compute_rhs(&s, &prim, &mut par, Some(&pool));
        assert_eq!(
            serial.raw(),
            par.raw(),
            "gang-parallel rhs must be bit-identical"
        );
    }

    #[test]
    fn geometric_sources_vanish_for_static_fluid() {
        // v = 0 kills every geometric source term; a uniform static state
        // stays an exact steady state in spherical coordinates.
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::line(32, 0.1, 1.0, 3);
        let prim = prims_for(&s, geom, &|_| Prim::at_rest(1.0, 2.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        let m = rhs.raw().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(m < 1e-11, "static spherical state residual {m}");
    }

    #[test]
    fn geometric_sources_drain_outflowing_density() {
        // Uniform outward flow in spherical coordinates dilutes: the D
        // residual carries the -2 rho W v / r sink.
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::line(32, 0.5, 1.5, 3);
        let prim = prims_for(&s, geom, &|_| Prim::new_1d(1.0, 0.2, 1.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        // At cell centers: flux divergence of D vanishes (uniform),
        // leaving rhs_D = -2 D v / r < 0 and larger in magnitude at
        // smaller r.
        let g = 3;
        let d_inner = rhs.at(0, g + 1, 0, 0);
        let d_outer = rhs.at(0, g + 28, 0, 0);
        assert!(d_inner < 0.0, "inner D residual {d_inner}");
        assert!(d_inner < d_outer, "source must weaken with radius");
        let r = geom.center(g + 1, 0, 0)[0];
        let w = Prim::new_1d(1.0, 0.2, 1.0);
        let expected = -2.0 * w.to_cons(&s.eos).d * 0.2 / r;
        assert!(
            (d_inner - expected).abs() < 0.05 * expected.abs(),
            "{d_inner} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "1D")]
    fn curvilinear_rejects_multi_d() {
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::rect([8, 8], [0.1, 0.0], [1.0, 1.0], 3);
        let prim = prims_for(&s, geom, &|_| Prim::at_rest(1.0, 1.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
    }

    #[test]
    fn advection_residual_moves_density_only() {
        // Uniform v and p: the exact residual is -v ∂ρW/∂x in D and
        // proportional contributions in S/τ, but p-gradient terms vanish.
        // Check the residual is nonzero for D and zero-mean overall.
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let prim = prims_for(&s, geom, &|x| {
            Prim::new_1d(
                1.0 + 0.2 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.5,
                1.0,
            )
        });
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        let max_d = rhs.comp(0).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            max_d > 0.1,
            "advection should produce a D residual, got {max_d}"
        );
    }
}
