//! The spatial residual `L(U)`: dimension-by-dimension reconstruction,
//! Riemann fluxes, and flux divergence.
//!
//! For each active dimension the solver sweeps 1D *pencils*: the five
//! primitive components are reconstructed to cell interfaces, an
//! approximate Riemann solver produces the interface flux, and the flux
//! difference is accumulated into the residual. Pencils are independent,
//! so within-patch parallelism distributes pencils over a gang
//! ([`rhrsc_runtime::WorkStealingPool`]); across dimensions the sweeps
//! accumulate sequentially.
//!
//! The residual can be evaluated on a sub-[`Region`] of the patch. That is
//! the mechanism behind communication/computation overlap: the *deep*
//! region (cells whose stencils never touch ghost zones) is computed while
//! halos are in flight, and the remaining boundary *shell* afterwards.

use crate::scheme::{prim_at, Geometry, Scheme, PRIM_P, PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ};
use rhrsc_eos::Eos;
use rhrsc_grid::{Field, PatchGeom};
use rhrsc_runtime::WorkStealingPool;
use rhrsc_srhd::riemann::RiemannSolver;
use rhrsc_srhd::{Cons, Dir, Prim, NCOMP};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Lane-chunk width for the structure-of-arrays interface kernels, read
/// once from `RHRSC_SIMD_LANES`. The inner loops process interfaces in
/// chunks of this many lanes so the autovectorizer sees short,
/// fixed-bound trip counts; the arithmetic (and therefore the result
/// bits) is independent of the chunk width.
pub fn simd_lanes() -> usize {
    static LANES: OnceLock<usize> = OnceLock::new();
    *LANES.get_or_init(|| {
        std::env::var("RHRSC_SIMD_LANES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| (1..=4096).contains(&v))
            .unwrap_or(64)
    })
}

/// A rectangular sub-region of a patch, in ghost-inclusive cell indices
/// (`lo` inclusive, `hi` exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Inclusive lower cell indices.
    pub lo: [usize; 3],
    /// Exclusive upper cell indices.
    pub hi: [usize; 3],
}

impl Region {
    /// The full interior of a patch.
    pub fn interior(geom: &PatchGeom) -> Region {
        let lo = [geom.ng_of(0), geom.ng_of(1), geom.ng_of(2)];
        Region {
            lo,
            hi: [lo[0] + geom.n[0], lo[1] + geom.n[1], lo[2] + geom.n[2]],
        }
    }

    /// Number of cells in the region.
    pub fn len(&self) -> usize {
        (0..3)
            .map(|d| self.hi[d].saturating_sub(self.lo[d]))
            .product()
    }

    /// `true` when the region contains no cells.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.hi[d] <= self.lo[d])
    }

    /// Split the interior into a *deep* core (cells at distance `>= depth`
    /// from every active block face) and boundary *shell* slabs. The deep
    /// core's stencils (width `depth`) never read ghost cells, so it can
    /// be computed before halos arrive. Returns `(deep, shells)`; the
    /// shells and the deep core are disjoint and cover the interior.
    pub fn split_deep_shell(geom: &PatchGeom, depth: usize) -> (Region, Vec<Region>) {
        let interior = Region::interior(geom);
        let mut deep = interior;
        for d in 0..3 {
            if geom.active(d) {
                deep.lo[d] = (deep.lo[d] + depth).min(interior.hi[d]);
                deep.hi[d] = deep.hi[d].saturating_sub(depth).max(deep.lo[d]);
            }
        }
        let mut shells = Vec::new();
        let mut cur = interior;
        for d in 0..3 {
            if !geom.active(d) {
                continue;
            }
            if cur.lo[d] < deep.lo[d] {
                let mut s = cur;
                s.hi[d] = deep.lo[d];
                shells.push(s);
            }
            if deep.hi[d] < cur.hi[d] {
                let mut s = cur;
                s.lo[d] = deep.hi[d];
                shells.push(s);
            }
            cur.lo[d] = deep.lo[d];
            cur.hi[d] = deep.hi[d];
        }
        (deep, shells)
    }
}

/// Compute the full residual `rhs = L(U)` over the patch interior.
/// `prim` must hold valid primitives everywhere the stencil reaches
/// (interior + ghosts). `rhs` is zeroed first. Pass a pool for gang
/// parallelism over pencils.
pub fn compute_rhs(
    scheme: &Scheme,
    prim: &Field,
    rhs: &mut Field,
    pool: Option<&WorkStealingPool>,
) {
    rhs.raw_mut().fill(0.0);
    let region = Region::interior(prim.geom());
    accumulate_rhs_region(scheme, prim, rhs, &region, pool);
}

/// Accumulate the residual over `region` into `rhs` **without zeroing**.
/// Calling this over disjoint regions that tile the interior is exactly
/// equivalent to one full [`compute_rhs`].
pub fn accumulate_rhs_region(
    scheme: &Scheme,
    prim: &Field,
    rhs: &mut Field,
    region: &Region,
    pool: Option<&WorkStealingPool>,
) {
    accumulate_rhs_region_scan(scheme, prim, rhs, region, None, pool);
}

/// [`accumulate_rhs_region`] with an optional fused wave-speed scan.
///
/// When `rates` is given (one slot per ghost-inclusive cell,
/// `geom.len()` long) the sweep also accumulates the per-cell CFL rate
/// `Σ_d max(|λ−|, |λ+|) / Δx_d` into it, reusing the cell pencils
/// already resident in scratch. Accumulating over regions that tile the
/// interior leaves `rates` holding exactly the quantity
/// [`crate::scheme::max_dt`] maximizes — same expression tree, same
/// per-cell summation order — so `cfl / rates.max()` reproduces the
/// two-pass Δt bitwise while `phase.dt.local` disappears as a separate
/// pass. The caller must zero `rates` before the first region of a scan.
pub fn accumulate_rhs_region_scan(
    scheme: &Scheme,
    prim: &Field,
    rhs: &mut Field,
    region: &Region,
    rates: Option<&mut [f64]>,
    pool: Option<&WorkStealingPool>,
) {
    if region.is_empty() {
        return;
    }
    let geom = *prim.geom();
    debug_assert!(
        (0..3).all(|d| !geom.active(d) || geom.ng >= scheme.recon.ghost()),
        "patch has {} ghosts, reconstruction needs {}",
        geom.ng,
        scheme.recon.ghost()
    );
    let raw = RawRhs {
        ptr: rhs.raw_mut().as_mut_ptr(),
        comp_stride: geom.len(),
    };
    let rate_raw = rates.map(|r| {
        assert_eq!(r.len(), geom.len(), "rate bank / geometry mismatch");
        RawRate {
            ptr: r.as_mut_ptr(),
        }
    });
    for d in 0..3 {
        if !geom.active(d) {
            continue;
        }
        // Transverse dims in ascending order.
        let (a, b) = match d {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (na, nb) = (region.hi[a] - region.lo[a], region.hi[b] - region.lo[b]);
        let npencils = na * nb;
        let task = |p: usize| {
            let ta = region.lo[a] + p % na;
            let tb = region.lo[b] + p / na;
            // SAFETY: each pencil writes only the rhs/rate cells on its
            // own (d, ta, tb) line; pencils within one sweep are disjoint.
            unsafe { sweep_pencil(scheme, prim, &geom, d, a, b, ta, tb, region, &raw, rate_raw) };
        };
        match pool {
            Some(pool) if npencils > 1 => pool.par_for(npencils, 1, &task),
            _ => {
                for p in 0..npencils {
                    task(p);
                }
            }
        }
    }
    if scheme.geometry != Geometry::Cartesian {
        accumulate_geometric_sources(scheme, prim, rhs, region);
    }
}

/// Geometric source terms for symmetry-reduced radial coordinates:
/// `S = −(α/r)·(D v, S_r v, 0, 0, (τ+p) v)` with `x` as the radius.
fn accumulate_geometric_sources(scheme: &Scheme, prim: &Field, rhs: &mut Field, region: &Region) {
    let geom = *prim.geom();
    assert_eq!(
        geom.ndim(),
        1,
        "curvilinear geometry requires a 1D (radial) grid"
    );
    let alpha = scheme.geometry.alpha();
    for k in region.lo[2]..region.hi[2] {
        for j in region.lo[1]..region.hi[1] {
            for i in region.lo[0]..region.hi[0] {
                let r = geom.center(i, j, k)[0];
                assert!(r > 0.0, "radial grid must satisfy r > 0 at cell centers");
                let w = prim_at(prim, i, j, k);
                let u = w.to_cons(&scheme.eos);
                let v = w.vel[0];
                let f = alpha / r;
                let src = Cons {
                    d: -f * u.d * v,
                    s: [-f * u.s[0] * v, 0.0, 0.0],
                    tau: -f * (u.tau + w.p) * v,
                };
                let cur = rhs.get_cons(i, j, k);
                rhs.set_cons(i, j, k, cur + src);
            }
        }
    }
}

/// Raw pointer to the rhs storage, shared across pencil tasks. Soundness
/// relies on pencils writing disjoint cells (see `sweep_pencil`).
#[derive(Clone, Copy)]
struct RawRhs {
    ptr: *mut f64,
    comp_stride: usize,
}

unsafe impl Send for RawRhs {}
unsafe impl Sync for RawRhs {}

/// Raw pointer to the per-cell wave-rate bank (fused Δt scan). Same
/// disjointness argument as [`RawRhs`].
#[derive(Clone, Copy)]
struct RawRate {
    ptr: *mut f64,
}

unsafe impl Send for RawRate {}
unsafe impl Sync for RawRate {}

/// Reusable structure-of-arrays pencil workspace, one per worker thread.
///
/// Holds the cell pencils (`q`), reconstructed interface states
/// (`wl`/`wr`), the per-side conserved/flux/speed banks produced by
/// [`prepare_side`], and the interface flux bank. Reuse is stale-safe:
/// every slot that a kernel reads is written earlier in the same pencil
/// (`read_pencil` fills `q` completely; `Recon::pencil` writes exactly
/// `[lo, hi1)`; the banks and fluxes are written over `[lo, hi1)` before
/// the divergence loop reads them).
#[derive(Default)]
pub(crate) struct PencilScratch {
    q: [Vec<f64>; NCOMP],
    wl: [Vec<f64>; NCOMP],
    wr: [Vec<f64>; NCOMP],
    /// Left/right interface conserved states `(D, Sx, Sy, Sz, τ)`.
    ul: [Vec<f64>; NCOMP],
    ur: [Vec<f64>; NCOMP],
    /// Left/right physical fluxes.
    fl: [Vec<f64>; NCOMP],
    fr: [Vec<f64>; NCOMP],
    /// Per-side characteristic speeds λ∓.
    lm_l: Vec<f64>,
    lp_l: Vec<f64>,
    lm_r: Vec<f64>,
    lp_r: Vec<f64>,
    /// Sanitized normal velocity and pressure per side (HLLC star state).
    vn_l: Vec<f64>,
    p_l: Vec<f64>,
    vn_r: Vec<f64>,
    p_r: Vec<f64>,
    /// Interface flux bank.
    flux: [Vec<f64>; NCOMP],
}

impl PencilScratch {
    /// Mutable cell pencil of primitive component `c` (load target).
    pub(crate) fn q_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.q[c]
    }

    /// Interface flux bank of component `c` (valid over the range passed
    /// to [`reconstruct_and_flux`]).
    pub(crate) fn flux(&self, c: usize) -> &[f64] {
        &self.flux[c]
    }

    fn ensure(&mut self, nt: usize) {
        let n1 = nt + 1;
        for c in 0..NCOMP {
            self.q[c].resize(nt, 0.0);
            self.wl[c].resize(n1, 0.0);
            self.wr[c].resize(n1, 0.0);
            self.ul[c].resize(n1, 0.0);
            self.ur[c].resize(n1, 0.0);
            self.fl[c].resize(n1, 0.0);
            self.fr[c].resize(n1, 0.0);
            self.flux[c].resize(n1, 0.0);
        }
        for v in [
            &mut self.lm_l,
            &mut self.lp_l,
            &mut self.lm_r,
            &mut self.lp_r,
            &mut self.vn_l,
            &mut self.p_l,
            &mut self.vn_r,
            &mut self.p_r,
        ] {
            v.resize(n1, 0.0);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<PencilScratch> = RefCell::new(PencilScratch::default());
}

/// Run `f` with this thread's pencil scratch sized for `nt` cells.
/// Entry point for the shared-kernel users outside this module
/// (`refine::rhs_1d_with_fluxes`).
pub(crate) fn with_pencil_scratch<R>(nt: usize, f: impl FnOnce(&mut PencilScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.ensure(nt);
        f(s)
    })
}

/// Sanitize one side's reconstructed interface states and precompute its
/// conserved state, physical flux, characteristic speeds, and the
/// sanitized `(v_n, p)` pair over `[lo, hi1)`.
///
/// The arithmetic is the exact composition of `Scheme::sanitize`,
/// `Prim::to_cons`, `physical_flux_from`, and `signal_speeds` on each
/// lane — the only change from the AoS path is that `v²` (identical
/// expression in `vsq`/`lorentz`) is computed once per lane instead of
/// per callee, which cannot change its value.
#[allow(clippy::too_many_arguments)]
fn prepare_side(
    eos: &Eos,
    rho_floor: f64,
    p_floor: f64,
    n: usize,
    w: &[Vec<f64>; NCOMP],
    lo: usize,
    hi1: usize,
    u: &mut [Vec<f64>; NCOMP],
    f: &mut [Vec<f64>; NCOMP],
    lm: &mut [f64],
    lp: &mut [f64],
    vn_out: &mut [f64],
    p_out: &mut [f64],
) {
    const V2_MAX: f64 = 1.0 - 1e-12;
    let lanes = simd_lanes();
    let mut j0 = lo;
    while j0 < hi1 {
        let j1 = (j0 + lanes).min(hi1);
        for j in j0..j1 {
            // Scheme::sanitize, in place on the lane.
            let rho = w[0][j].max(rho_floor);
            let p = w[4][j].max(p_floor);
            let mut vx = w[1][j];
            let mut vy = w[2][j];
            let mut vz = w[3][j];
            let v2 = vx * vx + vy * vy + vz * vz;
            if v2 >= V2_MAX {
                let scale = (V2_MAX / v2).sqrt();
                vx *= scale;
                vy *= scale;
                vz *= scale;
            }
            // Prim::vsq / lorentz on the sanitized velocity.
            let v2 = vx * vx + vy * vy + vz * vz;
            let wlor = 1.0 / (1.0 - v2).sqrt();
            // Prim::to_cons.
            let h = eos.enthalpy(rho, p);
            let rhw2 = rho * h * wlor * wlor;
            let d = rho * wlor;
            let sx = rhw2 * vx;
            let sy = rhw2 * vy;
            let sz = rhw2 * vz;
            let tau = rhw2 - p - d;
            u[0][j] = d;
            u[1][j] = sx;
            u[2][j] = sy;
            u[3][j] = sz;
            u[4][j] = tau;
            // physical_flux_from.
            let vel = [vx, vy, vz];
            let vn = vel[n];
            let mut fs = [sx * vn, sy * vn, sz * vn];
            fs[n] += p;
            f[0][j] = d * vn;
            f[1][j] = fs[0];
            f[2][j] = fs[1];
            f[3][j] = fs[2];
            f[4][j] = (tau + p) * vn;
            // signal_speeds.
            let cs2 = eos.sound_speed_sq(rho, p).clamp(0.0, 1.0 - 1e-15);
            let den = 1.0 - v2 * cs2;
            let disc = ((1.0 - v2) * (1.0 - v2 * cs2 - vn * vn * (1.0 - cs2))).max(0.0);
            let root = disc.sqrt();
            let cs = cs2.sqrt();
            lm[j] = ((vn * (1.0 - cs2) - cs * root) / den).clamp(-1.0, 1.0);
            lp[j] = ((vn * (1.0 - cs2) + cs * root) / den).clamp(-1.0, 1.0);
            vn_out[j] = vn;
            p_out[j] = p;
        }
        j0 = j1;
    }
}

/// Fill `s.flux[..][lo..hi1]` from the prepared side banks with the
/// Rusanov flux (exact expression tree of `rusanov_flux`).
fn combine_rusanov(s: &mut PencilScratch, lo: usize, hi1: usize) {
    for j in lo..hi1 {
        let a = s.lm_l[j]
            .abs()
            .max(s.lp_l[j].abs())
            .max(s.lm_r[j].abs())
            .max(s.lp_r[j].abs());
        let half_a = 0.5 * a;
        for c in 0..NCOMP {
            s.flux[c][j] = (s.fl[c][j] + s.fr[c][j]) * 0.5 - (s.ur[c][j] - s.ul[c][j]) * half_a;
        }
    }
}

/// Fill `s.flux[..][lo..hi1]` with the HLL flux (exact expression tree
/// of `hll_flux` with Davis speeds).
fn combine_hll(s: &mut PencilScratch, lo: usize, hi1: usize) {
    for j in lo..hi1 {
        let lam_l = s.lm_l[j].min(s.lm_r[j]);
        let lam_r = s.lp_l[j].max(s.lp_r[j]);
        if lam_l >= 0.0 {
            for c in 0..NCOMP {
                s.flux[c][j] = s.fl[c][j];
            }
        } else if lam_r <= 0.0 {
            for c in 0..NCOMP {
                s.flux[c][j] = s.fr[c][j];
            }
        } else {
            let inv = 1.0 / (lam_r - lam_l);
            let ll_lr = lam_l * lam_r;
            for c in 0..NCOMP {
                s.flux[c][j] = (s.fl[c][j] * lam_r - s.fr[c][j] * lam_l
                    + (s.ur[c][j] - s.ul[c][j]) * ll_lr)
                    * inv;
            }
        }
    }
}

/// Fill `s.flux[..][lo..hi1]` with the HLLC flux (exact expression tree
/// of `hllc_flux`, Mignone & Bodo 2005).
fn combine_hllc(s: &mut PencilScratch, n: usize, lo: usize, hi1: usize) {
    let sn = 1 + n;
    for j in lo..hi1 {
        let lam_l = s.lm_l[j].min(s.lm_r[j]);
        let lam_r = s.lp_l[j].max(s.lp_r[j]);
        // Supersonic cases: pure upwinding.
        if lam_l >= 0.0 {
            for c in 0..NCOMP {
                s.flux[c][j] = s.fl[c][j];
            }
            continue;
        }
        if lam_r <= 0.0 {
            for c in 0..NCOMP {
                s.flux[c][j] = s.fr[c][j];
            }
            continue;
        }
        // HLL fan state/flux; only the (D, S_n, τ) components feed the
        // contact-speed quadratic.
        let inv = 1.0 / (lam_r - lam_l);
        let ll_lr = lam_l * lam_r;
        let fan_u = |c: usize, s: &PencilScratch| {
            (s.ur[c][j] * lam_r - s.ul[c][j] * lam_l + (s.fl[c][j] - s.fr[c][j])) * inv
        };
        let fan_f = |c: usize, s: &PencilScratch| {
            (s.fl[c][j] * lam_r - s.fr[c][j] * lam_l + (s.ur[c][j] - s.ul[c][j]) * ll_lr) * inv
        };
        let e_hll = fan_u(4, s) + fan_u(0, s);
        let m_hll = fan_u(sn, s);
        let fe_hll = fan_f(4, s) + fan_f(0, s);
        let fm_hll = fan_f(sn, s);

        let b = -(e_hll + fm_hll);
        let lam_star = if fe_hll.abs() < 1e-12 * (e_hll.abs() + fm_hll.abs()).max(1e-300) {
            // Quadratic degenerates to linear.
            -m_hll / b
        } else {
            let disc = (b * b - 4.0 * fe_hll * m_hll).max(0.0);
            // Numerically stable "minus" root via the q-formula.
            let q = -0.5 * (b - b.signum() * disc.sqrt());
            let r1 = q / fe_hll;
            let r2 = m_hll / q;
            if r1 > lam_l && r1 < lam_r {
                r1
            } else {
                r2
            }
        };
        let lam_star = lam_star.clamp(lam_l, lam_r);

        // Star state on the side containing the interface (ξ = 0).
        let (u, f, vn, p, lam) = if lam_star >= 0.0 {
            (&s.ul, &s.fl, s.vn_l[j], s.p_l[j], lam_l)
        } else {
            (&s.ur, &s.fr, s.vn_r[j], s.p_r[j], lam_r)
        };

        let e = u[4][j] + u[0][j];
        let m = u[sn][j];
        let a_coef = lam * e - m;
        let b_coef = m * (lam - vn) - p;
        let p_star = (a_coef * lam_star - b_coef) / (1.0 - lam * lam_star);
        let p_star = p_star.max(0.0);

        // Jump conditions across the outer wave.
        let k = (lam - vn) / (lam - lam_star);
        let e_star = (lam * e - m + p_star * lam_star) / (lam - lam_star);
        let m_star = (e_star + p_star) * lam_star;
        let d_star = u[0][j] * k;
        let mut s_star = [u[1][j] * k, u[2][j] * k, u[3][j] * k];
        s_star[n] = m_star;
        let u_star = [d_star, s_star[0], s_star[1], s_star[2], e_star - d_star];

        // F* = F + λ (U* − U).
        for c in 0..NCOMP {
            s.flux[c][j] = f[c][j] + (u_star[c] - u[c][j]) * lam;
        }
    }
}

/// Reconstruct the loaded cell pencils to interfaces, sanitize, and
/// compute the interface flux bank `s.flux[..][lo..hi1]` with the
/// scheme's Riemann solver dispatched once per pencil.
///
/// `s.q` must already hold the five primitive component pencils.
pub(crate) fn reconstruct_and_flux(
    scheme: &Scheme,
    s: &mut PencilScratch,
    dir: Dir,
    lo: usize,
    hi1: usize,
) {
    let n = dir.axis();
    for c in 0..NCOMP {
        scheme
            .recon
            .pencil(&s.q[c], lo, hi1, &mut s.wl[c], &mut s.wr[c]);
    }
    prepare_side(
        &scheme.eos,
        scheme.c2p.rho_floor,
        scheme.c2p.p_floor,
        n,
        &s.wl,
        lo,
        hi1,
        &mut s.ul,
        &mut s.fl,
        &mut s.lm_l,
        &mut s.lp_l,
        &mut s.vn_l,
        &mut s.p_l,
    );
    prepare_side(
        &scheme.eos,
        scheme.c2p.rho_floor,
        scheme.c2p.p_floor,
        n,
        &s.wr,
        lo,
        hi1,
        &mut s.ur,
        &mut s.fr,
        &mut s.lm_r,
        &mut s.lp_r,
        &mut s.vn_r,
        &mut s.p_r,
    );
    match scheme.riemann {
        RiemannSolver::Rusanov => combine_rusanov(s, lo, hi1),
        RiemannSolver::Hll => combine_hll(s, lo, hi1),
        RiemannSolver::Hllc => combine_hllc(s, n, lo, hi1),
    }
}

/// Process one pencil: reconstruct, solve Riemann problems, accumulate
/// flux differences along direction `d` at transverse coordinates
/// `(ta, tb)` (dims `a`, `b`), plus the optional fused wave-rate scan.
///
/// # Safety
/// The caller must guarantee that no other thread concurrently accesses
/// the rhs (or rate) cells on this pencil.
#[allow(clippy::too_many_arguments)]
unsafe fn sweep_pencil(
    scheme: &Scheme,
    prim: &Field,
    geom: &PatchGeom,
    d: usize,
    _a: usize,
    _b: usize,
    ta: usize,
    tb: usize,
    region: &Region,
    raw: &RawRhs,
    rate: Option<RawRate>,
) {
    let nt = geom.ntot(d);
    let dir = Dir::ALL[d];
    let inv_dx = 1.0 / geom.dx[d];
    let (lo, hi) = (region.lo[d], region.hi[d]);

    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        s.ensure(nt);

        // `read_pencil` wants transverse indices in ascending dim order.
        let (t1, t2) = (ta, tb);
        for (c, comp) in [PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ, PRIM_P]
            .into_iter()
            .enumerate()
        {
            prim.read_pencil(comp, d, t1, t2, &mut s.q[c]);
        }

        reconstruct_and_flux(scheme, s, dir, lo, hi + 1);

        // Linear index of cell `lo` on this pencil and the step per cell
        // along dimension `d` (the layout is affine in each index).
        let cell_of = |i: usize| -> (usize, usize, usize) {
            match d {
                0 => (i, ta, tb),
                1 => (ta, i, tb),
                _ => (ta, tb, i),
            }
        };
        let (i0, j0, k0) = cell_of(lo);
        let base = geom.idx(i0, j0, k0);
        let stride = if hi > lo + 1 {
            let (i1, j1, k1) = cell_of(lo + 1);
            geom.idx(i1, j1, k1) - base
        } else {
            1
        };

        // Accumulate -dF/dx into rhs along the pencil, component-major.
        for c in 0..NCOMP {
            let fc = &s.flux[c];
            let cbase = unsafe { raw.ptr.add(c * raw.comp_stride + base) };
            for (step, i) in (lo..hi).enumerate() {
                let df = (fc[i + 1] - fc[i]) * inv_dx;
                unsafe {
                    *cbase.add(step * stride) -= df;
                }
            }
        }

        // Fused Δt scan: cell-centered characteristic rates from the
        // unsanitized cell pencil, exactly as `max_dt` computes them.
        if let Some(rate) = rate {
            let rbase = unsafe { rate.ptr.add(base) };
            for (step, i) in (lo..hi).enumerate() {
                let w = Prim {
                    rho: s.q[0][i],
                    vel: [s.q[1][i], s.q[2][i], s.q[3][i]],
                    p: s.q[4][i],
                };
                let (lm, lp) = rhrsc_srhd::flux::signal_speeds(&scheme.eos, &w, dir);
                unsafe {
                    *rbase.add(step * stride) += lm.abs().max(lp.abs()) / geom.dx[d];
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{init_cons, recover_prims};
    use rhrsc_grid::{fill_ghosts, Bc, PatchGeom};
    use rhrsc_srhd::recon::Recon;

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    fn prims_for(s: &Scheme, geom: PatchGeom, ic: &dyn Fn([f64; 3]) -> Prim) -> Field {
        let mut u = init_cons(geom, &s.eos, ic);
        fill_ghosts(&mut u, &rhrsc_grid::bc::uniform(Bc::Periodic));
        let mut prim = Field::new(geom, 5);
        recover_prims(s, &u, &mut prim).unwrap();
        prim
    }

    #[test]
    fn uniform_state_has_zero_residual() {
        let s = scheme();
        for geom in [
            PatchGeom::line(16, 0.0, 1.0, 3),
            PatchGeom::rect([8, 8], [0.0; 2], [1.0; 2], 3),
            PatchGeom::cube([6, 6, 6], [0.0; 3], [1.0; 3], 3),
        ] {
            let prim = prims_for(&s, geom, &|_| Prim {
                rho: 1.0,
                vel: [0.3, -0.2, 0.1],
                p: 2.0,
            });
            let mut rhs = Field::cons(geom);
            compute_rhs(&s, &prim, &mut rhs, None);
            let m = rhs.raw().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            assert!(m < 1e-11, "max |rhs| = {m} on {:?}D", geom.ndim());
        }
    }

    #[test]
    fn periodic_residual_conserves_totals() {
        // Telescoping fluxes: the cell-volume-weighted sum of L(U) must be
        // zero to round-off for each component under periodic ghosts.
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let prim = prims_for(&s, geom, &|x| {
            Prim::new_1d(
                1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.4,
                1.5,
            )
        });
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        for c in 0..NCOMP {
            let total = rhs.interior_integral(c);
            assert!(total.abs() < 1e-12, "component {c}: {total}");
        }
    }

    #[test]
    fn region_tiling_matches_full_residual() {
        let s = scheme();
        let geom = PatchGeom::rect([16, 12], [0.0; 2], [1.0, 1.0], 3);
        let prim = prims_for(&s, geom, &|x| Prim {
            rho: 1.0 + 0.3 * (6.0 * x[0]).sin() * (4.0 * x[1]).cos(),
            vel: [0.2, -0.3, 0.0],
            p: 1.0 + 0.1 * (5.0 * x[1]).sin(),
        });
        let mut full = Field::cons(geom);
        compute_rhs(&s, &prim, &mut full, None);

        let (deep, shells) = Region::split_deep_shell(&geom, 3);
        let mut tiled = Field::cons(geom);
        tiled.raw_mut().fill(0.0);
        accumulate_rhs_region(&s, &prim, &mut tiled, &deep, None);
        for sh in &shells {
            accumulate_rhs_region(&s, &prim, &mut tiled, sh, None);
        }
        assert_eq!(full.raw(), tiled.raw(), "deep+shell must be bit-identical");
    }

    #[test]
    fn deep_shell_partition_is_exact() {
        for geom in [
            PatchGeom::line(20, 0.0, 1.0, 3),
            PatchGeom::rect([10, 8], [0.0; 2], [1.0; 2], 3),
            PatchGeom::cube([6, 7, 8], [0.0; 3], [1.0; 3], 3),
        ] {
            let (deep, shells) = Region::split_deep_shell(&geom, 3);
            let mut count = vec![0u8; geom.len()];
            let mut mark = |r: &Region| {
                for k in r.lo[2]..r.hi[2] {
                    for j in r.lo[1]..r.hi[1] {
                        for i in r.lo[0]..r.hi[0] {
                            count[geom.idx(i, j, k)] += 1;
                        }
                    }
                }
            };
            mark(&deep);
            for s in &shells {
                mark(s);
            }
            for (i, j, k) in geom.interior_iter() {
                assert_eq!(count[geom.idx(i, j, k)], 1, "cell ({i},{j},{k})");
            }
            assert_eq!(
                count.iter().map(|&c| c as usize).sum::<usize>(),
                geom.interior_len(),
                "no coverage outside interior"
            );
        }
    }

    #[test]
    fn deep_region_empty_for_small_patches() {
        let geom = PatchGeom::line(4, 0.0, 1.0, 3);
        let (deep, shells) = Region::split_deep_shell(&geom, 3);
        assert!(deep.is_empty() || deep.len() < 4);
        // Shells still cover everything deep doesn't.
        let covered: usize = shells.iter().map(Region::len).sum::<usize>() + deep.len();
        assert_eq!(covered, 4);
    }

    #[test]
    fn parallel_rhs_bitwise_matches_serial() {
        let s = Scheme {
            recon: Recon::Weno5,
            ..scheme()
        };
        let geom = PatchGeom::cube([12, 10, 8], [0.0; 3], [1.0; 3], 3);
        let prim = prims_for(&s, geom, &|x| Prim {
            rho: 1.0 + 0.3 * (7.0 * x[0] + 3.0 * x[1]).sin() * (2.0 * x[2]).cos(),
            vel: [0.3 * (4.0 * x[1]).sin(), -0.2, 0.1],
            p: 1.0 + 0.2 * (3.0 * x[0]).cos(),
        });
        let mut serial = Field::cons(geom);
        compute_rhs(&s, &prim, &mut serial, None);
        let pool = WorkStealingPool::new(4);
        let mut par = Field::cons(geom);
        compute_rhs(&s, &prim, &mut par, Some(&pool));
        assert_eq!(
            serial.raw(),
            par.raw(),
            "gang-parallel rhs must be bit-identical"
        );
    }

    #[test]
    fn geometric_sources_vanish_for_static_fluid() {
        // v = 0 kills every geometric source term; a uniform static state
        // stays an exact steady state in spherical coordinates.
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::line(32, 0.1, 1.0, 3);
        let prim = prims_for(&s, geom, &|_| Prim::at_rest(1.0, 2.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        let m = rhs.raw().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(m < 1e-11, "static spherical state residual {m}");
    }

    #[test]
    fn geometric_sources_drain_outflowing_density() {
        // Uniform outward flow in spherical coordinates dilutes: the D
        // residual carries the -2 rho W v / r sink.
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::line(32, 0.5, 1.5, 3);
        let prim = prims_for(&s, geom, &|_| Prim::new_1d(1.0, 0.2, 1.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        // At cell centers: flux divergence of D vanishes (uniform),
        // leaving rhs_D = -2 D v / r < 0 and larger in magnitude at
        // smaller r.
        let g = 3;
        let d_inner = rhs.at(0, g + 1, 0, 0);
        let d_outer = rhs.at(0, g + 28, 0, 0);
        assert!(d_inner < 0.0, "inner D residual {d_inner}");
        assert!(d_inner < d_outer, "source must weaken with radius");
        let r = geom.center(g + 1, 0, 0)[0];
        let w = Prim::new_1d(1.0, 0.2, 1.0);
        let expected = -2.0 * w.to_cons(&s.eos).d * 0.2 / r;
        assert!(
            (d_inner - expected).abs() < 0.05 * expected.abs(),
            "{d_inner} vs {expected}"
        );
    }

    #[test]
    #[should_panic(expected = "1D")]
    fn curvilinear_rejects_multi_d() {
        let s = Scheme {
            geometry: crate::scheme::Geometry::SphericalRadial,
            ..scheme()
        };
        let geom = PatchGeom::rect([8, 8], [0.1, 0.0], [1.0, 1.0], 3);
        let prim = prims_for(&s, geom, &|_| Prim::at_rest(1.0, 1.0));
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
    }

    #[test]
    fn advection_residual_moves_density_only() {
        // Uniform v and p: the exact residual is -v ∂ρW/∂x in D and
        // proportional contributions in S/τ, but p-gradient terms vanish.
        // Check the residual is nonzero for D and zero-mean overall.
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let prim = prims_for(&s, geom, &|x| {
            Prim::new_1d(
                1.0 + 0.2 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.5,
                1.0,
            )
        });
        let mut rhs = Field::cons(geom);
        compute_rhs(&s, &prim, &mut rhs, None);
        let max_d = rhs.comp(0).iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            max_d > 0.1,
            "advection should produce a D residual, got {max_d}"
        );
    }
}
