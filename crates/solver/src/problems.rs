//! Standard SRHD test problems.
//!
//! Each [`Problem`] bundles an initial condition, EOS, boundary
//! conditions, a standard output time, and (when available) the exact
//! solution used for error measurements. The 1D Riemann problems use the
//! exact solver from [`rhrsc_srhd::riemann::exact`] as ground truth.

use rhrsc_grid::{bc, Bc, BcSet};
use rhrsc_srhd::riemann::exact::ExactRiemann;
use rhrsc_srhd::{Dir, Eos, Prim};
use std::sync::Arc;

/// Pointwise initial condition.
pub type IcFn = Arc<dyn Fn([f64; 3]) -> Prim + Send + Sync>;
/// Exact solution at `(x, t)`.
pub type ExactFn = Arc<dyn Fn([f64; 3], f64) -> Prim + Send + Sync>;

/// A fully-specified test problem.
#[derive(Clone)]
pub struct Problem {
    /// Short name (used in tables and file names).
    pub name: String,
    /// Equation of state.
    pub eos: Eos,
    /// Standard output time.
    pub t_end: f64,
    /// Boundary conditions.
    pub bcs: BcSet,
    /// Domain bounds (per active dimension).
    pub domain: ([f64; 3], [f64; 3]),
    /// Initial condition.
    pub ic: IcFn,
    /// Exact solution, when known.
    pub exact: Option<ExactFn>,
}

impl Problem {
    /// A generic 1D Riemann problem on `[0, 1]` with the membrane at
    /// `x = 0.5`, with the exact solution attached.
    pub fn riemann_1d(name: &str, left: Prim, right: Prim, gamma: f64, t_end: f64) -> Problem {
        let sol = ExactRiemann::solve(&left, &right, gamma)
            .unwrap_or_else(|e| panic!("exact solution for {name} failed: {e}"));
        let exact = Arc::new(move |x: [f64; 3], t: f64| sol.eval(x[0], t, 0.5));
        Problem {
            name: name.to_string(),
            eos: Eos::ideal(gamma),
            t_end,
            bcs: bc::uniform(Bc::Outflow),
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            ic: Arc::new(move |x| if x[0] < 0.5 { left } else { right }),
            exact: Some(exact),
        }
    }

    /// Relativistic Sod shock tube (the quickstart problem):
    /// `(ρ, v, p) = (1, 0, 1) | (0.125, 0, 0.1)`, Γ = 5/3, t = 0.4.
    pub fn sod() -> Problem {
        Problem::riemann_1d(
            "sod",
            Prim::new_1d(1.0, 0.0, 1.0),
            Prim::new_1d(0.125, 0.0, 0.1),
            5.0 / 3.0,
            0.4,
        )
    }

    /// Martí–Müller relativistic blast wave problem 1:
    /// `(10, 0, 13.33) | (1, 0, 1e-6)`, Γ = 5/3, t = 0.4. Mildly
    /// relativistic (post-shock W ≈ 1.4), thin dense shell.
    pub fn blast_wave_1() -> Problem {
        Problem::riemann_1d(
            "blast1",
            Prim::new_1d(10.0, 0.0, 13.33),
            Prim::new_1d(1.0, 0.0, 1e-6),
            5.0 / 3.0,
            0.4,
        )
    }

    /// Martí–Müller relativistic blast wave problem 2:
    /// `(1, 0, 1000) | (1, 0, 0.01)`, Γ = 5/3, t = 0.35. Strongly
    /// relativistic blast (shell W ≈ 3.6, compression ratio ≈ 10),
    /// a demanding shock-capturing stress test.
    pub fn blast_wave_2() -> Problem {
        Problem::riemann_1d(
            "blast2",
            Prim::new_1d(1.0, 0.0, 1000.0),
            Prim::new_1d(1.0, 0.0, 0.01),
            5.0 / 3.0,
            0.35,
        )
    }

    /// A Sod tube boosted along +x: both states acquire velocity `vb`.
    /// Used by the ultrarelativistic robustness experiment (F8).
    pub fn boosted_sod(vb: f64) -> Problem {
        let left = Prim::new_1d(1.0, 0.0, 1.0).boosted(vb, Dir::X);
        let right = Prim::new_1d(0.125, 0.0, 0.1).boosted(vb, Dir::X);
        // Shorter t_end: the structure leaves the unit domain quickly at
        // high boost.
        let t_end = 0.4 * (1.0 - vb).max(0.05);
        Problem::riemann_1d(
            &format!("boosted-sod-v{vb:.6}"),
            left,
            right,
            5.0 / 3.0,
            t_end,
        )
    }

    /// Smooth relativistic density-wave advection: uniform velocity and
    /// pressure, sinusoidal density. The exact solution is pure advection
    /// `ρ(x − v t)`; this is the convergence-order workhorse (T1).
    pub fn density_wave(v: f64, amplitude: f64) -> Problem {
        assert!(v.abs() < 1.0 && amplitude.abs() < 1.0);
        let ic = move |x: [f64; 3]| {
            Prim::new_1d(
                1.0 + amplitude * (2.0 * std::f64::consts::PI * x[0]).sin(),
                v,
                1.0,
            )
        };
        let exact = move |x: [f64; 3], t: f64| {
            let mut xs = x;
            xs[0] -= v * t;
            ic(xs)
        };
        Problem {
            name: format!("density-wave-v{v}"),
            eos: Eos::ideal(5.0 / 3.0),
            t_end: 1.0 / v.abs().max(1e-10), // one full period
            bcs: bc::uniform(Bc::Periodic),
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            ic: Arc::new(ic),
            exact: Some(Arc::new(exact)),
        }
    }

    /// 2D relativistic Riemann problem (four-quadrant configuration after
    /// Del Zanna & Bucciantini 2002): interacting shocks and contacts on
    /// the unit square, Γ = 5/3, t = 0.4.
    pub fn riemann_2d() -> Problem {
        let ne = Prim {
            rho: 0.1,
            vel: [0.0, 0.0, 0.0],
            p: 0.01,
        };
        let nw = Prim {
            rho: 0.1,
            vel: [0.99, 0.0, 0.0],
            p: 1.0,
        };
        let sw = Prim {
            rho: 0.5,
            vel: [0.0, 0.0, 0.0],
            p: 1.0,
        };
        let se = Prim {
            rho: 0.1,
            vel: [0.0, 0.99, 0.0],
            p: 1.0,
        };
        Problem {
            name: "riemann2d".to_string(),
            eos: Eos::ideal(5.0 / 3.0),
            t_end: 0.4,
            bcs: bc::uniform(Bc::Outflow),
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            ic: Arc::new(move |x| match (x[0] < 0.5, x[1] < 0.5) {
                (false, false) => ne,
                (true, false) => nw,
                (true, true) => sw,
                (false, true) => se,
            }),
            exact: None,
        }
    }

    /// Spherically-symmetric relativistic blast: an over-pressured sphere
    /// (`p = p_in` for `r < r0`) in a uniform ambient medium, reduced to a
    /// 1D radial problem (use with [`crate::scheme::Geometry::SphericalRadial`]
    /// on a grid over `r ∈ (0, r_max]` with a reflecting inner boundary).
    pub fn spherical_blast(p_in: f64, r0: f64) -> Problem {
        let ic = move |x: [f64; 3]| {
            if x[0] < r0 {
                Prim::at_rest(1.0, p_in)
            } else {
                Prim::at_rest(1.0, 1.0)
            }
        };
        let mut bcs = bc::uniform(Bc::Outflow);
        bcs[0][0] = Bc::Reflect; // r = 0
        Problem {
            name: "spherical-blast".to_string(),
            eos: Eos::ideal(5.0 / 3.0),
            t_end: 0.25,
            bcs,
            domain: ([0.0; 3], [0.5, 1.0, 1.0]),
            ic: Arc::new(ic),
            exact: None,
        }
    }

    /// Relativistic Kelvin–Helmholtz instability: a shear layer at
    /// `v_x = ±v_shear` with a small sinusoidal `v_y` perturbation, on a
    /// periodic unit square. The single-mode perturbation growth rate is
    /// measured by experiment F3.
    pub fn kelvin_helmholtz(v_shear: f64, perturb: f64) -> Problem {
        let ic = move |x: [f64; 3]| {
            // Smooth (tanh) shear layers at y = 0.25 and y = 0.75 so the
            // problem is periodic in y. The layer thickness is chosen to
            // span a few zones at the resolutions the growth experiment
            // uses (64²–256²); thinner layers are destroyed by numerical
            // diffusion before the instability can grow.
            let a = 0.04; // layer thickness
            let y = x[1];
            let profile = ((y - 0.25) / a).tanh() * (-((y - 0.75) / a).tanh());
            let vx = v_shear * profile;
            // Single-mode perturbation localized at the layers.
            let envelope = (-((y - 0.25) / (2.0 * a)).powi(2)).exp()
                + (-((y - 0.75) / (2.0 * a)).powi(2)).exp();
            let vy = perturb * (2.0 * std::f64::consts::PI * x[0]).sin() * envelope;
            // Smooth density transition matching the shear profile.
            let rho = 1.5 + 0.5 * profile;
            Prim {
                rho,
                vel: [vx, vy, 0.0],
                p: 2.5,
            }
        };
        Problem {
            name: "khi".to_string(),
            eos: Eos::ideal(4.0 / 3.0),
            t_end: 3.0,
            bcs: bc::uniform(Bc::Periodic),
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            ic: Arc::new(ic),
            exact: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_ic_is_the_membrane_jump() {
        let p = Problem::sod();
        let l = (p.ic)([0.25, 0.0, 0.0]);
        let r = (p.ic)([0.75, 0.0, 0.0]);
        assert_eq!(l.rho, 1.0);
        assert_eq!(r.rho, 0.125);
        assert_eq!(p.t_end, 0.4);
    }

    #[test]
    fn exact_solutions_match_ic_at_t0() {
        for prob in [
            Problem::sod(),
            Problem::blast_wave_1(),
            Problem::blast_wave_2(),
        ] {
            let exact = prob.exact.as_ref().unwrap();
            for &x in &[0.1, 0.3, 0.7, 0.9] {
                let ic = (prob.ic)([x, 0.0, 0.0]);
                let ex = exact([x, 0.0, 0.0], 0.0);
                assert!((ic.rho - ex.rho).abs() < 1e-12, "{} at x={x}", prob.name);
            }
        }
    }

    #[test]
    fn blast2_develops_thin_relativistic_shell() {
        let p = Problem::blast_wave_2();
        let exact = p.exact.as_ref().unwrap();
        // Sample the shell region at t_end; density compression > 7.
        let mut max_rho: f64 = 0.0;
        for i in 0..1000 {
            let x = i as f64 / 1000.0;
            max_rho = max_rho.max(exact([x, 0.0, 0.0], p.t_end).rho);
        }
        assert!(max_rho > 7.0, "shell compression {max_rho}");
    }

    #[test]
    fn boosted_sod_states_physical() {
        for &vb in &[0.9, 0.99, 0.9999] {
            let p = Problem::boosted_sod(vb);
            assert!((p.ic)([0.1, 0.0, 0.0]).is_physical());
            assert!((p.ic)([0.9, 0.0, 0.0]).is_physical());
        }
    }

    #[test]
    fn density_wave_exact_is_periodic_advection() {
        let p = Problem::density_wave(0.5, 0.3);
        let exact = p.exact.as_ref().unwrap();
        let x = [0.3, 0.0, 0.0];
        // After one period the profile returns.
        let a = exact(x, 0.0);
        let b = exact(x, 2.0);
        assert!((a.rho - b.rho).abs() < 1e-12);
    }

    #[test]
    fn khi_is_periodic_and_physical() {
        let p = Problem::kelvin_helmholtz(0.5, 0.01);
        for &y in &[0.0, 0.25, 0.5, 0.75, 0.9999] {
            for &x in &[0.0, 0.31, 0.99] {
                let w = (p.ic)([x, y, 0.0]);
                assert!(w.is_physical(), "at ({x},{y}): {w:?}");
            }
        }
        // Shear flips across the layer.
        let lo = (p.ic)([0.0, 0.1, 0.0]).vel[0];
        let mid = (p.ic)([0.0, 0.5, 0.0]).vel[0];
        assert!(lo * mid < 0.0, "{lo} vs {mid}");
        // y-periodicity: v_x at y=0 and y=1 agree.
        let top = (p.ic)([0.0, 1.0 - 1e-12, 0.0]).vel[0];
        assert!((lo.signum() - top.signum()).abs() < 1e-12 || (top - lo).abs() < 0.2);
    }

    #[test]
    fn riemann_2d_quadrants() {
        let p = Problem::riemann_2d();
        assert_eq!((p.ic)([0.75, 0.75, 0.0]).rho, 0.1); // NE
        assert_eq!((p.ic)([0.25, 0.25, 0.0]).rho, 0.5); // SW
        assert_eq!((p.ic)([0.25, 0.75, 0.0]).vel[0], 0.99); // NW
        assert_eq!((p.ic)([0.75, 0.25, 0.0]).vel[1], 0.99); // SE
    }
}
