//! Two-level static mesh refinement (SMR) for 1D problems.
//!
//! The authors' production relativity codes are adaptive-mesh codes; this
//! module provides the structured-refinement core in its cleanest setting:
//! a coarse level covering the whole 1D domain and one embedded fine level
//! at refinement ratio 2. Two advancement modes are provided: lock-step
//! (both levels share the fine-CFL Δt, refluxed per stage) and
//! Berger–Oliger **subcycling** (the fine level takes two Δt/2 substeps
//! per coarse step with time-interpolated ghost data; conservation is
//! restored by deferred corrections built from effective-weight
//! accumulated fluxes).
//!
//! The coupling follows the standard Berger–Colella construction:
//!
//! * **prolongation** — fine ghost zones are filled from coarse data by
//!   conservative, minmod-limited linear interpolation (children average
//!   back to the parent exactly),
//! * **restriction** — after every stage, covered coarse cells are
//!   replaced by the average of their fine children,
//! * **reflux** — the coarse flux at each coarse/fine interface is
//!   replaced by the fine flux *inside the residual* of the adjacent
//!   uncovered coarse cell, which makes every Runge–Kutta combination of
//!   stages conservative by construction: the composite mass/momentum/
//!   energy integrals are preserved to round-off (asserted by tests).

use crate::integrate::RkOrder;
use crate::refine::{prolong_ghosts_from, restrict_onto, rhs_1d_with_fluxes, rk_tables, RkTables};
use crate::scheme::{
    apply_conserved_floors, max_dt, prim_at, recover_prims, Geometry, Scheme, SolverError,
};
use rhrsc_grid::{fill_ghosts, BcSet, Field, PatchGeom};
use rhrsc_srhd::{Cons, Prim, NCOMP};

/// Two-level static-mesh-refinement solver for 1D problems.
pub struct SmrSolver {
    scheme: Scheme,
    bcs: BcSet,
    rk: RkOrder,
    geom_c: PatchGeom,
    geom_f: PatchGeom,
    /// Refined coarse-cell range (interior indices, `lo..hi`).
    refine: (usize, usize),
    u_c: Field,
    u_f: Field,
    prim_c: Field,
    prim_f: Field,
    rhs_c: Field,
    rhs_f: Field,
    stage_c: Field,
    stage_f: Field,
    flux_c: Vec<Cons>,
    flux_f: Vec<Cons>,
    /// Berger–Oliger time refinement: the fine level takes two Δt/2
    /// substeps per coarse step, with time-interpolated coarse ghost data
    /// and deferred (accumulated-flux) refluxing.
    subcycle: bool,
    /// Coarse state at the start of the step (ghost-interpolation anchor
    /// and reflux base) — subcycling only.
    base_c: Field,
    /// Lerp scratch for ghost prolongation at intermediate times.
    lerp_c: Field,
}

impl SmrSolver {
    /// Create a solver: `n_coarse` cells over `[x0, x1]`, with coarse
    /// interior cells `refine_lo..refine_hi` covered by a ratio-2 fine
    /// level. The refined region must leave at least two coarse cells on
    /// each side (fine ghost prolongation reads them), and the scheme
    /// must be Cartesian.
    #[allow(clippy::too_many_arguments)] // flat constructor reads best here
    pub fn new(
        scheme: Scheme,
        bcs: BcSet,
        rk: RkOrder,
        n_coarse: usize,
        x0: f64,
        x1: f64,
        refine_lo: usize,
        refine_hi: usize,
    ) -> Self {
        assert_eq!(
            scheme.geometry,
            Geometry::Cartesian,
            "SMR currently supports Cartesian geometry"
        );
        assert!(refine_lo >= 2 && refine_hi + 2 <= n_coarse && refine_lo < refine_hi);
        let ng = scheme.required_ghosts();
        let geom_c = PatchGeom::line(n_coarse, x0, x1, ng);
        let dx_c = geom_c.dx[0];
        let fx0 = x0 + refine_lo as f64 * dx_c;
        let fx1 = x0 + refine_hi as f64 * dx_c;
        let n_fine = 2 * (refine_hi - refine_lo);
        let geom_f = PatchGeom::line(n_fine, fx0, fx1, ng);
        SmrSolver {
            scheme,
            bcs,
            rk,
            geom_c,
            geom_f,
            refine: (refine_lo, refine_hi),
            u_c: Field::cons(geom_c),
            u_f: Field::cons(geom_f),
            prim_c: Field::new(geom_c, 5),
            prim_f: Field::new(geom_f, 5),
            rhs_c: Field::cons(geom_c),
            rhs_f: Field::cons(geom_f),
            stage_c: Field::cons(geom_c),
            stage_f: Field::cons(geom_f),
            flux_c: vec![Cons::ZERO; geom_c.ntot(0) + 1],
            flux_f: vec![Cons::ZERO; geom_f.ntot(0) + 1],
            subcycle: false,
            base_c: Field::cons(geom_c),
            lerp_c: Field::cons(geom_c),
        }
    }

    /// Enable Berger–Oliger subcycling: the fine level advances with two
    /// Δt/2 substeps per coarse Δt (the coarse level then runs at its own
    /// CFL limit instead of the fine one), with conservation restored by
    /// deferred flux corrections.
    pub fn with_subcycling(mut self) -> Self {
        self.subcycle = true;
        self
    }

    /// Initialize both levels from a pointwise primitive IC.
    pub fn init(&mut self, ic: &dyn Fn([f64; 3]) -> Prim) {
        self.u_c = crate::scheme::init_cons(self.geom_c, &self.scheme.eos, ic);
        self.u_f = crate::scheme::init_cons(self.geom_f, &self.scheme.eos, ic);
        self.restrict();
    }

    /// Coarse-level conserved field.
    pub fn coarse(&self) -> &Field {
        &self.u_c
    }

    /// Fine-level conserved field.
    pub fn fine(&self) -> &Field {
        &self.u_f
    }

    /// Coarse geometry.
    pub fn coarse_geom(&self) -> &PatchGeom {
        &self.geom_c
    }

    /// Fine geometry.
    pub fn fine_geom(&self) -> &PatchGeom {
        &self.geom_f
    }

    /// Restrict the fine level onto the covered coarse cells (children
    /// average).
    fn restrict(&mut self) {
        restrict_onto(
            &self.u_f,
            &mut self.u_c,
            self.geom_c.ng,
            self.geom_f.ng,
            self.geom_f.n[0],
            self.refine.0,
        );
    }

    /// Fill the fine level's ghost zones by conservative limited linear
    /// prolongation from the coarse level (whose own ghosts must already
    /// be filled and whose covered cells must be consistent).
    fn prolong_fine_ghosts(&mut self) {
        prolong_ghosts_from(
            &self.u_c,
            &mut self.u_f,
            self.geom_c.ng,
            self.geom_f.ng,
            self.geom_f.n[0],
            self.refine.0,
        );
    }

    /// Prolong fine ghosts from a *time-interpolated* coarse state
    /// `(1−θ)·base + θ·current` (subcycling: fine stages live at
    /// intermediate coarse times).
    fn prolong_fine_ghosts_lerp(&mut self, theta: f64) {
        for (o, (&a, &b)) in self
            .lerp_c
            .raw_mut()
            .iter_mut()
            .zip(self.base_c.raw().iter().zip(self.u_c.raw()))
        {
            *o = (1.0 - theta) * a + theta * b;
        }
        fill_ghosts(&mut self.lerp_c, &self.bcs);
        prolong_ghosts_from(
            &self.lerp_c,
            &mut self.u_f,
            self.geom_c.ng,
            self.geom_f.ng,
            self.geom_f.n[0],
            self.refine.0,
        );
    }

    /// One residual evaluation on both levels, including the reflux
    /// substitution. Requires `u_c`/`u_f` consistent (restricted).
    fn eval_rhs(&mut self) -> Result<(), SolverError> {
        fill_ghosts(&mut self.u_c, &self.bcs);
        recover_prims(&self.scheme, &self.u_c, &mut self.prim_c)?;
        self.prolong_fine_ghosts();
        recover_prims(&self.scheme, &self.u_f, &mut self.prim_f)?;

        rhs_1d_with_fluxes(
            &self.scheme,
            &self.prim_c,
            &mut self.rhs_c,
            &mut self.flux_c,
        );
        rhs_1d_with_fluxes(
            &self.scheme,
            &self.prim_f,
            &mut self.rhs_f,
            &mut self.flux_f,
        );

        // Reflux substitution: the uncovered coarse neighbors of the
        // refined region see the *fine* interface flux.
        let ng_c = self.geom_c.ng;
        let ng_f = self.geom_f.ng;
        let (lo, hi) = self.refine;
        let inv_dx = 1.0 / self.geom_c.dx[0];
        // Left interface: coarse interface index lo (ghost-incl ng_c+lo)
        // == fine interface ng_f.
        {
            let i = ng_c + lo - 1; // uncovered cell left of the fine patch
            let f_left = self.flux_c[ng_c + lo - 1];
            let f_right = self.flux_f[ng_f];
            self.rhs_c.set_cons(i, 0, 0, -(f_right - f_left) * inv_dx);
        }
        // Right interface: coarse interface hi == fine interface ng_f+n_f.
        {
            let i = ng_c + hi; // uncovered cell right of the fine patch
            let f_left = self.flux_f[ng_f + self.geom_f.n[0]];
            let f_right = self.flux_c[ng_c + hi + 1];
            self.rhs_c.set_cons(i, 0, 0, -(f_right - f_left) * inv_dx);
        }
        Ok(())
    }

    /// Largest stable Δt over both levels. With subcycling the fine level
    /// only needs `Δt/2 ≤ Δt_f`, so the coarse level runs at (close to)
    /// its own CFL limit — the payoff of time refinement.
    pub fn stable_dt(&mut self, cfl: f64) -> Result<f64, SolverError> {
        fill_ghosts(&mut self.u_c, &self.bcs);
        recover_prims(&self.scheme, &self.u_c, &mut self.prim_c)?;
        self.prolong_fine_ghosts();
        recover_prims(&self.scheme, &self.u_f, &mut self.prim_f)?;
        let dt_c = max_dt(&self.scheme, &self.prim_c, cfl);
        let dt_f = max_dt(&self.scheme, &self.prim_f, cfl);
        if self.subcycle {
            Ok(dt_c.min(2.0 * dt_f))
        } else {
            Ok(dt_c.min(dt_f))
        }
    }

    /// Combine the stage on both levels: `u = a·u0 + b·u + c·rhs`,
    /// followed by restriction and floors.
    fn combine(&mut self, a: f64, b: f64, c: f64, dt: f64) {
        for (u, u0, rhs, geom) in [
            (&mut self.u_c, &self.stage_c, &self.rhs_c, &self.geom_c),
            (&mut self.u_f, &self.stage_f, &self.rhs_f, &self.geom_f),
        ] {
            for (i, j, k) in geom.interior_iter() {
                let v = u0.get_cons(i, j, k) * a
                    + u.get_cons(i, j, k) * b
                    + rhs.get_cons(i, j, k) * (c * dt);
                u.set_cons(i, j, k, v);
            }
        }
        apply_conserved_floors(&mut self.u_c, &self.scheme.c2p);
        apply_conserved_floors(&mut self.u_f, &self.scheme.c2p);
        self.restrict();
    }

    /// Advance both levels by one step of size `dt` (lock-step or
    /// subcycled, per construction).
    pub fn step(&mut self, dt: f64) -> Result<(), SolverError> {
        if self.subcycle {
            return self.step_subcycled(dt);
        }
        self.stage_c.raw_mut().copy_from_slice(self.u_c.raw());
        self.stage_f.raw_mut().copy_from_slice(self.u_f.raw());
        match self.rk {
            RkOrder::Rk1 => {
                self.eval_rhs()?;
                self.combine(0.0, 1.0, 1.0, dt);
            }
            RkOrder::Rk2 => {
                self.eval_rhs()?;
                self.combine(0.0, 1.0, 1.0, dt);
                self.eval_rhs()?;
                self.combine(0.5, 0.5, 0.5, dt);
            }
            RkOrder::Rk3 => {
                self.eval_rhs()?;
                self.combine(0.0, 1.0, 1.0, dt);
                self.eval_rhs()?;
                self.combine(0.75, 0.25, 0.25, dt);
                self.eval_rhs()?;
                self.combine(1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0, dt);
            }
        }
        Ok(())
    }

    /// Effective flux weights `b_i` and stage times `c_i` of the SSP-RK
    /// forms used here (the final update equals
    /// `u^{n+1} = u^n − Δt/Δx Σ_i b_i ΔF_i`). Shared with the AMR solver
    /// via [`crate::refine::rk_tables`].
    fn rk_tables(&self) -> RkTables {
        rk_tables(self.rk)
    }

    /// Single-level stage combine: `u = a·u0 + b·u + c·dt·rhs` + floors.
    fn combine_level(&mut self, coarse: bool, a: f64, b: f64, c: f64, dt: f64) {
        let (u, u0, rhs, geom) = if coarse {
            (&mut self.u_c, &self.stage_c, &self.rhs_c, &self.geom_c)
        } else {
            (&mut self.u_f, &self.stage_f, &self.rhs_f, &self.geom_f)
        };
        for (i, j, k) in geom.interior_iter() {
            let v = u0.get_cons(i, j, k) * a
                + u.get_cons(i, j, k) * b
                + rhs.get_cons(i, j, k) * (c * dt);
            u.set_cons(i, j, k, v);
        }
        apply_conserved_floors(u, &self.scheme.c2p);
    }

    /// Berger–Oliger subcycled step: coarse at Δt, fine at 2×Δt/2, then
    /// restriction and deferred reflux.
    fn step_subcycled(&mut self, dt: f64) -> Result<(), SolverError> {
        let (stages, weights, ctimes) = self.rk_tables();
        let ng_c = self.geom_c.ng;
        let ng_f = self.geom_f.ng;
        let (lo, hi) = self.refine;
        let (ifc_l, ifc_r) = (ng_c + lo, ng_c + hi);
        let (iff_l, iff_r) = (ng_f, ng_f + self.geom_f.n[0]);

        self.base_c.raw_mut().copy_from_slice(self.u_c.raw());

        // --- coarse step, accumulating effective interface fluxes --------
        let mut acc_c = [Cons::ZERO; 2];
        self.stage_c.raw_mut().copy_from_slice(self.u_c.raw());
        for (si, &(a, b, c)) in stages.iter().enumerate() {
            fill_ghosts(&mut self.u_c, &self.bcs);
            recover_prims(&self.scheme, &self.u_c, &mut self.prim_c)?;
            rhs_1d_with_fluxes(
                &self.scheme,
                &self.prim_c,
                &mut self.rhs_c,
                &mut self.flux_c,
            );
            acc_c[0] += self.flux_c[ifc_l] * weights[si];
            acc_c[1] += self.flux_c[ifc_r] * weights[si];
            self.combine_level(true, a, b, c, dt);
        }

        // --- fine level: two Δt/2 substeps with lerped ghosts ------------
        let mut acc_f = [Cons::ZERO; 2];
        for sub in 0..2 {
            self.stage_f.raw_mut().copy_from_slice(self.u_f.raw());
            for (si, &(a, b, c)) in stages.iter().enumerate() {
                let theta = (sub as f64 + ctimes[si]) * 0.5;
                self.prolong_fine_ghosts_lerp(theta);
                recover_prims(&self.scheme, &self.u_f, &mut self.prim_f)?;
                rhs_1d_with_fluxes(
                    &self.scheme,
                    &self.prim_f,
                    &mut self.rhs_f,
                    &mut self.flux_f,
                );
                acc_f[0] += self.flux_f[iff_l] * (0.5 * weights[si]);
                acc_f[1] += self.flux_f[iff_r] * (0.5 * weights[si]);
                self.combine_level(false, a, b, c, 0.5 * dt);
            }
        }

        // --- restriction + deferred reflux --------------------------------
        self.restrict();
        let k = dt / self.geom_c.dx[0];
        // Left-uncovered cell used acc_c[0] as its right flux.
        {
            let i = ng_c + lo - 1;
            let v = self.u_c.get_cons(i, 0, 0) + (acc_c[0] - acc_f[0]) * k;
            self.u_c.set_cons(i, 0, 0, v);
        }
        // Right-uncovered cell used acc_c[1] as its left flux.
        {
            let i = ng_c + hi;
            let v = self.u_c.get_cons(i, 0, 0) + (acc_f[1] - acc_c[1]) * k;
            self.u_c.set_cons(i, 0, 0, v);
        }
        apply_conserved_floors(&mut self.u_c, &self.scheme.c2p);
        Ok(())
    }

    /// Advance to `t_end` under CFL control; returns the step count.
    pub fn advance_to(&mut self, t0: f64, t_end: f64, cfl: f64) -> Result<usize, SolverError> {
        let mut t = t0;
        let mut steps = 0;
        while t < t_end - 1e-14 {
            let mut dt = self.stable_dt(cfl)?;
            // Negated form deliberately catches NaN as a collapse.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(dt > 1e-14) {
                return Err(SolverError::TimestepCollapse { dt });
            }
            if t + dt > t_end {
                dt = t_end - t;
            }
            self.step(dt)?;
            t += dt;
            steps += 1;
        }
        Ok(steps)
    }

    /// Composite conserved totals: uncovered coarse cells plus the fine
    /// level (exactly what the reflux construction conserves).
    pub fn composite_totals(&self) -> [f64; NCOMP] {
        let ng_c = self.geom_c.ng;
        let (lo, hi) = self.refine;
        let mut out = [0.0; NCOMP];
        for i in 0..self.geom_c.n[0] {
            if (lo..hi).contains(&i) {
                continue;
            }
            let u = self.u_c.get_cons(ng_c + i, 0, 0).to_array();
            for c in 0..NCOMP {
                out[c] += u[c] * self.geom_c.dx[0];
            }
        }
        let ng_f = self.geom_f.ng;
        for i in 0..self.geom_f.n[0] {
            let u = self.u_f.get_cons(ng_f + i, 0, 0).to_array();
            for c in 0..NCOMP {
                out[c] += u[c] * self.geom_f.dx[0];
            }
        }
        out
    }

    /// Composite L1(ρ) error against an exact solution at time `t`,
    /// integrated over the composite (uncovered coarse + fine) grid.
    pub fn l1_density_error(
        &mut self,
        exact: &dyn Fn([f64; 3], f64) -> Prim,
        t: f64,
    ) -> Result<f64, SolverError> {
        fill_ghosts(&mut self.u_c, &self.bcs);
        recover_prims(&self.scheme, &self.u_c, &mut self.prim_c)?;
        self.prolong_fine_ghosts();
        recover_prims(&self.scheme, &self.u_f, &mut self.prim_f)?;
        let ng_c = self.geom_c.ng;
        let (lo, hi) = self.refine;
        let mut l1 = 0.0;
        for i in 0..self.geom_c.n[0] {
            if (lo..hi).contains(&i) {
                continue;
            }
            let x = self.geom_c.center(ng_c + i, 0, 0);
            l1 += (prim_at(&self.prim_c, ng_c + i, 0, 0).rho - exact(x, t).rho).abs()
                * self.geom_c.dx[0];
        }
        let ng_f = self.geom_f.ng;
        for i in 0..self.geom_f.n[0] {
            let x = self.geom_f.center(ng_f + i, 0, 0);
            l1 += (prim_at(&self.prim_f, ng_f + i, 0, 0).rho - exact(x, t).rho).abs()
                * self.geom_f.dx[0];
        }
        // Normalize by the domain length (matches diag::l1_density_error's
        // per-cell average on a uniform grid).
        let len = self.geom_c.n[0] as f64 * self.geom_c.dx[0];
        Ok(l1 / len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use crate::scheme::init_cons;
    use crate::PatchSolver;
    use rhrsc_grid::{bc, Bc};

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    #[test]
    fn uniform_state_stays_uniform() {
        let mut smr = SmrSolver::new(
            scheme(),
            bc::uniform(Bc::Periodic),
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            20,
            44,
        );
        smr.init(&|_| Prim::new_1d(1.0, 0.3, 2.0));
        smr.advance_to(0.0, 0.1, 0.4).unwrap();
        let ng = smr.coarse_geom().ng;
        for i in 0..64 {
            let u = smr.coarse().get_cons(ng + i, 0, 0);
            let w = Prim::new_1d(1.0, 0.3, 2.0).to_cons(&scheme().eos);
            assert!(
                (u.d - w.d).abs() < 1e-11,
                "coarse cell {i}: {} vs {}",
                u.d,
                w.d
            );
        }
        let ngf = smr.fine_geom().ng;
        for i in 0..smr.fine_geom().n[0] {
            let u = smr.fine().get_cons(ngf + i, 0, 0);
            let w = Prim::new_1d(1.0, 0.3, 2.0).to_cons(&scheme().eos);
            assert!((u.d - w.d).abs() < 1e-11, "fine cell {i}");
        }
    }

    #[test]
    fn composite_conservation_to_roundoff() {
        // Periodic advection with central refinement: the reflux
        // construction must conserve the composite integrals exactly.
        let mut smr = SmrSolver::new(
            scheme(),
            bc::uniform(Bc::Periodic),
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            20,
            44,
        );
        smr.init(&|x| {
            Prim::new_1d(
                1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.5,
                1.0,
            )
        });
        let before = smr.composite_totals();
        smr.advance_to(0.0, 0.5, 0.4).unwrap();
        let after = smr.composite_totals();
        for c in 0..NCOMP {
            assert!(
                (after[c] - before[c]).abs() <= 1e-12 * before[c].abs().max(1.0),
                "component {c}: {} -> {}",
                before[c],
                after[c]
            );
        }
    }

    #[test]
    fn wave_crosses_refinement_boundary_cleanly() {
        // Advect a density pulse through the fine region and back out; the
        // final error against the exact advected profile must be at the
        // coarse-grid level (no spurious reflections at the c/f boundary).
        let prob = Problem::density_wave(0.5, 0.3);
        let mut smr = SmrSolver::new(scheme(), prob.bcs, RkOrder::Rk3, 64, 0.0, 1.0, 24, 40);
        smr.init(&|x| (prob.ic)(x));
        smr.advance_to(0.0, 2.0, 0.4).unwrap(); // one full period
        let exact = prob.exact.clone().unwrap();
        let l1 = smr.l1_density_error(&*exact, 2.0).unwrap();

        // Uniform-coarse reference.
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, s.required_ghosts());
        let mut u = init_cons(geom, &s.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(s, prob.bcs, RkOrder::Rk3, geom);
        solver.advance_to(&mut u, 0.0, 2.0, 0.4, None).unwrap();
        let (l1_coarse, _) = crate::diag::l1_density_error(&s, &u, &exact, 2.0).unwrap();

        assert!(
            l1 < 1.5 * l1_coarse,
            "SMR error {l1} should not exceed the coarse error {l1_coarse} (no reflections)"
        );
    }

    #[test]
    fn sod_with_refined_wave_region_beats_uniform_coarse() {
        // Refine where the Riemann fan lives; the composite error must
        // land between uniform-coarse and uniform-fine.
        let prob = Problem::sod();
        let s = scheme();
        let exact = prob.exact.clone().unwrap();

        let err_uniform = |n: usize| -> f64 {
            let geom = PatchGeom::line(n, 0.0, 1.0, s.required_ghosts());
            let mut u = init_cons(geom, &s.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(s, prob.bcs, RkOrder::Rk3, geom);
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap();
            crate::diag::l1_density_error(&s, &u, &exact, prob.t_end)
                .unwrap()
                .0
        };
        let e_coarse = err_uniform(100);
        let e_fine = err_uniform(200);

        let mut smr = SmrSolver::new(s, prob.bcs, RkOrder::Rk3, 100, 0.0, 1.0, 20, 95);
        smr.init(&|x| (prob.ic)(x));
        smr.advance_to(0.0, prob.t_end, 0.4).unwrap();
        let e_smr = smr.l1_density_error(&*exact, prob.t_end).unwrap();

        assert!(
            e_smr < e_coarse,
            "SMR {e_smr} must beat uniform-coarse {e_coarse}"
        );
        assert!(
            e_smr < 1.35 * e_fine,
            "SMR {e_smr} should approach uniform-fine {e_fine}"
        );
    }

    #[test]
    fn prolongation_preserves_parent_averages() {
        let mut smr = SmrSolver::new(
            scheme(),
            bc::uniform(Bc::Outflow),
            RkOrder::Rk2,
            32,
            0.0,
            1.0,
            10,
            22,
        );
        smr.init(&|x| Prim::new_1d(1.0 + x[0], 0.1, 1.0 + 0.5 * x[0]));
        fill_ghosts(&mut smr.u_c, &smr.bcs);
        smr.prolong_fine_ghosts();
        // Check the left ghost pair children average to the coarse parent.
        let ng_c = smr.geom_c.ng;
        let ng_f = smr.geom_f.ng;
        let (lo, _) = smr.refine;
        for c in 0..NCOMP {
            let parent = smr.u_c.at(c, ng_c + lo - 1, 0, 0);
            let ch_l = smr.u_f.at(c, ng_f - 2, 0, 0);
            let ch_r = smr.u_f.at(c, ng_f - 1, 0, 0);
            assert!(
                (0.5 * (ch_l + ch_r) - parent).abs() < 1e-13,
                "component {c}: {} vs {}",
                0.5 * (ch_l + ch_r),
                parent
            );
        }
    }

    #[test]
    fn subcycled_conservation_to_roundoff() {
        let mut smr = SmrSolver::new(
            scheme(),
            bc::uniform(Bc::Periodic),
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            20,
            44,
        )
        .with_subcycling();
        smr.init(&|x| {
            Prim::new_1d(
                1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
                0.5,
                1.0,
            )
        });
        let before = smr.composite_totals();
        smr.advance_to(0.0, 0.5, 0.4).unwrap();
        let after = smr.composite_totals();
        for c in 0..NCOMP {
            assert!(
                (after[c] - before[c]).abs() <= 1e-12 * before[c].abs().max(1.0),
                "component {c}: {} -> {}",
                before[c],
                after[c]
            );
        }
    }

    #[test]
    fn subcycling_takes_fewer_steps_with_similar_accuracy() {
        // Subcycling lets the coarse level run at its own CFL limit, so a
        // whole run needs about half the steps of lock-step, with errors
        // of the same order.
        let prob = Problem::density_wave(0.5, 0.3);
        let exact = prob.exact.clone().unwrap();
        let build = |sub: bool| {
            let smr = SmrSolver::new(scheme(), prob.bcs, RkOrder::Rk3, 64, 0.0, 1.0, 24, 40);
            if sub {
                smr.with_subcycling()
            } else {
                smr
            }
        };
        let mut lock = build(false);
        lock.init(&|x| (prob.ic)(x));
        let steps_lock = lock.advance_to(0.0, 1.0, 0.4).unwrap();
        let e_lock = lock.l1_density_error(&*exact, 1.0).unwrap();

        let mut sub = build(true);
        sub.init(&|x| (prob.ic)(x));
        let steps_sub = sub.advance_to(0.0, 1.0, 0.4).unwrap();
        let e_sub = sub.l1_density_error(&*exact, 1.0).unwrap();

        assert!(
            (steps_sub as f64) < 0.65 * steps_lock as f64,
            "subcycled {steps_sub} vs lock-step {steps_lock} steps"
        );
        assert!(
            e_sub < 3.0 * e_lock,
            "subcycled error {e_sub} vs lock-step {e_lock}"
        );
    }

    #[test]
    fn subcycled_sod_accuracy() {
        // Shock crossing the refinement boundary under subcycling.
        let prob = Problem::sod();
        let exact = prob.exact.clone().unwrap();
        let mut smr = SmrSolver::new(scheme(), prob.bcs, RkOrder::Rk3, 100, 0.0, 1.0, 20, 95)
            .with_subcycling();
        smr.init(&|x| (prob.ic)(x));
        smr.advance_to(0.0, prob.t_end, 0.4).unwrap();
        let e = smr.l1_density_error(&*exact, prob.t_end).unwrap();
        // Uniform-coarse reference error is ~5.7e-3 (A5); subcycled SMR
        // must clearly beat it.
        assert!(e < 4.5e-3, "subcycled SMR error {e}");
    }

    #[test]
    #[should_panic(expected = "Cartesian")]
    fn rejects_curvilinear() {
        let s = Scheme {
            geometry: Geometry::SphericalRadial,
            ..scheme()
        };
        let _ = SmrSolver::new(
            s,
            bc::uniform(Bc::Outflow),
            RkOrder::Rk2,
            32,
            0.0,
            1.0,
            8,
            24,
        );
    }
}
