//! Shared mesh-refinement operators: conservative prolongation,
//! restriction, interface-flux-capturing residuals, and the SSP-RK
//! effective-weight tables.
//!
//! Both refinement solvers — the two-level static [`crate::smr::SmrSolver`]
//! and the multi-level adaptive [`crate::amr::AmrSolver`] — are built from
//! the same four operators, so they live here once:
//!
//! * **prolongation** ([`prolong_span`] / [`prolong_ghosts_from`]) —
//!   conservative, minmod-limited linear interpolation from a coarse field
//!   into ratio-2 fine cells; the two children of a parent average back to
//!   it exactly (up to one rounding each), which is what makes regridding
//!   and ghost filling conservative,
//! * **restriction** ([`restrict_onto`]) — covered coarse cells replaced by
//!   the mean of their two fine children,
//! * **flux-capturing residual** ([`rhs_1d_with_fluxes`]) — the 1D
//!   finite-volume residual that also records every interface flux, the
//!   raw material for refluxing,
//! * **RK tables** ([`rk_tables`]) — per-stage combine coefficients plus
//!   the *effective* flux weights `b_i` and stage times `c_i` of the
//!   SSP-RK forms: the final update equals
//!   `u^{n+1} = u^n − Δt/Δx Σ_i b_i ΔF_i`, so accumulating `Σ_i b_i F_i`
//!   at an interface yields the exact time-integrated flux the reflux
//!   correction needs.
//!
//! The arithmetic here is bit-for-bit the pre-refactor `SmrSolver`
//! internals (guarded by `tests/smr_bit_identity.rs`); do not "simplify"
//! the floating-point expressions.

use crate::integrate::RkOrder;
use crate::scheme::{Scheme, PRIM_P, PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ};
use rhrsc_grid::Field;
use rhrsc_srhd::{Cons, Dir, NCOMP};

/// Per-stage `(a, b, c)` combine coefficients, effective flux weights,
/// and stage times of an SSP-RK form.
pub type RkTables = (&'static [(f64, f64, f64)], &'static [f64], &'static [f64]);

/// Effective flux weights `b_i` and stage times `c_i` of the SSP-RK forms
/// (the stage combine is `u = a·u0 + b·u + c·Δt·rhs`).
pub fn rk_tables(rk: RkOrder) -> RkTables {
    match rk {
        RkOrder::Rk1 => (&[(0.0, 1.0, 1.0)], &[1.0], &[0.0]),
        RkOrder::Rk2 => (
            &[(0.0, 1.0, 1.0), (0.5, 0.5, 0.5)],
            &[0.5, 0.5],
            &[0.0, 1.0],
        ),
        RkOrder::Rk3 => (
            &[
                (0.0, 1.0, 1.0),
                (0.75, 0.25, 0.25),
                (1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0),
            ],
            &[1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0],
            &[0.0, 1.0, 0.5],
        ),
    }
}

/// The symmetric minmod limiter.
#[inline]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Conservative, minmod-limited linear prolongation of a span of fine
/// cells from coarse data.
///
/// Fine cell `f` (0-based *global fine* index relative to the fine
/// patch's first interior cell; negatives address left ghosts) maps to
/// coarse interior cell `lo + floor(f/2)` with child parity `f mod 2`
/// (0 = left child). Children are `u₀ ∓ s/4` with `s` the minmod slope of
/// the parent, so the two children of a parent average back to it
/// exactly. Fills fine global indices `f0..f1` (ghost-inclusive fine
/// index `ng_f + f`). The needed coarse stencil (`parent ± 1`) must be
/// ghost-inclusive-valid in `src_c`.
pub fn prolong_span(
    src_c: &Field,
    dst_f: &mut Field,
    ng_c: usize,
    ng_f: usize,
    lo: usize,
    f0: i64,
    f1: i64,
) {
    for f_global in f0..f1 {
        let gi_f = (ng_f as i64 + f_global) as usize;
        let ic = lo as i64 + f_global.div_euclid(2);
        let child = f_global.rem_euclid(2);
        let i = (ng_c as i64 + ic) as usize;
        for c in 0..NCOMP {
            let u_m = src_c.at(c, i - 1, 0, 0);
            let u_0 = src_c.at(c, i, 0, 0);
            let u_p = src_c.at(c, i + 1, 0, 0);
            let s = minmod(u_0 - u_m, u_p - u_0);
            let v = if child == 0 {
                u_0 - 0.25 * s
            } else {
                u_0 + 0.25 * s
            };
            dst_f.set(c, gi_f, 0, 0, v);
        }
    }
}

/// Prolong coarse data into *both ghost bands* of a fine level: fine
/// global indices `-ng_f..0` and `n_f..n_f+ng_f` (the historical
/// `SmrSolver` entry point, kept as the common case).
pub fn prolong_ghosts_from(
    src_c: &Field,
    dst_f: &mut Field,
    ng_c: usize,
    ng_f: usize,
    n_f: usize,
    lo: usize,
) {
    prolong_span(src_c, dst_f, ng_c, ng_f, lo, -(ng_f as i64), 0);
    prolong_span(
        src_c,
        dst_f,
        ng_c,
        ng_f,
        lo,
        n_f as i64,
        (n_f + ng_f) as i64,
    );
}

/// Restrict a fine level onto the covered coarse cells (children
/// average): coarse interior cells `lo..lo + n_f/2` are replaced by the
/// mean of fine interior pairs.
pub fn restrict_onto(
    src_f: &Field,
    dst_c: &mut Field,
    ng_c: usize,
    ng_f: usize,
    n_f: usize,
    lo: usize,
) {
    debug_assert_eq!(n_f % 2, 0);
    for ic in 0..n_f / 2 {
        let f0 = ng_f + 2 * ic;
        let a = src_f.get_cons(f0, 0, 0);
        let b = src_f.get_cons(f0 + 1, 0, 0);
        dst_c.set_cons(ng_c + lo + ic, 0, 0, (a + b) * 0.5);
    }
}

/// 1D residual with interface-flux capture: fills `rhs` over the interior
/// and stores the interface fluxes (`flux[j]` is the flux through the
/// ghost-inclusive interface `j`, valid for `ng..=ng+n`).
pub fn rhs_1d_with_fluxes(scheme: &Scheme, prim: &Field, rhs: &mut Field, flux: &mut [Cons]) {
    let geom = *prim.geom();
    debug_assert_eq!(geom.ndim(), 1);
    let ng = geom.ng;
    let n = geom.n[0];
    let nt = geom.ntot(0);
    let inv_dx = 1.0 / geom.dx[0];

    // Shared fused interface kernel (same scratch banks and expression
    // trees as the block sweeps — see the module header's bit-identity
    // guarantee).
    crate::step::with_pencil_scratch(nt, |s| {
        for (c, comp) in [PRIM_RHO, PRIM_VX, PRIM_VY, PRIM_VZ, PRIM_P]
            .into_iter()
            .enumerate()
        {
            prim.read_pencil(comp, 0, 0, 0, s.q_mut(c));
        }
        crate::step::reconstruct_and_flux(scheme, s, Dir::X, ng, ng + n + 1);
        for (j, fj) in flux.iter_mut().enumerate().skip(ng).take(n + 1) {
            *fj = Cons::from_array([
                s.flux(0)[j],
                s.flux(1)[j],
                s.flux(2)[j],
                s.flux(3)[j],
                s.flux(4)[j],
            ]);
        }
    });
    rhs.raw_mut().fill(0.0);
    for i in ng..ng + n {
        rhs.set_cons(i, 0, 0, -(flux[i + 1] - flux[i]) * inv_dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_grid::PatchGeom;

    #[test]
    fn minmod_basics() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-2.0, -1.0), -1.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 3.0), 0.0);
    }

    #[test]
    fn rk_tables_effective_weights_sum_to_one() {
        for rk in [RkOrder::Rk1, RkOrder::Rk2, RkOrder::Rk3] {
            let (stages, weights, ctimes) = rk_tables(rk);
            assert_eq!(stages.len(), weights.len());
            assert_eq!(stages.len(), ctimes.len());
            let sum: f64 = weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-15, "{rk:?}: Σb = {sum}");
        }
    }

    #[test]
    fn prolong_then_restrict_roundtrips_linear_data() {
        // A linear profile: minmod slope is exact, children average back
        // to the parent, restriction recovers the coarse values.
        let ng = 3;
        let geom_c = PatchGeom::line(16, 0.0, 1.0, ng);
        let mut src = Field::cons(geom_c);
        for i in 0..geom_c.ntot(0) {
            let x = geom_c.center(i, 0, 0)[0];
            src.set_cons(
                i,
                0,
                0,
                Cons {
                    d: 1.0 + x,
                    s: [0.5 * x, 0.0, 0.0],
                    tau: 2.0 - x,
                },
            );
        }
        let (lo, hi) = (4usize, 12usize);
        let n_f = 2 * (hi - lo);
        let geom_f = PatchGeom::line(n_f, 0.25, 0.75, ng);
        let mut fine = Field::cons(geom_f);
        prolong_span(&src, &mut fine, ng, ng, lo, 0, n_f as i64);

        let mut back = Field::cons(geom_c);
        restrict_onto(&fine, &mut back, ng, ng, n_f, lo);
        for ic in lo..hi {
            let want = src.get_cons(ng + ic, 0, 0);
            let got = back.get_cons(ng + ic, 0, 0);
            for (w, g) in want.to_array().iter().zip(got.to_array()) {
                assert!((w - g).abs() < 1e-14, "cell {ic}: {w} vs {g}");
            }
        }
    }
}
