//! Distributed heterogeneous driver.
//!
//! Each rank owns one block of a Cartesian decomposition of the global
//! grid. A step comprises a Δt allreduce, per-stage halo exchanges and
//! residual evaluation, in one of two modes:
//!
//! * **bulk-synchronous** — exchange every halo, then compute the full
//!   residual (the classic MPI pattern),
//! * **futurized overlap** — post all halo sends eagerly, compute the
//!   *deep* residual region (whose stencils never read ghosts) while the
//!   messages are in flight, then receive halos and finish the boundary
//!   shell. Against the latency-modeling network of [`rhrsc_comm`] this
//!   genuinely hides communication time (experiment F7).
//!
//! Corner ghost zones are never exchanged: the dimension-by-dimension
//! sweeps read only face ghosts, which keeps both modes to `2·ndim`
//! messages per stage and makes them bit-identical to the serial solver.

use crate::integrate::RkOrder;
use crate::scheme::{
    init_cons, max_dt, recover_cell, recover_prims, Scheme, SolverError,
};
use crate::step::{accumulate_rhs_region, Region};
use rhrsc_comm::Rank;
use rhrsc_grid::{fill_face, BcSet, CartDecomp, Field, PatchGeom};
use rhrsc_runtime::WorkStealingPool;
use rhrsc_srhd::{Prim, NCOMP};
use std::time::{Duration, Instant};

/// Halo-exchange strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Exchange all halos, then compute.
    BulkSynchronous,
    /// Post sends, compute the deep interior, then receive and finish.
    Overlap,
}

impl ExchangeMode {
    /// Display name for benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeMode::BulkSynchronous => "bulk-sync",
            ExchangeMode::Overlap => "overlap",
        }
    }
}

/// Configuration of a distributed run.
#[derive(Clone)]
pub struct DistConfig {
    /// Numerical scheme.
    pub scheme: Scheme,
    /// Runge–Kutta order.
    pub rk: RkOrder,
    /// Global grid extent.
    pub global_n: [usize; 3],
    /// Physical domain bounds.
    pub domain: ([f64; 3], [f64; 3]),
    /// Process grid.
    pub decomp: CartDecomp,
    /// Physical boundary conditions (periodic faces must match
    /// `decomp.periodic`).
    pub bcs: BcSet,
    /// CFL number.
    pub cfl: f64,
    /// Halo-exchange strategy.
    pub mode: ExchangeMode,
    /// Within-rank gang threads (0 = serial).
    pub gang_threads: usize,
    /// Recompute the global Δt every this many steps (≥ 1). Production
    /// codes amortize the Δt allreduce over several steps with a safety
    /// factor; between refreshes the cached Δt is scaled by 0.9.
    pub dt_refresh_interval: usize,
}

impl DistConfig {
    /// Local patch geometry for `rank`.
    pub fn local_geom(&self, rank: usize) -> PatchGeom {
        let (off, size) = self.decomp.local_span(self.global_n, rank);
        let (lo, hi) = self.domain;
        let dx = [
            (hi[0] - lo[0]) / self.global_n[0] as f64,
            (hi[1] - lo[1]) / self.global_n[1] as f64,
            (hi[2] - lo[2]) / self.global_n[2] as f64,
        ];
        PatchGeom {
            n: size,
            ng: self.scheme.required_ghosts(),
            origin: [
                lo[0] + off[0] as f64 * dx[0],
                lo[1] + off[1] as f64 * dx[1],
                lo[2] + off[2] as f64 * dx[2],
            ],
            dx,
        }
    }
}

/// Per-rank statistics of a distributed run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistStats {
    /// Time steps taken.
    pub steps: usize,
    /// Wall-clock time of the advance loop.
    pub elapsed: Duration,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Interior zone-updates (cells × stages).
    pub zone_updates: u64,
    /// Virtual time elapsed on this rank (virtual-time universes only;
    /// the run's simulated makespan is the max over ranks).
    pub vtime: f64,
}

/// One rank's solver state.
pub struct BlockSolver {
    cfg: DistConfig,
    geom: PatchGeom,
    my_rank: usize,
    prim: Field,
    rhs: Field,
    u_stage: Field,
    gang: Option<WorkStealingPool>,
}

impl BlockSolver {
    /// Build the solver for `rank`'s block and initialize the conserved
    /// state from the pointwise IC.
    pub fn new(cfg: DistConfig, rank: usize, ic: &dyn Fn([f64; 3]) -> Prim) -> (Self, Field) {
        let geom = cfg.local_geom(rank);
        let u = init_cons(geom, &cfg.scheme.eos, ic);
        let gang = (cfg.gang_threads > 0).then(|| WorkStealingPool::new(cfg.gang_threads));
        (
            BlockSolver {
                cfg,
                geom,
                my_rank: rank,
                prim: Field::new(geom, 5),
                rhs: Field::cons(geom),
                u_stage: Field::cons(geom),
                gang,
            },
            u,
        )
    }

    /// The local patch geometry.
    pub fn geom(&self) -> &PatchGeom {
        &self.geom
    }

    /// Pack the `ng` interior layers adjacent to face (`d`, `side`)
    /// (transverse interior only — corners are never exchanged).
    fn pack_face(&self, u: &Field, d: usize, side: usize) -> Vec<f64> {
        let geom = &self.geom;
        let ng = geom.ng_of(d);
        let n = geom.n[d];
        let range = if side == 0 { ng..2 * ng } else { n..n + ng };
        let mut buf =
            Vec::with_capacity(NCOMP * ng * transverse_len(geom, d));
        for c in 0..NCOMP {
            for l in range.clone() {
                for_each_transverse(geom, d, |t1, t2| {
                    let (i, j, k) = cell_of(d, l, t1, t2);
                    buf.push(u.at(c, i, j, k));
                });
            }
        }
        buf
    }

    /// Unpack a received halo into the ghost layers of face (`d`, `side`).
    fn unpack_face(&self, u: &mut Field, d: usize, side: usize, buf: &[f64]) {
        let geom = &self.geom;
        let ng = geom.ng_of(d);
        let n = geom.n[d];
        let range = if side == 0 { 0..ng } else { ng + n..2 * ng + n };
        let mut it = buf.iter();
        for c in 0..NCOMP {
            for l in range.clone() {
                for_each_transverse(geom, d, |t1, t2| {
                    let (i, j, k) = cell_of(d, l, t1, t2);
                    u.set(c, i, j, k, *it.next().expect("halo buffer too short"));
                });
            }
        }
        assert!(it.next().is_none(), "halo buffer too long");
    }

    /// Post all halo sends for the current state.
    fn post_sends(&self, rank: &mut Rank, u: &Field) {
        for d in 0..3 {
            if !self.geom.active(d) || self.cfg.decomp.dims[d] == 1 {
                continue;
            }
            for side in 0..2 {
                if let Some(nb) = self.cfg.decomp.neighbor(self.my_rank, d, side) {
                    if nb == self.my_rank {
                        continue; // handled as local periodic wrap
                    }
                    let buf = rank.work(|| self.pack_face(u, d, side));
                    rank.send(nb, (d * 2 + side) as u64, &buf);
                }
            }
        }
    }

    /// Receive all halos and fill physical faces.
    fn recv_halos(&self, rank: &mut Rank, u: &mut Field) {
        for d in 0..3 {
            if !self.geom.active(d) {
                continue;
            }
            for side in 0..2 {
                let nb = if self.cfg.decomp.dims[d] == 1 {
                    None
                } else {
                    self.cfg.decomp.neighbor(self.my_rank, d, side)
                };
                match nb {
                    Some(nb) if nb != self.my_rank => {
                        // Neighbor's opposite face arrives tagged with its
                        // (d, 1-side).
                        let buf = rank.recv(nb, (d * 2 + (1 - side)) as u64);
                        rank.work(|| self.unpack_face(u, d, side, &buf));
                    }
                    _ => {
                        // Physical boundary, or periodic self-wrap when the
                        // rank owns the whole dimension.
                        rank.work(|| fill_face(u, d, side, self.cfg.bcs[d][side]));
                    }
                }
            }
        }
    }

    /// Recover primitives over the ghost-face slabs only (after halos
    /// arrive in overlap mode; the interior was recovered earlier).
    fn recover_ghost_faces(&mut self, u: &Field) -> Result<(), SolverError> {
        let geom = self.geom;
        for d in 0..3 {
            let ng = geom.ng_of(d);
            if ng == 0 {
                continue;
            }
            let n = geom.n[d];
            for side in 0..2 {
                let range = if side == 0 { 0..ng } else { ng + n..2 * ng + n };
                for l in range {
                    let mut err = None;
                    for_each_transverse(&geom, d, |t1, t2| {
                        if err.is_some() {
                            return;
                        }
                        let (i, j, k) = cell_of(d, l, t1, t2);
                        if let Err(e) = recover_cell(&self.cfg.scheme, u, &mut self.prim, i, j, k)
                        {
                            err = Some(e);
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Recover primitives over interior cells only.
    fn recover_interior(&mut self, u: &Field) -> Result<(), SolverError> {
        let geom = self.geom;
        let mut err = None;
        for (i, j, k) in geom.interior_iter() {
            if let Err(e) = recover_cell(&self.cfg.scheme, u, &mut self.prim, i, j, k) {
                err = Some(e);
                break;
            }
        }
        err.map_or(Ok(()), Err)
    }

    /// One residual evaluation with halo exchange, honoring the mode.
    fn eval_rhs(&mut self, rank: &mut Rank, u: &mut Field) -> Result<(), SolverError> {
        self.rhs.raw_mut().fill(0.0);
        match self.cfg.mode {
            ExchangeMode::BulkSynchronous => {
                self.post_sends(rank, u);
                self.recv_halos(rank, u);
                let scheme = self.cfg.scheme;
                let geom = self.geom;
                rank.work(|| -> Result<(), SolverError> {
                    recover_prims(&scheme, u, &mut self.prim)?;
                    let region = Region::interior(&geom);
                    accumulate_rhs_region(
                        &scheme,
                        &self.prim,
                        &mut self.rhs,
                        &region,
                        self.gang.as_ref(),
                    );
                    Ok(())
                })?;
            }
            ExchangeMode::Overlap => {
                self.post_sends(rank, u);
                let scheme = self.cfg.scheme;
                let depth = scheme.required_ghosts();
                let (deep, shells) = Region::split_deep_shell(&self.geom, depth);
                rank.work(|| -> Result<(), SolverError> {
                    self.recover_interior(u)?;
                    accumulate_rhs_region(
                        &scheme,
                        &self.prim,
                        &mut self.rhs,
                        &deep,
                        self.gang.as_ref(),
                    );
                    Ok(())
                })?;
                self.recv_halos(rank, u);
                rank.work(|| -> Result<(), SolverError> {
                    self.recover_ghost_faces(u)?;
                    for sh in &shells {
                        accumulate_rhs_region(
                            &scheme,
                            &self.prim,
                            &mut self.rhs,
                            sh,
                            self.gang.as_ref(),
                        );
                    }
                    Ok(())
                })?;
            }
        }
        Ok(())
    }

    /// One RK step of size `dt`.
    pub fn step(&mut self, rank: &mut Rank, u: &mut Field, dt: f64) -> Result<(), SolverError> {
        match self.cfg.rk {
            RkOrder::Rk1 => {
                self.eval_rhs(rank, u)?;
                rank.work(|| lincomb(u, 1.0, None, &self.rhs, dt));
            }
            RkOrder::Rk2 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(rank, u)?;
                rank.work(|| lincomb(u, 1.0, None, &self.rhs, dt));
                self.eval_rhs(rank, u)?;
                rank.work(|| lincomb(u, 0.5, Some((&self.u_stage, 0.5)), &self.rhs, 0.5 * dt));
            }
            RkOrder::Rk3 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(rank, u)?;
                rank.work(|| lincomb(u, 1.0, None, &self.rhs, dt));
                self.eval_rhs(rank, u)?;
                rank.work(|| {
                    lincomb(u, 0.25, Some((&self.u_stage, 0.75)), &self.rhs, 0.25 * dt)
                });
                self.eval_rhs(rank, u)?;
                rank.work(|| {
                    lincomb(
                        u,
                        2.0 / 3.0,
                        Some((&self.u_stage, 1.0 / 3.0)),
                        &self.rhs,
                        2.0 / 3.0 * dt,
                    )
                });
            }
        }
        Ok(())
    }

    /// Globally stable Δt: local CFL bound reduced with allreduce-min.
    pub fn stable_dt(&mut self, rank: &mut Rank, u: &mut Field) -> Result<f64, SolverError> {
        // Local primitives on the interior suffice for the CFL bound.
        let local = rank.work(|| -> Result<f64, SolverError> {
            self.recover_interior(u)?;
            Ok(max_dt(&self.cfg.scheme, &self.prim, self.cfg.cfl))
        })?;
        Ok(rank.allreduce_min(local))
    }

    /// Advance a fixed number of steps (each at the CFL-stable Δt);
    /// used by the scaling experiments, where a fixed step count keeps
    /// the work comparable across configurations.
    pub fn advance_steps(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        nsteps: usize,
    ) -> Result<DistStats, SolverError> {
        let start = Instant::now();
        let bytes0 = rank.bytes_sent();
        let vtime0 = rank.vtime();
        let mut stats = DistStats::default();
        let refresh = self.cfg.dt_refresh_interval.max(1);
        let mut dt_cached = 0.0;
        for step in 0..nsteps {
            let dt = if step % refresh == 0 {
                dt_cached = self.stable_dt(rank, u)?;
                dt_cached
            } else {
                // Safety margin while coasting on the cached value.
                0.9 * dt_cached
            };
            // Negated form deliberately catches NaN as a collapse.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(dt > 1e-14) {
                return Err(SolverError::TimestepCollapse { dt });
            }
            self.step(rank, u, dt)?;
            stats.steps += 1;
            stats.zone_updates += (self.geom.interior_len() * self.cfg.rk.stages()) as u64;
        }
        stats.elapsed = start.elapsed();
        stats.bytes_sent = rank.bytes_sent() - bytes0;
        stats.vtime = rank.vtime() - vtime0;
        Ok(stats)
    }

    /// Advance to `t_end`; returns final state statistics.
    pub fn advance_to(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        t0: f64,
        t_end: f64,
    ) -> Result<DistStats, SolverError> {
        let start = Instant::now();
        let bytes0 = rank.bytes_sent();
        let vtime0 = rank.vtime();
        let mut t = t0;
        let mut stats = DistStats::default();
        while t < t_end - 1e-14 {
            let mut dt = self.stable_dt(rank, u)?;
            // Negated form deliberately catches NaN as a collapse.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(dt > 1e-14) {
                return Err(SolverError::TimestepCollapse { dt });
            }
            if t + dt > t_end {
                dt = t_end - t;
            }
            self.step(rank, u, dt)?;
            t += dt;
            stats.steps += 1;
            stats.zone_updates += (self.geom.interior_len() * self.cfg.rk.stages()) as u64;
        }
        stats.elapsed = start.elapsed();
        stats.bytes_sent = rank.bytes_sent() - bytes0;
        stats.vtime = rank.vtime() - vtime0;
        Ok(stats)
    }
}

/// `u[int] = b*u0[int] + a*u[int] + c*r[int]`, with the summation order
/// chosen to match [`crate::integrate`]'s serial combiner exactly —
/// floating-point addition is not associative, and the distributed solver
/// guarantees bit-identity with the serial one.
fn lincomb(u: &mut Field, a: f64, u0: Option<(&Field, f64)>, r: &Field, c: f64) {
    let geom = *u.geom();
    for (i, j, k) in geom.interior_iter() {
        let v = match u0 {
            Some((f0, b)) => {
                f0.get_cons(i, j, k) * b + u.get_cons(i, j, k) * a + r.get_cons(i, j, k) * c
            }
            None => u.get_cons(i, j, k) * a + r.get_cons(i, j, k) * c,
        };
        u.set_cons(i, j, k, v);
    }
}

fn transverse_len(geom: &PatchGeom, d: usize) -> usize {
    let (a, b) = transverse_dims(d);
    geom.n[a] * geom.n[b]
}

fn transverse_dims(d: usize) -> (usize, usize) {
    match d {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Iterate the *interior* transverse coordinates of dimension `d`,
/// yielding ghost-inclusive `(t1, t2)` with `t1` the lower transverse dim.
fn for_each_transverse(geom: &PatchGeom, d: usize, mut f: impl FnMut(usize, usize)) {
    let (a, b) = transverse_dims(d);
    let (ga, gb) = (geom.ng_of(a), geom.ng_of(b));
    for t2 in 0..geom.n[b] {
        for t1 in 0..geom.n[a] {
            f(t1 + ga, t2 + gb);
        }
    }
}

fn cell_of(d: usize, l: usize, t1: usize, t2: usize) -> (usize, usize, usize) {
    match d {
        0 => (l, t1, t2),
        1 => (t1, l, t2),
        _ => (t1, t2, l),
    }
}

/// Gather the interior of every rank's block onto rank 0 as a global,
/// ghost-free field (for validation and output). Other ranks get `None`.
pub fn gather_global(
    rank: &mut Rank,
    cfg: &DistConfig,
    local: &Field,
) -> Option<Field> {
    const GATHER_TAG: u64 = 1000;
    let geom = cfg.local_geom(rank.rank());
    // Flatten the interior, component-major.
    let mut buf = Vec::with_capacity(NCOMP * geom.interior_len());
    for c in 0..NCOMP {
        for (i, j, k) in geom.interior_iter() {
            buf.push(local.at(c, i, j, k));
        }
    }
    if rank.rank() != 0 {
        rank.send(0, GATHER_TAG, &buf);
        return None;
    }
    let (lo, hi) = cfg.domain;
    let global_geom = PatchGeom {
        n: cfg.global_n,
        ng: 0,
        origin: lo,
        dx: [
            (hi[0] - lo[0]) / cfg.global_n[0] as f64,
            (hi[1] - lo[1]) / cfg.global_n[1] as f64,
            (hi[2] - lo[2]) / cfg.global_n[2] as f64,
        ],
    };
    let mut global = Field::cons(global_geom);
    let mut place = |r: usize, buf: &[f64]| {
        let (off, size) = cfg.decomp.local_span(cfg.global_n, r);
        let mut it = buf.iter();
        for c in 0..NCOMP {
            for k in 0..size[2] {
                for j in 0..size[1] {
                    for i in 0..size[0] {
                        global.set(c, off[0] + i, off[1] + j, off[2] + k, *it.next().unwrap());
                    }
                }
            }
        }
    };
    place(0, &buf);
    for r in 1..rank.size() {
        let rbuf = rank.recv(r, GATHER_TAG);
        place(r, &rbuf);
    }
    Some(global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::PatchSolver;
    use crate::problems::Problem;
    use rhrsc_comm::{run, NetworkModel};
    use rhrsc_grid::{bc, Bc};

    fn sod_cfg(nranks: usize, mode: ExchangeMode) -> DistConfig {
        DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk3,
            global_n: [128, 1, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::line(nranks, false),
            bcs: bc::uniform(Bc::Outflow),
            cfl: 0.4,
            mode,
            gang_threads: 0,
            dt_refresh_interval: 1,
        }
    }

    /// Serial reference: the same problem on one patch with PatchSolver.
    fn serial_reference(cfg: &DistConfig, ic: &dyn Fn([f64; 3]) -> Prim, t_end: f64) -> Field {
        let geom = PatchGeom {
            n: cfg.global_n,
            ng: cfg.scheme.required_ghosts(),
            origin: cfg.domain.0,
            dx: cfg.local_geom(0).dx,
        };
        let mut u = init_cons(geom, &cfg.scheme.eos, ic);
        let mut solver = PatchSolver::new(cfg.scheme, cfg.bcs, cfg.rk, geom);
        solver.advance_to(&mut u, 0.0, t_end, cfg.cfl, None).unwrap();
        u
    }

    fn distributed_global(
        cfg: &DistConfig,
        ic: impl Fn([f64; 3]) -> Prim + Send + Sync + Copy,
        t_end: f64,
    ) -> Field {
        let outs = run(cfg.decomp.nranks(), NetworkModel::ideal(), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, t_end).unwrap();
            gather_global(rank, cfg, &u)
        });
        outs.into_iter().next().unwrap().unwrap()
    }

    fn interior_of(global_like: &Field, reference: &Field) -> f64 {
        // Max abs difference between a gathered (ghost-free) field and the
        // interior of a ghosted reference.
        let g = reference.geom();
        let mut m = 0.0f64;
        for c in 0..NCOMP {
            for k in 0..g.n[2] {
                for j in 0..g.n[1] {
                    for i in 0..g.n[0] {
                        let a = global_like.at(c, i, j, k);
                        let b = reference.at(
                            c,
                            i + g.ng_of(0),
                            j + g.ng_of(1),
                            k + g.ng_of(2),
                        );
                        m = m.max((a - b).abs());
                    }
                }
            }
        }
        m
    }

    #[test]
    fn distributed_sod_matches_serial_bitwise_bulk_sync() {
        let cfg = sod_cfg(4, ExchangeMode::BulkSynchronous);
        let prob = Problem::sod();
        let ic = |x: [f64; 3]| if x[0] < 0.5 { Prim::new_1d(1.0, 0.0, 1.0) } else { Prim::new_1d(0.125, 0.0, 0.1) };
        let _ = prob;
        let reference = serial_reference(&cfg, &ic, 0.2);
        let global = distributed_global(&cfg, ic, 0.2);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn distributed_sod_matches_serial_bitwise_overlap() {
        let cfg = sod_cfg(3, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| if x[0] < 0.5 { Prim::new_1d(1.0, 0.0, 1.0) } else { Prim::new_1d(0.125, 0.0, 0.1) };
        let reference = serial_reference(&cfg, &ic, 0.2);
        let global = distributed_global(&cfg, ic, 0.2);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn periodic_2d_distributed_matches_serial() {
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [32, 32, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp {
                dims: [2, 2, 1],
                periodic: [true, true, false],
            },
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::Overlap,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin()
                * (2.0 * std::f64::consts::PI * x[1]).cos(),
            vel: [0.4, -0.3, 0.0],
            p: 1.0,
        };
        let reference = serial_reference(&cfg, &ic, 0.1);
        let global = distributed_global(&cfg, ic, 0.1);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn overlap_with_latency_still_correct() {
        let cfg = sod_cfg(4, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| if x[0] < 0.5 { Prim::new_1d(1.0, 0.0, 1.0) } else { Prim::new_1d(0.125, 0.0, 0.1) };
        let reference = serial_reference(&cfg, &ic, 0.05);
        let outs = run(4, NetworkModel::with_latency(Duration::from_micros(200)), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
            gather_global(rank, &cfg, &u)
        });
        let global = outs.into_iter().next().unwrap().unwrap();
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn gang_threads_do_not_change_results() {
        let mut cfg = sod_cfg(2, ExchangeMode::BulkSynchronous);
        cfg.gang_threads = 3;
        let ic = |x: [f64; 3]| if x[0] < 0.5 { Prim::new_1d(1.0, 0.0, 1.0) } else { Prim::new_1d(0.125, 0.0, 0.1) };
        let reference = serial_reference(&cfg, &ic, 0.1);
        let global = distributed_global(&cfg, ic, 0.1);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn virtual_time_mode_identical_results_and_decreasing_makespan() {
        // Virtual-time universes must not change the numbers, and the
        // simulated makespan must shrink as ranks are added (strong
        // scaling shape, even on a single-core host).
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
            vel: [0.4, 0.0, 0.0],
            p: 1.0,
        };
        let make_cfg = |p: usize| DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [256, 1, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::line(p, true),
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let model = NetworkModel::virtual_cluster(Duration::from_micros(1), 10e9);
        let mut makespans = Vec::new();
        let mut fields = Vec::new();
        for p in [1usize, 4] {
            let cfg = make_cfg(p);
            let outs = run(p, model, |rank| {
                let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                let st = solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
                (st, gather_global(rank, &cfg, &u))
            });
            let makespan = outs.iter().map(|(st, _)| st.vtime).fold(0.0, f64::max);
            makespans.push(makespan);
            fields.push(outs.into_iter().next().unwrap().1.unwrap());
        }
        assert_eq!(
            fields[0].raw(),
            fields[1].raw(),
            "virtual time must not change results"
        );
        assert!(
            makespans[1] < 0.7 * makespans[0],
            "4-rank virtual makespan {} vs 1-rank {}",
            makespans[1],
            makespans[0]
        );
    }

    #[test]
    fn stats_populated() {
        let cfg = sod_cfg(2, ExchangeMode::BulkSynchronous);
        let ic = |x: [f64; 3]| if x[0] < 0.5 { Prim::new_1d(1.0, 0.0, 1.0) } else { Prim::new_1d(0.125, 0.0, 0.1) };
        let outs = run(2, NetworkModel::ideal(), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap()
        });
        for st in &outs {
            assert!(st.steps > 0);
            assert!(st.bytes_sent > 0, "halos must move bytes");
            assert!(st.zone_updates > 0);
        }
    }
}
