//! Distributed heterogeneous driver.
//!
//! Each rank owns one block of a Cartesian decomposition of the global
//! grid. A step comprises a Δt allreduce, per-stage halo exchanges and
//! residual evaluation, in one of two modes:
//!
//! * **bulk-synchronous** — exchange every halo, then compute the full
//!   residual (the classic MPI pattern),
//! * **futurized overlap** — post all halo sends eagerly, compute the
//!   *deep* residual region (whose stencils never read ghosts) while the
//!   messages are in flight, then receive halos and finish the boundary
//!   shell. Against the latency-modeling network of [`rhrsc_comm`] this
//!   genuinely hides communication time (experiment F7).
//!
//! Corner ghost zones are never exchanged: the dimension-by-dimension
//! sweeps read only face ghosts, which keeps both modes to `2·ndim`
//! messages per stage and makes them bit-identical to the serial solver.

use crate::health::{HealthConfig, HealthMonitor};
use crate::integrate::RkOrder;
use crate::scheme::{
    dt_from_rates, init_cons, max_dt, recover_cell_metered, recover_cells_resilient_metered,
    recover_prims_metered, recover_prims_resilient_metered, RecoveryPolicy, RecoveryStats, Scheme,
    SolverError,
};
use crate::step::{accumulate_rhs_region_scan, Region};
use rhrsc_comm::{
    CommError, Rank, BUDDY_CKP_TAG, BUDDY_RESTORE_TAG, BUDDY_SHRINK_TAG, SUSPECT_FLAG,
    TELEMETRY_TAG,
};
use rhrsc_grid::{fill_face, BcSet, CartDecomp, Field, PatchGeom};
use rhrsc_io::checkpoint::{
    decode_global_trusted, encode_global, load_checkpoint, BlockRecord, Checkpoint,
    CheckpointSlots, GlobalCheckpoint,
};
use rhrsc_io::snapshot::{MemorySnapshot, StateChecksum};
use rhrsc_runtime::fault::SnapshotTarget;
use rhrsc_runtime::metrics::{Histogram, Registry};
use rhrsc_runtime::telemetry::{SampleInputs, SeriesSample, Telemetry, TelemetrySampler};
use rhrsc_runtime::WorkStealingPool;
use rhrsc_srhd::{Prim, NCOMP};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Halo-exchange strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeMode {
    /// Exchange all halos, then compute.
    BulkSynchronous,
    /// Post sends, compute the deep interior, then receive and finish.
    Overlap,
}

impl ExchangeMode {
    /// Display name for benchmark tables.
    pub fn name(&self) -> &'static str {
        match self {
            ExchangeMode::BulkSynchronous => "bulk-sync",
            ExchangeMode::Overlap => "overlap",
        }
    }
}

/// Configuration of a distributed run.
#[derive(Clone)]
pub struct DistConfig {
    /// Numerical scheme.
    pub scheme: Scheme,
    /// Runge–Kutta order.
    pub rk: RkOrder,
    /// Global grid extent.
    pub global_n: [usize; 3],
    /// Physical domain bounds.
    pub domain: ([f64; 3], [f64; 3]),
    /// Process grid.
    pub decomp: CartDecomp,
    /// Physical boundary conditions (periodic faces must match
    /// `decomp.periodic`).
    pub bcs: BcSet,
    /// CFL number.
    pub cfl: f64,
    /// Halo-exchange strategy.
    pub mode: ExchangeMode,
    /// Within-rank gang threads (0 = serial).
    pub gang_threads: usize,
    /// Recompute the global Δt every this many steps (≥ 1). Production
    /// codes amortize the Δt allreduce over several steps with a safety
    /// factor; between refreshes the cached Δt is scaled by 0.9.
    pub dt_refresh_interval: usize,
}

impl DistConfig {
    /// Local patch geometry for `rank`.
    pub fn local_geom(&self, rank: usize) -> PatchGeom {
        let (off, size) = self.decomp.local_span(self.global_n, rank);
        let (lo, hi) = self.domain;
        let dx = [
            (hi[0] - lo[0]) / self.global_n[0] as f64,
            (hi[1] - lo[1]) / self.global_n[1] as f64,
            (hi[2] - lo[2]) / self.global_n[2] as f64,
        ];
        PatchGeom {
            n: size,
            ng: self.scheme.required_ghosts(),
            origin: [
                lo[0] + off[0] as f64 * dx[0],
                lo[1] + off[1] as f64 * dx[1],
                lo[2] + off[2] as f64 * dx[2],
            ],
            dx,
        }
    }
}

/// Per-rank statistics of a distributed run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistStats {
    /// Time steps taken.
    pub steps: usize,
    /// Wall-clock time of the advance loop.
    pub elapsed: Duration,
    /// Payload bytes sent by this rank.
    pub bytes_sent: u64,
    /// Interior zone-updates (cells × stages).
    pub zone_updates: u64,
    /// Virtual time elapsed on this rank (virtual-time universes only;
    /// the run's simulated makespan is the max over ranks).
    pub vtime: f64,
}

/// Knobs of the resilient advance loop
/// ([`BlockSolver::advance_to_with_restart`]).
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// How the in-step primitive recovery responds to failures. The
    /// resilient driver wants [`RecoveryPolicy::Cascade`] (the default
    /// here): under it a rank's compute phase cannot fail, which keeps
    /// the collective communication pattern intact across ranks even
    /// while a step is going wrong.
    pub recovery: RecoveryPolicy,
    /// Retries of a failed step before escalating to a checkpoint
    /// restore. Each retry rolls the state back and halves the effective
    /// CFL (exponential backoff).
    pub max_step_retries: usize,
    /// Checkpoint restores before giving up entirely.
    pub max_restarts: usize,
    /// Save a rotating checkpoint every this many committed steps
    /// (0 disables periodic checkpoints; an initial one is still written
    /// when `checkpoint_dir` is set, so a restore target always exists).
    pub checkpoint_interval: usize,
    /// Directory for per-rank checkpoint slots (`<dir>/rank<r>/`).
    /// `None` disables checkpointing — and with it the restart tier.
    pub checkpoint_dir: Option<PathBuf>,
    /// Capture an in-memory (diskless) snapshot every this many committed
    /// steps: the L1 tier each rank keeps of its own state, plus the L2
    /// buddy replica it ships to its guardian. `0` disables the memory
    /// tiers entirely (pre-hierarchy behaviour). Unlike the disk tier the
    /// memory tiers need no `checkpoint_dir`. Env: `RHRSC_CKP_LOCAL_INTERVAL`.
    pub local_interval: usize,
    /// Buddy pairing stride: block `b`'s replica is guarded by block
    /// `(b + offset) mod nblocks`. An offset of `0` (or a single-block
    /// run) disables the replica exchange, leaving only the L1 local
    /// tier. Env: `RHRSC_BUDDY_OFFSET`.
    pub buddy_offset: usize,
    /// Scrub the *frozen* snapshot buffers (re-hash local + replica
    /// against their capture-time stamps) every this many committed
    /// steps; `0` leaves rot to be caught at restore time. The *live*
    /// state is ABFT-verified every step regardless — that check is what
    /// keeps a silent flip out of every checkpoint write. Env:
    /// `RHRSC_SDC_SCRUB_INTERVAL`.
    pub scrub_interval: usize,
}

/// Read a `usize` knob from the environment, with a default.
pub(crate) fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            recovery: RecoveryPolicy::Cascade,
            max_step_retries: 3,
            max_restarts: 2,
            checkpoint_interval: env_usize("RHRSC_CKP_DISK_INTERVAL", 10),
            checkpoint_dir: None,
            local_interval: env_usize("RHRSC_CKP_LOCAL_INTERVAL", 5),
            buddy_offset: env_usize("RHRSC_BUDDY_OFFSET", 1),
            scrub_interval: env_usize("RHRSC_SDC_SCRUB_INTERVAL", 5),
        }
    }
}

/// Counters of the resilient advance loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Committed steps that needed at least one retry.
    pub retried_steps: u64,
    /// Total step retries (a step may be retried more than once).
    pub retries: u64,
    /// Checkpoint restores.
    pub restarts: u64,
    /// Checkpoints written (initial + periodic).
    pub checkpoints_saved: u64,
    /// Global (rank-count-independent) checkpoint writes this rank
    /// participated in.
    pub global_checkpoints_saved: u64,
    /// Shrinking recoveries survived (confirmed rank deaths followed by
    /// re-decomposition and a global-checkpoint restore).
    pub shrinks: u64,
    /// Ranks confirmed dead across all shrinks.
    pub ranks_lost: u64,
    /// Suspicion rounds that turned out to be false alarms (every
    /// suspect defended itself in consensus); the step is retried.
    pub false_suspicions: u64,
    /// Stall-injection events applied to this rank (straggler mode).
    pub stalls: u64,
    /// In-memory (L1) snapshots captured by this rank.
    pub local_snapshots: u64,
    /// Buddy replica exchanges completed (one send + one receive each).
    pub buddy_exchanges: u64,
    /// Restores served from this rank's own L1 snapshot.
    pub local_restores: u64,
    /// Restores served from a buddy replica (shipped back by the
    /// guardian because this rank's own tiers were dead or rotted).
    pub buddy_restores: u64,
    /// Restores that had to fall all the way through to the disk tier.
    pub disk_restores: u64,
    /// Shrinking recoveries whose survivor state was assembled from
    /// buddy replicas instead of a disk checkpoint.
    pub buddy_shrinks: u64,
    /// Silent-data-corruption detections (live-state ABFT stamp
    /// mismatches) on this rank.
    pub sdc_detected: u64,
    /// Scrub passes over the frozen snapshot buffers.
    pub scrubs: u64,
    /// Frozen snapshot buffers found rotted by a scrub (and dropped).
    pub snapshots_rotted: u64,
    /// Cells repaired by the primitive-recovery cascade, by tier.
    pub recovery: RecoveryStats,
}

/// One rank's solver state.
///
/// `my_rank` is the solver's *block rank*: its position in the current
/// decomposition. Before any shrinking recovery it equals the
/// communicator rank; after one, `comm_ranks` translates block ranks to
/// the surviving communicator ranks.
pub struct BlockSolver {
    cfg: DistConfig,
    geom: PatchGeom,
    my_rank: usize,
    /// Block-rank → communicator-rank translation (identity until a
    /// shrinking recovery remaps the survivors).
    comm_ranks: Vec<usize>,
    prim: Field,
    rhs: Field,
    u_stage: Field,
    gang: Option<WorkStealingPool>,
    recovery: RecoveryPolicy,
    rec_stats: RecoveryStats,
    metrics: Option<Arc<Registry>>,
    /// Cached `c2p.newton_iters` histogram (avoids a registry lookup per
    /// recovery sweep).
    c2p_hist: Option<Arc<Histogram>>,
    /// Optional physics-health monitor (strictly rank-local reads; never
    /// communicates, never changes the numbers).
    health: Option<HealthMonitor>,
    /// Per-cell CFL rates from the fused wave-speed scan of the most
    /// recent stage-0 residual sweep (`geom.len()` slots).
    rate: Vec<f64>,
    /// Cached global Δt with its guarded refresh cadence.
    dt_cache: DtCache,
    /// Optional cadenced telemetry: shared hub + per-rank sampler state.
    telemetry: Option<TelemetryState>,
}

/// Per-rank telemetry state: the shared hub and this rank's delta
/// sampler (previous registry snapshot + clock of the last sample).
struct TelemetryState {
    hub: Arc<Telemetry>,
    sampler: TelemetrySampler,
    /// Wall/virtual clock at the previous sample, for per-window
    /// `elapsed_s`.
    last_clock: Option<(Instant, f64)>,
    /// Wall-clock epoch for trace-correlated timestamps when no flight
    /// recorder is attached.
    epoch: Instant,
}

/// Cached global Δt state for the cadenced allreduce.
///
/// The refresh `window` adapts AIMD-style within
/// `1..=cfg.dt_refresh_interval`: any CFL violation reported at a
/// refresh collapses it to 1 (refresh every step), and each clean
/// refresh doubles it back toward the configured cadence. All fields
/// evolve in lockstep across ranks — refreshes are collective, coasting
/// uses the shared cached value, and invalidation only happens at
/// collectively-agreed points (retry, restore, shrink) — so the
/// refresh/coast control flow can never diverge between ranks.
#[derive(Debug, Clone, Copy)]
struct DtCache {
    /// Last allreduced global Δt (unscaled; coasting applies the 0.9
    /// safety margin on top).
    dt: f64,
    /// Steps taken since the last refresh (the refresh step counts as 1).
    age: usize,
    /// Current refresh window, in steps.
    window: usize,
    /// False when the cached Δt must not be trusted (initially, and
    /// after a rollback, checkpoint restore, or shrink): the next step
    /// refreshes unconditionally.
    valid: bool,
    /// Local coast-past-the-bound violations since the last refresh;
    /// piggybacked (negated) on the next Δt allreduce so every rank
    /// learns about them.
    violations: u64,
}

impl DtCache {
    fn new() -> Self {
        DtCache {
            dt: 0.0,
            age: 0,
            window: 1,
            valid: false,
            violations: 0,
        }
    }

    /// Drop the cached value; the next step must refresh. Call only at
    /// collectively-agreed points so ranks stay in lockstep.
    fn invalidate(&mut self) {
        self.valid = false;
        self.window = 1;
    }
}

/// Agreement value signaling "this rank detected silent data corruption
/// in its live state". Sits between the ordinary step-failure flag (1.0,
/// retry tier) and [`SUSPECT_FLAG`] (2.0, consensus tier): an SDC hit
/// cannot be retried — the rollback backup is corrupt too — so the agreed
/// response is a collective restore from the cheapest valid snapshot
/// tier, but nobody is suspected dead.
pub const SDC_FLAG: f64 = 1.5;

/// The in-memory checkpoint tiers one rank holds: its own L1 snapshot
/// and (optionally) the L2 replica it guards for its *ward*. Pairing is
/// a fixed ring: block `b` ships its snapshot to guardian
/// `(b + offset) % n` and guards the ward `(b + n - offset) % n`, so one
/// dead or rotted rank never takes both copies of any block with it
/// (for `0 < offset < n`).
struct CkpTiers {
    /// Buddy pairing stride (already reduced mod the block count).
    offset: usize,
    /// This rank's own snapshot (a single-block [`GlobalCheckpoint`]).
    local: Option<MemorySnapshot>,
    /// `(ward_block, replica)` — the partner snapshot this rank guards.
    replica: Option<(usize, MemorySnapshot)>,
}

impl CkpTiers {
    fn new(offset: usize, nblocks: usize) -> Self {
        CkpTiers {
            offset: if nblocks > 1 { offset % nblocks } else { 0 },
            local: None,
            replica: None,
        }
    }
}

/// Wire format of a snapshot shipped between buddies (data-class tags,
/// so the payload rides the reliable path; integrity is the snapshot's
/// own end-to-end FNV stamp): `[len_bytes, fnv_hi32, fnv_lo32, step,
/// time, word0, word1, ...]` with the byte buffer packed little-endian
/// into f64 bit patterns, 8 bytes per word.
fn pack_snapshot_msg(snap: &MemorySnapshot) -> Vec<f64> {
    let bytes = snap.bytes();
    let nwords = bytes.len().div_ceil(8);
    let mut msg = Vec::with_capacity(5 + nwords);
    msg.push(bytes.len() as f64);
    msg.push((snap.fnv() >> 32) as f64);
    msg.push((snap.fnv() & 0xffff_ffff) as f64);
    msg.push(snap.step as f64);
    msg.push(snap.time);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        msg.push(f64::from_bits(u64::from_le_bytes(w)));
    }
    msg
}

/// Inverse of [`pack_snapshot_msg`]. The rebuilt snapshot carries the
/// *sender's* stamp, so any damage in flight or in the replica buffer is
/// caught by [`MemorySnapshot::verify`] at scrub or restore time.
fn unpack_snapshot_msg(msg: &[f64]) -> Result<MemorySnapshot, SolverError> {
    let bad = |why: &str| SolverError::Checkpoint {
        msg: format!("malformed buddy snapshot message: {why}"),
    };
    if msg.len() < 5 {
        return Err(bad("truncated header"));
    }
    let len = msg[0] as usize;
    let fnv = ((msg[1] as u64) << 32) | (msg[2] as u64);
    let step = msg[3] as u64;
    let time = msg[4];
    if msg.len() != 5 + len.div_ceil(8) {
        return Err(bad("payload length mismatch"));
    }
    let mut bytes = Vec::with_capacity(len);
    for w in &msg[5..] {
        bytes.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    bytes.truncate(len);
    Ok(MemorySnapshot::from_parts(step, time, bytes, fnv))
}

/// Start marker of an instrumented phase: wall clock plus the rank's
/// virtual clock. `None` when neither a registry nor a tracer is
/// attached, so the disabled path costs one `Option` check per phase.
type PhaseStart = Option<(Instant, f64)>;

impl BlockSolver {
    /// Build the solver for `rank`'s block and initialize the conserved
    /// state from the pointwise IC.
    pub fn new(cfg: DistConfig, rank: usize, ic: &dyn Fn([f64; 3]) -> Prim) -> (Self, Field) {
        let geom = cfg.local_geom(rank);
        let u = init_cons(geom, &cfg.scheme.eos, ic);
        let gang = (cfg.gang_threads > 0).then(|| WorkStealingPool::new(cfg.gang_threads));
        (
            BlockSolver {
                comm_ranks: (0..cfg.decomp.nranks()).collect(),
                cfg,
                geom,
                my_rank: rank,
                prim: Field::new(geom, 5),
                rhs: Field::cons(geom),
                u_stage: Field::cons(geom),
                gang,
                recovery: RecoveryPolicy::default(),
                rec_stats: RecoveryStats::default(),
                metrics: None,
                c2p_hist: None,
                health: None,
                rate: vec![0.0; geom.len()],
                dt_cache: DtCache::new(),
                telemetry: None,
            },
            u,
        )
    }

    /// Attach a metrics registry: subsequent steps record per-phase time
    /// histograms (`phase.*`, in nanoseconds), nested sub-phases
    /// (`sub.*`), con2prim iteration counts (`c2p.newton_iters`) and
    /// cascade-tier counters (`c2p.cascade.*`). Phase durations are
    /// virtual-clock deltas in virtual-time universes (where wall clocks
    /// are distorted by CPU-token serialization) and wall-clock time
    /// otherwise. Instrumentation never changes the numbers: the counted
    /// con2prim produces bit-identical iterates.
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.c2p_hist = Some(metrics.histogram("c2p.newton_iters"));
        self.metrics = Some(metrics);
    }

    /// Attach a physics-health monitor: the resilient driver (and the
    /// plain `advance_*` loops) will take periodic rank-local health
    /// observations on the monitor's cadence, emit them as trace
    /// counters, and bump `health.*` metrics counters on watchdog
    /// alarms. Observation is read-only and communication-free, so the
    /// computed states stay bit-identical and the comm pattern (liveness
    /// deadlines, agreement rounds) is untouched.
    pub fn set_health(&mut self, cfg: HealthConfig) {
        self.health = Some(HealthMonitor::new(cfg));
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// Detach and return the health monitor (e.g. to merge per-rank
    /// summaries at bench time).
    pub fn take_health(&mut self) -> Option<HealthMonitor> {
        self.health.take()
    }

    /// Attach the shared telemetry hub: on the hub's step cadence the
    /// advance loops snapshot the metrics registry into a delta sample
    /// and reduce it to block rank 0 over [`TELEMETRY_TAG`], which
    /// pushes the merged global sample into the hub (rings, watchdogs,
    /// sinks). Requires [`set_metrics`](Self::set_metrics) — the sampler
    /// reads the registry; without one the hook is inert. Sampling is
    /// read-only over the solver state and the point-to-point reduction
    /// uses a dedicated reliable tag, so the computed fields are
    /// bit-identical with telemetry armed or detached.
    pub fn set_telemetry(&mut self, hub: Arc<Telemetry>) {
        let interval = hub.cfg().interval;
        self.telemetry = Some(TelemetryState {
            hub,
            sampler: TelemetrySampler::new(interval),
            last_clock: None,
            epoch: Instant::now(),
        });
    }

    /// The attached telemetry hub, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref().map(|t| &t.hub)
    }

    fn pstart(&self, rank: &Rank) -> PhaseStart {
        if self.metrics.is_some() || rank.has_trace() {
            Some((Instant::now(), rank.vtime()))
        } else {
            None
        }
    }

    fn pend(&self, name: &'static str, rank: &Rank, s: PhaseStart) {
        if let Some((t0, v0)) = s {
            let ns = if rank.is_virtual() {
                ((rank.vtime() - v0).max(0.0) * 1e9) as u64
            } else {
                t0.elapsed().as_nanos() as u64
            };
            if let Some(m) = &self.metrics {
                m.histogram(name).record(ns);
            }
            rank.trace_span(name, ns);
        }
    }

    /// Take a health observation if a monitor is attached and `step_no`
    /// is on its cadence. Emits the record as trace counters and bumps
    /// `health.*` metrics counters.
    fn health_observe(&mut self, rank: &Rank, u: &Field, t: f64, step_no: u64) {
        let due = match &self.health {
            Some(mon) => mon.due(step_no),
            None => return,
        };
        if !due {
            return;
        }
        let rho_floor = self.cfg.scheme.c2p.rho_floor;
        let rec = self.rec_stats;
        let mon = self.health.as_mut().expect("health monitor checked above");
        let (record, drift_alarm, floor_alarm) =
            mon.observe(step_no, t, u, &self.prim, rho_floor, rec);
        rank.trace_counter("health.drift", record.drift);
        rank.trace_counter("health.atmo_frac", record.atmo_frac);
        rank.trace_counter("health.limiter_frac", record.limiter_frac);
        rank.trace_counter("health.max_lorentz", record.max_w);
        if drift_alarm {
            rank.trace_instant("health.alarm.drift", record.drift);
        }
        if floor_alarm {
            rank.trace_instant("health.alarm.floor", record.atmo_frac);
        }
        if let Some(m) = &self.metrics {
            m.counter("health.records").inc();
            if drift_alarm {
                m.counter("health.drift_alarms").inc();
            }
            if floor_alarm {
                m.counter("health.floor_alarms").inc();
            }
        }
    }

    /// Take a telemetry sample if the hub's cadence is due: snapshot the
    /// registry into a delta sample and reduce it to block rank 0 over
    /// the dedicated [`TELEMETRY_TAG`]. Rank 0 merges the per-rank
    /// contributions in block order (deterministic), pushes the global
    /// sample into the hub, and — on a watchdog trip — dumps the flight
    /// recorder pre-emptively, before any escalation overwrites the
    /// evidence. A peer whose sample never arrives (it died this step)
    /// is simply skipped: telemetry observes faults, it never escalates
    /// them.
    fn telemetry_observe(&mut self, rank: &mut Rank, t: f64, step_no: u64, dt: f64) {
        let due = match &self.telemetry {
            Some(ts) => ts.sampler.due(step_no),
            None => return,
        };
        if !due {
            return;
        }
        let Some(metrics) = self.metrics.clone() else {
            return;
        };
        let (drift, atmo_frac, max_lorentz) = self
            .health
            .as_ref()
            .and_then(|h| h.records().last())
            .map(|r| (r.drift, r.atmo_frac, r.max_w))
            .unwrap_or((0.0, 0.0, 0.0));
        let nblocks = self.cfg.decomp.nranks();
        let comms: Vec<usize> = (0..nblocks).map(|b| self.comm_of(b)).collect();
        let zones_per_step = (self.geom.interior_len() * self.cfg.rk.stages()) as f64;
        let my_block = self.my_rank;
        let ts = self.telemetry.as_mut().expect("telemetry checked above");
        // Timestamps share the flight recorder's clock so JSONL samples
        // line up against the Perfetto spans of the same run.
        let t_ns = match rank.tracer() {
            Some(tracer) => tracer.stamp(rank.is_virtual().then(|| rank.vtime())),
            None if rank.is_virtual() => (rank.vtime() * 1e9) as u64,
            None => ts.epoch.elapsed().as_nanos() as u64,
        };
        let now = Instant::now();
        let vnow = rank.vtime();
        let elapsed_s = match ts.last_clock {
            Some((_, v0)) if rank.is_virtual() => (vnow - v0).max(0.0),
            Some((w0, _)) => now.duration_since(w0).as_secs_f64(),
            None => 0.0,
        };
        ts.last_clock = Some((now, vnow));
        let steps = ts.sampler.steps_since(step_no) as f64;
        let inputs = SampleInputs {
            steps,
            dt,
            zone_updates: zones_per_step * steps,
            elapsed_s,
            drift,
            atmo_frac,
            max_lorentz,
            pool_queue_depth: rhrsc_runtime::pool::global_queue_depth() as f64,
            ..SampleInputs::default()
        };
        let local = ts
            .sampler
            .sample(step_no, t, t_ns, metrics.snapshot(), &inputs);
        if my_block != 0 {
            rank.send(comms[0], TELEMETRY_TAG, &local.pack());
            return;
        }
        let mut merged = local;
        for &peer in &comms[1..] {
            if let Ok(buf) = rank.recv_deadline(peer, TELEMETRY_TAG) {
                if let Some(s) = SeriesSample::unpack(&buf) {
                    merged.merge(&s);
                }
            }
        }
        let verdict = ts.hub.push_sample(merged, rank.rank() as u32);
        if verdict.trips > 0 {
            metrics
                .counter("telemetry.watchdog.trips")
                .add(verdict.trips);
            rank.trace_instant("telemetry.watchdog", verdict.trips as f64);
            if verdict.dump {
                if let Some(tracer) = rank.tracer() {
                    tracer.dump_on_fault(rank.rank() as u32, "telemetry-watchdog", t_ns);
                }
            }
        }
    }

    /// Credit a cascade sweep's repairs to the per-tier counters.
    fn note_cascade(&self, stats: &RecoveryStats) {
        if stats.total() == 0 {
            return;
        }
        if let Some(m) = &self.metrics {
            m.counter("c2p.cascade.relaxed_tol").add(stats.relaxed_tol);
            m.counter("c2p.cascade.neighbor_avg")
                .add(stats.neighbor_avg);
            m.counter("c2p.cascade.atmosphere").add(stats.atmosphere);
        }
    }

    /// The local patch geometry.
    pub fn geom(&self) -> &PatchGeom {
        &self.geom
    }

    /// The current configuration (the decomposition changes after a
    /// shrinking recovery).
    pub fn cfg(&self) -> &DistConfig {
        &self.cfg
    }

    /// This solver's block rank in the current decomposition.
    pub fn block_rank(&self) -> usize {
        self.my_rank
    }

    /// Communicator rank of block rank `block`.
    fn comm_of(&self, block: usize) -> usize {
        self.comm_ranks[block]
    }

    /// Set how primitive-recovery failures are handled (default:
    /// [`RecoveryPolicy::Strict`], the seed behavior).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.recovery = policy;
    }

    /// Cascade-tier counters accumulated so far on this rank.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.rec_stats
    }

    /// Pack the `ng` interior layers adjacent to face (`d`, `side`)
    /// (transverse interior only — corners are never exchanged).
    fn pack_face(&self, u: &Field, d: usize, side: usize) -> Vec<f64> {
        let geom = &self.geom;
        let ng = geom.ng_of(d);
        let n = geom.n[d];
        let range = if side == 0 { ng..2 * ng } else { n..n + ng };
        let mut buf = Vec::with_capacity(NCOMP * ng * transverse_len(geom, d));
        for c in 0..NCOMP {
            for l in range.clone() {
                for_each_transverse(geom, d, |t1, t2| {
                    let (i, j, k) = cell_of(d, l, t1, t2);
                    buf.push(u.at(c, i, j, k));
                });
            }
        }
        buf
    }

    /// Unpack a received halo into the ghost layers of face (`d`, `side`).
    /// A wrong-length buffer (truncated in flight) leaves the ghosts
    /// untouched and reports [`SolverError::HaloMismatch`].
    fn unpack_face(
        &self,
        u: &mut Field,
        d: usize,
        side: usize,
        buf: &[f64],
    ) -> Result<(), SolverError> {
        let geom = &self.geom;
        let ng = geom.ng_of(d);
        let n = geom.n[d];
        let expected = NCOMP * ng * transverse_len(geom, d);
        if buf.len() != expected {
            return Err(SolverError::HaloMismatch {
                expected,
                got: buf.len(),
            });
        }
        let range = if side == 0 { 0..ng } else { ng + n..2 * ng + n };
        let mut idx = 0;
        for c in 0..NCOMP {
            for l in range.clone() {
                for_each_transverse(geom, d, |t1, t2| {
                    let (i, j, k) = cell_of(d, l, t1, t2);
                    u.set(c, i, j, k, buf[idx]);
                    idx += 1;
                });
            }
        }
        debug_assert_eq!(idx, expected);
        Ok(())
    }

    /// Post all halo sends for the current state.
    fn post_sends(&self, rank: &mut Rank, u: &Field) {
        for d in 0..3 {
            if !self.geom.active(d) || self.cfg.decomp.dims[d] == 1 {
                continue;
            }
            for side in 0..2 {
                if let Some(nb) = self.cfg.decomp.neighbor(self.my_rank, d, side) {
                    if nb == self.my_rank {
                        continue; // handled as local periodic wrap
                    }
                    let s = self.pstart(rank);
                    let buf = rank.work(|| self.pack_face(u, d, side));
                    self.pend("phase.halo.pack", rank, s);
                    let s = self.pstart(rank);
                    rank.send(self.comm_of(nb), (d * 2 + side) as u64, &buf);
                    self.pend("phase.halo.send", rank, s);
                }
            }
        }
    }

    /// Receive all halos and fill physical faces.
    ///
    /// Every expected message is received even after an unpack failure —
    /// bailing out early would leave messages queued and desynchronize
    /// this rank's communication pattern from its neighbors'. The first
    /// error is reported after the exchange is fully drained.
    fn recv_halos(&self, rank: &mut Rank, u: &mut Field) -> Result<(), SolverError> {
        let mut first_err = None;
        for d in 0..3 {
            if !self.geom.active(d) {
                continue;
            }
            for side in 0..2 {
                let nb = if self.cfg.decomp.dims[d] == 1 {
                    None
                } else {
                    self.cfg.decomp.neighbor(self.my_rank, d, side)
                };
                match nb {
                    Some(nb) if nb != self.my_rank => {
                        // Neighbor's opposite face arrives tagged with its
                        // (d, 1-side). The deadline receive bounds the wait
                        // on a dead neighbor: a silent peer becomes a typed
                        // suspicion instead of a hang.
                        let s = self.pstart(rank);
                        let buf = rank.recv_deadline(self.comm_of(nb), (d * 2 + (1 - side)) as u64);
                        self.pend("phase.halo.wait", rank, s);
                        match buf {
                            Ok(buf) => {
                                let s = self.pstart(rank);
                                if let Err(e) = rank.work(|| self.unpack_face(u, d, side, &buf)) {
                                    first_err.get_or_insert(e);
                                }
                                self.pend("phase.halo.unpack", rank, s);
                            }
                            Err(e) => {
                                // Ghosts stay untouched; the step is rolled
                                // back. Keep draining the remaining faces so
                                // this rank's pattern stays aligned with the
                                // neighbors that are still alive.
                                first_err.get_or_insert(comm_err(e));
                            }
                        }
                    }
                    _ => {
                        // Physical boundary, or periodic self-wrap when the
                        // rank owns the whole dimension.
                        let s = self.pstart(rank);
                        rank.work(|| fill_face(u, d, side, self.cfg.bcs[d][side]));
                        self.pend("phase.halo.unpack", rank, s);
                    }
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Recover primitives over the ghost-face slabs only (after halos
    /// arrive in overlap mode; the interior was recovered earlier).
    fn recover_ghost_faces(&mut self, u: &mut Field) -> Result<(), SolverError> {
        let geom = self.geom;
        if self.recovery == RecoveryPolicy::Cascade {
            let mut cells = Vec::new();
            for d in 0..3 {
                let ng = geom.ng_of(d);
                if ng == 0 {
                    continue;
                }
                let n = geom.n[d];
                for side in 0..2 {
                    let range = if side == 0 { 0..ng } else { ng + n..2 * ng + n };
                    for l in range {
                        for_each_transverse(&geom, d, |t1, t2| {
                            cells.push(cell_of(d, l, t1, t2));
                        });
                    }
                }
            }
            let mut stats = RecoveryStats::default();
            recover_cells_resilient_metered(
                &self.cfg.scheme,
                u,
                &mut self.prim,
                cells,
                &mut stats,
                self.c2p_hist.as_deref(),
            );
            self.rec_stats.merge(&stats);
            self.note_cascade(&stats);
            return Ok(());
        }
        for d in 0..3 {
            let ng = geom.ng_of(d);
            if ng == 0 {
                continue;
            }
            let n = geom.n[d];
            for side in 0..2 {
                let range = if side == 0 { 0..ng } else { ng + n..2 * ng + n };
                for l in range {
                    let mut err = None;
                    for_each_transverse(&geom, d, |t1, t2| {
                        if err.is_some() {
                            return;
                        }
                        let (i, j, k) = cell_of(d, l, t1, t2);
                        if let Err(e) = recover_cell_metered(
                            &self.cfg.scheme,
                            u,
                            &mut self.prim,
                            i,
                            j,
                            k,
                            self.c2p_hist.as_deref(),
                        ) {
                            err = Some(e);
                        }
                    });
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
            }
        }
        Ok(())
    }

    /// Recover primitives over interior cells only.
    fn recover_interior(&mut self, u: &mut Field) -> Result<(), SolverError> {
        let geom = self.geom;
        if self.recovery == RecoveryPolicy::Cascade {
            let mut stats = RecoveryStats::default();
            let cells: Vec<_> = geom.interior_iter().collect();
            recover_cells_resilient_metered(
                &self.cfg.scheme,
                u,
                &mut self.prim,
                cells,
                &mut stats,
                self.c2p_hist.as_deref(),
            );
            self.rec_stats.merge(&stats);
            self.note_cascade(&stats);
            return Ok(());
        }
        let mut err = None;
        for (i, j, k) in geom.interior_iter() {
            if let Err(e) = recover_cell_metered(
                &self.cfg.scheme,
                u,
                &mut self.prim,
                i,
                j,
                k,
                self.c2p_hist.as_deref(),
            ) {
                err = Some(e);
                break;
            }
        }
        err.map_or(Ok(()), Err)
    }

    /// One residual evaluation with halo exchange, honoring the mode.
    ///
    /// With `scan` set, the sweeps also run the fused wave-speed scan:
    /// afterwards `self.rate` holds each interior cell's CFL rate (the
    /// quantity [`max_dt`] maximizes), for free — the pencils are already
    /// resident in scratch. The stage-0 evaluation of every step scans,
    /// which is what lets Δt be decided without a separate local pass.
    fn eval_rhs(&mut self, rank: &mut Rank, u: &mut Field, scan: bool) -> Result<(), SolverError> {
        self.rhs.raw_mut().fill(0.0);
        if scan {
            self.rate.fill(0.0);
        }
        // Wall time inside a `rank.work` closure equals the virtual-clock
        // charge (the closure runs while holding the CPU token), so the
        // nested con2prim sub-phase can use plain `Instant` timing.
        let sub_c2p = self.metrics.as_ref().map(|m| m.histogram("sub.c2p"));
        match self.cfg.mode {
            ExchangeMode::BulkSynchronous => {
                self.post_sends(rank, u);
                self.recv_halos(rank, u)?;
                let scheme = self.cfg.scheme;
                let geom = self.geom;
                let policy = self.recovery;
                let s = self.pstart(rank);
                rank.work(|| -> Result<(), SolverError> {
                    let t0 = sub_c2p.as_ref().map(|_| Instant::now());
                    if policy == RecoveryPolicy::Cascade {
                        let mut stats = RecoveryStats::default();
                        recover_prims_resilient_metered(
                            &scheme,
                            u,
                            &mut self.prim,
                            &mut stats,
                            self.c2p_hist.as_deref(),
                        );
                        self.rec_stats.merge(&stats);
                        self.note_cascade(&stats);
                    } else {
                        recover_prims_metered(
                            &scheme,
                            u,
                            &mut self.prim,
                            self.c2p_hist.as_deref(),
                        )?;
                    }
                    if let (Some(h), Some(t0)) = (&sub_c2p, t0) {
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                    let region = Region::interior(&geom);
                    accumulate_rhs_region_scan(
                        &scheme,
                        &self.prim,
                        &mut self.rhs,
                        &region,
                        scan.then(|| &mut self.rate[..]),
                        self.gang.as_ref(),
                    );
                    Ok(())
                })?;
                self.pend("phase.rhs.interior", rank, s);
            }
            ExchangeMode::Overlap => {
                self.post_sends(rank, u);
                let scheme = self.cfg.scheme;
                let depth = scheme.required_ghosts();
                let (deep, shells) = Region::split_deep_shell(&self.geom, depth);
                let s = self.pstart(rank);
                rank.work(|| -> Result<(), SolverError> {
                    let t0 = sub_c2p.as_ref().map(|_| Instant::now());
                    self.recover_interior(u)?;
                    if let (Some(h), Some(t0)) = (&sub_c2p, t0) {
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                    accumulate_rhs_region_scan(
                        &scheme,
                        &self.prim,
                        &mut self.rhs,
                        &deep,
                        scan.then(|| &mut self.rate[..]),
                        self.gang.as_ref(),
                    );
                    Ok(())
                })?;
                self.pend("phase.rhs.deep", rank, s);
                self.recv_halos(rank, u)?;
                let s = self.pstart(rank);
                rank.work(|| -> Result<(), SolverError> {
                    let t0 = sub_c2p.as_ref().map(|_| Instant::now());
                    self.recover_ghost_faces(u)?;
                    if let (Some(h), Some(t0)) = (&sub_c2p, t0) {
                        h.record(t0.elapsed().as_nanos() as u64);
                    }
                    for sh in &shells {
                        accumulate_rhs_region_scan(
                            &scheme,
                            &self.prim,
                            &mut self.rhs,
                            sh,
                            scan.then(|| &mut self.rate[..]),
                            self.gang.as_ref(),
                        );
                    }
                    Ok(())
                })?;
                self.pend("phase.rhs.shell", rank, s);
            }
        }
        Ok(())
    }

    /// RK stage combiner: `u = b*u_stage + a*u + c*rhs`, timed as
    /// `phase.rk.combine`.
    fn combine(&self, rank: &mut Rank, u: &mut Field, a: f64, b: Option<f64>, c: f64) {
        let s = self.pstart(rank);
        rank.work(|| lincomb(u, a, b.map(|b| (&self.u_stage, b)), &self.rhs, c));
        self.pend("phase.rk.combine", rank, s);
    }

    /// One RK step of size `dt`.
    pub fn step(&mut self, rank: &mut Rank, u: &mut Field, dt: f64) -> Result<(), SolverError> {
        match self.cfg.rk {
            RkOrder::Rk1 => {
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 1.0, None, dt);
            }
            RkOrder::Rk2 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 1.0, None, dt);
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 0.5, Some(0.5), 0.5 * dt);
            }
            RkOrder::Rk3 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 1.0, None, dt);
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 0.25, Some(0.75), 0.25 * dt);
                self.eval_rhs(rank, u, false)?;
                self.combine(rank, u, 2.0 / 3.0, Some(1.0 / 3.0), 2.0 / 3.0 * dt);
            }
        }
        Ok(())
    }

    /// Like [`BlockSolver::step`], but every RK stage runs even after an
    /// error. Under [`RecoveryPolicy::Cascade`] the only in-step failure
    /// mode is a halo mismatch, and by then the neighbor ranks are
    /// already committed to the full per-step communication pattern —
    /// aborting mid-step would leave them blocked in `recv`. Instead the
    /// remaining stages keep exchanging (possibly stale) data, the first
    /// error is reported at the end, and the caller rolls the state back.
    pub fn step_resilient(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        dt: f64,
    ) -> Result<(), SolverError> {
        fn note(slot: &mut Option<SolverError>, r: Result<(), SolverError>) {
            if let Err(e) = r {
                slot.get_or_insert(e);
            }
        }
        let mut first = None;
        match self.cfg.rk {
            RkOrder::Rk1 => {
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 1.0, None, dt);
            }
            RkOrder::Rk2 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 1.0, None, dt);
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 0.5, Some(0.5), 0.5 * dt);
            }
            RkOrder::Rk3 => {
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 1.0, None, dt);
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 0.25, Some(0.75), 0.25 * dt);
                note(&mut first, self.eval_rhs(rank, u, false));
                self.combine(rank, u, 2.0 / 3.0, Some(1.0 / 3.0), 2.0 / 3.0 * dt);
            }
        }
        first.map_or(Ok(()), Err)
    }

    /// Globally stable Δt: local CFL bound reduced with allreduce-min.
    ///
    /// This is the *unfused* reference path (a dedicated
    /// primitive-recovery pass plus [`max_dt`], timed as
    /// `phase.dt.local`). The advance loops no longer call it — they get
    /// the local bound for free from the fused wave-speed scan of the
    /// stage-0 residual sweep (see [`BlockSolver::step_auto`]) — but it
    /// is kept public as the independent cross-check the fused scan is
    /// tested against, and for callers that need a Δt without taking a
    /// step.
    pub fn stable_dt(&mut self, rank: &mut Rank, u: &mut Field) -> Result<f64, SolverError> {
        // Local primitives on the interior suffice for the CFL bound.
        let s = self.pstart(rank);
        let local = rank.work(|| -> Result<f64, SolverError> {
            self.recover_interior(u)?;
            Ok(max_dt(&self.cfg.scheme, &self.prim, self.cfg.cfl))
        })?;
        self.pend("phase.dt.local", rank, s);
        let s = self.pstart(rank);
        let global = rank.allreduce_min(local);
        self.pend("phase.dt.allreduce", rank, s);
        Ok(global)
    }

    /// Decide this step's global Δt from the fused scan's local bound.
    ///
    /// Refreshes (allreduce-min, piggybacking the negated local
    /// violation count as a second component on the same message) when
    /// the cache is invalid or its window has elapsed; otherwise coasts
    /// on `0.9 ×` the cached value. Returns `(dt, coasted)`.
    fn decide_dt(&mut self, rank: &mut Rank, local_bound: f64) -> (f64, bool) {
        let refresh_max = self.cfg.dt_refresh_interval.max(1);
        if self.dt_cache.valid && self.dt_cache.age < self.dt_cache.window {
            self.dt_cache.age += 1;
            // Safety margin while coasting on the cached value.
            return (0.9 * self.dt_cache.dt, true);
        }
        let s = self.pstart(rank);
        let out = rank.allreduce(&[local_bound, -(self.dt_cache.violations as f64)], f64::min);
        self.pend("phase.dt.allreduce", rank, s);
        let dt_g = out[0];
        let violated = out[1] < 0.0;
        // AIMD window: collapse to every-step refreshes when any rank
        // coasted past its bound during the last window; double back
        // toward the configured cadence on clean windows.
        self.dt_cache.window = if violated {
            1
        } else {
            (self.dt_cache.window * 2).min(refresh_max)
        };
        self.dt_cache.dt = dt_g;
        self.dt_cache.age = 1;
        self.dt_cache.valid = true;
        self.dt_cache.violations = 0;
        (dt_g, false)
    }

    /// One RK step where Δt is decided *inside* the step: the stage-0
    /// residual evaluation runs the fused wave-speed scan, the cadenced
    /// refresh (or the cached coast) turns this rank's bound into the
    /// global Δt, and only then do the stage combines apply it. The
    /// stage-0 residual does not depend on Δt, so with a refresh every
    /// step this is bitwise the historical "Δt first, then step"
    /// ordering — minus the separate `phase.dt.local`
    /// primitive-recovery pass, which the fusion makes redundant.
    ///
    /// `limit` clamps `t + dt` to an end time; `scale` multiplies the
    /// decided Δt (the resilient retry backoff). With `resilient`, stage
    /// errors are noted and every stage still runs (the
    /// [`BlockSolver::step_resilient`] contract); otherwise the first
    /// error aborts. When a *coasted* Δt overruns this rank's freshly
    /// scanned CFL bound, `dt.cadence.violation` is counted and the
    /// violation is reported at the next refresh (collapsing the
    /// window); the Δt itself is not adjusted locally — it must stay
    /// identical across ranks. Returns the committed Δt.
    fn step_auto(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        limit: Option<(f64, f64)>,
        scale: f64,
        resilient: bool,
    ) -> Result<f64, SolverError> {
        fn note(slot: &mut Option<SolverError>, r: Result<(), SolverError>) {
            if let Err(e) = r {
                slot.get_or_insert(e);
            }
        }
        let mut first = None;
        let r0 = self.eval_rhs(rank, u, true);
        if resilient {
            note(&mut first, r0);
        } else {
            r0?;
        }
        // Snapshot u^n *after* the stage-0 evaluation: the recovery
        // cascade may have repaired poisoned cells in `u` during it, and
        // those repairs must be part of the state the later combines
        // reconstruct from (the historical ordering repaired in the
        // pre-step Δt pass, before the snapshot). Without repairs the
        // evaluation leaves `u` untouched, so this is bit-identical to
        // snapshotting first.
        if self.cfg.rk.stages() > 1 {
            self.u_stage.raw_mut().copy_from_slice(u.raw());
        }
        let local_bound = dt_from_rates(self.cfg.cfl, &self.rate);
        let (dt_raw, coasted) = self.decide_dt(rank, local_bound);
        let mut dt = dt_raw * scale;
        // Negated form deliberately catches NaN as a collapse. The
        // decision is identical on every rank (refreshed Δt comes from
        // the allreduce, coasted Δt from the lockstep cache), so this
        // early return is collective-consistent.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(dt > 1e-14) {
            return Err(SolverError::TimestepCollapse { dt });
        }
        if let Some((t, t_end)) = limit {
            if t + dt > t_end {
                dt = t_end - t;
            }
        }
        if coasted && dt > local_bound {
            self.dt_cache.violations += 1;
            if let Some(m) = &self.metrics {
                m.counter("dt.cadence.violation").add(1);
            }
            rank.trace_instant("driver.dt_violation", dt / local_bound);
        }
        match self.cfg.rk {
            RkOrder::Rk1 => {
                self.combine(rank, u, 1.0, None, dt);
            }
            RkOrder::Rk2 => {
                self.combine(rank, u, 1.0, None, dt);
                let r = self.eval_rhs(rank, u, false);
                if resilient {
                    note(&mut first, r);
                } else {
                    r?;
                }
                self.combine(rank, u, 0.5, Some(0.5), 0.5 * dt);
            }
            RkOrder::Rk3 => {
                self.combine(rank, u, 1.0, None, dt);
                let r = self.eval_rhs(rank, u, false);
                if resilient {
                    note(&mut first, r);
                } else {
                    r?;
                }
                self.combine(rank, u, 0.25, Some(0.75), 0.25 * dt);
                let r = self.eval_rhs(rank, u, false);
                if resilient {
                    note(&mut first, r);
                } else {
                    r?;
                }
                self.combine(rank, u, 2.0 / 3.0, Some(1.0 / 3.0), 2.0 / 3.0 * dt);
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(dt),
        }
    }

    /// Advance a fixed number of steps (each at the CFL-stable Δt);
    /// used by the scaling experiments, where a fixed step count keeps
    /// the work comparable across configurations.
    pub fn advance_steps(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        nsteps: usize,
    ) -> Result<DistStats, SolverError> {
        let start = Instant::now();
        let bytes0 = rank.bytes_sent();
        let vtime0 = rank.vtime();
        let mut stats = DistStats::default();
        self.dt_cache = DtCache::new();
        if let Some(mon) = &mut self.health {
            mon.ensure_baseline(u);
        }
        let mut t = 0.0;
        for _ in 0..nsteps {
            let dt = self.step_auto(rank, u, None, 1.0, false)?;
            t += dt;
            stats.steps += 1;
            stats.zone_updates += (self.geom.interior_len() * self.cfg.rk.stages()) as u64;
            self.health_observe(rank, u, t, stats.steps as u64);
            self.telemetry_observe(rank, t, stats.steps as u64, dt);
        }
        stats.elapsed = start.elapsed();
        stats.bytes_sent = rank.bytes_sent() - bytes0;
        stats.vtime = rank.vtime() - vtime0;
        Ok(stats)
    }

    /// Advance to `t_end`; returns final state statistics.
    pub fn advance_to(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        t0: f64,
        t_end: f64,
    ) -> Result<DistStats, SolverError> {
        let start = Instant::now();
        let bytes0 = rank.bytes_sent();
        let vtime0 = rank.vtime();
        let mut t = t0;
        let mut stats = DistStats::default();
        self.dt_cache = DtCache::new();
        if let Some(mon) = &mut self.health {
            mon.ensure_baseline(u);
        }
        while t < t_end - 1e-14 {
            let dt = self.step_auto(rank, u, Some((t, t_end)), 1.0, false)?;
            t += dt;
            stats.steps += 1;
            stats.zone_updates += (self.geom.interior_len() * self.cfg.rk.stages()) as u64;
            self.health_observe(rank, u, t, stats.steps as u64);
            self.telemetry_observe(rank, t, stats.steps as u64, dt);
        }
        stats.elapsed = start.elapsed();
        stats.bytes_sent = rank.bytes_sent() - bytes0;
        stats.vtime = rank.vtime() - vtime0;
        Ok(stats)
    }

    /// One attempt of a resilient step: the fused-scan Δt decision (at
    /// `scale`× the configured CFL) inside a full (never-deadlocking)
    /// step. A coasted Δt that overran this rank's local CFL bound is
    /// reported as [`SolverError::CflViolation`] so the collective
    /// agreement round rolls the step back and retries with a fresh
    /// allreduce — the Δt cache is invalidated here. Returns the
    /// committed Δt.
    fn try_step(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        t: f64,
        t_end: f64,
        scale: f64,
    ) -> Result<f64, SolverError> {
        let v0 = self.dt_cache.violations;
        let dt = self.step_auto(rank, u, Some((t, t_end)), scale, true)?;
        if self.dt_cache.violations > v0 {
            self.dt_cache.invalidate();
            let bound = dt_from_rates(self.cfg.cfl, &self.rate);
            return Err(SolverError::CflViolation { dt, bound });
        }
        Ok(dt)
    }

    /// Flatten this block's interior, component-major in
    /// `interior_iter` order (matches [`BlockRecord`]'s layout).
    fn pack_interior(&self, u: &Field) -> Vec<f64> {
        let mut buf = Vec::with_capacity(NCOMP * self.geom.interior_len());
        for c in 0..NCOMP {
            for (i, j, k) in self.geom.interior_iter() {
                buf.push(u.at(c, i, j, k));
            }
        }
        buf
    }

    /// Collectively write a rank-count-independent global checkpoint:
    /// every block sends its interior to block rank 0, which assembles
    /// the [`GlobalCheckpoint`] and saves it into the shared global
    /// slots. Deadline receives keep the root from hanging on a rank
    /// that died mid-interval.
    fn save_global_distributed(
        &self,
        rank: &mut Rank,
        gslots: &CheckpointSlots,
        u: &Field,
        t: f64,
        step: u64,
    ) -> Result<(), SolverError> {
        const GCKP_TAG: u64 = 1001;
        let buf = self.pack_interior(u);
        if self.my_rank != 0 {
            rank.send(self.comm_of(0), GCKP_TAG, &buf);
            return Ok(());
        }
        let nblocks = self.cfg.decomp.nranks();
        let mut blocks = Vec::with_capacity(nblocks);
        let mut record = |b: usize, data: Vec<f64>| {
            let (offset, size) = self.cfg.decomp.local_span(self.cfg.global_n, b);
            blocks.push(BlockRecord {
                id: b as u64,
                offset,
                size,
                data,
            });
        };
        record(0, buf);
        for b in 1..nblocks {
            let data = rank
                .recv_deadline(self.comm_of(b), GCKP_TAG)
                .map_err(comm_err)?;
            record(b, data);
        }
        let ckp = GlobalCheckpoint {
            time: t,
            step,
            global_n: self.cfg.global_n,
            ncomp: NCOMP,
            blocks,
        };
        gslots
            .save_global(&ckp)
            .map_err(|e| SolverError::Checkpoint { msg: e.to_string() })
    }

    /// Re-run the decomposition over the live communicator ranks and
    /// rebuild this solver's block (geometry, work buffers, Δt cache).
    /// The state itself is *not* restored — pair with
    /// [`BlockSolver::fill_from_global`].
    fn rebuild_for_survivors(&mut self, rank: &Rank) -> Result<(), SolverError> {
        let survivors = rank.live_ranks().to_vec();
        let my_block = survivors
            .iter()
            .position(|&r| r == rank.rank())
            .ok_or(SolverError::RankFailed { step: 0 })?;
        self.cfg.decomp =
            CartDecomp::auto(survivors.len(), self.cfg.global_n, self.cfg.decomp.periodic);
        self.my_rank = my_block;
        self.comm_ranks = survivors;
        self.geom = self.cfg.local_geom(my_block);
        self.prim = Field::new(self.geom, 5);
        self.rhs = Field::cons(self.geom);
        self.u_stage = Field::cons(self.geom);
        // New block geometry and a restored (older) state: the scan
        // buffer must match the new patch and the cached Δt is stale.
        self.rate = vec![0.0; self.geom.len()];
        self.dt_cache.invalidate();
        Ok(())
    }

    /// Cut this block's span out of a global checkpoint and overwrite the
    /// interior of `u` with it. Returns the checkpoint's `(time, step)`.
    fn fill_from_global(
        &self,
        u: &mut Field,
        gckp: &GlobalCheckpoint,
    ) -> Result<(f64, u64), SolverError> {
        if gckp.global_n != self.cfg.global_n || gckp.ncomp != NCOMP {
            return Err(SolverError::Checkpoint {
                msg: "global checkpoint does not match this run's grid".into(),
            });
        }
        let (offset, size) = self.cfg.decomp.local_span(self.cfg.global_n, self.my_rank);
        let data = gckp
            .extract_span(offset, size)
            .ok_or_else(|| SolverError::Checkpoint {
                msg: "global checkpoint does not cover this block's span".into(),
            })?;
        let mut restored = Field::cons(self.geom);
        let mut idx = 0;
        for c in 0..NCOMP {
            for (i, j, k) in self.geom.interior_iter() {
                restored.set(c, i, j, k, data[idx]);
                idx += 1;
            }
        }
        *u = restored;
        Ok((gckp.time, gckp.step))
    }

    /// Shrink onto the survivors after a confirmed rank death: re-run the
    /// decomposition over the live communicator ranks, rebuild this
    /// solver's block, and restore the state from the newest global
    /// checkpoint. Returns the restored `(time, step)`.
    fn shrink_and_restore(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        gslots: &CheckpointSlots,
    ) -> Result<(f64, u64), SolverError> {
        self.rebuild_for_survivors(rank)?;
        let ck_err = |e: rhrsc_io::checkpoint::CheckpointError| SolverError::Checkpoint {
            msg: e.to_string(),
        };
        // The filesystem is shared (ranks are threads): every survivor
        // loads the global state directly and cuts out its own span.
        let (gckp, _fell_back) = gslots.load_newest_global().map_err(ck_err)?;
        self.fill_from_global(u, &gckp)
    }

    /// Freeze this block's interior as a single-block global checkpoint
    /// (the L1 diskless tier). Using the v3 global format means any
    /// collection of snapshots can later be merged into a full
    /// [`GlobalCheckpoint`] and re-tiled onto a *different* decomposition
    /// — which is exactly what the buddy-shrink path does.
    fn capture_local_snapshot(&self, u: &Field, t: f64, step: u64) -> MemorySnapshot {
        let (offset, size) = self.cfg.decomp.local_span(self.cfg.global_n, self.my_rank);
        let gckp = GlobalCheckpoint {
            time: t,
            step,
            global_n: self.cfg.global_n,
            ncomp: NCOMP,
            blocks: vec![BlockRecord {
                id: self.my_rank as u64,
                offset,
                size,
                data: self.pack_interior(u),
            }],
        };
        MemorySnapshot::new(step, t, encode_global(&gckp))
    }

    /// Ship this rank's fresh snapshot to its guardian and receive the
    /// ward's snapshot in return (both on the reliable data-class
    /// [`BUDDY_CKP_TAG`]). Returns the `(ward_block, replica)` pair, or
    /// `None` when the pairing is degenerate (single block / zero
    /// offset). Sends are asynchronous, so the symmetric send-then-recv
    /// cannot deadlock.
    fn exchange_buddy(
        &self,
        rank: &mut Rank,
        tiers: &CkpTiers,
        snap: &MemorySnapshot,
    ) -> Result<Option<(usize, MemorySnapshot)>, SolverError> {
        let n = self.cfg.decomp.nranks();
        if n < 2 || tiers.offset == 0 {
            return Ok(None);
        }
        let guardian = (self.my_rank + tiers.offset) % n;
        let ward = (self.my_rank + n - tiers.offset) % n;
        rank.send(
            self.comm_of(guardian),
            BUDDY_CKP_TAG,
            &pack_snapshot_msg(snap),
        );
        let raw = rank
            .recv_deadline(self.comm_of(ward), BUDDY_CKP_TAG)
            .map_err(comm_err)?;
        Ok(Some((ward, unpack_snapshot_msg(&raw)?)))
    }

    /// Collective memory-tier restore (L1 local + L2 buddy). Returns
    /// `Ok(None)` — with `u` untouched on every rank — when the memory
    /// tiers cannot serve a consistent global state (missing/rotted
    /// snapshots with no valid replica, or a capture-round mismatch), so
    /// the caller falls through to the disk tier. On success every rank's
    /// interior is overwritten and the common `(time, step)` returned.
    fn memory_restore(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        tiers: &CkpTiers,
        rstats: &mut ResilienceStats,
    ) -> Result<Option<(f64, u64)>, SolverError> {
        let n = self.cfg.decomp.nranks();
        let own_ok = tiers.local.as_ref().is_some_and(|s| s.verify());
        let rep_ok = tiers.replica.as_ref().is_some_and(|(_, r)| r.verify());
        // Round 1 (max-reduce): who still holds a valid copy of which
        // block — `[own_ok(n), rep_ok(n)]`, where the guardian speaks for
        // its ward's replica slot.
        let mut flags = vec![0.0; 2 * n];
        if own_ok {
            flags[self.my_rank] = 1.0;
        }
        if let Some((ward, _)) = &tiers.replica {
            if rep_ok {
                flags[n + ward] = 1.0;
            }
        }
        let flags = rank.allreduce(&flags, f64::max);
        let covered = (0..n).all(|b| flags[b] > 0.5 || flags[n + b] > 0.5);
        // Round 2 (min-reduce): agree on one capture round. Ranks with no
        // valid snapshot of their own contribute neutrally; `[s, -s]`
        // yields both the min and the max in one reduce.
        let my_step = match (&tiers.local, &tiers.replica) {
            (Some(s), _) if own_ok => s.step as f64,
            (_, Some((_, r))) if rep_ok => r.step as f64,
            _ => f64::INFINITY,
        };
        let contrib = if my_step.is_finite() {
            [my_step, -my_step]
        } else {
            [f64::INFINITY, f64::INFINITY]
        };
        let steps = rank.allreduce(&contrib, f64::min);
        let consistent = steps[0].is_finite() && steps[0] == -steps[1];
        if !covered || !consistent {
            return Ok(None);
        }
        // Guardians ship replicas back to wards whose own snapshot died.
        if let Some((ward, rep)) = &tiers.replica {
            if rep_ok && flags[*ward] < 0.5 {
                rank.send(
                    self.comm_of(*ward),
                    BUDDY_RESTORE_TAG,
                    &pack_snapshot_msg(rep),
                );
            }
        }
        let (snap, from_buddy) = if own_ok {
            (tiers.local.clone().unwrap(), false)
        } else {
            let guardian = (self.my_rank + tiers.offset) % n;
            let raw = rank
                .recv_deadline(self.comm_of(guardian), BUDDY_RESTORE_TAG)
                .map_err(comm_err)?;
            (unpack_snapshot_msg(&raw)?, true)
        };
        // Decode and cut the span, but do not touch `u` until every rank
        // has confirmed success — a half-restored universe is worse than
        // falling through to disk with clean state.
        let restored = (snap.verify() && snap.step == steps[0] as u64)
            .then(|| decode_global_trusted(snap.bytes()).ok())
            .flatten()
            .and_then(|gckp| self.fill_global_span(&gckp));
        let all_ok = rank.allreduce_min(if restored.is_some() { 1.0 } else { 0.0 }) > 0.5;
        let Some((data, time, step)) = restored.filter(|_| all_ok) else {
            return Ok(None);
        };
        // Rebuild from a fresh field so ghosts are zeroed exactly like the
        // disk-restore path — keeps no-fault and restored runs bit-identical.
        let mut restored_f = Field::cons(self.geom);
        let mut idx = 0;
        for c in 0..NCOMP {
            for (i, j, k) in self.geom.interior_iter() {
                restored_f.set(c, i, j, k, data[idx]);
                idx += 1;
            }
        }
        u.raw_mut().copy_from_slice(restored_f.raw());
        if from_buddy {
            rstats.buddy_restores += 1;
            if let Some(m) = &self.metrics {
                m.counter("ckp.tier.buddy.restore").add(1);
            }
        } else {
            rstats.local_restores += 1;
            if let Some(m) = &self.metrics {
                m.counter("ckp.tier.local.restore").add(1);
            }
        }
        Ok(Some((time, step)))
    }

    /// Extract this block's span (and the checkpoint's time/step) without
    /// committing it to the state — the validation half of
    /// [`BlockSolver::fill_from_global`].
    fn fill_global_span(&self, gckp: &GlobalCheckpoint) -> Option<(Vec<f64>, f64, u64)> {
        if gckp.global_n != self.cfg.global_n || gckp.ncomp != NCOMP {
            return None;
        }
        let (offset, size) = self.cfg.decomp.local_span(self.cfg.global_n, self.my_rank);
        let data = gckp.extract_span(offset, size)?;
        Some((data, gckp.time, gckp.step))
    }

    /// Collective shrink onto the survivors with the lost blocks restored
    /// from buddy replicas — no disk involved. Returns `Ok(None)` (state
    /// and decomposition untouched) when the replicas cannot cover every
    /// dead block, so the caller falls back to the disk shrink path.
    ///
    /// Protocol (all in the *old* block space, before the rebuild): the
    /// survivors agree which blocks are covered and at which capture
    /// round, ship their snapshots — own blocks plus dead wards' replicas
    /// — to a root survivor, the root merges the single-block snapshots
    /// into one full [`GlobalCheckpoint`] and redistributes it, and only
    /// then does every survivor re-run the decomposition and cut its new
    /// span out of the merged state.
    fn shrink_from_buddies(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        tiers: &CkpTiers,
        rstats: &mut ResilienceStats,
    ) -> Result<Option<(f64, u64)>, SolverError> {
        let n = self.comm_ranks.len();
        if tiers.offset == 0 {
            return Ok(None);
        }
        let live = rank.live_ranks().to_vec();
        let alive = |b: usize| live.contains(&self.comm_ranks[b]);
        let own_ok = tiers.local.as_ref().is_some_and(|s| s.verify());
        let rep_ok = tiers.replica.as_ref().is_some_and(|(_, r)| r.verify());
        // Coverage agreement over the old blocks: survivors need their own
        // snapshot, dead blocks need a live guardian with a valid replica.
        let mut flags = vec![0.0; 2 * n];
        if own_ok {
            flags[self.my_rank] = 1.0;
        }
        if let Some((ward, _)) = &tiers.replica {
            if rep_ok {
                flags[n + ward] = 1.0;
            }
        }
        let flags = rank.allreduce(&flags, f64::max);
        let covered = (0..n).all(|b| {
            if alive(b) {
                flags[b] > 0.5
            } else {
                flags[n + b] > 0.5
            }
        });
        let my_step = if own_ok {
            tiers.local.as_ref().unwrap().step as f64
        } else {
            f64::INFINITY
        };
        let contrib = if my_step.is_finite() {
            [my_step, -my_step]
        } else {
            [f64::INFINITY, f64::INFINITY]
        };
        let steps = rank.allreduce(&contrib, f64::min);
        if !covered || !steps[0].is_finite() || steps[0] != -steps[1] {
            return Ok(None);
        }
        // Collect at the root survivor: every survivor ships its own
        // block, then (if its ward died) the ward's replica — a
        // deterministic per-sender order, so the root can receive by
        // walking the old block list.
        let root_comm = live[0];
        let dead_ward = tiers
            .replica
            .as_ref()
            .filter(|(w, _)| !alive(*w) && rep_ok)
            .map(|(w, r)| (*w, r.clone()));
        let merged_bytes = if rank.rank() != root_comm {
            if let Some(s) = tiers.local.as_ref().filter(|_| own_ok) {
                rank.send(root_comm, BUDDY_SHRINK_TAG, &pack_snapshot_msg(s));
            }
            if let Some((_, rep)) = &dead_ward {
                rank.send(root_comm, BUDDY_SHRINK_TAG, &pack_snapshot_msg(rep));
            }
            rank.recv_deadline(root_comm, BUDDY_SHRINK_TAG)
                .map_err(comm_err)?
        } else {
            // The root knows exactly which snapshots each survivor holds
            // (the coverage flags are global state), so the receive
            // pattern is deterministic: per sender, own block first, dead
            // ward second.
            let mut records = Vec::new();
            let take = |snap: MemorySnapshot, records: &mut Vec<BlockRecord>| {
                if snap.verify() {
                    if let Ok(g) = decode_global_trusted(snap.bytes()) {
                        records.extend(g.blocks);
                    }
                }
            };
            if let Some(s) = tiers.local.as_ref().filter(|_| own_ok) {
                take(s.clone(), &mut records);
            }
            if let Some((_, rep)) = &dead_ward {
                take(rep.clone(), &mut records);
            }
            for b in 0..n {
                let from = self.comm_ranks[b];
                if from == root_comm || !alive(b) {
                    continue;
                }
                // Own block (guaranteed by coverage)...
                let raw = rank
                    .recv_deadline(from, BUDDY_SHRINK_TAG)
                    .map_err(comm_err)?;
                take(unpack_snapshot_msg(&raw)?, &mut records);
                // ...then the dead ward's replica, if this sender guards
                // one (readable off the coverage flags).
                let ward = (b + n - tiers.offset) % n;
                if !alive(ward) && flags[n + ward] > 0.5 {
                    let raw = rank
                        .recv_deadline(from, BUDDY_SHRINK_TAG)
                        .map_err(comm_err)?;
                    take(unpack_snapshot_msg(&raw)?, &mut records);
                }
            }
            records.sort_by_key(|r| r.id);
            records.dedup_by_key(|r| r.id);
            let merged = GlobalCheckpoint {
                time: tiers
                    .local
                    .as_ref()
                    .map(|s| s.time)
                    .unwrap_or(f64::INFINITY),
                step: steps[0] as u64,
                global_n: self.cfg.global_n,
                ncomp: NCOMP,
                blocks: records,
            };
            let msg = pack_snapshot_msg(&MemorySnapshot::new(
                merged.step,
                merged.time,
                encode_global(&merged),
            ));
            for &r in &live {
                if r != root_comm {
                    rank.send(r, BUDDY_SHRINK_TAG, &msg);
                }
            }
            msg
        };
        let snap = unpack_snapshot_msg(&merged_bytes)?;
        let gckp = (snap.verify())
            .then(|| decode_global_trusted(snap.bytes()).ok())
            .flatten();
        let all_ok = rank.allreduce_min(if gckp.is_some() { 1.0 } else { 0.0 }) > 0.5;
        let Some(gckp) = gckp.filter(|_| all_ok) else {
            return Ok(None);
        };
        // Everyone holds the merged pre-shrink state: now it is safe to
        // re-cut the domain over the survivors and fill from it.
        self.rebuild_for_survivors(rank)?;
        let restored = self.fill_from_global(u, &gckp)?;
        rstats.buddy_shrinks += 1;
        if let Some(m) = &self.metrics {
            m.counter("ckp.tier.buddy.shrink").add(1);
        }
        Ok(Some(restored))
    }

    /// The recovery ladder's restore rung: try the memory tiers (own L1
    /// snapshot, then a buddy replica), and only if they cannot serve a
    /// consistent state fall through to the per-rank disk slots. Every
    /// branch decision is collectively agreed, so all ranks walk the same
    /// rungs.
    fn tier_restore(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        tiers: &Option<CkpTiers>,
        slots: Option<&CheckpointSlots>,
        rstats: &mut ResilienceStats,
    ) -> Result<(f64, u64), SolverError> {
        if let Some(tz) = tiers {
            let s = self.pstart(rank);
            let served = self.memory_restore(rank, u, tz, rstats)?;
            self.pend("driver.tier_restore.memory", rank, s);
            if let Some(restored) = served {
                return Ok(restored);
            }
        }
        let slots_ref = slots.ok_or_else(|| SolverError::Checkpoint {
            msg: "no memory tier could serve a restore and no checkpoint \
                  directory is configured for the disk tier"
                .into(),
        })?;
        let s = self.pstart(rank);
        let restored = self.disk_restore(rank, u, slots_ref)?;
        self.pend("driver.tier_restore.disk", rank, s);
        rstats.disk_restores += 1;
        if let Some(m) = &self.metrics {
            m.counter("ckp.tier.disk.restore").add(1);
        }
        Ok(restored)
    }

    /// Disk-tier restore from the per-rank rotating slots, with the
    /// cross-rank step agreement (ranks may disagree on the newest valid
    /// slot when one rank's `latest` was lost — restart from the oldest
    /// agreed step).
    fn disk_restore(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        slots: &CheckpointSlots,
    ) -> Result<(f64, u64), SolverError> {
        let ck_err = |e: rhrsc_io::checkpoint::CheckpointError| SolverError::Checkpoint {
            msg: e.to_string(),
        };
        let loaded = slots.load_newest();
        let all_loaded = rank.allreduce_min(if loaded.is_ok() { 1.0 } else { 0.0 }) > 0.5;
        let ckp = match (loaded, all_loaded) {
            (Ok(c), true) => c,
            (loaded, _) => {
                return Err(loaded.err().map(ck_err).unwrap_or(SolverError::Checkpoint {
                    msg: "checkpoint restore failed on a peer rank".into(),
                }))
            }
        };
        let agreed = rank.allreduce_min(ckp.step as f64);
        let ckp = if (ckp.step as f64) > agreed {
            load_checkpoint(&slots.prev_path())
                .ok()
                .filter(|c| (c.step as f64) == agreed)
        } else {
            Some(ckp)
        };
        let all_agreed = rank.allreduce_min(if ckp.is_some() { 1.0 } else { 0.0 }) > 0.5;
        let ckp = match (ckp, all_agreed) {
            (Some(c), true) => c,
            _ => {
                return Err(SolverError::Checkpoint {
                    msg: "ranks could not agree on a common restart checkpoint".into(),
                })
            }
        };
        if ckp.field.geom() != &self.geom || ckp.field.ncomp() != u.ncomp() {
            return Err(SolverError::Checkpoint {
                msg: "checkpoint geometry does not match this rank's block".into(),
            });
        }
        u.raw_mut().copy_from_slice(ckp.field.raw());
        Ok((ckp.time, ckp.step))
    }

    /// Capture a fresh L1 snapshot, ship the *clean* copy to the guardian
    /// (so rot injected into the local tier never contaminates the
    /// replica), then apply any injected snapshot rot and install both
    /// tiers.
    #[allow(clippy::too_many_arguments)]
    fn refresh_memory_tiers(
        &self,
        rank: &mut Rank,
        tiers: &mut CkpTiers,
        u: &Field,
        t: f64,
        step: u64,
        injector: &Option<Arc<rhrsc_comm::FaultInjector>>,
        rstats: &mut ResilienceStats,
    ) -> Result<(), SolverError> {
        let mut snap = self.capture_local_snapshot(u, t, step);
        rstats.local_snapshots += 1;
        if let Some(m) = &self.metrics {
            m.counter("ckp.tier.local.save").add(1);
        }
        let rep = self.exchange_buddy(rank, tiers, &snap)?;
        if let Some(inj) = injector {
            if let Some(sel) = inj.should_flip_snapshot_bit(SnapshotTarget::Local) {
                snap.flip_bit(sel);
                rank.trace_instant("driver.snapshot_rot_injected", 0.0);
            }
        }
        tiers.local = Some(snap);
        if let Some((ward, mut rep)) = rep {
            if let Some(inj) = injector {
                if let Some(sel) = inj.should_flip_snapshot_bit(SnapshotTarget::Buddy) {
                    rep.flip_bit(sel);
                    rank.trace_instant("driver.snapshot_rot_injected", 1.0);
                }
            }
            rstats.buddy_exchanges += 1;
            if let Some(m) = &self.metrics {
                m.counter("ckp.tier.buddy.save").add(1);
            }
            tiers.replica = Some((ward, rep));
        }
        Ok(())
    }

    /// Verify the frozen memory tiers against their stamped FNV hashes,
    /// dropping any snapshot whose bits have rotted so a later restore
    /// never trusts it (it would fail its own verify anyway — scrubbing
    /// just finds out *early*, while the disk tier is still fresh).
    fn scrub_tiers(&self, rank: &Rank, tiers: &mut CkpTiers, rstats: &mut ResilienceStats) {
        rstats.scrubs += 1;
        if let Some(m) = &self.metrics {
            m.counter("sdc.scrubs").add(1);
        }
        if tiers.local.as_ref().is_some_and(|s| !s.verify()) {
            tiers.local = None;
            rstats.snapshots_rotted += 1;
            rank.trace_instant("driver.snapshot_rot_detected", 0.0);
            if let Some(m) = &self.metrics {
                m.counter("sdc.snapshot_rot").add(1);
            }
        }
        if tiers.replica.as_ref().is_some_and(|(_, r)| !r.verify()) {
            tiers.replica = None;
            rstats.snapshots_rotted += 1;
            rank.trace_instant("driver.snapshot_rot_detected", 1.0);
            if let Some(m) = &self.metrics {
                m.counter("sdc.snapshot_rot").add(1);
            }
        }
    }

    /// Gather the interiors onto block rank 0 through the current
    /// (possibly shrunken) block→communicator translation; the free
    /// [`gather_global`] assumes the identity mapping.
    pub fn gather_interior(
        &self,
        rank: &mut Rank,
        u: &Field,
    ) -> Result<Option<Field>, SolverError> {
        const GATHER_TAG: u64 = 1000;
        let buf = self.pack_interior(u);
        if self.my_rank != 0 {
            rank.send(self.comm_of(0), GATHER_TAG, &buf);
            return Ok(None);
        }
        let (lo, hi) = self.cfg.domain;
        let global_geom = PatchGeom {
            n: self.cfg.global_n,
            ng: 0,
            origin: lo,
            dx: [
                (hi[0] - lo[0]) / self.cfg.global_n[0] as f64,
                (hi[1] - lo[1]) / self.cfg.global_n[1] as f64,
                (hi[2] - lo[2]) / self.cfg.global_n[2] as f64,
            ],
        };
        let mut global = Field::cons(global_geom);
        for b in 0..self.cfg.decomp.nranks() {
            let data = if b == 0 {
                buf.clone()
            } else {
                rank.recv_deadline(self.comm_of(b), GATHER_TAG)
                    .map_err(comm_err)?
            };
            let (off, size) = self.cfg.decomp.local_span(self.cfg.global_n, b);
            let expected = NCOMP * size[0] * size[1] * size[2];
            if data.len() != expected {
                return Err(SolverError::HaloMismatch {
                    expected,
                    got: data.len(),
                });
            }
            let mut idx = 0;
            for c in 0..NCOMP {
                for k in 0..size[2] {
                    for j in 0..size[1] {
                        for i in 0..size[0] {
                            global.set(c, off[0] + i, off[1] + j, off[2] + k, data[idx]);
                            idx += 1;
                        }
                    }
                }
            }
        }
        Ok(Some(global))
    }

    /// Advance to `t_end` with the full resilience stack:
    ///
    /// 1. in-step primitive-recovery failures are repaired by the cascade
    ///    (per [`ResilienceConfig::recovery`]),
    /// 2. a failed step (halo mismatch or Δt collapse on *any* rank — the
    ///    ranks agree via an allreduce after every step) is rolled back
    ///    from an in-memory backup and retried at halved CFL, up to
    ///    [`ResilienceConfig::max_step_retries`] times,
    /// 3. when retries are exhausted, the newest valid checkpoint is
    ///    restored (rotating per-rank `latest`/`prev` slots, ranks agree
    ///    on a common step) and the run resumes at reduced CFL, ramping
    ///    back up as steps succeed, up to
    ///    [`ResilienceConfig::max_restarts`] restores,
    /// 4. a rank that goes *silent* (crash or terminal stall) is detected
    ///    by the liveness deadlines, agreed dead by a suspicion
    ///    consensus, and the survivors **shrink**: they re-run the
    ///    decomposition over the live ranks, restore the newest global
    ///    (rank-count-independent) checkpoint, and continue degraded.
    ///    The dead rank's closure returns [`SolverError::RankFailed`].
    ///
    /// With no fault injection active, the trajectory is bit-identical to
    /// [`BlockSolver::advance_to`]: the cascade only engages on failures,
    /// the CFL scale stays exactly 1, and the coordination allreduce does
    /// not touch the state.
    ///
    /// `DistStats::steps` counts *committed* steps, including any re-run
    /// after a checkpoint restore.
    pub fn advance_to_with_restart(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        t0: f64,
        t_end: f64,
        res: &ResilienceConfig,
    ) -> Result<(DistStats, ResilienceStats), SolverError> {
        let out = self.advance_with_restart_inner(rank, u, t0, t_end, res);
        if let Err(e) = &out {
            // Terminal failure (fault escalation past every recovery
            // tier, or this rank's own injected death): flush the flight
            // recorder so the last seconds before the fault survive for
            // post-mortem, even though the caller is about to unwind.
            let reason = match e {
                SolverError::RankFailed { .. } => "rank_failed",
                SolverError::PeerSuspect { .. } => "peer_suspect",
                SolverError::Checkpoint { .. } => "checkpoint",
                SolverError::TimestepCollapse { .. } => "timestep_collapse",
                SolverError::CflViolation { .. } => "cfl_violation",
                SolverError::Con2Prim { .. } => "con2prim",
                SolverError::HaloMismatch { .. } => "halo_mismatch",
                SolverError::HaloCorrupt { .. } => "halo_corrupt",
            };
            if let Some(tracer) = rank.tracer() {
                let t_ns = tracer.stamp(rank.is_virtual().then(|| rank.vtime()));
                tracer.dump_on_fault(rank.rank() as u32, reason, t_ns);
            }
        }
        out
    }

    fn advance_with_restart_inner(
        &mut self,
        rank: &mut Rank,
        u: &mut Field,
        t0: f64,
        t_end: f64,
        res: &ResilienceConfig,
    ) -> Result<(DistStats, ResilienceStats), SolverError> {
        fn ck_err(e: rhrsc_io::checkpoint::CheckpointError) -> SolverError {
            SolverError::Checkpoint { msg: e.to_string() }
        }
        self.recovery = res.recovery;
        let start = Instant::now();
        let bytes0 = rank.bytes_sent();
        let vtime0 = rank.vtime();
        let rec0 = self.rec_stats;
        let mut stats = DistStats::default();
        let mut rstats = ResilienceStats::default();
        let mut slots = match &res.checkpoint_dir {
            Some(dir) => Some(
                CheckpointSlots::new(dir.join(format!("rank{}", self.my_rank))).map_err(ck_err)?,
            ),
            None => None,
        };
        // Global (rank-count-independent) slots live in a shared
        // subdirectory: block rank 0 writes, every survivor reads.
        let gslots = match &res.checkpoint_dir {
            Some(dir) => Some(CheckpointSlots::new(dir.join("global")).map_err(ck_err)?),
            None => None,
        };
        let mut t = t0;
        let mut step_no: u64 = 0;
        let mut cfl_scale = 1.0f64;
        let mut restarts_left = res.max_restarts;
        let mut backup = Field::cons(self.geom);
        self.dt_cache = DtCache::new();
        if let Some(slots) = &slots {
            // Always write an initial checkpoint so a restore target
            // exists from the very first step.
            let s = self.pstart(rank);
            let ckp = Checkpoint {
                time: t,
                step: step_no,
                field: u.clone(),
            };
            slots.save(&ckp).map_err(ck_err)?;
            self.pend("phase.ckp.save", rank, s);
            rstats.checkpoints_saved += 1;
        }
        if let Some(g) = &gslots {
            let s = self.pstart(rank);
            self.save_global_distributed(rank, g, u, t, step_no)?;
            self.pend("phase.ckp.global", rank, s);
            rstats.global_checkpoints_saved += 1;
        }
        if let Some(mon) = &mut self.health {
            mon.ensure_baseline(u);
        }
        let injector = rank.fault_injector().cloned();
        // Arm the diskless tiers and the live-state ABFT stamp. The
        // initial snapshot (and its buddy replica) is captured up front,
        // mirroring the initial disk checkpoint: a memory restore target
        // exists from the very first step.
        let arm_stamp = res.local_interval > 0 || res.scrub_interval > 0;
        let mut tiers = (res.local_interval > 0 && self.cfg.decomp.nranks() >= 1)
            .then(|| CkpTiers::new(res.buddy_offset, self.cfg.decomp.nranks()));
        if let Some(tz) = &mut tiers {
            let s = self.pstart(rank);
            self.refresh_memory_tiers(rank, tz, u, t, step_no, &injector, &mut rstats)?;
            self.pend("phase.ckp.memory", rank, s);
        }
        let mut stamp = arm_stamp.then(|| StateChecksum::stamp(u.raw(), NCOMP));
        if arm_stamp {
            if let Some(m) = &self.metrics {
                // Materialize the undetected-corruption counter at zero:
                // its *presence* (and staying zero) is the acceptance
                // signal the report validator checks.
                m.counter("sdc.undetected").add(0);
            }
        }
        while t < t_end - 1e-14 {
            // Rank-level crash injection: the victim stops participating
            // entirely (no farewell message — the survivors must detect
            // the silence, agree, and shrink without it).
            if let Some(inj) = &injector {
                if inj.should_crash_rank(rank.rank(), step_no) {
                    rank.trace_instant("driver.rank_failed", step_no as f64);
                    return Err(SolverError::RankFailed { step: step_no });
                }
            }
            // Silent bit-flip injection (SDC): unlike poisoning below,
            // the flipped value generally stays finite and physical-
            // looking, so con2prim sails right through it — only the
            // ABFT stamp comparison can catch it.
            if let Some(inj) = &injector {
                if let Some(sel) = inj.should_flip_bit() {
                    let cells: Vec<_> = self.geom.interior_iter().collect();
                    let pick = sel as usize % (NCOMP * cells.len());
                    let (i, j, k) = cells[pick % cells.len()];
                    let c = pick / cells.len();
                    let bit = ((sel >> 33) % 64) as u32;
                    let v = u.at(c, i, j, k);
                    u.set(c, i, j, k, f64::from_bits(v.to_bits() ^ (1u64 << bit)));
                    rank.trace_instant("driver.bitflip_injected", step_no as f64);
                    if let Some(m) = &self.metrics {
                        m.counter("sdc.injected").add(1);
                    }
                }
            }
            // Live-state scrub against the last committed stamp — every
            // step, so a flip can never survive into a checkpoint write
            // (every write this iteration happens after this check, and
            // nothing else mutates the state in between except the step
            // itself). The detecting rank still runs the step to keep
            // the collectives aligned, then escalates via the agreement.
            let mut sdc_hit = false;
            if let Some(st) = &stamp {
                if !st.verify(u.raw()) {
                    sdc_hit = true;
                    rstats.sdc_detected += 1;
                    let comp = st.corrupted_component(u.raw());
                    rank.trace_instant(
                        "driver.sdc_detected",
                        comp.map(|c| c as f64).unwrap_or(-1.0),
                    );
                    if let Some(m) = &self.metrics {
                        m.counter("sdc.detected").add(1);
                    }
                }
            }
            // Frozen-buffer scrub on its own (slower) cadence: re-hash
            // the idle local snapshot and buddy replica, dropping any
            // that rotted so a restore never trusts them.
            if res.scrub_interval > 0 && step_no.is_multiple_of(res.scrub_interval as u64) {
                if let Some(tz) = &mut tiers {
                    self.scrub_tiers(rank, tz, &mut rstats);
                }
            }
            // Deterministic state corruption, if the fault plan asks for
            // it: one interior conserved value becomes NaN, which the
            // recovery cascade must repair in-flight.
            if let Some(inj) = &injector {
                if let Some(victim) = inj.should_poison_cell() {
                    let cells: Vec<_> = self.geom.interior_iter().collect();
                    let (i, j, k) = cells[victim as usize % cells.len()];
                    u.set(0, i, j, k, f64::NAN);
                    rank.trace_instant("driver.poison_injected", step_no as f64);
                }
            }
            let mut attempt = 0usize;
            'attempts: loop {
                backup.raw_mut().copy_from_slice(u.raw());
                let scale = cfl_scale * 0.5f64.powi(attempt as i32);
                let attempt_t0 = Instant::now();
                let outcome = self.try_step(rank, u, t, t_end, scale);
                // Straggler injection: this rank runs `f`× slower. The
                // extra latency is real wall time, so the peers' liveness
                // deadlines genuinely see the lag.
                if let Some(inj) = &injector {
                    if let Some(f) = inj.should_stall_rank(rank.rank()) {
                        let extra = attempt_t0.elapsed().mul_f64((f - 1.0).max(0.0));
                        std::thread::sleep(extra);
                        if rank.is_virtual() {
                            rank.advance_vtime(extra.as_secs_f64());
                        }
                        rstats.stalls += 1;
                    }
                }
                // Every rank must agree on the outcome. The armored max
                // treats collective timeouts as the suspicion flag, so a
                // dead rank surfaces here even for the ranks that never
                // exchanged a halo with it: 0 = clean, 1 = step failure
                // (retry/restore tier), 1.5 = silent corruption detected
                // (snapshot-restore tier — retrying is useless, the
                // rollback backup is corrupt too), ≥2 = a peer looks
                // dead (consensus tier).
                let flag = if rank.evicted().is_some()
                    || rank.suspected_mask() != 0
                    || matches!(outcome, Err(SolverError::PeerSuspect { .. }))
                {
                    SUSPECT_FLAG
                } else if sdc_hit {
                    SDC_FLAG
                } else if outcome.is_err() {
                    1.0
                } else {
                    0.0
                };
                let s = self.pstart(rank);
                let agreed = rank.agree_max(flag);
                self.pend("sub.liveness.agree", rank, s);
                if agreed >= SUSPECT_FLAG {
                    // Roll back first — the attempt may have half-updated
                    // the state — then let the consensus round decide
                    // between a false alarm and a shrink.
                    u.raw_mut().copy_from_slice(backup.raw());
                    let newly_dead = rank
                        .suspicion_consensus()
                        .map_err(|_| SolverError::RankFailed { step: step_no })?;
                    if newly_dead != 0 {
                        rstats.shrinks += 1;
                        rstats.ranks_lost += u64::from(newly_dead.count_ones());
                        let s = self.pstart(rank);
                        // Cheapest rung first: reassemble the dead blocks
                        // from their guardians' buddy replicas, entirely
                        // in memory. Only if the replicas cannot cover
                        // every lost block does the shrink touch disk.
                        let from_buddies = match &tiers {
                            Some(tz) => self.shrink_from_buddies(rank, u, tz, &mut rstats)?,
                            None => None,
                        };
                        let (t_r, s_r) = match from_buddies {
                            Some(restored) => restored,
                            None => {
                                let gslots_ref =
                                    gslots.as_ref().ok_or_else(|| SolverError::Checkpoint {
                                        msg: "rank death confirmed but neither buddy \
                                              replicas nor a checkpoint directory can \
                                              serve a shrinking recovery"
                                            .into(),
                                    })?;
                                let restored = self.shrink_and_restore(rank, u, gslots_ref)?;
                                rstats.disk_restores += 1;
                                if let Some(m) = &self.metrics {
                                    m.counter("ckp.tier.disk.restore").add(1);
                                }
                                restored
                            }
                        };
                        self.pend("driver.shrink_restore", rank, s);
                        t = t_r;
                        step_no = s_r;
                        // The local domain just changed: old conservation
                        // baselines are meaningless.
                        if let Some(mon) = &mut self.health {
                            mon.rebaseline();
                            mon.ensure_baseline(u);
                        }
                        // Resume cautiously on the smaller machine.
                        cfl_scale = 0.25;
                        backup = Field::cons(self.geom);
                        // The per-rank slots are keyed by block rank, which
                        // just changed: rebind and reseed them so the
                        // retry/restore tier stays armed after the shrink.
                        if let Some(dir) = &res.checkpoint_dir {
                            let s = CheckpointSlots::new(dir.join(format!("rank{}", self.my_rank)))
                                .map_err(ck_err)?;
                            s.save(&Checkpoint {
                                time: t,
                                step: step_no,
                                field: u.clone(),
                            })
                            .map_err(ck_err)?;
                            rstats.checkpoints_saved += 1;
                            slots = Some(s);
                        }
                        // The decomposition changed: pre-shrink snapshots
                        // must never serve another restore. Rebuild the
                        // tier state for the new world and re-seed it
                        // immediately so the memory rungs stay armed.
                        if tiers.is_some() {
                            let mut tz = CkpTiers::new(res.buddy_offset, self.cfg.decomp.nranks());
                            match self.refresh_memory_tiers(
                                rank,
                                &mut tz,
                                u,
                                t,
                                step_no,
                                &injector,
                                &mut rstats,
                            ) {
                                Ok(()) | Err(SolverError::PeerSuspect { .. }) => {}
                                Err(e) => return Err(e),
                            }
                            tiers = Some(tz);
                        }
                        stamp = arm_stamp.then(|| StateChecksum::stamp(u.raw(), NCOMP));
                        if let Some(m) = &self.metrics {
                            m.counter("driver.shrinks").add(1);
                            m.counter("driver.ranks_lost")
                                .add(u64::from(newly_dead.count_ones()));
                        }
                        break 'attempts;
                    }
                    // False alarm: every suspect defended itself in the
                    // consensus. Fall through to the ordinary retry path.
                    rstats.false_suspicions += 1;
                    rank.trace_instant("driver.false_suspicion", step_no as f64);
                    if let Some(m) = &self.metrics {
                        m.counter("driver.false_suspicions").add(1);
                    }
                } else if agreed >= SDC_FLAG {
                    // Somebody's live state silently rotted — and so did
                    // its rollback backup (copied *after* the flip), so
                    // the retry tier cannot help. Restore collectively
                    // from the cheapest valid snapshot tier. This does
                    // not consume the restart budget: the numerics were
                    // never at fault, and the deterministic fault streams
                    // cannot replay the same flip after the rollback.
                    let s = self.pstart(rank);
                    let (t_r, s_r) =
                        self.tier_restore(rank, u, &tiers, slots.as_ref(), &mut rstats)?;
                    self.pend("driver.sdc_restore", rank, s);
                    t = t_r;
                    step_no = s_r;
                    stamp = arm_stamp.then(|| StateChecksum::stamp(u.raw(), NCOMP));
                    self.dt_cache.invalidate();
                    if let Some(m) = &self.metrics {
                        m.counter("sdc.restores").add(1);
                    }
                    break 'attempts;
                }
                let failed = agreed >= 1.0;
                match outcome {
                    Ok(dt) if !failed => {
                        t += dt;
                        step_no += 1;
                        stats.steps += 1;
                        stats.zone_updates +=
                            (self.geom.interior_len() * self.cfg.rk.stages()) as u64;
                        // A reduced CFL (from retries or a restart) ramps
                        // back up as steps succeed.
                        cfl_scale = if attempt > 0 { scale } else { cfl_scale };
                        cfl_scale = (cfl_scale * 2.0).min(1.0);
                        let interval = res.checkpoint_interval;
                        let due = interval > 0 && step_no.is_multiple_of(interval as u64);
                        if due {
                            if let Some(slots) = &slots {
                                let s = self.pstart(rank);
                                let ckp = Checkpoint {
                                    time: t,
                                    step: step_no,
                                    field: u.clone(),
                                };
                                slots.save(&ckp).map_err(ck_err)?;
                                self.pend("phase.ckp.save", rank, s);
                                rstats.checkpoints_saved += 1;
                            }
                        }
                        if let Some(g) = &gslots {
                            if due {
                                let s = self.pstart(rank);
                                match self.save_global_distributed(rank, g, u, t, step_no) {
                                    Ok(()) => rstats.global_checkpoints_saved += 1,
                                    // A peer died mid-gather: the suspicion
                                    // is latched in the communicator, and
                                    // the next step's agreement round will
                                    // route it into the consensus tier.
                                    Err(SolverError::PeerSuspect { .. }) => {}
                                    Err(e) => return Err(e),
                                }
                                self.pend("phase.ckp.global", rank, s);
                            }
                        }
                        // Re-stamp the committed state (the reference the
                        // next iteration's live scrub verifies against)
                        // and, on the faster memory cadence, freeze it
                        // into the L1 snapshot + ship the buddy replica.
                        if arm_stamp {
                            stamp = Some(StateChecksum::stamp(u.raw(), NCOMP));
                        }
                        if res.local_interval > 0
                            && step_no.is_multiple_of(res.local_interval as u64)
                        {
                            if let Some(tz) = &mut tiers {
                                let s = self.pstart(rank);
                                match self.refresh_memory_tiers(
                                    rank,
                                    tz,
                                    u,
                                    t,
                                    step_no,
                                    &injector,
                                    &mut rstats,
                                ) {
                                    Ok(()) => {}
                                    // A peer died mid-exchange: latched,
                                    // handled by the next agreement round.
                                    Err(SolverError::PeerSuspect { .. }) => {}
                                    Err(e) => return Err(e),
                                }
                                self.pend("phase.ckp.memory", rank, s);
                            }
                        }
                        self.health_observe(rank, u, t, step_no);
                        // The success arm is collective (the outcome flag
                        // is allreduced), so the sampling cadence stays
                        // in lockstep across ranks even through retries
                        // and restores.
                        self.telemetry_observe(rank, t, step_no, dt);
                        break;
                    }
                    outcome => {
                        // Roll back; the backup state is untouched by the
                        // failed attempt. The cached Δt was computed from
                        // (or aged against) the discarded trajectory, so
                        // it must not survive the rollback — every rank
                        // reaches this arm together (the outcome flag is
                        // allreduced), so the invalidation stays in
                        // lockstep.
                        u.raw_mut().copy_from_slice(backup.raw());
                        self.dt_cache.invalidate();
                        if attempt < res.max_step_retries {
                            if attempt == 0 {
                                rstats.retried_steps += 1;
                            }
                            rstats.retries += 1;
                            rank.trace_instant("driver.retry", (attempt + 1) as f64);
                            if let Some(m) = &self.metrics {
                                m.counter("driver.retries").add(1);
                            }
                            attempt += 1;
                            continue;
                        }
                        // Retries exhausted: walk the checkpoint
                        // hierarchy — memory tiers first, disk last. The
                        // attempt/restart counters march in lockstep on
                        // every rank, so this decision is collective.
                        if restarts_left == 0 || (tiers.is_none() && slots.is_none()) {
                            return Err(outcome.err().unwrap_or(SolverError::Checkpoint {
                                msg: "step failed on a peer rank; retries and \
                                          restarts exhausted"
                                    .into(),
                            }));
                        }
                        let s = self.pstart(rank);
                        let (t_r, s_r) =
                            self.tier_restore(rank, u, &tiers, slots.as_ref(), &mut rstats)?;
                        t = t_r;
                        step_no = s_r;
                        stamp = arm_stamp.then(|| StateChecksum::stamp(u.raw(), NCOMP));
                        // The state just jumped back in time: a Δt cached
                        // on the abandoned trajectory is stale.
                        self.dt_cache.invalidate();
                        rstats.restarts += 1;
                        restarts_left -= 1;
                        self.pend("driver.restart_restore", rank, s);
                        if let Some(m) = &self.metrics {
                            m.counter("driver.restarts").add(1);
                        }
                        // Resume cautiously; successful steps double the
                        // scale back toward 1.
                        cfl_scale = 0.25;
                        break;
                    }
                }
            }
        }
        rstats.recovery = RecoveryStats {
            relaxed_tol: self.rec_stats.relaxed_tol - rec0.relaxed_tol,
            neighbor_avg: self.rec_stats.neighbor_avg - rec0.neighbor_avg,
            atmosphere: self.rec_stats.atmosphere - rec0.atmosphere,
        };
        stats.elapsed = start.elapsed();
        stats.bytes_sent = rank.bytes_sent() - bytes0;
        stats.vtime = rank.vtime() - vtime0;
        Ok((stats, rstats))
    }
}

/// Map a communication-layer liveness error into the solver's error
/// space: silence becomes a suspicion (consensus decides), corruption a
/// retryable step failure, and eviction a terminal rank failure. Shared
/// with the distributed AMR driver ([`crate::amr_dist`]).
pub(crate) fn comm_err(e: CommError) -> SolverError {
    match e {
        CommError::PeerSuspect { rank, .. } => SolverError::PeerSuspect { rank },
        CommError::CorruptPayload { from, .. } => SolverError::HaloCorrupt { from },
        CommError::Evicted { .. } => SolverError::RankFailed { step: 0 },
    }
}

/// `u[int] = b*u0[int] + a*u[int] + c*r[int]`, with the summation order
/// chosen to match [`crate::integrate`]'s serial combiner exactly —
/// floating-point addition is not associative, and the distributed solver
/// guarantees bit-identity with the serial one.
fn lincomb(u: &mut Field, a: f64, u0: Option<(&Field, f64)>, r: &Field, c: f64) {
    // Component-major over contiguous interior x-runs: per element the
    // expression is `(f0*b) + (u*a) + (r*c)` with left-associated adds,
    // exactly the per-component parse of the historical `Cons`-vector
    // form (scalar·vector then componentwise adds).
    let geom = *u.geom();
    let n = geom.len();
    let (ngx, ngy, ngz) = (geom.ng_of(0), geom.ng_of(1), geom.ng_of(2));
    let nx = geom.n[0];
    let ur = u.raw_mut();
    let rr = r.raw();
    for k in ngz..ngz + geom.n[2] {
        for j in ngy..ngy + geom.n[1] {
            let base = geom.idx(ngx, j, k);
            for comp in 0..NCOMP {
                let o = comp * n + base;
                match u0 {
                    Some((f0, b)) => {
                        let fr = f0.raw();
                        for x in 0..nx {
                            ur[o + x] = fr[o + x] * b + ur[o + x] * a + rr[o + x] * c;
                        }
                    }
                    None => {
                        for x in 0..nx {
                            ur[o + x] = ur[o + x] * a + rr[o + x] * c;
                        }
                    }
                }
            }
        }
    }
}

fn transverse_len(geom: &PatchGeom, d: usize) -> usize {
    let (a, b) = transverse_dims(d);
    geom.n[a] * geom.n[b]
}

fn transverse_dims(d: usize) -> (usize, usize) {
    match d {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    }
}

/// Iterate the *interior* transverse coordinates of dimension `d`,
/// yielding ghost-inclusive `(t1, t2)` with `t1` the lower transverse dim.
fn for_each_transverse(geom: &PatchGeom, d: usize, mut f: impl FnMut(usize, usize)) {
    let (a, b) = transverse_dims(d);
    let (ga, gb) = (geom.ng_of(a), geom.ng_of(b));
    for t2 in 0..geom.n[b] {
        for t1 in 0..geom.n[a] {
            f(t1 + ga, t2 + gb);
        }
    }
}

fn cell_of(d: usize, l: usize, t1: usize, t2: usize) -> (usize, usize, usize) {
    match d {
        0 => (l, t1, t2),
        1 => (t1, l, t2),
        _ => (t1, t2, l),
    }
}

/// Gather the interior of every rank's block onto rank 0 as a global,
/// ghost-free field (for validation and output). Other ranks get
/// `Ok(None)`. A wrong-length contribution (which a reliable transport
/// never produces, but a corrupted one might) is reported as
/// [`SolverError::HaloMismatch`] after all contributions have been
/// drained.
pub fn gather_global(
    rank: &mut Rank,
    cfg: &DistConfig,
    local: &Field,
) -> Result<Option<Field>, SolverError> {
    const GATHER_TAG: u64 = 1000;
    let geom = cfg.local_geom(rank.rank());
    // Flatten the interior, component-major.
    let mut buf = Vec::with_capacity(NCOMP * geom.interior_len());
    for c in 0..NCOMP {
        for (i, j, k) in geom.interior_iter() {
            buf.push(local.at(c, i, j, k));
        }
    }
    if rank.rank() != 0 {
        rank.send(0, GATHER_TAG, &buf);
        return Ok(None);
    }
    // Drain every contribution before validating any of them.
    let rbufs: Vec<Vec<f64>> = (1..rank.size()).map(|r| rank.recv(r, GATHER_TAG)).collect();
    let (lo, hi) = cfg.domain;
    let global_geom = PatchGeom {
        n: cfg.global_n,
        ng: 0,
        origin: lo,
        dx: [
            (hi[0] - lo[0]) / cfg.global_n[0] as f64,
            (hi[1] - lo[1]) / cfg.global_n[1] as f64,
            (hi[2] - lo[2]) / cfg.global_n[2] as f64,
        ],
    };
    let mut global = Field::cons(global_geom);
    let mut place = |r: usize, buf: &[f64]| -> Result<(), SolverError> {
        let (off, size) = cfg.decomp.local_span(cfg.global_n, r);
        let expected = NCOMP * size[0] * size[1] * size[2];
        if buf.len() != expected {
            return Err(SolverError::HaloMismatch {
                expected,
                got: buf.len(),
            });
        }
        let mut idx = 0;
        for c in 0..NCOMP {
            for k in 0..size[2] {
                for j in 0..size[1] {
                    for i in 0..size[0] {
                        global.set(c, off[0] + i, off[1] + j, off[2] + k, buf[idx]);
                        idx += 1;
                    }
                }
            }
        }
        Ok(())
    };
    place(0, &buf)?;
    for (r, rbuf) in rbufs.iter().enumerate() {
        place(r + 1, rbuf)?;
    }
    Ok(Some(global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::PatchSolver;
    use crate::problems::Problem;
    use rhrsc_comm::{run, NetworkModel};
    use rhrsc_grid::{bc, Bc};
    use rhrsc_runtime::metrics::Registry;

    fn sod_cfg(nranks: usize, mode: ExchangeMode) -> DistConfig {
        DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk3,
            global_n: [128, 1, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::line(nranks, false),
            bcs: bc::uniform(Bc::Outflow),
            cfl: 0.4,
            mode,
            gang_threads: 0,
            dt_refresh_interval: 1,
        }
    }

    /// Serial reference: the same problem on one patch with PatchSolver.
    fn serial_reference(cfg: &DistConfig, ic: &dyn Fn([f64; 3]) -> Prim, t_end: f64) -> Field {
        let geom = PatchGeom {
            n: cfg.global_n,
            ng: cfg.scheme.required_ghosts(),
            origin: cfg.domain.0,
            dx: cfg.local_geom(0).dx,
        };
        let mut u = init_cons(geom, &cfg.scheme.eos, ic);
        let mut solver = PatchSolver::new(cfg.scheme, cfg.bcs, cfg.rk, geom);
        solver
            .advance_to(&mut u, 0.0, t_end, cfg.cfl, None)
            .unwrap();
        u
    }

    fn distributed_global(
        cfg: &DistConfig,
        ic: impl Fn([f64; 3]) -> Prim + Send + Sync + Copy,
        t_end: f64,
    ) -> Field {
        let outs = run(cfg.decomp.nranks(), NetworkModel::ideal(), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, t_end).unwrap();
            gather_global(rank, cfg, &u).unwrap()
        });
        outs.into_iter().next().unwrap().unwrap()
    }

    fn interior_of(global_like: &Field, reference: &Field) -> f64 {
        // Max abs difference between a gathered (ghost-free) field and the
        // interior of a ghosted reference.
        let g = reference.geom();
        let mut m = 0.0f64;
        for c in 0..NCOMP {
            for k in 0..g.n[2] {
                for j in 0..g.n[1] {
                    for i in 0..g.n[0] {
                        let a = global_like.at(c, i, j, k);
                        let b = reference.at(c, i + g.ng_of(0), j + g.ng_of(1), k + g.ng_of(2));
                        m = m.max((a - b).abs());
                    }
                }
            }
        }
        m
    }

    #[test]
    fn distributed_sod_matches_serial_bitwise_bulk_sync() {
        let cfg = sod_cfg(4, ExchangeMode::BulkSynchronous);
        let prob = Problem::sod();
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let _ = prob;
        let reference = serial_reference(&cfg, &ic, 0.2);
        let global = distributed_global(&cfg, ic, 0.2);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn distributed_sod_matches_serial_bitwise_overlap() {
        let cfg = sod_cfg(3, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let reference = serial_reference(&cfg, &ic, 0.2);
        let global = distributed_global(&cfg, ic, 0.2);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn periodic_2d_distributed_matches_serial() {
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [32, 32, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp {
                dims: [2, 2, 1],
                periodic: [true, true, false],
            },
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::Overlap,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0
                + 0.4
                    * (2.0 * std::f64::consts::PI * x[0]).sin()
                    * (2.0 * std::f64::consts::PI * x[1]).cos(),
            vel: [0.4, -0.3, 0.0],
            p: 1.0,
        };
        let reference = serial_reference(&cfg, &ic, 0.1);
        let global = distributed_global(&cfg, ic, 0.1);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn overlap_with_latency_still_correct() {
        let cfg = sod_cfg(4, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let reference = serial_reference(&cfg, &ic, 0.05);
        let outs = run(
            4,
            NetworkModel::with_latency(Duration::from_micros(200)),
            |rank| {
                let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
                gather_global(rank, &cfg, &u).unwrap()
            },
        );
        let global = outs.into_iter().next().unwrap().unwrap();
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn gang_threads_do_not_change_results() {
        let mut cfg = sod_cfg(2, ExchangeMode::BulkSynchronous);
        cfg.gang_threads = 3;
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let reference = serial_reference(&cfg, &ic, 0.1);
        let global = distributed_global(&cfg, ic, 0.1);
        assert_eq!(interior_of(&global, &reference), 0.0);
    }

    #[test]
    fn virtual_time_mode_identical_results_and_decreasing_makespan() {
        // Virtual-time universes must not change the numbers, and the
        // simulated makespan must shrink as ranks are added (strong
        // scaling shape, even on a single-core host).
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0 + 0.4 * (2.0 * std::f64::consts::PI * x[0]).sin(),
            vel: [0.4, 0.0, 0.0],
            p: 1.0,
        };
        let make_cfg = |p: usize| DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [256, 1, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::line(p, true),
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let model = NetworkModel::virtual_cluster(Duration::from_micros(1), 10e9);
        let mut makespans = Vec::new();
        let mut fields = Vec::new();
        for p in [1usize, 4] {
            let cfg = make_cfg(p);
            let outs = run(p, model, |rank| {
                let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                let st = solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
                (st, gather_global(rank, &cfg, &u).unwrap())
            });
            let makespan = outs.iter().map(|(st, _)| st.vtime).fold(0.0, f64::max);
            makespans.push(makespan);
            fields.push(outs.into_iter().next().unwrap().1.unwrap());
        }
        assert_eq!(
            fields[0].raw(),
            fields[1].raw(),
            "virtual time must not change results"
        );
        assert!(
            makespans[1] < 0.7 * makespans[0],
            "4-rank virtual makespan {} vs 1-rank {}",
            makespans[1],
            makespans[0]
        );
    }

    #[test]
    fn resilient_advance_without_faults_is_bit_identical() {
        // With no fault injection the resilient loop must reproduce the
        // plain advance exactly — cascade, backup, and the coordination
        // allreduce are all invisible on the healthy path.
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let plain = distributed_global(&cfg, ic, 0.1);
        let dir = std::env::temp_dir().join("rhrsc-resilient-bitident");
        let _ = std::fs::remove_dir_all(&dir);
        let res = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 7,
            ..ResilienceConfig::default()
        };
        let outs = run(2, NetworkModel::ideal(), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            let (_, rstats) = solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
                .unwrap();
            (rstats, gather_global(rank, &cfg, &u).unwrap())
        });
        for (rstats, _) in &outs {
            assert_eq!(rstats.retries, 0);
            assert_eq!(rstats.restarts, 0);
            assert_eq!(rstats.recovery.total(), 0);
            assert!(rstats.checkpoints_saved > 0);
        }
        let global = outs.into_iter().next().unwrap().1.unwrap();
        assert_eq!(global.raw(), plain.raw());

        // Arming the flight recorder and the physics-health monitor must
        // not change a single bit either: all instrumentation is
        // read-only over the state.
        use rhrsc_runtime::trace::Tracer;
        let res_traced = ResilienceConfig {
            checkpoint_dir: Some(dir.join("traced")),
            checkpoint_interval: 7,
            ..ResilienceConfig::default()
        };
        let tracer = std::sync::Arc::new(Tracer::new(1024));
        let outs = run(2, NetworkModel::ideal(), |rank| {
            rank.set_trace(tracer.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.set_health(crate::health::HealthConfig {
                verbose: false,
                ..Default::default()
            });
            solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res_traced)
                .unwrap();
            gather_global(rank, &cfg, &u).unwrap()
        });
        let traced = outs.into_iter().next().unwrap().unwrap();
        assert_eq!(
            traced.raw(),
            plain.raw(),
            "tracing + health instrumentation must be bit-invisible"
        );
        // And the recorder actually captured the run.
        let json = tracer.to_chrome_json();
        assert!(json.contains("phase.") && json.contains("health.drift"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_halos_trigger_cfl_backoff_retries() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let dir = std::env::temp_dir().join("rhrsc-resilient-retry");
        let _ = std::fs::remove_dir_all(&dir);
        let res = ResilienceConfig {
            max_step_retries: 6,
            max_restarts: 10,
            checkpoint_interval: 5,
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let plan = FaultPlan {
            seed: 7,
            msg_truncate_prob: 0.05,
            ..FaultPlan::disabled()
        };
        let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
                .unwrap()
        });
        let retries: u64 = outs.iter().map(|(_, r)| r.retries).sum();
        assert!(retries > 0, "expected at least one step retry under faults");
        // The decision is collective: every rank retried the same steps.
        assert_eq!(outs[0].1.retries, outs[1].1.retries);
        assert_eq!(outs[0].1.retried_steps, outs[1].1.retried_steps);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_retries_escalate_to_checkpoint_restart() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let dir = std::env::temp_dir().join("rhrsc-resilient-restart");
        let _ = std::fs::remove_dir_all(&dir);
        // No step retries allowed: any failed step must restore from the
        // rotating checkpoint slots.
        let res = ResilienceConfig {
            max_step_retries: 0,
            max_restarts: 200,
            checkpoint_interval: 3,
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let plan = FaultPlan {
            seed: 11,
            msg_truncate_prob: 0.02,
            ..FaultPlan::disabled()
        };
        let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
                .unwrap()
        });
        assert!(
            outs.iter().all(|(_, r)| r.restarts > 0),
            "expected at least one checkpoint restore, got {:?}",
            outs.iter().map(|(_, r)| r.restarts).collect::<Vec<_>>()
        );
        assert_eq!(outs[0].1.restarts, outs[1].1.restarts);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_cells_are_repaired_by_the_cascade() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let res = ResilienceConfig::default(); // no checkpointing needed
        let plan = FaultPlan {
            seed: 3,
            cell_poison_prob: 0.25,
            ..FaultPlan::disabled()
        };
        let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            let out = solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res)
                .unwrap();
            // The final state must be fully healthy again.
            assert!(u.raw().iter().all(|v| v.is_finite()));
            out
        });
        let repaired: u64 = outs.iter().map(|(_, r)| r.recovery.total()).sum();
        assert!(
            repaired > 0,
            "expected the cascade to repair poisoned cells"
        );
    }

    #[test]
    fn metrics_capture_phases_without_changing_results() {
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let plain = distributed_global(&cfg, ic, 0.05);
        let reg = Arc::new(Registry::new());
        let outs = {
            let (reg, cfg) = (reg.clone(), &cfg);
            // 20 ms modeled latency: virtual-time waits cost no wall
            // clock, and `work()` charges *measured* compute to vtime, so
            // the latency must dominate even a descheduled compute
            // section for the halo-wait assertion to be load-robust.
            run(
                2,
                NetworkModel::virtual_cluster(Duration::from_millis(20), 1e9),
                move |rank| {
                    rank.set_metrics(reg.clone());
                    let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                    solver.set_metrics(reg.clone());
                    solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
                    gather_global(rank, cfg, &u).unwrap()
                },
            )
        };
        let global = outs.into_iter().next().unwrap().unwrap();
        assert_eq!(
            global.raw(),
            plain.raw(),
            "instrumentation must not change the numbers"
        );
        let snap = reg.snapshot();
        // `phase.dt.local` is gone by design: the local CFL bound now
        // falls out of the fused stage-0 wave-speed scan.
        for phase in [
            "phase.dt.allreduce",
            "phase.halo.pack",
            "phase.halo.send",
            "phase.halo.wait",
            "phase.halo.unpack",
            "phase.rhs.deep",
            "phase.rhs.shell",
            "phase.rk.combine",
        ] {
            let h = snap
                .histograms
                .get(phase)
                .unwrap_or_else(|| panic!("missing {phase}: have {:?}", snap.histograms.keys()));
            assert!(h.count > 0, "{phase} never recorded");
        }
        // The 20 ms-latency halo waits dominate the tiny per-rank compute.
        assert!(snap.phase_secs("phase.halo.wait") > 0.0);
        let iters = &snap.histograms["c2p.newton_iters"];
        assert!(iters.count > 0 && iters.sum > 0, "con2prim work uncounted");
        assert!(snap.counters["comm.msgs.halo"] > 0);
    }

    #[test]
    fn rank_crash_triggers_shrinking_recovery() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        // Rank 0 dies at step 4. Killing rank 0 (not the last rank)
        // exercises the block→communicator translation: after the shrink
        // the survivors' block ranks 0..2 map onto communicator ranks
        // 1..3.
        let cfg = sod_cfg(3, ExchangeMode::BulkSynchronous);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let dir = std::env::temp_dir().join("rhrsc-shrink-test");
        let _ = std::fs::remove_dir_all(&dir);
        let res = ResilienceConfig {
            checkpoint_interval: 2,
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let plan = FaultPlan {
            seed: 5,
            crash_rank: Some(0),
            crash_step: 4,
            ..FaultPlan::disabled()
        };
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
        let reference = serial_reference(&cfg, &ic, 0.1);
        let outs = run_with_faults(3, model, Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            match solver.advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res) {
                Ok((_, rstats)) => {
                    let g = solver.gather_interior(rank, &u).unwrap();
                    Some((rstats, g))
                }
                Err(SolverError::RankFailed { .. }) => None,
                Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
            }
        });
        assert!(outs[0].is_none(), "the victim must report RankFailed");
        let survivors: Vec<_> = outs.iter().flatten().collect();
        assert_eq!(survivors.len(), 2, "both survivors must finish");
        for (rstats, _) in &survivors {
            assert_eq!(rstats.shrinks, 1, "{rstats:?}");
            assert_eq!(rstats.ranks_lost, 1);
        }
        // The degraded run restarts from a checkpoint with a reduced CFL,
        // so the Δt sequence differs from the reference — compare in L1,
        // not bitwise.
        let global = survivors
            .iter()
            .find_map(|(_, g)| g.clone())
            .expect("the new block rank 0 must gather");
        let g = reference.geom();
        let mut l1 = 0.0f64;
        let cells = (g.n[0] * g.n[1] * g.n[2] * NCOMP) as f64;
        for c in 0..NCOMP {
            for k in 0..g.n[2] {
                for j in 0..g.n[1] {
                    for i in 0..g.n[0] {
                        let a = global.at(c, i, j, k);
                        let b = reference.at(c, i + g.ng_of(0), j + g.ng_of(1), k + g.ng_of(2));
                        assert!(a.is_finite());
                        l1 += (a - b).abs();
                    }
                }
            }
        }
        l1 /= cells;
        assert!(l1 < 0.02, "L1 drift after shrink too large: {l1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dt_cadence_coasts_and_guard_forces_early_refresh() {
        // White-box walk of the cadenced-Δt state machine: refresh →
        // AIMD window growth → coast at 0.9× → violation detection when
        // the cache goes stale → window collapse at the next refresh.
        let mut cfg = sod_cfg(1, ExchangeMode::BulkSynchronous);
        cfg.dt_refresh_interval = 8;
        // A low-amplitude smooth wave: the CFL bound drifts ≪ 10% per
        // step, so the 0.9× coast margin absorbs it and only the
        // deliberately poisoned cache below may trip the guard. (On a
        // developing shock the bound can legitimately shrink past the
        // margin in one step — that's the guard's job, not this test's.)
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0 + 0.01 * (2.0 * std::f64::consts::PI * x[0]).sin(),
            vel: [0.1, 0.0, 0.0],
            p: 1.0,
        };
        let reg = Arc::new(Registry::new());
        let outs = {
            let (reg, cfg) = (reg.clone(), &cfg);
            run(1, NetworkModel::ideal(), move |rank| {
                let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                solver.set_metrics(reg.clone());

                // Step 1: the cache starts invalid, so this refreshes and
                // the clean window doubles (1 → 2).
                let dt0 = solver.step_auto(rank, &mut u, None, 1.0, false).unwrap();
                assert!(solver.dt_cache.valid);
                assert_eq!((solver.dt_cache.age, solver.dt_cache.window), (1, 2));
                assert_eq!(dt0.to_bits(), solver.dt_cache.dt.to_bits());

                // Step 2: coasts on 0.9× the cached value; the safety
                // margin keeps the smooth evolution inside the bound.
                let dt1 = solver.step_auto(rank, &mut u, None, 1.0, false).unwrap();
                assert_eq!(dt1.to_bits(), (0.9 * solver.dt_cache.dt).to_bits());
                assert_eq!(solver.dt_cache.age, 2);
                assert_eq!(solver.dt_cache.violations, 0);

                // Poison the cache: a stale 2× Δt mid-window, as a
                // recovery path that forgot to invalidate would leave
                // behind. The coasted 0.9 × 2 × Δt overruns the freshly
                // scanned local bound and must trip the guard (the step
                // itself still runs — effective CFL 0.72 is SSP-RK3
                // stable — and Δt must not be adjusted locally).
                let stale = 2.0 * solver.dt_cache.dt;
                solver.dt_cache.dt = stale;
                solver.dt_cache.age = 1;
                solver.dt_cache.window = 8;
                let dt2 = solver.step_auto(rank, &mut u, None, 1.0, false).unwrap();
                assert_eq!(dt2.to_bits(), (0.9 * stale).to_bits());
                assert_eq!(solver.dt_cache.violations, 1, "stale coast not detected");

                // Force the window to elapse: the next refresh reports
                // the violation on the piggybacked allreduce component
                // and collapses the window to every-step refreshes.
                solver.dt_cache.age = solver.dt_cache.window;
                solver.step_auto(rank, &mut u, None, 1.0, false).unwrap();
                assert_eq!(solver.dt_cache.window, 1, "violation must collapse window");
                assert_eq!(solver.dt_cache.violations, 0);
                assert!(u.raw().iter().all(|v| v.is_finite()));
            })
        };
        drop(outs);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters.get("dt.cadence.violation").copied(),
            Some(1),
            "violation counter must record exactly the poisoned coast"
        );
        // 4 steps, but only 2 allreduces (steps 1 and 4): coasting
        // actually skipped the collective.
        assert_eq!(snap.histograms["phase.dt.allreduce"].count, 2);
    }

    #[test]
    fn rank_crash_mid_cadence_window_recovers_with_fresh_dt() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        // Regression for the stale-Δt-cache bug: rank 0 dies *inside* a
        // coast window (`dt_refresh_interval > 1`), so at the moment of
        // the crash every survivor holds a cached Δt that was allreduced
        // with the dead rank over pre-rollback state. The shrink path
        // must invalidate that cache when it restores the checkpoint —
        // before the fix the survivors coasted on it and diverged.
        let mut cfg = sod_cfg(3, ExchangeMode::BulkSynchronous);
        cfg.dt_refresh_interval = 5;
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let dir = std::env::temp_dir().join("rhrsc-shrink-cadence-test");
        let _ = std::fs::remove_dir_all(&dir);
        let res = ResilienceConfig {
            checkpoint_interval: 2,
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let plan = FaultPlan {
            seed: 5,
            crash_rank: Some(0),
            crash_step: 4,
            ..FaultPlan::disabled()
        };
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
        let reference = serial_reference(&cfg, &ic, 0.1);
        let outs = run_with_faults(3, model, Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            match solver.advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res) {
                Ok((_, rstats)) => {
                    // The restored run must never trip the coast guard:
                    // a tripped guard means a stale cached Δt survived
                    // the restore.
                    assert_eq!(
                        solver.dt_cache.violations,
                        0,
                        "rank {}: stale Δt cache coasted past the bound after recovery",
                        rank.rank()
                    );
                    let g = solver.gather_interior(rank, &u).unwrap();
                    Some((rstats, g))
                }
                Err(SolverError::RankFailed { .. }) => None,
                Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
            }
        });
        assert!(outs[0].is_none(), "the victim must report RankFailed");
        let survivors: Vec<_> = outs.iter().flatten().collect();
        assert_eq!(survivors.len(), 2, "both survivors must finish");
        for (rstats, _) in &survivors {
            assert_eq!(rstats.shrinks, 1, "{rstats:?}");
            assert_eq!(rstats.ranks_lost, 1);
        }
        let global = survivors
            .iter()
            .find_map(|(_, g)| g.clone())
            .expect("the new block rank 0 must gather");
        let g = reference.geom();
        let mut l1 = 0.0f64;
        let cells = (g.n[0] * g.n[1] * g.n[2] * NCOMP) as f64;
        for c in 0..NCOMP {
            for k in 0..g.n[2] {
                for j in 0..g.n[1] {
                    for i in 0..g.n[0] {
                        let a = global.at(c, i, j, k);
                        let b = reference.at(c, i + g.ng_of(0), j + g.ng_of(1), k + g.ng_of(2));
                        assert!(a.is_finite());
                        l1 += (a - b).abs();
                    }
                }
            }
        }
        l1 /= cells;
        assert!(l1 < 0.02, "L1 drift after cadenced shrink too large: {l1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn straggler_rank_is_tolerated_without_eviction() {
        use rhrsc_comm::{run_with_faults, FaultPlan};
        // A 3× straggler is far inside the default 2 s liveness deadline:
        // the run must complete with zero suspicions or shrinks, and the
        // extra latency must not change a single bit of the solution.
        let cfg = sod_cfg(2, ExchangeMode::Overlap);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let plain = distributed_global(&cfg, ic, 0.05);
        let plan = FaultPlan {
            seed: 9,
            stall_rank: Some(1),
            stall_factor: 3.0,
            ..FaultPlan::disabled()
        };
        let res = ResilienceConfig::default();
        let outs = run_with_faults(2, NetworkModel::ideal(), Some(plan), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            let (_, rstats) = solver
                .advance_to_with_restart(rank, &mut u, 0.0, 0.05, &res)
                .unwrap();
            (rstats, solver.gather_interior(rank, &u).unwrap())
        });
        assert!(outs[1].0.stalls > 0, "the straggler must have been stalled");
        for (rstats, _) in &outs {
            assert_eq!(rstats.shrinks, 0);
            assert_eq!(rstats.false_suspicions, 0);
            assert_eq!(rstats.retries, 0);
        }
        let global = outs.into_iter().next().unwrap().1.unwrap();
        assert_eq!(
            global.raw(),
            plain.raw(),
            "a tolerated straggler must not change the numbers"
        );
    }

    #[test]
    fn stats_populated() {
        let cfg = sod_cfg(2, ExchangeMode::BulkSynchronous);
        let ic = |x: [f64; 3]| {
            if x[0] < 0.5 {
                Prim::new_1d(1.0, 0.0, 1.0)
            } else {
                Prim::new_1d(0.125, 0.0, 0.1)
            }
        };
        let outs = run(2, NetworkModel::ideal(), |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap()
        });
        for st in &outs {
            assert!(st.steps > 0);
            assert!(st.bytes_sent > 0, "halos must move bytes");
            assert!(st.zone_updates > 0);
        }
    }
}
