//! Block-structured adaptive mesh refinement (AMR) for 1D problems:
//! multiple refinement levels at ratio 2 with Berger–Oliger time
//! subcycling, conservative refluxing, and dynamic regridding.
//!
//! This generalizes the two-level static [`crate::smr::SmrSolver`] to a
//! *hierarchy*: level 0 is a single patch covering the domain; every
//! level `ℓ ≥ 1` is a set of disjoint rectangular patches at cell size
//! `Δx₀/2^ℓ`, **properly nested** inside level `ℓ−1` with at least
//! [`AmrConfig::nest_margin`] parent cells of clearance. Both solvers are
//! built from the shared [`crate::refine`] operators.
//!
//! The moving parts:
//!
//! * **Error estimation** — a Löhner-style normalized second-difference
//!   indicator on the conserved density `D` and energy `τ` flags cells
//!   whose local curvature exceeds [`AmrConfig::threshold`].
//! * **Clustering** — flagged cells are dilated by [`AmrConfig::buffer`]
//!   cells, intersected with the properly-nested admissible region, and
//!   signature-clustered into maximal runs (runs closer than
//!   [`AmrConfig::merge_gap`] merge; runs grow to [`AmrConfig::min_size`]).
//! * **Subcycling** — level `ℓ` advances with `Δt/2^ℓ`; each child level
//!   takes two substeps per parent step with ghost data prolonged from a
//!   *time-interpolated* parent state (the interpolation parameter is
//!   propagated up the ancestor chain, so a level-2 stage reads level-1
//!   and level-0 data at the same physical time).
//! * **Refluxing** — during a parent step the parent-side flux at every
//!   coarse–fine interface is accumulated with the SSP-RK *effective*
//!   weights; the child accumulates its own boundary fluxes over both
//!   substeps with half weights. After restriction the uncovered parent
//!   neighbor is corrected by the difference, which makes the composite
//!   `D`/`S`/`τ` integrals exact to round-off on periodic domains
//!   (asserted by tests and by the property suite).
//! * **Regridding** — every [`AmrConfig::regrid_interval`] coarse steps
//!   the hierarchy is rebuilt coarse-to-fine; new patches copy state from
//!   the old hierarchy where it overlaps and conservatively prolong from
//!   the parent elsewhere. Because patches always cover whole parent
//!   cells, the transfer preserves the composite integrals exactly.
//! * **Offload** — with [`AmrSolver::attach_device`], fine-level residual
//!   evaluations are staged through the simulated [`Accelerator`]
//!   (upload primitives → launch the reconstruction/Riemann kernel →
//!   download residual and interface fluxes), the same path
//!   [`crate::DevicePatchSolver`] takes; results are bit-identical to the
//!   host path.
//!
//! Metrics (`amr.regrids`, `amr.updates.l<ℓ>`, `amr.reflux.corrections`,
//! `amr.dev.launches`, the `amr.patches` histogram) and trace spans
//! (`amr.regrid`, `amr.reflux`) thread through the PR 2/PR 4 layers via
//! [`AmrSolver::set_metrics`] / [`AmrSolver::set_trace`].

use crate::integrate::RkOrder;
use crate::refine::{prolong_span, restrict_onto, rhs_1d_with_fluxes, rk_tables};
use crate::scheme::{
    apply_conserved_floors, init_cons, max_dt, prim_at, recover_prims, Geometry, Scheme,
    SolverError,
};
use rhrsc_grid::{fill_ghosts, BcSet, Field, PatchGeom};
use rhrsc_io::checkpoint::{AmrCheckpoint, AmrPatchRecord};
use rhrsc_runtime::trace::{Tracer, Track};
use rhrsc_runtime::{Accelerator, AcceleratorConfig, Registry};
use rhrsc_srhd::{Cons, Prim, NCOMP};
use std::sync::Arc;

/// Tuning knobs of the AMR hierarchy.
#[derive(Debug, Clone)]
pub struct AmrConfig {
    /// Total number of levels including the base grid (1 = uniform).
    pub max_levels: usize,
    /// Löhner indicator threshold above which a cell is flagged.
    pub threshold: f64,
    /// Dilation radius around flagged cells, in parent-level cells.
    pub buffer: usize,
    /// Minimum patch width in parent-level cells (small runs grow).
    pub min_size: usize,
    /// Runs separated by fewer than this many parent cells merge.
    pub merge_gap: usize,
    /// Coarse steps between regrids (0 disables regridding).
    pub regrid_interval: usize,
    /// Proper-nesting clearance: parent interior cells required between a
    /// child patch and the edge of its parent's region. Must be ≥ 2 so
    /// that reflux targets are uncovered and prolongation stencils stay
    /// inside the parent patch (plus its own filled ghosts).
    pub nest_margin: usize,
}

impl Default for AmrConfig {
    fn default() -> Self {
        AmrConfig {
            max_levels: 3,
            threshold: 0.35,
            buffer: 2,
            min_size: 4,
            merge_gap: 4,
            regrid_interval: 4,
            nest_margin: 2,
        }
    }
}

/// One rectangular patch of a refinement level. `lo` and `n` index the
/// level's *global* cell space (cell `g` spans
/// `[x0 + g·Δxℓ, x0 + (g+1)·Δxℓ]`); `lo` is always even for `ℓ ≥ 1`, so a
/// patch covers whole parent cells.
pub(crate) struct Patch {
    pub(crate) lo: usize,
    pub(crate) n: usize,
    /// Index of the parent patch in `levels[ℓ-1]` (0 for level 0).
    pub(crate) parent_idx: usize,
    pub(crate) u: Field,
    pub(crate) prim: Field,
    pub(crate) rhs: Field,
    pub(crate) stage: Field,
    /// State at the start of the current step (children's lerp anchor).
    pub(crate) base: Field,
    /// Scratch for time-interpolated ghost prolongation.
    pub(crate) lerp: Field,
    pub(crate) flux: Vec<Cons>,
    /// Accumulated own-boundary effective fluxes toward the parent.
    pub(crate) acc: [Cons; 2],
    /// Parent-side accumulated effective fluxes at this patch's faces.
    pub(crate) acc_parent: [Cons; 2],
}

/// Multi-level adaptive-mesh solver for 1D Cartesian problems.
pub struct AmrSolver {
    pub(crate) scheme: Scheme,
    pub(crate) bcs: BcSet,
    pub(crate) rk: RkOrder,
    pub(crate) cfg: AmrConfig,
    x0: f64,
    dx0: f64,
    pub(crate) n0: usize,
    pub(crate) ng: usize,
    /// `levels[0]` holds exactly one patch covering the domain; finer
    /// levels may be empty.
    pub(crate) levels: Vec<Vec<Patch>>,
    /// Start position of each level's current step within its parent's
    /// step (0.0 or 0.5), for the ghost time-interpolation chain.
    pub(crate) frac: Vec<f64>,
    pub(crate) steps: u64,
    /// Interior-cell stage updates per level.
    pub(crate) updates: Vec<u64>,
    /// Per-level update counts already flushed to the metrics registry.
    flushed: Vec<u64>,
    regrids: u64,
    pub(crate) reflux_corrections: u64,
    dev_launches: u64,
    metrics: Option<Arc<Registry>>,
    trace: Option<(Arc<Tracer>, Arc<Track>)>,
    device: Option<Accelerator>,
}

impl AmrSolver {
    /// Create a solver over `[x0, x1]` with `n0` base cells. Call
    /// [`AmrSolver::init`] before stepping.
    pub fn new(
        scheme: Scheme,
        bcs: BcSet,
        rk: RkOrder,
        n0: usize,
        x0: f64,
        x1: f64,
        cfg: AmrConfig,
    ) -> Self {
        assert_eq!(
            scheme.geometry,
            Geometry::Cartesian,
            "AMR currently supports Cartesian geometry"
        );
        assert!(cfg.max_levels >= 1, "need at least the base level");
        assert!(cfg.nest_margin >= 2, "nest_margin must be >= 2");
        assert!(cfg.min_size >= 2, "min_size must be >= 2");
        let ng = scheme.required_ghosts();
        let dx0 = (x1 - x0) / n0 as f64;
        assert!(
            n0 > 2 * (cfg.nest_margin + cfg.min_size),
            "base grid too small"
        );
        let max_levels = cfg.max_levels;
        AmrSolver {
            scheme,
            bcs,
            rk,
            cfg,
            x0,
            dx0,
            n0,
            ng,
            levels: (0..max_levels).map(|_| Vec::new()).collect(),
            frac: vec![0.0; max_levels],
            steps: 0,
            updates: vec![0; max_levels],
            flushed: vec![0; max_levels],
            regrids: 0,
            reflux_corrections: 0,
            dev_launches: 0,
            metrics: None,
            trace: None,
            device: None,
        }
    }

    /// Attach a metrics registry (`amr.*` counters/histograms).
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.metrics = Some(metrics);
    }

    /// Attach a flight-recorder track (`amr.regrid` / `amr.reflux` spans).
    pub fn set_trace(&mut self, tracer: Arc<Tracer>, pid: u32) {
        let track = tracer.track(pid, 2, "amr");
        self.trace = Some((tracer, track));
    }

    /// Route fine-level (`ℓ ≥ 1`) residual evaluation through a simulated
    /// accelerator: primitives are uploaded, the reconstruction/Riemann
    /// kernel launches on the device queue, and the residual plus
    /// interface fluxes are downloaded. Bit-identical to the host path.
    pub fn attach_device(&mut self, cfg: AcceleratorConfig) {
        let dev = Accelerator::new(cfg);
        if let Some(m) = &self.metrics {
            dev.set_metrics(Arc::clone(m));
        }
        if let Some((tracer, track)) = &self.trace {
            dev.set_trace(Arc::clone(tracer), Arc::clone(track));
        }
        self.device = Some(dev);
    }

    /// Cell size of level `l` (exact: halving only).
    pub(crate) fn level_dx(&self, l: usize) -> f64 {
        self.dx0 / (1u64 << l) as f64
    }

    /// Global cell count of level `l`'s index space.
    pub(crate) fn level_cells(&self, l: usize) -> usize {
        self.n0 << l
    }

    /// Allocate an empty patch at level `l`, cells `lo..lo+n`.
    fn make_patch(&self, l: usize, lo: usize, n: usize) -> Patch {
        let dx = self.level_dx(l);
        let geom = PatchGeom {
            n: [n, 1, 1],
            ng: self.ng,
            origin: [self.x0 + lo as f64 * dx, 0.0, 0.0],
            dx: [dx, 1.0, 1.0],
        };
        Patch {
            lo,
            n,
            parent_idx: 0,
            u: Field::cons(geom),
            prim: Field::new(geom, 5),
            rhs: Field::cons(geom),
            stage: Field::cons(geom),
            base: Field::cons(geom),
            lerp: Field::cons(geom),
            flux: vec![Cons::ZERO; geom.ntot(0) + 1],
            acc: [Cons::ZERO; 2],
            acc_parent: [Cons::ZERO; 2],
        }
    }

    /// Initialize the hierarchy from a pointwise primitive IC: level 0 is
    /// sampled directly, then each finer level is built where the error
    /// estimator fires, also sampled from the IC, and restricted down.
    pub fn init(&mut self, ic: &dyn Fn([f64; 3]) -> Prim) {
        let mut p0 = self.make_patch(0, 0, self.n0);
        p0.u = init_cons(*p0.u.geom(), &self.scheme.eos, ic);
        self.levels = (0..self.cfg.max_levels).map(|_| Vec::new()).collect();
        self.levels[0].push(p0);
        self.steps = 0;
        for m in 1..self.cfg.max_levels {
            self.rebuild_level(m, Some(ic));
        }
    }

    /// Number of levels with at least one patch.
    pub fn n_levels(&self) -> usize {
        self.levels.iter().take_while(|l| !l.is_empty()).count()
    }

    /// Patch count at level `l`.
    pub fn patch_count(&self, l: usize) -> usize {
        self.levels.get(l).map_or(0, Vec::len)
    }

    /// Total interior-cell stage updates so far (the AMR cost metric).
    pub fn cell_updates(&self) -> u64 {
        self.updates.iter().sum()
    }

    /// Interior-cell stage updates per level.
    pub fn updates_per_level(&self) -> &[u64] {
        &self.updates
    }

    /// Number of regrids performed.
    pub fn regrids(&self) -> u64 {
        self.regrids
    }

    /// Steps taken at the base level.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    // ----- ghost filling -------------------------------------------------

    /// Find the parent-patch index for a child span `lo..lo+n` (level-`m`
    /// cells) among `parents` (level-`m−1` patches).
    fn find_parent(parents: &[Patch], lo: usize, n: usize) -> Option<usize> {
        let plo = lo / 2;
        let phi = (lo + n) / 2;
        parents
            .iter()
            .position(|p| p.lo <= plo && phi <= p.lo + p.n)
    }

    /// Fill ghosts of level `m`'s conserved state from the parent's
    /// *current* state (all levels at the same time; used at sync points
    /// for dt estimation, error estimation, and diagnostics). Level 0
    /// gets physical BCs. Parents of `m` must already be filled.
    pub(crate) fn fill_ghosts_sync_level(&mut self, m: usize) {
        if m == 0 {
            let p0 = &mut self.levels[0][0];
            fill_ghosts(&mut p0.u, &self.bcs);
            return;
        }
        let ng = self.ng;
        let (left, right) = self.levels.split_at_mut(m);
        let parents = &left[m - 1];
        for ch in right[0].iter_mut() {
            let par = &parents[ch.parent_idx];
            let lo = ch.lo / 2 - par.lo;
            prolong_span(&par.u, &mut ch.u, ng, ng, lo, -(ng as i64), 0);
            prolong_span(
                &par.u,
                &mut ch.u,
                ng,
                ng,
                lo,
                ch.n as i64,
                (ch.n + ng) as i64,
            );
        }
    }

    /// Fill all levels' ghosts at a sync point and recover primitives.
    fn sync_all(&mut self) -> Result<(), SolverError> {
        for m in 0..self.levels.len() {
            if m > 0 && self.levels[m].is_empty() {
                break;
            }
            self.fill_ghosts_sync_level(m);
            for p in &mut self.levels[m] {
                recover_prims(&self.scheme, &p.u, &mut p.prim)?;
            }
        }
        Ok(())
    }

    /// Fill ghosts of level `l`'s conserved state during one of its RK
    /// stages at intra-step position `c` (`c_i` of the stage). Ancestor
    /// levels contribute *time-interpolated* states: the interpolation
    /// parameter is pushed up the chain via
    /// `θ_{m−1} = frac_m + θ_m / 2`, so every ancestor is evaluated at the
    /// same physical time.
    pub(crate) fn fill_ghosts_lerp(&mut self, l: usize, c: f64) {
        if l == 0 {
            let p0 = &mut self.levels[0][0];
            fill_ghosts(&mut p0.u, &self.bcs);
            return;
        }
        // theta[m]: lerp position between level m's base and current state.
        let mut theta = vec![0.0; l];
        let mut th = self.frac[l] + 0.5 * c;
        theta[l - 1] = th;
        for m in (1..l).rev() {
            th = self.frac[m] + 0.5 * th;
            theta[m - 1] = th;
        }
        // Level 0 lerp with physical BCs.
        {
            let p0 = &mut self.levels[0][0];
            lerp_into(&mut p0.lerp, &p0.base, &p0.u, theta[0]);
            fill_ghosts(&mut p0.lerp, &self.bcs);
        }
        // Intermediate ancestors: lerp interiors, prolong lerp ghosts.
        let ng = self.ng;
        for m in 1..l {
            let (left, right) = self.levels.split_at_mut(m);
            let parents = &left[m - 1];
            for ch in right[0].iter_mut() {
                lerp_into(&mut ch.lerp, &ch.base, &ch.u, theta[m]);
                let lo = ch.lo / 2 - parents[ch.parent_idx].lo;
                prolong_span(
                    &parents[ch.parent_idx].lerp,
                    &mut ch.lerp,
                    ng,
                    ng,
                    lo,
                    -(ng as i64),
                    0,
                );
                prolong_span(
                    &parents[ch.parent_idx].lerp,
                    &mut ch.lerp,
                    ng,
                    ng,
                    lo,
                    ch.n as i64,
                    (ch.n + ng) as i64,
                );
            }
        }
        // The advancing level's own ghosts.
        let (left, right) = self.levels.split_at_mut(l);
        let parents = &left[l - 1];
        for ch in right[0].iter_mut() {
            let par = &parents[ch.parent_idx];
            let lo = ch.lo / 2 - par.lo;
            prolong_span(&par.lerp, &mut ch.u, ng, ng, lo, -(ng as i64), 0);
            prolong_span(
                &par.lerp,
                &mut ch.u,
                ng,
                ng,
                lo,
                ch.n as i64,
                (ch.n + ng) as i64,
            );
        }
    }

    // ----- residual evaluation -------------------------------------------

    /// Residual + interface fluxes for every patch of level `l`.
    fn eval_level_rhs(&mut self, l: usize) {
        if l >= 1 && self.device.is_some() {
            self.eval_level_rhs_device(l);
            return;
        }
        let scheme = self.scheme;
        for p in &mut self.levels[l] {
            rhs_1d_with_fluxes(&scheme, &p.prim, &mut p.rhs, &mut p.flux);
        }
    }

    /// Device-staged residual: upload primitives, launch the kernel on the
    /// accelerator queue, download residual + fluxes. Same host functions
    /// inside the kernel, so results are bit-identical.
    fn eval_level_rhs_device(&mut self, l: usize) {
        let scheme = self.scheme;
        for p in &mut self.levels[l] {
            let dev = self.device.as_ref().unwrap();
            let geom = *p.prim.geom();
            let nt = geom.ntot(0);
            let b_prim = dev.alloc(5 * nt);
            let b_rhs = dev.alloc(NCOMP * nt);
            let b_flux = dev.alloc(NCOMP * (nt + 1));
            dev.copy_to_device(b_prim, p.prim.raw()).get();
            dev.launch(move |ctx| {
                let prim = Field::from_vec(geom, 5, ctx.take(b_prim));
                let mut rhs = Field::cons(geom);
                let mut flux = vec![Cons::ZERO; nt + 1];
                rhs_1d_with_fluxes(&scheme, &prim, &mut rhs, &mut flux);
                ctx.put(b_prim, prim.into_vec());
                ctx.buf_mut(b_rhs).copy_from_slice(rhs.raw());
                let fb = ctx.buf_mut(b_flux);
                for (j, f) in flux.iter().enumerate() {
                    for (c, v) in f.to_array().iter().enumerate() {
                        fb[j * NCOMP + c] = *v;
                    }
                }
            })
            .get();
            let rhs_host = dev.copy_to_host(b_rhs).get();
            p.rhs.raw_mut().copy_from_slice(&rhs_host);
            let flux_host = dev.copy_to_host(b_flux).get();
            for (j, f) in p.flux.iter_mut().enumerate() {
                let mut a = [0.0; NCOMP];
                a.copy_from_slice(&flux_host[j * NCOMP..(j + 1) * NCOMP]);
                *f = Cons::from_array(a);
            }
            dev.free(b_prim);
            dev.free(b_rhs);
            dev.free(b_flux);
            self.dev_launches += 1;
            if let Some(m) = &self.metrics {
                m.counter("amr.dev.launches").inc();
            }
        }
    }

    // ----- time stepping -------------------------------------------------

    /// Largest stable Δt for the whole hierarchy: each level's CFL limit
    /// scaled by its subcycling factor `2^ℓ`.
    pub fn stable_dt(&mut self, cfl: f64) -> Result<f64, SolverError> {
        self.sync_all()?;
        let mut dt = f64::INFINITY;
        for (l, patches) in self.levels.iter().enumerate() {
            let scale = (1u64 << l) as f64;
            for p in patches {
                dt = dt.min(scale * max_dt(&self.scheme, &p.prim, cfl));
            }
        }
        Ok(dt)
    }

    /// Advance the hierarchy by one base-level step of size `dt`
    /// (regridding first when the cadence says so).
    pub fn step(&mut self, dt: f64) -> Result<(), SolverError> {
        if self.cfg.regrid_interval > 0
            && self.steps > 0
            && self.steps.is_multiple_of(self.cfg.regrid_interval as u64)
        {
            self.regrid()?;
        }
        self.step_level(0, dt, 0.0)?;
        self.steps += 1;
        self.flush_metrics();
        Ok(())
    }

    /// Advance to `t_end` under CFL control; returns the base step count.
    pub fn advance_to(&mut self, t0: f64, t_end: f64, cfl: f64) -> Result<usize, SolverError> {
        let mut t = t0;
        let mut steps = 0;
        while t < t_end - 1e-14 {
            let mut dt = self.stable_dt(cfl)?;
            // Negated form deliberately catches NaN as a collapse.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(dt > 1e-14) {
                return Err(SolverError::TimestepCollapse { dt });
            }
            if t + dt > t_end {
                dt = t_end - t;
            }
            self.step(dt)?;
            t += dt;
            steps += 1;
        }
        Ok(steps)
    }

    /// One Berger–Oliger step of level `l` with size `dt`, starting at
    /// intra-parent-step position `frac` (0.0 or 0.5). Recursively
    /// advances child levels with two `dt/2` substeps, then restricts and
    /// refluxes.
    fn step_level(&mut self, l: usize, dt: f64, frac: f64) -> Result<(), SolverError> {
        self.frac[l] = frac;
        let (stages, weights, ctimes) = rk_tables(self.rk);
        for p in &mut self.levels[l] {
            p.base.raw_mut().copy_from_slice(p.u.raw());
            p.stage.raw_mut().copy_from_slice(p.u.raw());
        }
        // Zero the flux accumulators of this step's coarse–fine
        // interfaces (both sides); they are consumed by the reflux below.
        if l + 1 < self.levels.len() {
            for ch in &mut self.levels[l + 1] {
                ch.acc = [Cons::ZERO; 2];
                ch.acc_parent = [Cons::ZERO; 2];
            }
        }
        for (si, &(a, b, c)) in stages.iter().enumerate() {
            self.fill_ghosts_lerp(l, ctimes[si]);
            for p in &mut self.levels[l] {
                recover_prims(&self.scheme, &p.u, &mut p.prim)?;
            }
            self.eval_level_rhs(l);
            // Parent-side interface fluxes for the children of l.
            if l + 1 < self.levels.len() {
                let w = weights[si];
                let ng = self.ng;
                let (left, right) = self.levels.split_at_mut(l + 1);
                let parents = &left[l];
                for ch in right[0].iter_mut() {
                    let par = &parents[ch.parent_idx];
                    ch.acc_parent[0] += par.flux[ng + ch.lo / 2 - par.lo] * w;
                    ch.acc_parent[1] += par.flux[ng + (ch.lo + ch.n) / 2 - par.lo] * w;
                }
            }
            // Own boundary fluxes toward our parent (half weight: this
            // step is one of two substeps of the parent's step).
            if l > 0 {
                let w = 0.5 * weights[si];
                let ng = self.ng;
                for p in &mut self.levels[l] {
                    p.acc[0] += p.flux[ng] * w;
                    p.acc[1] += p.flux[ng + p.n] * w;
                }
            }
            // Stage combine + floors.
            for p in &mut self.levels[l] {
                for i in self.ng..self.ng + p.n {
                    let v = p.stage.get_cons(i, 0, 0) * a
                        + p.u.get_cons(i, 0, 0) * b
                        + p.rhs.get_cons(i, 0, 0) * (c * dt);
                    p.u.set_cons(i, 0, 0, v);
                }
                apply_conserved_floors(&mut p.u, &self.scheme.c2p);
                self.updates[l] += p.n as u64;
            }
        }
        // Children: two substeps, restriction, deferred reflux.
        if l + 1 < self.levels.len() && !self.levels[l + 1].is_empty() {
            self.step_level(l + 1, 0.5 * dt, 0.0)?;
            self.step_level(l + 1, 0.5 * dt, 0.5)?;
            let t0 = self.trace.as_ref().map(|(tr, _)| tr.now_ns());
            self.restrict_level(l + 1);
            let k = dt / self.level_dx(l);
            let ng = self.ng;
            let (left, right) = self.levels.split_at_mut(l + 1);
            let parents = &mut left[l];
            for ch in right[0].iter() {
                let par = &mut parents[ch.parent_idx];
                // Left-uncovered neighbor used the parent flux as its
                // right face; swap in the accumulated fine flux.
                let il = ng + ch.lo / 2 - par.lo - 1;
                let v = par.u.get_cons(il, 0, 0) + (ch.acc_parent[0] - ch.acc[0]) * k;
                par.u.set_cons(il, 0, 0, v);
                // Right-uncovered neighbor used it as its left face.
                let ir = ng + (ch.lo + ch.n) / 2 - par.lo;
                let v = par.u.get_cons(ir, 0, 0) + (ch.acc[1] - ch.acc_parent[1]) * k;
                par.u.set_cons(ir, 0, 0, v);
                self.reflux_corrections += 2;
            }
            for p in parents.iter_mut() {
                apply_conserved_floors(&mut p.u, &self.scheme.c2p);
            }
            if let (Some((tr, track)), Some(t0)) = (self.trace.as_ref(), t0) {
                track.span("amr.reflux", t0, tr.now_ns());
            }
            if let Some(m) = &self.metrics {
                m.counter("amr.reflux.corrections")
                    .add(2 * self.levels[l + 1].len() as u64);
            }
        }
        Ok(())
    }

    /// Restrict level `m` onto the covered cells of level `m−1`.
    fn restrict_level(&mut self, m: usize) {
        let ng = self.ng;
        let (left, right) = self.levels.split_at_mut(m);
        let parents = &mut left[m - 1];
        for ch in right[0].iter() {
            let par = &mut parents[ch.parent_idx];
            restrict_onto(&ch.u, &mut par.u, ng, ng, ch.n, ch.lo / 2 - par.lo);
        }
    }

    pub(crate) fn flush_metrics(&mut self) {
        let Some(m) = &self.metrics else { return };
        for l in 0..self.updates.len() {
            let delta = self.updates[l] - self.flushed[l];
            if delta > 0 {
                m.counter(&format!("amr.updates.l{l}")).add(delta);
                self.flushed[l] = self.updates[l];
            }
        }
    }

    // ----- regridding ----------------------------------------------------

    /// Rebuild every refined level from fresh error flags, transferring
    /// state from the old hierarchy.
    pub fn regrid(&mut self) -> Result<(), SolverError> {
        let t0 = self.trace.as_ref().map(|(tr, _)| tr.now_ns());
        for m in 1..self.cfg.max_levels {
            self.rebuild_level(m, None);
        }
        self.regrids += 1;
        if let (Some((tr, track)), Some(t0)) = (self.trace.as_ref(), t0) {
            track.span_arg(
                "amr.regrid",
                t0,
                tr.now_ns(),
                self.levels.iter().map(Vec::len).sum::<usize>() as f64,
            );
        }
        if let Some(m) = &self.metrics {
            m.counter("amr.regrids").inc();
            m.histogram("amr.patches")
                .record(self.levels.iter().skip(1).map(Vec::len).sum::<usize>() as u64);
        }
        Ok(())
    }

    /// Rebuild level `m` from error flags on level `m−1`. New patches are
    /// filled from the initial condition when `ic` is given (hierarchy
    /// construction), else copied from the old level-`m` patches where
    /// they overlap and conservatively prolonged from level `m−1`
    /// elsewhere. Finishes by restricting the new level down, so the
    /// covered-parent invariant holds.
    fn rebuild_level(&mut self, m: usize, ic: Option<&dyn Fn([f64; 3]) -> Prim>) {
        // Parent ghosts must be valid for both the estimator stencil and
        // the transfer prolongation.
        for lvl in 0..m {
            self.fill_ghosts_sync_level(lvl);
        }
        let flags = self.flag_level(m - 1);
        let buffered = buffer_flags(&flags, self.cfg.buffer);
        let margin = self.cfg.nest_margin;
        let allowed: Vec<(usize, usize)> = self.levels[m - 1]
            .iter()
            .filter(|p| p.n > 2 * margin)
            .map(|p| (p.lo + margin, p.lo + p.n - margin))
            .collect();
        let runs = cluster_runs(&buffered, &allowed, self.cfg.merge_gap, self.cfg.min_size);
        let old = std::mem::take(&mut self.levels[m]);
        let mut newp = Vec::with_capacity(runs.len());
        let ng = self.ng;
        for (rlo, rhi) in runs {
            let mut p = self.make_patch(m, 2 * rlo, 2 * (rhi - rlo));
            p.parent_idx = Self::find_parent(&self.levels[m - 1], p.lo, p.n)
                .expect("clustering violated proper nesting");
            if let Some(ic) = ic {
                p.u = init_cons(*p.u.geom(), &self.scheme.eos, ic);
            } else {
                let par = &self.levels[m - 1][p.parent_idx];
                let lo = p.lo / 2 - par.lo;
                // Per parent cell: copy both children from the old
                // hierarchy if it covered them, else prolong. Patches
                // cover whole parent cells, so the transfer conserves the
                // composite integrals exactly.
                for pc in 0..p.n / 2 {
                    let f_global = p.lo + 2 * pc;
                    if let Some(op) = old
                        .iter()
                        .find(|op| op.lo <= f_global && f_global + 2 <= op.lo + op.n)
                    {
                        for c in 0..NCOMP {
                            for k in 0..2 {
                                let v = op.u.at(c, ng + f_global + k - op.lo, 0, 0);
                                p.u.set(c, ng + 2 * pc + k, 0, 0, v);
                            }
                        }
                    } else {
                        prolong_span(
                            &par.u,
                            &mut p.u,
                            ng,
                            ng,
                            lo,
                            (2 * pc) as i64,
                            (2 * pc + 2) as i64,
                        );
                    }
                }
            }
            newp.push(p);
        }
        self.levels[m] = newp;
        if !self.levels[m].is_empty() {
            self.restrict_level(m);
        }
    }

    /// Löhner-style normalized second-difference indicator on `D` and `τ`
    /// over level `l`'s patches, in the level's global cell space.
    fn flag_level(&self, l: usize) -> Vec<bool> {
        let mut flags = vec![false; self.level_cells(l)];
        let ng = self.ng;
        let eps = 0.01;
        for p in &self.levels[l] {
            for i in 0..p.n {
                let gi = ng + i;
                let um = p.u.get_cons(gi - 1, 0, 0);
                let u0 = p.u.get_cons(gi, 0, 0);
                let up = p.u.get_cons(gi + 1, 0, 0);
                for (am, a0, ap) in [(um.d, u0.d, up.d), (um.tau, u0.tau, up.tau)] {
                    let d2 = (ap - 2.0 * a0 + am).abs();
                    let d1 = (ap - a0).abs() + (a0 - am).abs();
                    let scale = eps * (am.abs() + 2.0 * a0.abs() + ap.abs());
                    if d2 > self.cfg.threshold * (d1 + scale + f64::MIN_POSITIVE) {
                        flags[p.lo + i] = true;
                    }
                }
            }
        }
        flags
    }

    // ----- diagnostics ---------------------------------------------------

    /// Composite conserved totals: every level's cells not covered by a
    /// finer level, weighted by that level's cell size. This is the
    /// quantity the reflux construction conserves to round-off.
    pub fn composite_totals(&self) -> [f64; NCOMP] {
        let mut out = [0.0; NCOMP];
        for (l, patches) in self.levels.iter().enumerate() {
            let dxl = self.level_dx(l);
            let covered: Vec<(usize, usize)> = if l + 1 < self.levels.len() {
                self.levels[l + 1]
                    .iter()
                    .map(|c| (c.lo / 2, (c.lo + c.n) / 2))
                    .collect()
            } else {
                Vec::new()
            };
            for p in patches {
                for i in 0..p.n {
                    let g = p.lo + i;
                    if covered.iter().any(|&(a, b)| (a..b).contains(&g)) {
                        continue;
                    }
                    let u = p.u.get_cons(self.ng + i, 0, 0).to_array();
                    for c in 0..NCOMP {
                        out[c] += u[c] * dxl;
                    }
                }
            }
        }
        out
    }

    /// Composite L1(ρ) error against an exact solution at time `t`,
    /// normalized by the domain length (matches
    /// [`crate::diag::l1_density_error`] on uniform grids).
    pub fn l1_density_error(
        &mut self,
        exact: &dyn Fn([f64; 3], f64) -> Prim,
        t: f64,
    ) -> Result<f64, SolverError> {
        self.sync_all()?;
        let mut l1 = 0.0;
        for (l, patches) in self.levels.iter().enumerate() {
            let dxl = self.level_dx(l);
            let covered: Vec<(usize, usize)> = if l + 1 < self.levels.len() {
                self.levels[l + 1]
                    .iter()
                    .map(|c| (c.lo / 2, (c.lo + c.n) / 2))
                    .collect()
            } else {
                Vec::new()
            };
            for p in patches {
                for i in 0..p.n {
                    let g = p.lo + i;
                    if covered.iter().any(|&(a, b)| (a..b).contains(&g)) {
                        continue;
                    }
                    let x = p.u.geom().center(self.ng + i, 0, 0);
                    l1 += (prim_at(&p.prim, self.ng + i, 0, 0).rho - exact(x, t).rho).abs() * dxl;
                }
            }
        }
        Ok(l1 / (self.n0 as f64 * self.dx0))
    }

    // ----- checkpointing -------------------------------------------------

    /// Serialize the hierarchy into a format-v4 AMR checkpoint (interior
    /// conserved data per patch; ghosts, primitives and the regrid phase
    /// are reconstructed deterministically on restore).
    pub fn to_checkpoint(&self, time: f64) -> AmrCheckpoint {
        let mut patches = Vec::new();
        for (l, ps) in self.levels.iter().enumerate() {
            for p in ps {
                let mut data = Vec::with_capacity(NCOMP * p.n);
                for c in 0..NCOMP {
                    for i in 0..p.n {
                        data.push(p.u.at(c, self.ng + i, 0, 0));
                    }
                }
                patches.push(AmrPatchRecord {
                    level: l as u32,
                    lo: p.lo as u64,
                    n: p.n as u64,
                    data,
                });
            }
        }
        AmrCheckpoint {
            time,
            step: self.steps,
            n0: self.n0 as u64,
            ncomp: NCOMP,
            patches,
        }
    }

    /// Restore the hierarchy from an AMR checkpoint. The solver must have
    /// been constructed with the same base grid and a `max_levels` that
    /// accommodates every stored level. Restores bit-identically: the
    /// subsequent trajectory matches an uninterrupted run.
    pub fn restore(&mut self, ck: &AmrCheckpoint) -> Result<(), String> {
        if ck.n0 as usize != self.n0 {
            return Err(format!("base-grid mismatch: {} vs {}", ck.n0, self.n0));
        }
        if ck.ncomp != NCOMP {
            return Err(format!("component mismatch: {} vs {NCOMP}", ck.ncomp));
        }
        let mut levels: Vec<Vec<Patch>> = (0..self.cfg.max_levels).map(|_| Vec::new()).collect();
        for r in &ck.patches {
            let l = r.level as usize;
            if l >= self.cfg.max_levels {
                return Err(format!(
                    "level {l} exceeds max_levels {}",
                    self.cfg.max_levels
                ));
            }
            let (lo, n) = (r.lo as usize, r.n as usize);
            if r.data.len() != NCOMP * n {
                return Err(format!(
                    "patch data length {} != {}",
                    r.data.len(),
                    NCOMP * n
                ));
            }
            if lo + n > self.level_cells(l) || (l > 0 && (lo % 2 != 0 || n % 2 != 0)) {
                return Err(format!("patch [{lo}, {}) invalid at level {l}", lo + n));
            }
            let mut p = self.make_patch(l, lo, n);
            for c in 0..NCOMP {
                for i in 0..n {
                    p.u.set(c, self.ng + i, 0, 0, r.data[c * n + i]);
                }
            }
            levels[l].push(p);
        }
        if levels[0].len() != 1 || levels[0][0].lo != 0 || levels[0][0].n != self.n0 {
            return Err("level 0 must be a single domain-covering patch".into());
        }
        for m in 1..levels.len() {
            levels[m].sort_by_key(|p| p.lo);
            let (parents, children) = {
                let (a, b) = levels.split_at_mut(m);
                (&a[m - 1], &mut b[0])
            };
            for ch in children.iter_mut() {
                ch.parent_idx = Self::find_parent(parents, ch.lo, ch.n)
                    .ok_or_else(|| format!("level {m} patch at {} is not nested", ch.lo))?;
            }
        }
        self.levels = levels;
        self.steps = ck.step;
        Ok(())
    }
}

/// `out = (1−θ)·a + θ·b`, elementwise over the raw storage.
fn lerp_into(out: &mut Field, a: &Field, b: &Field, theta: f64) {
    for (o, (&x, &y)) in out.raw_mut().iter_mut().zip(a.raw().iter().zip(b.raw())) {
        *o = (1.0 - theta) * x + theta * y;
    }
}

/// Dilate flags by `b` cells on each side.
fn buffer_flags(flags: &[bool], b: usize) -> Vec<bool> {
    let n = flags.len();
    let mut out = vec![false; n];
    for (i, &f) in flags.iter().enumerate() {
        if f {
            for o in out
                .iter_mut()
                .take((i + b + 1).min(n))
                .skip(i.saturating_sub(b))
            {
                *o = true;
            }
        }
    }
    out
}

/// Signature clustering in 1D: within each admissible interval, extract
/// maximal runs of flagged cells, merge runs closer than `merge_gap`,
/// grow runs below `min_size`, and merge again. Returned runs are
/// disjoint, sorted, and at least `min_size` wide.
fn cluster_runs(
    flags: &[bool],
    allowed: &[(usize, usize)],
    merge_gap: usize,
    min_size: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for &(alo, ahi) in allowed {
        if ahi <= alo || ahi - alo < min_size {
            continue;
        }
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut i = alo;
        while i < ahi {
            if flags[i] {
                let s = i;
                while i < ahi && flags[i] {
                    i += 1;
                }
                runs.push((s, i));
            } else {
                i += 1;
            }
        }
        if runs.is_empty() {
            continue;
        }
        let mut merged: Vec<(usize, usize)> = vec![runs[0]];
        for &(s, e) in &runs[1..] {
            let last = merged.last_mut().unwrap();
            if s <= last.1 + merge_gap {
                last.1 = e.max(last.1);
            } else {
                merged.push((s, e));
            }
        }
        for r in &mut merged {
            while r.1 - r.0 < min_size {
                if r.1 < ahi {
                    r.1 += 1;
                } else if r.0 > alo {
                    r.0 -= 1;
                } else {
                    break;
                }
            }
        }
        let mut fin: Vec<(usize, usize)> = vec![merged[0]];
        for &(s, e) in &merged[1..] {
            let last = fin.last_mut().unwrap();
            if s <= last.1 + merge_gap {
                last.1 = e.max(last.1);
            } else {
                fin.push((s, e));
            }
        }
        out.retain(|_: &(usize, usize)| true);
        out.extend(fin.into_iter().filter(|&(s, e)| e - s >= min_size));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use rhrsc_grid::{bc, Bc};

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    fn solver(n0: usize, cfg: AmrConfig, bcs: BcSet) -> AmrSolver {
        AmrSolver::new(scheme(), bcs, RkOrder::Rk3, n0, 0.0, 1.0, cfg)
    }

    /// A smooth periodic pressure pulse that steepens into shocks —
    /// flags the estimator without touching the domain boundary.
    fn pulse_ic(x: [f64; 3]) -> Prim {
        let g = (-((x[0] - 0.5) / 0.08).powi(2)).exp();
        Prim::new_1d(1.0 + 2.0 * g, 0.0, 1.0 + 20.0 * g)
    }

    #[test]
    fn uniform_state_spawns_no_patches_and_stays_uniform() {
        let mut amr = solver(64, AmrConfig::default(), bc::uniform(Bc::Periodic));
        amr.init(&|_| Prim::new_1d(1.0, 0.3, 2.0));
        assert_eq!(amr.patch_count(1), 0, "uniform state must not refine");
        amr.advance_to(0.0, 0.1, 0.4).unwrap();
        let w = Prim::new_1d(1.0, 0.3, 2.0).to_cons(&scheme().eos);
        let ng = amr.ng;
        for i in 0..64 {
            let u = amr.levels[0][0].u.get_cons(ng + i, 0, 0);
            assert!((u.d - w.d).abs() < 1e-11, "cell {i}: {} vs {}", u.d, w.d);
        }
    }

    #[test]
    fn pulse_refines_and_conserves_to_roundoff() {
        // Low threshold so even the smooth pulse refines both levels —
        // conservation must hold regardless of how aggressive the
        // refinement is.
        let cfg = AmrConfig {
            threshold: 0.08,
            ..AmrConfig::default()
        };
        let mut amr = solver(64, cfg, bc::uniform(Bc::Periodic));
        amr.init(&pulse_ic);
        assert!(amr.patch_count(1) > 0, "pulse must refine level 1");
        assert!(amr.patch_count(2) > 0, "pulse must refine level 2");
        let before = amr.composite_totals();
        amr.advance_to(0.0, 0.3, 0.4).unwrap();
        assert!(amr.regrids() > 0, "regridding must engage");
        let after = amr.composite_totals();
        for c in 0..NCOMP {
            assert!(
                (after[c] - before[c]).abs() <= 1e-12 * before[c].abs().max(1.0),
                "component {c}: {} -> {}",
                before[c],
                after[c]
            );
        }
    }

    #[test]
    fn sod_amr_beats_uniform_coarse_and_approaches_fine() {
        let prob = Problem::sod();
        let exact = prob.exact.clone().unwrap();
        let err_uniform = |n: usize| -> f64 {
            let s = scheme();
            let geom = PatchGeom::line(n, 0.0, 1.0, s.required_ghosts());
            let mut u = init_cons(geom, &s.eos, &|x| (prob.ic)(x));
            let mut solver = crate::PatchSolver::new(s, prob.bcs, RkOrder::Rk3, geom);
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap();
            crate::diag::l1_density_error(&s, &u, &exact, prob.t_end)
                .unwrap()
                .0
        };
        let e_coarse = err_uniform(100);
        let e_fine = err_uniform(200);

        let cfg = AmrConfig {
            max_levels: 2,
            ..AmrConfig::default()
        };
        let mut amr = solver(100, cfg, prob.bcs);
        amr.init(&|x| (prob.ic)(x));
        amr.advance_to(0.0, prob.t_end, 0.4).unwrap();
        let e_amr = amr.l1_density_error(&*exact, prob.t_end).unwrap();
        assert!(
            e_amr < e_coarse,
            "AMR {e_amr} must beat uniform-coarse {e_coarse}"
        );
        assert!(
            e_amr < 1.35 * e_fine,
            "AMR {e_amr} should approach uniform-fine {e_fine}"
        );
    }

    #[test]
    fn three_level_blast_tracks_uniform_fine() {
        let prob = Problem::blast_wave_1();
        let exact = prob.exact.clone().unwrap();
        // Tight tracking of the thin relativistic shell: regrid every
        // other coarse step with a wide buffer so the shock never escapes
        // the finest patches between regrids.
        let cfg = AmrConfig {
            threshold: 0.25,
            buffer: 3,
            regrid_interval: 2,
            ..AmrConfig::default()
        };
        let mut amr = solver(100, cfg, prob.bcs);
        amr.init(&|x| (prob.ic)(x));
        amr.advance_to(0.0, prob.t_end, 0.4).unwrap();
        let e_amr = amr.l1_density_error(&*exact, prob.t_end).unwrap();

        let s = scheme();
        let geom = PatchGeom::line(400, 0.0, 1.0, s.required_ghosts());
        let mut u = init_cons(geom, &s.eos, &|x| (prob.ic)(x));
        let mut fine = crate::PatchSolver::new(s, prob.bcs, RkOrder::Rk3, geom);
        fine.advance_to(&mut u, 0.0, prob.t_end, 0.4, None).unwrap();
        let (e_fine, _) = crate::diag::l1_density_error(&s, &u, &exact, prob.t_end).unwrap();

        assert!(
            e_amr <= 1.10 * e_fine,
            "3-level AMR L1 {e_amr} must be within 10% of uniform-400 {e_fine}"
        );
        let z_fine = fine.stats().zone_updates;
        assert!(
            (amr.cell_updates() as f64) <= 0.40 * z_fine as f64,
            "AMR updates {} must be <= 40% of uniform-fine {z_fine}",
            amr.cell_updates()
        );
    }

    #[test]
    fn device_path_is_bit_identical_to_host() {
        let prob = Problem::sod();
        let run = |device: bool| -> Vec<u64> {
            let cfg = AmrConfig {
                max_levels: 2,
                ..AmrConfig::default()
            };
            let mut amr = solver(64, cfg, prob.bcs);
            if device {
                amr.attach_device(AcceleratorConfig::default());
            }
            amr.init(&|x| (prob.ic)(x));
            amr.advance_to(0.0, 0.1, 0.4).unwrap();
            let mut bits = Vec::new();
            for ps in &amr.levels {
                for p in ps {
                    for i in 0..p.n {
                        bits.extend(
                            p.u.get_cons(amr.ng + i, 0, 0)
                                .to_array()
                                .iter()
                                .map(|v| v.to_bits()),
                        );
                    }
                }
            }
            bits
        };
        assert_eq!(
            run(false),
            run(true),
            "device offload must be bit-identical"
        );
    }

    #[test]
    fn checkpoint_restores_bit_identically() {
        let prob = Problem::sod();
        let mk = || {
            let cfg = AmrConfig {
                max_levels: 3,
                ..AmrConfig::default()
            };
            let mut amr = solver(64, cfg, prob.bcs);
            amr.init(&|x| (prob.ic)(x));
            amr
        };
        // Uninterrupted run to t1 then t2.
        let mut a = mk();
        a.advance_to(0.0, 0.15, 0.4).unwrap();
        let ck = a.to_checkpoint(0.15);
        a.advance_to(0.15, 0.3, 0.4).unwrap();

        // Kill/restart: fresh solver, restore, continue.
        let mut b = mk();
        b.restore(&ck).unwrap();
        assert_eq!(b.steps(), ck.step);
        b.advance_to(0.15, 0.3, 0.4).unwrap();

        assert_eq!(a.levels.len(), b.levels.len());
        for (pa, pb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(pa.len(), pb.len(), "patch counts diverged");
            for (x, y) in pa.iter().zip(pb) {
                assert_eq!((x.lo, x.n), (y.lo, y.n));
                for (u, v) in x.u.raw()[..].iter().zip(y.u.raw()) {
                    assert_eq!(u.to_bits(), v.to_bits(), "restart diverged");
                }
            }
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let prob = Problem::sod();
        let mut amr = solver(64, AmrConfig::default(), prob.bcs);
        amr.init(&|x| (prob.ic)(x));
        amr.advance_to(0.0, 0.1, 0.4).unwrap();
        let ck = amr.to_checkpoint(0.1);
        let bytes = rhrsc_io::checkpoint::encode_amr(&ck);
        let back = rhrsc_io::checkpoint::decode_amr(&bytes).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn restore_rejects_mismatched_base_grid() {
        let prob = Problem::sod();
        let mut amr = solver(64, AmrConfig::default(), prob.bcs);
        amr.init(&|x| (prob.ic)(x));
        let ck = amr.to_checkpoint(0.0);
        let mut other = solver(100, AmrConfig::default(), prob.bcs);
        other.init(&|x| (prob.ic)(x));
        assert!(other.restore(&ck).is_err());
    }

    #[test]
    fn cluster_runs_respects_min_size_and_gap() {
        let mut flags = vec![false; 64];
        flags[10] = true;
        flags[13] = true; // within merge_gap of 10 -> one run
        flags[40] = true;
        let runs = cluster_runs(&flags, &[(2, 62)], 4, 4);
        assert_eq!(runs.len(), 2);
        for &(s, e) in &runs {
            assert!(e - s >= 4, "run [{s},{e}) below min size");
        }
        assert!(runs[0].0 <= 10 && runs[0].1 > 13);
        assert!(runs[1].0 <= 40 && runs[1].1 > 40);
    }

    #[test]
    #[should_panic(expected = "Cartesian")]
    fn rejects_curvilinear() {
        let s = Scheme {
            geometry: Geometry::SphericalRadial,
            ..scheme()
        };
        let _ = AmrSolver::new(
            s,
            bc::uniform(Bc::Outflow),
            RkOrder::Rk2,
            64,
            0.0,
            1.0,
            AmrConfig::default(),
        );
    }
}
