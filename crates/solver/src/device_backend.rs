//! Patch integration staged through the simulated accelerator.
//!
//! This is the offload path a GPU port would take: the conserved field is
//! uploaded once, RK steps run as kernels on the device's command queue
//! (paying launch overhead per stage, using the device's compute gang),
//! and data is downloaded only when the host needs it. Because the kernels
//! are the same host functions, results are **bit-identical** to
//! [`crate::PatchSolver`] — asserted by the integration tests — while the
//! cost model reproduces the offload performance envelope (T3).

use crate::integrate::{PatchSolver, RkOrder};
use crate::scheme::{max_dt, recover_prims, Scheme};
use rhrsc_grid::{BcSet, Field, PatchGeom};
use rhrsc_runtime::trace::{Tracer, Track};
use rhrsc_runtime::{Accelerator, AcceleratorConfig, BufId, Future, Registry};
use rhrsc_srhd::NCOMP;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Arc;

/// Thresholds of the device circuit breaker (see
/// [`DevicePatchSolver::set_breaker`]).
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window of recent device operations inspected for faults.
    pub window: usize,
    /// Faulted operations within the window that trip the breaker open.
    pub threshold: usize,
    /// Host-routed steps served while open before a half-open probe
    /// re-tests the device.
    pub cooldown: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            threshold: 3,
            cooldown: 4,
        }
    }
}

/// Circuit-breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: work routes to the device, fault outcomes are windowed.
    Closed,
    /// Quarantined: work routes to the host pool for `cooldown` steps.
    Open,
    /// Probing: the next step runs on the device; success re-admits it,
    /// a fault re-opens the quarantine.
    HalfOpen,
}

/// Counters of the device circuit breaker.
#[derive(Debug, Clone, Copy, Default)]
pub struct BreakerStats {
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Half-open probe steps executed on the device.
    pub probes: u64,
    /// Probes that succeeded and closed the breaker again.
    pub readmissions: u64,
    /// Steps served by the host fallback while the device was open.
    pub host_steps: u64,
    /// Faulted device operations observed (window + probes).
    pub device_failures: u64,
}

struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: VecDeque<bool>,
    cooldown_left: usize,
    stats: BreakerStats,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Self {
        Breaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            cooldown_left: 0,
            stats: BreakerStats::default(),
        }
    }

    /// Window a closed-state operation outcome; returns `true` when this
    /// outcome trips the breaker open.
    fn record(&mut self, failed: bool) -> bool {
        if failed {
            self.stats.device_failures += 1;
        }
        self.window.push_back(failed);
        if self.window.len() > self.cfg.window.max(1) {
            self.window.pop_front();
        }
        let failures = self.window.iter().filter(|&&f| f).count();
        if failures >= self.cfg.threshold.max(1) {
            self.state = BreakerState::Open;
            self.cooldown_left = self.cfg.cooldown.max(1);
            self.window.clear();
            self.stats.trips += 1;
            return true;
        }
        false
    }
}

/// A patch solver that executes on a simulated accelerator.
pub struct DevicePatchSolver {
    dev: Accelerator,
    scheme: Scheme,
    bcs: BcSet,
    rk: RkOrder,
    geom: PatchGeom,
    buf_u: BufId,
    /// Device-resident Δt scalar fed by the fused step+scan kernel.
    buf_dt: BufId,
    breaker: Option<RefCell<Breaker>>,
    metrics: RefCell<Option<Arc<Registry>>>,
    trace: RefCell<Option<(Arc<Tracer>, Arc<Track>)>>,
}

impl DevicePatchSolver {
    /// Bring up a device with `cfg` and allocate the state buffer for
    /// patches of geometry `geom`.
    pub fn new(
        cfg: AcceleratorConfig,
        scheme: Scheme,
        bcs: BcSet,
        rk: RkOrder,
        geom: PatchGeom,
    ) -> Self {
        assert!(geom.ng >= scheme.required_ghosts());
        let dev = Accelerator::new(cfg);
        let buf_u = dev.alloc(NCOMP * geom.len());
        let buf_dt = dev.alloc(1);
        DevicePatchSolver {
            dev,
            scheme,
            bcs,
            rk,
            geom,
            buf_u,
            buf_dt,
            breaker: None,
            metrics: RefCell::new(None),
            trace: RefCell::new(None),
        }
    }

    /// Patch geometry this solver was built for.
    pub fn geom(&self) -> &PatchGeom {
        &self.geom
    }

    /// Attach a fault injector to the underlying device: subsequent
    /// launches and copies may fail per the plan and fall back
    /// transparently (results stay bit-identical; only the cost model and
    /// the fault counters change).
    pub fn set_fault_injector(&mut self, injector: std::sync::Arc<rhrsc_runtime::FaultInjector>) {
        self.dev.set_fault_injector(injector);
    }

    /// Device-side fault counters, if an injector is attached.
    pub fn fault_stats(&self) -> Option<rhrsc_runtime::FaultStats> {
        self.dev.fault_stats()
    }

    /// Attach a metrics registry to the underlying device queue:
    /// staging and launch commands record their modeled durations into
    /// `phase.dev.*` histograms and `dev.*.bytes` counters (see
    /// [`rhrsc_runtime::Accelerator::set_metrics`]).
    pub fn set_metrics(&self, metrics: std::sync::Arc<rhrsc_runtime::Registry>) {
        self.dev.set_metrics(metrics.clone());
        *self.metrics.borrow_mut() = Some(metrics);
    }

    /// Attach a flight recorder: the device queue records `phase.dev.*`
    /// spans on a dedicated per-rank "device" track (tid 1), and the
    /// breaker state machine drops `dev.breaker.*` instants (trip,
    /// half-open probe, re-admission, host fallback) on the same track.
    pub fn set_trace(&self, tracer: Arc<Tracer>, pid: u32) {
        let track = tracer.track(pid, 1, "device");
        self.dev.set_trace(tracer.clone(), track.clone());
        *self.trace.borrow_mut() = Some((tracer, track));
    }

    /// Arm the device circuit breaker: once `cfg.threshold` of the last
    /// `cfg.window` device operations fault, [`advance_to`] quarantines the
    /// device and routes steps through the host pool; after `cfg.cooldown`
    /// host steps a half-open probe re-tests the device and re-admits it on
    /// success. Results stay bit-identical either way (the kernels are the
    /// same host functions) — only routing, cost and counters change.
    ///
    /// [`advance_to`]: DevicePatchSolver::advance_to
    pub fn set_breaker(&mut self, cfg: BreakerConfig) {
        self.breaker = Some(RefCell::new(Breaker::new(cfg)));
    }

    /// Current breaker position, if [`set_breaker`] was called.
    ///
    /// [`set_breaker`]: DevicePatchSolver::set_breaker
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.breaker.as_ref().map(|b| b.borrow().state)
    }

    /// Breaker counters, if [`set_breaker`] was called.
    ///
    /// [`set_breaker`]: DevicePatchSolver::set_breaker
    pub fn breaker_stats(&self) -> Option<BreakerStats> {
        self.breaker.as_ref().map(|b| b.borrow().stats)
    }

    /// Modeled device time consumed so far (see
    /// [`rhrsc_runtime::Accelerator::virtual_time`]).
    pub fn device_time(&self) -> std::time::Duration {
        self.dev.virtual_time()
    }

    /// Upload the conserved field to device memory (async; returns the
    /// completion future).
    pub fn upload(&self, u: &Field) -> Future<()> {
        assert_eq!(*u.geom(), self.geom);
        self.dev.copy_to_device(self.buf_u, u.raw())
    }

    /// Download the conserved field from device memory (blocking).
    pub fn download(&self) -> Field {
        let data = self.dev.copy_to_host(self.buf_u).get();
        Field::from_vec(self.geom, NCOMP, data)
    }

    /// Enqueue one RK step of size `dt` as a device kernel. Returns the
    /// completion future; steps enqueued back-to-back pipeline on the
    /// device queue without host round-trips.
    pub fn enqueue_step(&self, dt: f64) -> Future<()> {
        let (scheme, bcs, rk, geom, buf) = (self.scheme, self.bcs, self.rk, self.geom, self.buf_u);
        self.dev.launch(move |ctx| {
            let data = ctx.take(buf);
            let mut u = Field::from_vec(geom, NCOMP, data);
            let mut solver = PatchSolver::new(scheme, bcs, rk, geom);
            let gang = ctx.gang();
            solver
                .step(&mut u, dt, Some(gang))
                .expect("device step failed");
            ctx.put(buf, u.into_vec());
        })
    }

    /// Fused step + next-Δt kernel: one launch advances the state by `dt`
    /// and leaves the stable Δt of the *updated* state — exactly what the
    /// next [`stable_dt`] call would return — in the device-resident Δt
    /// scalar (read it back with [`next_dt`]). Halves the per-step launch
    /// count of the two-kernel `stable_dt` + [`enqueue_step`] flow; the
    /// scan runs on a ghost-filled working copy so the staged bytes stay
    /// exactly the host path's post-step state, ghosts included.
    ///
    /// [`stable_dt`]: DevicePatchSolver::stable_dt
    /// [`next_dt`]: DevicePatchSolver::next_dt
    /// [`enqueue_step`]: DevicePatchSolver::enqueue_step
    pub fn enqueue_step_scan(&self, dt: f64, cfl: f64) -> Future<()> {
        let (scheme, bcs, rk, geom, buf, out) = (
            self.scheme,
            self.bcs,
            self.rk,
            self.geom,
            self.buf_u,
            self.buf_dt,
        );
        self.dev.launch(move |ctx| {
            let data = ctx.take(buf);
            let mut u = Field::from_vec(geom, NCOMP, data);
            let mut solver = PatchSolver::new(scheme, bcs, rk, geom);
            let gang = ctx.gang();
            solver
                .step(&mut u, dt, Some(gang))
                .expect("device step failed");
            let mut v = u.clone();
            rhrsc_grid::fill_ghosts(&mut v, &bcs);
            let mut prim = Field::new(geom, 5);
            recover_prims(&scheme, &v, &mut prim).expect("device recovery failed");
            ctx.buf_mut(out)[0] = max_dt(&scheme, &prim, cfl);
            ctx.put(buf, u.into_vec());
        })
    }

    /// Read back the Δt scalar left by the last [`enqueue_step_scan`]
    /// launch (one scalar copy; drains the queue up to that kernel).
    ///
    /// [`enqueue_step_scan`]: DevicePatchSolver::enqueue_step_scan
    pub fn next_dt(&self) -> f64 {
        self.dev.copy_to_host(self.buf_dt).get()[0]
    }

    /// Compute the stable Δt on the device (one kernel + a scalar copy).
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        let (scheme, bcs, geom, buf) = (self.scheme, self.bcs, self.geom, self.buf_u);
        let out = self.dev.alloc(1);
        self.dev.launch(move |ctx| {
            let data = ctx.take(buf);
            let mut u = Field::from_vec(geom, NCOMP, data);
            rhrsc_grid::fill_ghosts(&mut u, &bcs);
            let mut prim = Field::new(geom, 5);
            recover_prims(&scheme, &u, &mut prim).expect("device recovery failed");
            let dt = max_dt(&scheme, &prim, cfl);
            ctx.put(buf, u.into_vec());
            ctx.buf_mut(out)[0] = dt;
        });
        let dt = self.dev.copy_to_host(out).get()[0];
        self.dev.free(out);
        dt
    }

    /// Advance the device-resident state to `t_end` under CFL control;
    /// returns the number of steps. Kernel launches pipeline; only the Δt
    /// reduction synchronizes with the host (as in a real GPU code that
    /// reduces dt on-device and copies one scalar back).
    ///
    /// With a breaker armed (see [`set_breaker`]) each step's fault outcome
    /// is sampled; a tripped breaker downloads the state once and serves
    /// steps from the host pool until a half-open probe re-admits the
    /// device. The state is back on the device when this returns.
    ///
    /// [`set_breaker`]: DevicePatchSolver::set_breaker
    pub fn advance_to(&self, t: f64, t_end: f64, cfl: f64) -> usize {
        let mut t = t;
        let mut steps = 0;
        let Some(breaker) = &self.breaker else {
            // Fused fast path: after the priming Δt kernel, every step is
            // a single launch that also scans the next Δt into the
            // device-resident scalar, so the host's only per-step
            // synchronization is the one-scalar readback. The Δt
            // sequence and the staged bytes match the two-kernel flow
            // bitwise (asserted by the backend tests).
            let mut dt_next = self.stable_dt(cfl);
            while t < t_end - 1e-14 {
                let mut dt = dt_next;
                assert!(dt > 1e-14, "time step collapsed on device: {dt}");
                if t + dt > t_end {
                    dt = t_end - t;
                }
                self.enqueue_step_scan(dt, cfl);
                t += dt;
                steps += 1;
                if t < t_end - 1e-14 {
                    dt_next = self.next_dt();
                }
            }
            self.dev.sync();
            return steps;
        };

        // With a breaker armed, steps stay on the two-kernel flow: fault
        // outcomes are sampled per operation, and fusing the scan into
        // the step would blur which operation faulted.
        // Host-side quarantine state: populated on trip, drained on probe.
        let mut host_u: Option<Field> = None;
        let mut host_solver: Option<PatchSolver> = None;
        while t < t_end - 1e-14 {
            let state = breaker.borrow().state;
            match state {
                BreakerState::Open => {
                    let u = host_u.get_or_insert_with(|| self.download_after_sync());
                    let solver = host_solver.get_or_insert_with(|| {
                        PatchSolver::new(self.scheme, self.bcs, self.rk, self.geom)
                    });
                    let mut dt = self.host_stable_dt(u, cfl);
                    assert!(dt > 1e-14, "time step collapsed on host fallback: {dt}");
                    if t + dt > t_end {
                        dt = t_end - t;
                    }
                    solver.step(u, dt, None).expect("host fallback step failed");
                    t += dt;
                    steps += 1;
                    let mut b = breaker.borrow_mut();
                    b.stats.host_steps += 1;
                    if b.cooldown_left > 0 {
                        b.cooldown_left -= 1;
                    }
                    let half_open = b.cooldown_left == 0;
                    if half_open {
                        b.state = BreakerState::HalfOpen;
                    }
                    drop(b);
                    self.bump("dev.breaker.host_steps", 1);
                    if half_open {
                        self.tinstant("dev.breaker.half_open", steps as f64);
                    }
                }
                BreakerState::HalfOpen => {
                    if let Some(u) = host_u.take() {
                        self.upload(&u).get();
                    }
                    let before = self.op_failures();
                    let mut dt = self.stable_dt(cfl);
                    assert!(dt > 1e-14, "time step collapsed on device: {dt}");
                    if t + dt > t_end {
                        dt = t_end - t;
                    }
                    self.enqueue_step(dt);
                    t += dt;
                    steps += 1;
                    let failed = self.op_failures() > before;
                    let mut b = breaker.borrow_mut();
                    b.stats.probes += 1;
                    if failed {
                        b.stats.device_failures += 1;
                        b.state = BreakerState::Open;
                        b.cooldown_left = b.cfg.cooldown.max(1);
                        drop(b);
                        self.bump("dev.breaker.probe_failures", 1);
                        self.tinstant("dev.breaker.probe_failure", steps as f64);
                    } else {
                        b.state = BreakerState::Closed;
                        b.window.clear();
                        b.stats.readmissions += 1;
                        drop(b);
                        self.bump("dev.breaker.readmissions", 1);
                        self.tinstant("dev.breaker.readmit", steps as f64);
                    }
                }
                BreakerState::Closed => {
                    if let Some(u) = host_u.take() {
                        self.upload(&u).get();
                    }
                    let before = self.op_failures();
                    let mut dt = self.stable_dt(cfl);
                    assert!(dt > 1e-14, "time step collapsed on device: {dt}");
                    if t + dt > t_end {
                        dt = t_end - t;
                    }
                    self.enqueue_step(dt);
                    t += dt;
                    steps += 1;
                    let failed = self.op_failures() > before;
                    if breaker.borrow_mut().record(failed) {
                        self.bump("dev.breaker.trips", 1);
                        self.tinstant("dev.breaker.trip", steps as f64);
                    }
                }
            }
        }
        // Leave the state device-resident regardless of where the last
        // step ran, so callers' download() contract is unchanged.
        if let Some(u) = host_u.take() {
            self.upload(&u).get();
        }
        self.dev.sync();
        steps
    }

    /// Drain the queue, then download — used when the breaker trips with
    /// enqueued work still in flight.
    fn download_after_sync(&self) -> Field {
        self.dev.sync();
        self.download()
    }

    /// Host replica of the `stable_dt` kernel (ghost fill + primitive
    /// recovery + CFL reduction), applied to the quarantine copy so the dt
    /// sequence is identical to the device path.
    fn host_stable_dt(&self, u: &mut Field, cfl: f64) -> f64 {
        rhrsc_grid::fill_ghosts(u, &self.bcs);
        let mut prim = Field::new(self.geom, 5);
        recover_prims(&self.scheme, u, &mut prim).expect("host recovery failed");
        max_dt(&self.scheme, &prim, cfl)
    }

    /// Launch + copy fault count drawn so far (injector deltas around an
    /// operation reveal whether it faulted — draws happen at enqueue time).
    fn op_failures(&self) -> u64 {
        self.fault_stats()
            .map_or(0, |s| s.launches_failed + s.copies_failed)
    }

    fn bump(&self, name: &str, n: u64) {
        if let Some(m) = self.metrics.borrow().as_ref() {
            m.counter(name).add(n);
        }
    }

    /// Drop an instant on the device track, if a recorder is attached.
    fn tinstant(&self, name: &'static str, arg: f64) {
        if let Some((tr, tk)) = self.trace.borrow().as_ref() {
            tk.instant(name, tr.now_ns(), arg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use crate::scheme::init_cons;
    use rhrsc_grid::bc;
    use std::time::Duration;

    fn fast_cfg(threads: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            compute_threads: threads,
            launch_overhead: Duration::ZERO,
            copy_bandwidth: f64::INFINITY,
            throughput_multiplier: 1.0,
            name: "test-dev".to_string(),
        }
    }

    #[test]
    fn upload_download_roundtrip() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(32, 0.0, 1.0, 3);
        let u = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk2, geom);
        dev.upload(&u).get();
        assert_eq!(dev.download().raw(), u.raw());
    }

    #[test]
    fn device_step_bitwise_matches_host() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let mut u_host = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let u_dev0 = u_host.clone();

        let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        for _ in 0..5 {
            host.step(&mut u_host, 1e-3, None).unwrap();
        }

        let dev = DevicePatchSolver::new(fast_cfg(3), scheme, prob.bcs, RkOrder::Rk3, geom);
        dev.upload(&u_dev0).get();
        for _ in 0..5 {
            dev.enqueue_step(1e-3);
        }
        let u_dev = dev.download();
        assert_eq!(u_host.raw(), u_dev.raw(), "device must be bit-identical");
    }

    #[test]
    fn two_devices_advance_independent_patches_concurrently() {
        // A heterogeneous node with two accelerators: each owns a patch;
        // steps enqueue without host round-trips and both match the host.
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let bcs = bc::uniform(rhrsc_grid::Bc::Periodic);
        let mk_ic = |phase: f64| {
            move |x: [f64; 3]| {
                rhrsc_srhd::Prim::new_1d(
                    1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0] + phase).sin(),
                    0.4,
                    1.0,
                )
            }
        };
        let geom = PatchGeom::line(64, 0.0, 1.0, scheme.required_ghosts());
        let devs: Vec<DevicePatchSolver> = (0..2)
            .map(|_| DevicePatchSolver::new(fast_cfg(2), scheme, bcs, RkOrder::Rk2, geom))
            .collect();
        let mut hosts = Vec::new();
        for (d, dev) in devs.iter().enumerate() {
            let ic = mk_ic(d as f64);
            let u0 = init_cons(geom, &scheme.eos, &ic);
            dev.upload(&u0).get();
            // Enqueue on both devices before waiting on either: the two
            // command queues run concurrently.
            for _ in 0..4 {
                dev.enqueue_step(1e-3);
            }
            hosts.push(u0);
        }
        for (dev, u0) in devs.iter().zip(&mut hosts) {
            let mut host = PatchSolver::new(scheme, bcs, RkOrder::Rk2, geom);
            for _ in 0..4 {
                host.step(u0, 1e-3, None).unwrap();
            }
            assert_eq!(dev.download().raw(), u0.raw());
        }
    }

    #[test]
    fn breaker_quarantines_faulty_device_and_readmits_after_recovery() {
        use rhrsc_runtime::{FaultInjector, FaultPlan};

        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(48, 0.0, 1.0, 3);
        let u0 = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));

        // Host reference over the full window.
        let mut u_ref = u0.clone();
        let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk2, geom);
        host.advance_to(&mut u_ref, 0.0, 0.04, 0.4, None).unwrap();
        host.advance_to(&mut u_ref, 0.04, 0.08, 0.4, None).unwrap();

        let mut dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk2, geom);
        dev.set_breaker(BreakerConfig {
            window: 4,
            threshold: 2,
            cooldown: 2,
        });
        // Every launch faults: the breaker must trip and quarantine the
        // device behind host-pool routing (probes keep failing, so it
        // stays quarantined).
        let plan = FaultPlan {
            launch_fail_prob: 1.0,
            ..FaultPlan::disabled()
        };
        dev.set_fault_injector(std::sync::Arc::new(FaultInjector::new(plan, 0)));
        dev.upload(&u0).get();
        dev.advance_to(0.0, 0.04, 0.4);

        let stats = dev.breaker_stats().unwrap();
        assert!(stats.trips >= 1, "breaker never tripped: {stats:?}");
        assert!(stats.host_steps > 0, "no host fallback steps: {stats:?}");
        assert_eq!(stats.readmissions, 0, "faulty device was re-admitted");

        // Device "repaired": probes now succeed, the breaker half-opens
        // and re-admits it, and the run stays bit-identical throughout.
        dev.set_fault_injector(std::sync::Arc::new(FaultInjector::new(
            FaultPlan::disabled(),
            0,
        )));
        dev.advance_to(0.04, 0.08, 0.4);

        let stats = dev.breaker_stats().unwrap();
        assert!(
            stats.readmissions >= 1,
            "probe never re-admitted: {stats:?}"
        );
        assert_eq!(dev.breaker_state(), Some(BreakerState::Closed));
        assert_eq!(
            dev.download().raw(),
            u_ref.raw(),
            "breaker routing must stay bit-identical to the host path"
        );
    }

    #[test]
    fn device_cfl_advance_matches_host() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(48, 0.0, 1.0, 3);
        let mut u_host = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let u0 = u_host.clone();

        let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk2, geom);
        let host_steps = host.advance_to(&mut u_host, 0.0, 0.1, 0.4, None).unwrap();

        let dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk2, geom);
        dev.upload(&u0).get();
        let dev_steps = dev.advance_to(0.0, 0.1, 0.4);
        assert_eq!(host_steps, dev_steps);
        assert_eq!(u_host.raw(), dev.download().raw());
    }

    #[test]
    fn fused_step_scan_halves_launches_and_keeps_bits() {
        // The fused fast path must reproduce the two-kernel flow exactly
        // (same Δt sequence, same staged bytes, ghosts included) while
        // launching once per step plus the priming Δt kernel.
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(48, 0.0, 1.0, 3);
        let u0 = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));

        // Two-kernel reference flow, hand-rolled.
        let reference = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk3, geom);
        reference.upload(&u0).get();
        let (mut t, t_end) = (0.0, 0.05);
        let mut ref_dts = Vec::new();
        while t < t_end - 1e-14 {
            let mut dt = reference.stable_dt(0.4);
            if t + dt > t_end {
                dt = t_end - t;
            }
            reference.enqueue_step(dt);
            ref_dts.push(dt);
            t += dt;
        }
        reference.dev.sync();

        let dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk3, geom);
        let reg = std::sync::Arc::new(Registry::new());
        dev.set_metrics(reg.clone());
        dev.upload(&u0).get();
        let steps = dev.advance_to(0.0, t_end, 0.4);
        assert_eq!(steps, ref_dts.len());
        assert_eq!(
            dev.download().raw(),
            reference.download().raw(),
            "fused step+scan changed the staged bytes"
        );
        let launches = reg.snapshot().histograms["phase.dev.launch"].count;
        assert_eq!(
            launches as usize,
            steps + 1,
            "fused path must launch once per step plus the priming Δt kernel"
        );
    }
}
