//! Patch integration staged through the simulated accelerator.
//!
//! This is the offload path a GPU port would take: the conserved field is
//! uploaded once, RK steps run as kernels on the device's command queue
//! (paying launch overhead per stage, using the device's compute gang),
//! and data is downloaded only when the host needs it. Because the kernels
//! are the same host functions, results are **bit-identical** to
//! [`crate::PatchSolver`] — asserted by the integration tests — while the
//! cost model reproduces the offload performance envelope (T3).

use crate::integrate::{PatchSolver, RkOrder};
use crate::scheme::{max_dt, recover_prims, Scheme};
use rhrsc_grid::{BcSet, Field, PatchGeom};
use rhrsc_runtime::{Accelerator, AcceleratorConfig, BufId, Future};
use rhrsc_srhd::NCOMP;

/// A patch solver that executes on a simulated accelerator.
pub struct DevicePatchSolver {
    dev: Accelerator,
    scheme: Scheme,
    bcs: BcSet,
    rk: RkOrder,
    geom: PatchGeom,
    buf_u: BufId,
}

impl DevicePatchSolver {
    /// Bring up a device with `cfg` and allocate the state buffer for
    /// patches of geometry `geom`.
    pub fn new(
        cfg: AcceleratorConfig,
        scheme: Scheme,
        bcs: BcSet,
        rk: RkOrder,
        geom: PatchGeom,
    ) -> Self {
        assert!(geom.ng >= scheme.required_ghosts());
        let dev = Accelerator::new(cfg);
        let buf_u = dev.alloc(NCOMP * geom.len());
        DevicePatchSolver {
            dev,
            scheme,
            bcs,
            rk,
            geom,
            buf_u,
        }
    }

    /// Patch geometry this solver was built for.
    pub fn geom(&self) -> &PatchGeom {
        &self.geom
    }

    /// Attach a fault injector to the underlying device: subsequent
    /// launches and copies may fail per the plan and fall back
    /// transparently (results stay bit-identical; only the cost model and
    /// the fault counters change).
    pub fn set_fault_injector(&mut self, injector: std::sync::Arc<rhrsc_runtime::FaultInjector>) {
        self.dev.set_fault_injector(injector);
    }

    /// Device-side fault counters, if an injector is attached.
    pub fn fault_stats(&self) -> Option<rhrsc_runtime::FaultStats> {
        self.dev.fault_stats()
    }

    /// Attach a metrics registry to the underlying device queue:
    /// staging and launch commands record their modeled durations into
    /// `phase.dev.*` histograms and `dev.*.bytes` counters (see
    /// [`rhrsc_runtime::Accelerator::set_metrics`]).
    pub fn set_metrics(&self, metrics: std::sync::Arc<rhrsc_runtime::Registry>) {
        self.dev.set_metrics(metrics);
    }

    /// Modeled device time consumed so far (see
    /// [`rhrsc_runtime::Accelerator::virtual_time`]).
    pub fn device_time(&self) -> std::time::Duration {
        self.dev.virtual_time()
    }

    /// Upload the conserved field to device memory (async; returns the
    /// completion future).
    pub fn upload(&self, u: &Field) -> Future<()> {
        assert_eq!(*u.geom(), self.geom);
        self.dev.copy_to_device(self.buf_u, u.raw())
    }

    /// Download the conserved field from device memory (blocking).
    pub fn download(&self) -> Field {
        let data = self.dev.copy_to_host(self.buf_u).get();
        Field::from_vec(self.geom, NCOMP, data)
    }

    /// Enqueue one RK step of size `dt` as a device kernel. Returns the
    /// completion future; steps enqueued back-to-back pipeline on the
    /// device queue without host round-trips.
    pub fn enqueue_step(&self, dt: f64) -> Future<()> {
        let (scheme, bcs, rk, geom, buf) = (self.scheme, self.bcs, self.rk, self.geom, self.buf_u);
        self.dev.launch(move |ctx| {
            let data = ctx.take(buf);
            let mut u = Field::from_vec(geom, NCOMP, data);
            let mut solver = PatchSolver::new(scheme, bcs, rk, geom);
            let gang = ctx.gang();
            solver
                .step(&mut u, dt, Some(gang))
                .expect("device step failed");
            ctx.put(buf, u.into_vec());
        })
    }

    /// Compute the stable Δt on the device (one kernel + a scalar copy).
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        let (scheme, bcs, geom, buf) = (self.scheme, self.bcs, self.geom, self.buf_u);
        let out = self.dev.alloc(1);
        self.dev.launch(move |ctx| {
            let data = ctx.take(buf);
            let mut u = Field::from_vec(geom, NCOMP, data);
            rhrsc_grid::fill_ghosts(&mut u, &bcs);
            let mut prim = Field::new(geom, 5);
            recover_prims(&scheme, &u, &mut prim).expect("device recovery failed");
            let dt = max_dt(&scheme, &prim, cfl);
            ctx.put(buf, u.into_vec());
            ctx.buf_mut(out)[0] = dt;
        });
        let dt = self.dev.copy_to_host(out).get()[0];
        self.dev.free(out);
        dt
    }

    /// Advance the device-resident state to `t_end` under CFL control;
    /// returns the number of steps. Kernel launches pipeline; only the Δt
    /// reduction synchronizes with the host (as in a real GPU code that
    /// reduces dt on-device and copies one scalar back).
    pub fn advance_to(&self, t: f64, t_end: f64, cfl: f64) -> usize {
        let mut t = t;
        let mut steps = 0;
        while t < t_end - 1e-14 {
            let mut dt = self.stable_dt(cfl);
            assert!(dt > 1e-14, "time step collapsed on device: {dt}");
            if t + dt > t_end {
                dt = t_end - t;
            }
            self.enqueue_step(dt);
            t += dt;
            steps += 1;
        }
        self.dev.sync();
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use crate::scheme::init_cons;
    use rhrsc_grid::bc;
    use std::time::Duration;

    fn fast_cfg(threads: usize) -> AcceleratorConfig {
        AcceleratorConfig {
            compute_threads: threads,
            launch_overhead: Duration::ZERO,
            copy_bandwidth: f64::INFINITY,
            throughput_multiplier: 1.0,
            name: "test-dev".to_string(),
        }
    }

    #[test]
    fn upload_download_roundtrip() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(32, 0.0, 1.0, 3);
        let u = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk2, geom);
        dev.upload(&u).get();
        assert_eq!(dev.download().raw(), u.raw());
    }

    #[test]
    fn device_step_bitwise_matches_host() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let mut u_host = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let u_dev0 = u_host.clone();

        let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        for _ in 0..5 {
            host.step(&mut u_host, 1e-3, None).unwrap();
        }

        let dev = DevicePatchSolver::new(fast_cfg(3), scheme, prob.bcs, RkOrder::Rk3, geom);
        dev.upload(&u_dev0).get();
        for _ in 0..5 {
            dev.enqueue_step(1e-3);
        }
        let u_dev = dev.download();
        assert_eq!(u_host.raw(), u_dev.raw(), "device must be bit-identical");
    }

    #[test]
    fn two_devices_advance_independent_patches_concurrently() {
        // A heterogeneous node with two accelerators: each owns a patch;
        // steps enqueue without host round-trips and both match the host.
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let bcs = bc::uniform(rhrsc_grid::Bc::Periodic);
        let mk_ic = |phase: f64| {
            move |x: [f64; 3]| {
                rhrsc_srhd::Prim::new_1d(
                    1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0] + phase).sin(),
                    0.4,
                    1.0,
                )
            }
        };
        let geom = PatchGeom::line(64, 0.0, 1.0, scheme.required_ghosts());
        let devs: Vec<DevicePatchSolver> = (0..2)
            .map(|_| DevicePatchSolver::new(fast_cfg(2), scheme, bcs, RkOrder::Rk2, geom))
            .collect();
        let mut hosts = Vec::new();
        for (d, dev) in devs.iter().enumerate() {
            let ic = mk_ic(d as f64);
            let u0 = init_cons(geom, &scheme.eos, &ic);
            dev.upload(&u0).get();
            // Enqueue on both devices before waiting on either: the two
            // command queues run concurrently.
            for _ in 0..4 {
                dev.enqueue_step(1e-3);
            }
            hosts.push(u0);
        }
        for (dev, u0) in devs.iter().zip(&mut hosts) {
            let mut host = PatchSolver::new(scheme, bcs, RkOrder::Rk2, geom);
            for _ in 0..4 {
                host.step(u0, 1e-3, None).unwrap();
            }
            assert_eq!(dev.download().raw(), u0.raw());
        }
    }

    #[test]
    fn device_cfl_advance_matches_host() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(48, 0.0, 1.0, 3);
        let mut u_host = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let u0 = u_host.clone();

        let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk2, geom);
        let host_steps = host.advance_to(&mut u_host, 0.0, 0.1, 0.4, None).unwrap();

        let dev = DevicePatchSolver::new(fast_cfg(2), scheme, prob.bcs, RkOrder::Rk2, geom);
        dev.upload(&u0).get();
        let dev_steps = dev.advance_to(0.0, 0.1, 0.4);
        assert_eq!(host_steps, dev_steps);
        assert_eq!(u_host.raw(), dev.download().raw());
    }
}
