//! Method-of-lines HRSC solver for SRHD.
//!
//! Assembles the physics ([`rhrsc_srhd`]), grids ([`rhrsc_grid`]), runtime
//! ([`rhrsc_runtime`]) and communication ([`rhrsc_comm`]) layers into
//! runnable solvers:
//!
//! * [`scheme`] — the numerical scheme bundle (EOS + reconstruction +
//!   Riemann solver + recovery parameters) and primitive recovery over
//!   fields,
//! * [`step`] — the spatial residual `L(U)` (dimension-by-dimension
//!   reconstruct + Riemann flux + divergence), with sub-region support
//!   for communication overlap and optional gang parallelism,
//! * [`integrate`] — SSP Runge–Kutta time integration and CFL control on
//!   a single patch,
//! * [`device_backend`] — the same patch integrator staged through the
//!   simulated accelerator (bit-identical results, offload cost model),
//! * [`driver`] — the distributed heterogeneous driver: block-decomposed
//!   domains over simulated ranks with bulk-synchronous or futurized
//!   (overlapped) halo exchange,
//! * [`smr`] — two-level static mesh refinement with conservative reflux
//!   (1D), the structured-adaptivity core of the authors' AMR codes,
//! * [`problems`] — standard SRHD test problems (Sod, Martí–Müller blast
//!   waves, density-wave advection, 2D Riemann, Kelvin–Helmholtz, boosted
//!   tubes),
//! * [`diag`] — diagnostics: L1 errors vs. reference solutions,
//!   conservation audits, Lorentz-factor extrema,
//! * [`health`] — periodic rank-local physics-health telemetry
//!   (conservation drift, atmosphere occupancy, con2prim cascade rates)
//!   with a soft anomaly watchdog.

pub mod amr;
pub mod amr_dist;
pub mod device_backend;
pub mod diag;
pub mod driver;
pub mod health;
pub mod integrate;
pub mod problems;
pub mod refine;
pub mod scheme;
pub mod smr;
pub mod step;

pub use amr::{AmrConfig, AmrSolver};
pub use amr_dist::{DistAmrConfig, DistAmrSolver, DistAmrStats};
pub use device_backend::{BreakerConfig, BreakerState, BreakerStats, DevicePatchSolver};
pub use driver::{ResilienceConfig, ResilienceStats};
pub use health::{HealthConfig, HealthMonitor, HealthRecord, HealthSummary};
pub use integrate::{PatchSolver, RkOrder};
pub use scheme::{RecoveryPolicy, RecoveryStats, Scheme, SolverError};
