//! Physics-health telemetry: periodic, strictly rank-local records of
//! conservation drift, atmosphere occupancy, con2prim cascade rates,
//! limiter activation and the maximum Lorentz factor.
//!
//! The monitor never communicates — health observation must not perturb
//! the comm pattern (liveness deadlines, agreement rounds) and must keep
//! the step bit-identical, so everything here is read-only over local
//! fields. Per-rank summaries are merged at bench/report time with
//! [`HealthSummary::merge`].
//!
//! A soft watchdog compares each record against configurable thresholds
//! and logs (never aborts) when conserved totals drift or the atmosphere
//! fraction grows too fast — the flight-recorder analogue of an engine
//! warning light.

use crate::diag::{
    atmosphere_fraction, conservation_drift, conserved_totals, limiter_activation_fraction,
    max_lorentz,
};
use crate::scheme::RecoveryStats;
use rhrsc_grid::Field;
use rhrsc_srhd::NCOMP;

/// Thresholds and cadence for the health monitor.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Observe every `interval` committed steps (0 is clamped to 1).
    pub interval: u64,
    /// Watchdog: warn when |drift| of any conserved total vs. the local
    /// baseline exceeds this. Loose by default — the goal is catching
    /// blow-ups and NaN storms, not round-off audits (those live in the
    /// conservation tests).
    pub drift_warn: f64,
    /// Watchdog: warn when the atmosphere fraction grows by more than
    /// this between consecutive records (a floor-rate slope alarm).
    pub floor_rate_warn: f64,
    /// Cells with `rho <= atmo_factor * rho_floor` count as atmosphere.
    pub atmo_factor: f64,
    /// Emit watchdog warnings on stderr (alarm counters always update).
    pub verbose: bool,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            interval: 5,
            drift_warn: 0.1,
            floor_rate_warn: 0.05,
            atmo_factor: 10.0,
            verbose: true,
        }
    }
}

/// One health observation (all quantities rank-local).
#[derive(Debug, Clone, Copy)]
pub struct HealthRecord {
    pub step: u64,
    pub time: f64,
    /// Interior conserved totals `(∫D, ∫Sx, ∫Sy, ∫Sz, ∫τ)`.
    pub totals: [f64; NCOMP],
    /// Max relative drift of `totals` vs. the local baseline.
    pub drift: f64,
    /// Fraction of interior cells at/near the atmosphere floor.
    pub atmo_frac: f64,
    /// Fraction of interior cells with a fully-limited density slope.
    pub limiter_frac: f64,
    /// Maximum Lorentz factor over the interior.
    pub max_w: f64,
    /// Con2prim cascade activations per cell since the previous record:
    /// `[relaxed_tol, neighbor_avg, atmosphere]`.
    pub c2p_tier_rate: [f64; 3],
}

/// Aggregated view of a run's health records; mergeable across ranks.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSummary {
    pub records: u64,
    pub max_drift: f64,
    pub max_lorentz: f64,
    pub mean_atmo_frac: f64,
    pub mean_limiter_frac: f64,
    /// Mean per-cell cascade rates `[relaxed_tol, neighbor_avg, atmosphere]`.
    pub c2p_tier_rate: [f64; 3],
    pub drift_alarms: u64,
    pub floor_alarms: u64,
}

impl HealthSummary {
    /// Fold another rank's summary into this one: maxima of maxima,
    /// record-weighted means, summed alarm counts.
    pub fn merge(&mut self, other: &HealthSummary) {
        let (a, b) = (self.records as f64, other.records as f64);
        let w = a + b;
        if w > 0.0 {
            self.mean_atmo_frac = (self.mean_atmo_frac * a + other.mean_atmo_frac * b) / w;
            self.mean_limiter_frac = (self.mean_limiter_frac * a + other.mean_limiter_frac * b) / w;
            for t in 0..3 {
                self.c2p_tier_rate[t] =
                    (self.c2p_tier_rate[t] * a + other.c2p_tier_rate[t] * b) / w;
            }
        }
        self.records += other.records;
        self.max_drift = self.max_drift.max(other.max_drift);
        self.max_lorentz = self.max_lorentz.max(other.max_lorentz);
        self.drift_alarms += other.drift_alarms;
        self.floor_alarms += other.floor_alarms;
    }

    /// Flat `(name, value)` pairs for BENCH-report emission.
    pub fn to_pairs(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("health.records", self.records as f64),
            ("health.max_drift", self.max_drift),
            ("health.max_lorentz", self.max_lorentz),
            ("health.mean_atmo_frac", self.mean_atmo_frac),
            ("health.mean_limiter_frac", self.mean_limiter_frac),
            ("health.c2p.relaxed_tol_rate", self.c2p_tier_rate[0]),
            ("health.c2p.neighbor_avg_rate", self.c2p_tier_rate[1]),
            ("health.c2p.atmosphere_rate", self.c2p_tier_rate[2]),
            ("health.drift_alarms", self.drift_alarms as f64),
            ("health.floor_alarms", self.floor_alarms as f64),
        ]
    }
}

/// Rank-local physics-health monitor (see module docs).
pub struct HealthMonitor {
    cfg: HealthConfig,
    baseline: Option<[f64; NCOMP]>,
    records: Vec<HealthRecord>,
    last_rec: Option<RecoveryStats>,
    last_step: Option<u64>,
    drift_alarms: u64,
    floor_alarms: u64,
}

impl HealthMonitor {
    pub fn new(cfg: HealthConfig) -> Self {
        Self {
            cfg,
            baseline: None,
            records: Vec::new(),
            last_rec: None,
            last_step: None,
            drift_alarms: 0,
            floor_alarms: 0,
        }
    }

    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// `true` when `step` falls on the observation cadence.
    pub fn due(&self, step: u64) -> bool {
        step.is_multiple_of(self.cfg.interval.max(1))
    }

    /// Capture the conservation baseline if not yet set (call once the
    /// initial conserved field exists).
    pub fn ensure_baseline(&mut self, u: &Field) {
        if self.baseline.is_none() {
            self.baseline = Some(conserved_totals(u));
        }
    }

    /// Drop the baseline and cascade bookkeeping — required after a
    /// shrinking recovery (the local domain changed, so drift vs. the
    /// old baseline is meaningless).
    pub fn rebaseline(&mut self) {
        self.baseline = None;
        self.last_rec = None;
    }

    /// Record one observation. Purely local reads; returns the record
    /// plus `(drift_alarm, floor_alarm)` watchdog verdicts.
    pub fn observe(
        &mut self,
        step: u64,
        time: f64,
        u: &Field,
        prim: &Field,
        rho_floor: f64,
        rec: RecoveryStats,
    ) -> (HealthRecord, bool, bool) {
        // Re-observing the same step (e.g. a retried commit) replaces
        // the previous record instead of double-counting.
        if self.last_step == Some(step) {
            self.records.pop();
        }
        let totals = conserved_totals(u);
        let baseline = *self.baseline.get_or_insert(totals);
        let drift = conservation_drift(&baseline, &totals);
        let cells = u.geom().interior_len().max(1) as f64;
        let prev = self.last_rec.unwrap_or(rec);
        let d = |a: u64, b: u64| a.saturating_sub(b) as f64 / cells;
        let c2p_tier_rate = [
            d(rec.relaxed_tol, prev.relaxed_tol),
            d(rec.neighbor_avg, prev.neighbor_avg),
            d(rec.atmosphere, prev.atmosphere),
        ];
        let record = HealthRecord {
            step,
            time,
            totals,
            drift,
            atmo_frac: atmosphere_fraction(prim, self.cfg.atmo_factor * rho_floor),
            limiter_frac: limiter_activation_fraction(prim),
            max_w: max_lorentz(prim),
            c2p_tier_rate,
        };
        let drift_alarm = !record.drift.is_finite() || record.drift > self.cfg.drift_warn;
        let prev_atmo = self.records.last().map(|r| r.atmo_frac);
        let floor_alarm = match prev_atmo {
            Some(p) => record.atmo_frac - p > self.cfg.floor_rate_warn,
            None => false,
        };
        if drift_alarm {
            self.drift_alarms += 1;
            if self.cfg.verbose {
                eprintln!(
                    "[health] warning: conservation drift {:.3e} exceeds {:.3e} at step {} (t={:.4})",
                    record.drift, self.cfg.drift_warn, step, time
                );
            }
        }
        if floor_alarm {
            self.floor_alarms += 1;
            if self.cfg.verbose {
                eprintln!(
                    "[health] warning: atmosphere fraction jumped {:.3e} -> {:.3e} at step {} (t={:.4})",
                    prev_atmo.unwrap_or(0.0),
                    record.atmo_frac,
                    step,
                    time
                );
            }
        }
        self.records.push(record);
        self.last_rec = Some(rec);
        self.last_step = Some(step);
        (record, drift_alarm, floor_alarm)
    }

    pub fn records(&self) -> &[HealthRecord] {
        &self.records
    }

    /// Aggregate all records into a mergeable summary.
    pub fn summary(&self) -> HealthSummary {
        let n = self.records.len() as f64;
        let mut s = HealthSummary {
            records: self.records.len() as u64,
            drift_alarms: self.drift_alarms,
            floor_alarms: self.floor_alarms,
            ..Default::default()
        };
        for r in &self.records {
            s.max_drift = s.max_drift.max(r.drift);
            s.max_lorentz = s.max_lorentz.max(r.max_w);
            s.mean_atmo_frac += r.atmo_frac;
            s.mean_limiter_frac += r.limiter_frac;
            for t in 0..3 {
                s.c2p_tier_rate[t] += r.c2p_tier_rate[t];
            }
        }
        if n > 0.0 {
            s.mean_atmo_frac /= n;
            s.mean_limiter_frac /= n;
            for t in 0..3 {
                s.c2p_tier_rate[t] /= n;
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use crate::scheme::{init_cons, recover_prims, Scheme};
    use rhrsc_grid::PatchGeom;

    fn sod_fields() -> (Scheme, Field, Field) {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let u = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let mut prim = Field::new(geom, 5);
        recover_prims(&scheme, &u, &mut prim).unwrap();
        (scheme, u, prim)
    }

    #[test]
    fn static_field_reports_zero_drift_and_no_alarms() {
        let (scheme, u, prim) = sod_fields();
        let mut mon = HealthMonitor::new(HealthConfig {
            verbose: false,
            ..Default::default()
        });
        mon.ensure_baseline(&u);
        let rec = RecoveryStats::default();
        let (r0, da, fa) = mon.observe(0, 0.0, &u, &prim, scheme.c2p.rho_floor, rec);
        assert_eq!(r0.drift, 0.0);
        assert!(!da && !fa);
        let (r1, da, fa) = mon.observe(5, 0.1, &u, &prim, scheme.c2p.rho_floor, rec);
        assert_eq!(r1.drift, 0.0);
        assert!(!da && !fa);
        assert!((r1.max_w - prim_max_w(&prim)).abs() < 1e-14);
        let s = mon.summary();
        assert_eq!(s.records, 2);
        assert_eq!(s.drift_alarms, 0);
        assert_eq!(s.floor_alarms, 0);
        // Sod at t=0 has no atmosphere cells and no vacuum.
        assert_eq!(s.mean_atmo_frac, 0.0);
    }

    fn prim_max_w(prim: &Field) -> f64 {
        crate::diag::max_lorentz(prim)
    }

    #[test]
    fn drift_watchdog_fires_on_perturbed_totals() {
        let (scheme, mut u, prim) = sod_fields();
        let mut mon = HealthMonitor::new(HealthConfig {
            drift_warn: 1e-6,
            verbose: false,
            ..Default::default()
        });
        mon.ensure_baseline(&u);
        let rec = RecoveryStats::default();
        // Perturb the conserved density well past the alarm threshold.
        let (i, j, k) = u.geom().interior_iter().next().unwrap();
        let v = u.at(0, i, j, k);
        u.set(0, i, j, k, v * 2.0);
        let (_, da, _) = mon.observe(0, 0.0, &u, &prim, scheme.c2p.rho_floor, rec);
        assert!(da, "expected a drift alarm");
        assert_eq!(mon.summary().drift_alarms, 1);
    }

    #[test]
    fn cascade_rates_are_deltas_not_totals() {
        let (scheme, u, prim) = sod_fields();
        let mut mon = HealthMonitor::new(HealthConfig {
            verbose: false,
            ..Default::default()
        });
        let cells = u.geom().interior_len() as f64;
        let mut rec = RecoveryStats {
            relaxed_tol: 10,
            ..Default::default()
        };
        mon.observe(0, 0.0, &u, &prim, scheme.c2p.rho_floor, rec);
        rec.relaxed_tol = 16;
        let (r, _, _) = mon.observe(5, 0.1, &u, &prim, scheme.c2p.rho_floor, rec);
        assert!((r.c2p_tier_rate[0] - 6.0 / cells).abs() < 1e-15);
    }

    #[test]
    fn summaries_merge_with_record_weights() {
        let mut a = HealthSummary {
            records: 2,
            max_drift: 1e-3,
            max_lorentz: 2.0,
            mean_atmo_frac: 0.1,
            mean_limiter_frac: 0.2,
            c2p_tier_rate: [0.0; 3],
            drift_alarms: 1,
            floor_alarms: 0,
        };
        let b = HealthSummary {
            records: 6,
            max_drift: 5e-3,
            max_lorentz: 1.5,
            mean_atmo_frac: 0.3,
            mean_limiter_frac: 0.0,
            c2p_tier_rate: [0.0; 3],
            drift_alarms: 0,
            floor_alarms: 2,
        };
        a.merge(&b);
        assert_eq!(a.records, 8);
        assert_eq!(a.max_drift, 5e-3);
        assert_eq!(a.max_lorentz, 2.0);
        assert!((a.mean_atmo_frac - (0.1 * 2.0 + 0.3 * 6.0) / 8.0).abs() < 1e-15);
        assert_eq!(a.drift_alarms, 1);
        assert_eq!(a.floor_alarms, 2);
    }

    #[test]
    fn reobserving_a_step_replaces_the_record() {
        let (scheme, u, prim) = sod_fields();
        let mut mon = HealthMonitor::new(HealthConfig {
            verbose: false,
            ..Default::default()
        });
        let rec = RecoveryStats::default();
        mon.observe(0, 0.0, &u, &prim, scheme.c2p.rho_floor, rec);
        mon.observe(0, 0.0, &u, &prim, scheme.c2p.rho_floor, rec);
        assert_eq!(mon.records().len(), 1);
    }
}
