//! Diagnostics: error norms, conservation audits, flow extrema.

use crate::problems::ExactFn;
use crate::scheme::{prim_at, recover_prims, Scheme, SolverError};
use rhrsc_grid::Field;
use rhrsc_srhd::NCOMP;

/// L1 norm of the density error against an exact solution at time `t`:
/// `Σ |ρ_i − ρ_exact(x_i)| Δx / |domain|` (the standard HRSC accuracy
/// metric). Returns the primitive field as a by-product.
pub fn l1_density_error(
    scheme: &Scheme,
    u: &Field,
    exact: &ExactFn,
    t: f64,
) -> Result<(f64, Field), SolverError> {
    let geom = *u.geom();
    let mut prim = Field::new(geom, 5);
    recover_prims(scheme, u, &mut prim)?;
    let mut l1 = 0.0;
    for (i, j, k) in geom.interior_iter() {
        let w = prim_at(&prim, i, j, k);
        let ex = exact(geom.center(i, j, k), t);
        l1 += (w.rho - ex.rho).abs();
    }
    Ok((l1 / geom.interior_len() as f64, prim))
}

/// Conserved totals `(∫D, ∫Sx, ∫Sy, ∫Sz, ∫τ)` over the interior.
pub fn conserved_totals(u: &Field) -> [f64; NCOMP] {
    let mut out = [0.0; NCOMP];
    for (c, o) in out.iter_mut().enumerate() {
        *o = u.interior_integral(c);
    }
    out
}

/// Maximum relative drift between two sets of conserved totals (the
/// conservation audit; should be at round-off level under periodic BCs).
pub fn conservation_drift(before: &[f64; NCOMP], after: &[f64; NCOMP]) -> f64 {
    before
        .iter()
        .zip(after)
        .map(|(&b, &a)| (a - b).abs() / b.abs().max(1.0))
        .fold(0.0, f64::max)
}

/// Maximum Lorentz factor over the interior of a primitive field.
pub fn max_lorentz(prim: &Field) -> f64 {
    let geom = prim.geom();
    let mut w_max = 1.0f64;
    for (i, j, k) in geom.interior_iter() {
        w_max = w_max.max(prim_at(prim, i, j, k).lorentz());
    }
    w_max
}

/// Fraction of interior cells whose density sits at or below `rho_atmo`
/// (the "atmosphere": cells held up by the floor rather than the flow).
pub fn atmosphere_fraction(prim: &Field, rho_atmo: f64) -> f64 {
    let geom = prim.geom();
    let mut n_atmo = 0usize;
    for (i, j, k) in geom.interior_iter() {
        if prim.at(0, i, j, k) <= rho_atmo {
            n_atmo += 1;
        }
    }
    n_atmo as f64 / geom.interior_len() as f64
}

/// Fraction of interior cells where a minmod-family density limiter is
/// fully active — adjacent one-sided slopes of opposite sign (a local
/// extremum), where TVD reconstruction drops to first order. Computed
/// post-hoc from the primitive density so the hot reconstruction loop
/// needs no instrumentation (and bit-identity is trivially preserved);
/// cells are counted once if any active dimension limits.
pub fn limiter_activation_fraction(prim: &Field) -> f64 {
    let geom = *prim.geom();
    let mut active = 0usize;
    let mut total = 0usize;
    for (i, j, k) in geom.interior_iter() {
        total += 1;
        let center = prim.at(0, i, j, k);
        let mut limited = false;
        for d in 0..3 {
            if !geom.active(d) {
                continue;
            }
            let (lo, hi) = match d {
                0 => (prim.at(0, i - 1, j, k), prim.at(0, i + 1, j, k)),
                1 => (prim.at(0, i, j - 1, k), prim.at(0, i, j + 1, k)),
                _ => (prim.at(0, i, j, k - 1), prim.at(0, i, j, k + 1)),
            };
            // Ghost primitives may be stale/unrecovered; skip the pair
            // rather than count garbage.
            if lo <= 0.0 || hi <= 0.0 {
                continue;
            }
            if (center - lo) * (hi - center) <= 0.0 && (lo != center || hi != center) {
                limited = true;
            }
        }
        if limited {
            active += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        active as f64 / total as f64
    }
}

/// Observed convergence order from `(resolution, error)` pairs via a
/// least-squares fit of `log(err) = −p log(n) + c`.
pub fn observed_order(samples: &[(usize, f64)]) -> f64 {
    assert!(samples.len() >= 2);
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .map(|&(n, e)| ((n as f64).ln(), e.max(1e-300).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    -slope
}

/// Kelvin–Helmholtz growth proxy: RMS of the transverse momentum
/// `S_y` over the interior (grows exponentially during the linear phase).
pub fn transverse_momentum_rms(u: &Field) -> f64 {
    let geom = u.geom();
    let mut sum = 0.0;
    for (i, j, k) in geom.interior_iter() {
        let sy = u.at(2, i, j, k);
        sum += sy * sy;
    }
    (sum / geom.interior_len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use crate::scheme::init_cons;

    #[test]
    fn l1_error_zero_against_own_ic() {
        let prob = Problem::sod();
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let geom = rhrsc_grid::PatchGeom::line(64, 0.0, 1.0, 3);
        let u = init_cons(geom, &prob.eos, &|x| (prob.ic)(x));
        let exact = prob.exact.clone().unwrap();
        let (l1, _) = l1_density_error(&scheme, &u, &exact, 0.0).unwrap();
        assert!(l1 < 1e-12, "L1 against t=0 exact: {l1}");
    }

    #[test]
    fn observed_order_recovers_synthetic_slope() {
        let samples: Vec<(usize, f64)> = [32usize, 64, 128, 256]
            .iter()
            .map(|&n| (n, 100.0 * (n as f64).powf(-2.5)))
            .collect();
        let p = observed_order(&samples);
        assert!((p - 2.5).abs() < 1e-10, "order {p}");
    }

    #[test]
    fn conservation_drift_detects_change() {
        let a = [1.0, 0.0, 0.0, 0.0, 2.0];
        let mut b = a;
        assert_eq!(conservation_drift(&a, &b), 0.0);
        b[0] += 1e-3;
        assert!((conservation_drift(&a, &b) - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn max_lorentz_of_static_field_is_one() {
        let geom = rhrsc_grid::PatchGeom::line(8, 0.0, 1.0, 2);
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let u = init_cons(geom, &scheme.eos, &|_| rhrsc_srhd::Prim::at_rest(1.0, 1.0));
        let mut prim = Field::new(geom, 5);
        recover_prims(&scheme, &u, &mut prim).unwrap();
        assert!((max_lorentz(&prim) - 1.0).abs() < 1e-12);
    }
}
