//! Distributed fault-tolerant AMR: the [`crate::amr`] patch hierarchy
//! sharded across simulated [`Rank`]s, surviving rank death mid-regrid.
//!
//! **Decomposition.** Every rank holds the full hierarchy *metadata* (patch
//! extents, parent links, `frac` phases) plus typed storage for every
//! patch, but each patch has exactly one *owner* rank that computes its
//! updates; the replicas on other ranks are shadow patches used as receive
//! buffers for ancestor/halo data. Ownership follows a space-filling-curve
//! order (patches sorted by their left edge in finest-level coordinates,
//! ties coarse-first) cut into contiguous cost-balanced segments by
//! [`partition_contiguous`], with per-patch cost `n·2^ℓ` ([`patch_cost`]) —
//! the subcycling-aware work estimate.
//!
//! **Communication.** Four message classes, all on halo-class tags (< 64),
//! so they inherit the CRC-32 payload trailer and the modeled link-level
//! retransmit of the communication layer for free:
//!
//! * *descend* ([`AMR_DESCEND_TAG_BASE`]` + ℓ`): a level-ℓ owner ships
//!   `base`+`u` interiors to the owners of its strict descendants before
//!   their substeps, so the time-interpolated ghost prolongation chain
//!   ([`AmrSolver::fill_ghosts_lerp`]) can be evaluated locally,
//! * *reflux* ([`AMR_REFLUX_TAG_BASE`]` + ℓ`): a child owner ships its
//!   post-substep `u` interiors and accumulated boundary fluxes to an
//!   off-rank parent owner, which restricts and applies the Berger–Colella
//!   corrections exactly as the serial solver does,
//! * *sync* ([`AMR_SYNC_TAG_BASE`]` + ℓ`): `u`-only descend used at sync
//!   points (Δt estimation, diagnostics),
//! * *allgather* ([`AMR_REGRID_TAG`]): every owner ships all its interiors
//!   to every live rank, fully replicating the state; used before regrids
//!   (so clustering is a pure-local, deterministic computation), before
//!   global checkpoints (the root writes a rank-count-independent v4 AMR
//!   checkpoint from its replica), and for gathered diagnostics.
//!
//! Every blob carries an *attempt sequence number* in its first element;
//! receivers drop blobs from older (rolled-back) attempts and refuse blobs
//! from the future, so retried steps never consume stale in-flight data.
//!
//! **Determinism.** Owned-patch arithmetic is copied verbatim from the
//! serial [`AmrSolver`]; ghost fills are recomputed locally from replicated
//! ancestor interiors; the Δt reduction is an exact min; and regrids run on
//! the fully-replicated state. A no-fault distributed run is therefore
//! bit-identical to the serial solver (pinned by tests).
//!
//! **Fault tolerance.** The advance loop reuses the resilient-driver tiers
//! (retry → checkpoint restore → shrinking recovery): per attempt every
//! rank reaches the Δt reduction and the agreement round even if its local
//! work failed (keeping collective tags aligned), a `≥ SUSPECT_FLAG`
//! agreement triggers the two-round suspicion consensus, and a confirmed
//! death restores every survivor from the shared rank-count-independent
//! checkpoint, re-partitions the SFC segment map over the shrunken live
//! set, and resumes with a degraded-CFL ramp. Regrids are *comm-atomic*: a
//! pre-mutation agreement barrier after the allgather ensures either every
//! rank rebuilds the hierarchy or none does, so a rank killed mid-regrid
//! (the [`RankSite::Regrid`] fault site) can never leave survivors with
//! divergent hierarchies.

use crate::amr::AmrSolver;
use crate::driver::comm_err;
use crate::integrate::RkOrder;
use crate::refine::{restrict_onto, rhs_1d_with_fluxes, rk_tables};
use crate::scheme::{apply_conserved_floors, max_dt, recover_prims, Scheme, SolverError};
use crate::AmrConfig;
use rhrsc_comm::{
    Rank, AMR_DESCEND_TAG_BASE, AMR_REFLUX_TAG_BASE, AMR_REGRID_TAG, AMR_SYNC_TAG_BASE,
    SUSPECT_FLAG,
};
use rhrsc_grid::{BcSet, Field};
use rhrsc_io::checkpoint::{
    decode_amr_trusted, encode_amr, AmrCheckpoint, CheckpointError, CheckpointSlots,
};
use rhrsc_io::snapshot::MemorySnapshot;
use rhrsc_runtime::fault::{FaultInjector, RankSite, SnapshotTarget};
use rhrsc_runtime::Registry;
use rhrsc_srhd::{Cons, Prim, NCOMP};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

// ----- cost model and partitioning ---------------------------------------

/// Work estimate of one patch: interior cells × the `2^ℓ` subcycling
/// factor (a level-ℓ cell is updated `2^ℓ` times per base step).
pub fn patch_cost(level: usize, n: usize) -> f64 {
    ((n as u64) << level) as f64
}

/// Space-filling-curve sort key of a patch: its left edge expressed in
/// finest-level cell coordinates, ties broken coarse-first (so a parent
/// sorts before the children it contains).
pub fn sfc_key(level: usize, lo: usize, max_levels: usize) -> (u64, u32) {
    ((lo as u64) << (max_levels - 1 - level), level as u32)
}

/// Cut an SFC-ordered cost sequence into `nparts` contiguous segments by
/// the greedy midpoint rule: item `i` goes to the first part whose ideal
/// boundary lies past the item's cost midpoint.
///
/// Guarantees (pinned by the property suite): every item is assigned to
/// exactly one part, part indices are non-decreasing (segments are
/// contiguous), and the heaviest part carries at most
/// `total/nparts + max_item_cost`.
pub fn partition_contiguous(costs: &[f64], nparts: usize) -> Vec<usize> {
    assert!(nparts > 0, "need at least one part");
    let total: f64 = costs.iter().sum();
    let mut out = vec![0usize; costs.len()];
    let mut part = 0usize;
    let mut acc = 0.0;
    for (i, &c) in costs.iter().enumerate() {
        while part + 1 < nparts && acc + 0.5 * c > total * (part + 1) as f64 / nparts as f64 {
            part += 1;
        }
        out[i] = part;
        acc += c;
    }
    out
}

/// SFC-order the hierarchy's patches and assign contiguous cost-balanced
/// segments to the live ranks. Deterministic: every rank computes the
/// identical map from its replicated metadata.
fn assign_owners(inner: &AmrSolver, live: &[usize]) -> Vec<Vec<usize>> {
    let max_levels = inner.cfg.max_levels;
    let mut items: Vec<(u64, u32, usize, usize)> = Vec::new();
    for (l, ps) in inner.levels.iter().enumerate() {
        for (i, p) in ps.iter().enumerate() {
            let (key, tie) = sfc_key(l, p.lo, max_levels);
            items.push((key, tie, l, i));
        }
    }
    items.sort_unstable();
    let costs: Vec<f64> = items
        .iter()
        .map(|&(_, _, l, i)| patch_cost(l, inner.levels[l][i].n))
        .collect();
    let parts = partition_contiguous(&costs, live.len());
    let mut owners: Vec<Vec<usize>> = inner.levels.iter().map(|ps| vec![0; ps.len()]).collect();
    for (&(_, _, l, i), &part) in items.iter().zip(&parts) {
        owners[l][i] = live[part];
    }
    owners
}

// ----- configuration and statistics --------------------------------------

/// Configuration of the distributed AMR driver.
#[derive(Debug, Clone)]
pub struct DistAmrConfig {
    /// The underlying hierarchy configuration.
    pub amr: AmrConfig,
    /// Shared directory for the rank-count-independent global AMR
    /// checkpoint slots (`None` disables checkpointing, and with it the
    /// restore and shrink tiers).
    pub checkpoint_dir: Option<PathBuf>,
    /// Base steps between global checkpoints (0 disables periodic saves;
    /// the initial save still happens).
    pub checkpoint_interval: usize,
    /// Base steps between diskless in-memory checkpoints (0 disables the
    /// memory tier). The hierarchy is fully replicated after the
    /// allgather, so the memory tier is trivially n-way redundant: every
    /// rank freezes the identical serialized checkpoint. Overridable via
    /// `RHRSC_CKP_LOCAL_INTERVAL`.
    pub local_interval: usize,
    /// Base steps between FNV scrubs of the frozen memory snapshot (0
    /// disables scrubbing). Overridable via `RHRSC_SDC_SCRUB_INTERVAL`.
    pub scrub_interval: usize,
    /// In-place retries (with halved CFL) before the restore tier.
    pub max_step_retries: usize,
    /// Checkpoint restores before giving up.
    pub max_restores: usize,
    /// Regrid-time rebalance trigger: when the inherited ownership's
    /// max-rank cost exceeds this multiple of the ideal (total/live), the
    /// SFC partition is recomputed from scratch. Overridable via the
    /// `RHRSC_AMR_REBALANCE_THRESH` environment variable.
    pub rebalance_threshold: f64,
}

impl Default for DistAmrConfig {
    fn default() -> Self {
        let thresh = std::env::var("RHRSC_AMR_REBALANCE_THRESH")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|t| *t >= 1.0)
            .unwrap_or(1.25);
        DistAmrConfig {
            amr: AmrConfig::default(),
            checkpoint_dir: None,
            checkpoint_interval: 4,
            local_interval: crate::driver::env_usize("RHRSC_CKP_LOCAL_INTERVAL", 2),
            scrub_interval: crate::driver::env_usize("RHRSC_SDC_SCRUB_INTERVAL", 5),
            max_step_retries: 2,
            max_restores: 4,
            rebalance_threshold: thresh,
        }
    }
}

/// Per-rank counters of the distributed AMR driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistAmrStats {
    /// Base steps committed.
    pub steps: u64,
    /// Descend/sync halo messages sent.
    pub halo_msgs: u64,
    /// Payload bytes sent across all message classes.
    pub halo_bytes: u64,
    /// Reflux messages sent.
    pub reflux_msgs: u64,
    /// Allgather messages sent (regrid + checkpoint + diagnostics).
    pub regrid_msgs: u64,
    /// Patches whose owner changed at a regrid.
    pub migrations: u64,
    /// Regrids that triggered a from-scratch re-partition.
    pub rebalances: u64,
    /// Shrinking recoveries performed.
    pub shrinks: u64,
    /// Ranks confirmed dead and evicted.
    pub ranks_lost: u64,
    /// Suspicion consensus rounds that ended in a false alarm.
    pub false_suspicions: u64,
    /// In-place step retries.
    pub retries: u64,
    /// Checkpoint restores (retry-exhausted tier).
    pub restores: u64,
    /// Global checkpoints this rank participated in.
    pub checkpoints_saved: u64,
    /// Restores that fell back to the `prev` slot (torn `latest`).
    pub ckpt_fallbacks: u64,
    /// Diskless in-memory snapshots frozen.
    pub local_snapshots: u64,
    /// Restores served from the memory tier (no disk I/O).
    pub local_restores: u64,
    /// Frozen snapshots dropped after failing their FNV scrub.
    pub snapshots_rotted: u64,
}

// ----- the distributed solver --------------------------------------------

/// Exchange class: selects the tag family, the fault-site window, the
/// trace span, and which counter the traffic lands in.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ExKind {
    Descend,
    Sync,
    Reflux,
    Regrid,
    Gather,
}

impl ExKind {
    fn site(self) -> RankSite {
        match self {
            ExKind::Descend | ExKind::Sync | ExKind::Gather => RankSite::Exchange,
            ExKind::Reflux => RankSite::Reflux,
            ExKind::Regrid => RankSite::Regrid,
        }
    }

    fn span(self) -> &'static str {
        match self {
            ExKind::Descend | ExKind::Sync | ExKind::Gather => "amr.dist.exchange",
            ExKind::Reflux => "amr.dist.reflux",
            ExKind::Regrid => "amr.dist.regrid",
        }
    }
}

/// [`AmrSolver`] sharded across ranks with owner-computes semantics and
/// the resilient-driver recovery tiers. See the module docs for the
/// decomposition, communication, and recovery design.
pub struct DistAmrSolver {
    inner: AmrSolver,
    cfg: DistAmrConfig,
    /// Owner rank of `levels[l][i]`.
    owners: Vec<Vec<usize>>,
    /// Attempt sequence number stamped into every blob (lockstep across
    /// ranks: bumped once per step attempt).
    seq: u64,
    /// Base step at which the last successful regrid ran (so retried
    /// attempts of the same step do not regrid twice).
    last_regrid_step: Option<u64>,
    /// Pre-step interior snapshot for attempt rollback.
    snapshot: Vec<Vec<Vec<f64>>>,
    snapshot_ok: bool,
    cur_step: u64,
    injector: Option<Arc<FaultInjector>>,
    metrics: Option<Arc<Registry>>,
    stats: DistAmrStats,
    /// Frozen diskless checkpoint (the L1 memory tier). Identical bytes
    /// on every rank at freeze time — the allgathered hierarchy is fully
    /// replicated — so restore only needs a validity agreement, no
    /// buddy transfer.
    mem_ckp: Option<MemorySnapshot>,
}

fn ck_err(e: CheckpointError) -> SolverError {
    SolverError::Checkpoint { msg: e.to_string() }
}

/// Append a field's interior, component-major, to a blob.
fn push_field_interior(out: &mut Vec<f64>, f: &Field, ng: usize, n: usize) {
    for c in 0..NCOMP {
        for i in 0..n {
            out.push(f.at(c, ng + i, 0, 0));
        }
    }
}

/// Read a component-major interior span back into a field.
fn read_field_interior(src: &[f64], f: &mut Field, ng: usize, n: usize) {
    let mut it = src.iter();
    for c in 0..NCOMP {
        for i in 0..n {
            f.set(c, ng + i, 0, 0, *it.next().expect("span sized by caller"));
        }
    }
}

impl DistAmrSolver {
    /// Create a solver over `[x0, x1]` with `n0` base cells. Call
    /// [`DistAmrSolver::init`] (or [`DistAmrSolver::restore`]) before
    /// stepping. Fine-level device offload is not routed through the
    /// distributed path; residuals evaluate on the host.
    pub fn new(
        scheme: Scheme,
        bcs: BcSet,
        rk: RkOrder,
        n0: usize,
        x0: f64,
        x1: f64,
        cfg: DistAmrConfig,
    ) -> Self {
        assert!(
            cfg.amr.max_levels <= 8,
            "the AMR halo tag blocks hold 8 levels"
        );
        let inner = AmrSolver::new(scheme, bcs, rk, n0, x0, x1, cfg.amr.clone());
        let max_levels = cfg.amr.max_levels;
        DistAmrSolver {
            inner,
            cfg,
            owners: vec![Vec::new(); max_levels],
            seq: 0,
            last_regrid_step: None,
            snapshot: Vec::new(),
            snapshot_ok: false,
            cur_step: 0,
            injector: None,
            metrics: None,
            stats: DistAmrStats::default(),
            mem_ckp: None,
        }
    }

    /// Attach a metrics registry (`amr.dist.*` counters, plus the serial
    /// solver's `amr.*` family).
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.inner.set_metrics(Arc::clone(&metrics));
        self.metrics = Some(metrics);
    }

    /// Initialize the hierarchy from a pointwise primitive IC (identical
    /// on every rank) and partition ownership over the live ranks.
    pub fn init(&mut self, rank: &Rank, ic: &dyn Fn([f64; 3]) -> Prim) {
        self.inner.init(ic);
        self.owners = assign_owners(&self.inner, rank.live_ranks());
        self.last_regrid_step = None;
        self.snapshot_ok = false;
    }

    /// Restore from a rank-count-independent v4 AMR checkpoint and
    /// re-partition ownership over the current live set. The checkpoint
    /// may come from a run with any rank count.
    pub fn restore(&mut self, rank: &Rank, ck: &AmrCheckpoint) -> Result<(), SolverError> {
        self.inner
            .restore(ck)
            .map_err(|msg| SolverError::Checkpoint { msg })?;
        self.owners = assign_owners(&self.inner, rank.live_ranks());
        self.last_regrid_step = None;
        self.snapshot_ok = false;
        Ok(())
    }

    /// The replicated serial solver (valid everywhere only right after an
    /// allgather — see [`DistAmrSolver::to_checkpoint_gathered`]).
    pub fn inner(&self) -> &AmrSolver {
        &self.inner
    }

    /// Per-rank driver counters.
    pub fn stats(&self) -> DistAmrStats {
        self.stats
    }

    /// Owner rank of a patch (test/diagnostic hook).
    pub fn owner_of(&self, level: usize, idx: usize) -> usize {
        self.owners[level][idx]
    }

    /// Number of patches this rank owns.
    pub fn owned_patches(&self, rank_id: usize) -> usize {
        self.owners
            .iter()
            .map(|l| l.iter().filter(|&&o| o == rank_id).count())
            .sum()
    }

    // ----- exchange machinery --------------------------------------------

    fn check_crash(&self, rank: &Rank, site: RankSite) -> Result<(), SolverError> {
        if let Some(inj) = &self.injector {
            if inj.should_crash_at(rank.rank(), self.cur_step, site) {
                rank.trace_instant("amr.dist.rank_failed", self.cur_step as f64);
                return Err(SolverError::RankFailed {
                    step: self.cur_step,
                });
            }
        }
        Ok(())
    }

    /// Send every planned blob, then receive one blob per planned source,
    /// dropping stale (lower-sequence) leftovers from rolled-back
    /// attempts. `recvs` maps source rank → expected payload length (not
    /// counting the sequence header).
    fn run_exchange(
        &mut self,
        rank: &mut Rank,
        tag: u64,
        kind: ExKind,
        sends: BTreeMap<usize, Vec<f64>>,
        recvs: &BTreeMap<usize, usize>,
    ) -> Result<BTreeMap<usize, Vec<f64>>, SolverError> {
        self.check_crash(rank, kind.site())?;
        let t0 = Instant::now();
        let nmsgs = sends.len() as u64;
        let mut bytes = 0u64;
        for (dst, blob) in &sends {
            bytes += (blob.len() * 8) as u64;
            rank.send(*dst, tag, blob);
        }
        let mut out = BTreeMap::new();
        for (&src, &want) in recvs {
            loop {
                let msg = rank.recv_deadline(src, tag).map_err(comm_err)?;
                let sq = msg.first().copied().unwrap_or(-1.0);
                if sq < self.seq as f64 {
                    // Leftover from a rolled-back attempt: drop and wait
                    // for this attempt's blob (FIFO per sender and tag).
                    continue;
                }
                if sq > self.seq as f64 || msg.len() != want + 1 {
                    return Err(SolverError::HaloMismatch {
                        expected: want + 1,
                        got: msg.len(),
                    });
                }
                out.insert(src, msg);
                break;
            }
        }
        match kind {
            ExKind::Descend | ExKind::Sync => self.stats.halo_msgs += nmsgs,
            ExKind::Reflux => self.stats.reflux_msgs += nmsgs,
            ExKind::Regrid | ExKind::Gather => self.stats.regrid_msgs += nmsgs,
        }
        self.stats.halo_bytes += bytes;
        if let Some(m) = &self.metrics {
            match kind {
                ExKind::Descend | ExKind::Sync => m.counter("amr.dist.halo_msgs").add(nmsgs),
                ExKind::Reflux => m.counter("amr.dist.reflux_msgs").add(nmsgs),
                ExKind::Regrid | ExKind::Gather => m.counter("amr.dist.regrid_msgs").add(nmsgs),
            }
            m.counter("amr.dist.halo_bytes").add(bytes);
        }
        // Straggler injection inside this window: real wall-clock lag so
        // peer liveness deadlines genuinely see it.
        if let Some(inj) = &self.injector {
            if let Some(f) = inj.should_stall_at(rank.rank(), kind.site()) {
                let extra = t0.elapsed().mul_f64((f - 1.0).max(0.0));
                std::thread::sleep(extra);
                if rank.is_virtual() {
                    rank.advance_vtime(extra.as_secs_f64());
                }
            }
        }
        rank.trace_span(kind.span(), t0.elapsed().as_nanos() as u64);
        Ok(out)
    }

    /// Owner set of every strict descendant of each level-`l` patch.
    fn descendant_owner_sets(&self, l: usize) -> Vec<Vec<usize>> {
        let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.inner.levels[l].len()];
        for m in (l + 1)..self.inner.levels.len() {
            for (j, _) in self.inner.levels[m].iter().enumerate() {
                let mut lev = m;
                let mut idx = j;
                while lev > l {
                    idx = self.inner.levels[lev][idx].parent_idx;
                    lev -= 1;
                }
                sets[idx].insert(self.owners[m][j]);
            }
        }
        sets.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    /// Ship level-`l` `base`+`u` interiors (or `u` only, for sync) from
    /// owners to the owners of strict descendants.
    fn exchange_down(
        &mut self,
        rank: &mut Rank,
        l: usize,
        kind: ExKind,
    ) -> Result<(), SolverError> {
        let me = rank.rank();
        let with_base = kind == ExKind::Descend;
        let fields = if with_base { 2 } else { 1 };
        let sets = self.descendant_owner_sets(l);
        let ng = self.inner.ng;
        let mut sends: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        let mut recv_patches: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, set) in sets.iter().enumerate() {
            let o = self.owners[l][i];
            for &d in set {
                if d == o {
                    continue;
                }
                if o == me {
                    let blob = sends.entry(d).or_insert_with(|| vec![self.seq as f64]);
                    let p = &self.inner.levels[l][i];
                    if with_base {
                        push_field_interior(blob, &p.base, ng, p.n);
                    }
                    push_field_interior(blob, &p.u, ng, p.n);
                } else if d == me {
                    recv_patches.entry(o).or_default().push(i);
                }
            }
        }
        if sends.is_empty() && recv_patches.is_empty() {
            return Ok(());
        }
        let recvs: BTreeMap<usize, usize> = recv_patches
            .iter()
            .map(|(&src, list)| {
                let len: usize = list
                    .iter()
                    .map(|&i| fields * NCOMP * self.inner.levels[l][i].n)
                    .sum();
                (src, len)
            })
            .collect();
        let base_tag = if with_base {
            AMR_DESCEND_TAG_BASE
        } else {
            AMR_SYNC_TAG_BASE
        };
        let got = self.run_exchange(rank, base_tag + l as u64, kind, sends, &recvs)?;
        for (src, msg) in got {
            let mut off = 1;
            for &i in &recv_patches[&src] {
                let p = &mut self.inner.levels[l][i];
                let n = p.n;
                if with_base {
                    read_field_interior(&msg[off..off + NCOMP * n], &mut p.base, ng, n);
                    off += NCOMP * n;
                }
                read_field_interior(&msg[off..off + NCOMP * n], &mut p.u, ng, n);
                off += NCOMP * n;
            }
        }
        Ok(())
    }

    /// Ship level-`l` children's `u` interiors and boundary-flux
    /// accumulators from child owners to off-rank parent owners (the
    /// restriction + reflux inputs).
    fn exchange_reflux(&mut self, rank: &mut Rank, l: usize) -> Result<(), SolverError> {
        let me = rank.rank();
        let ng = self.inner.ng;
        let mut sends: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        let mut recv_patches: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, ch) in self.inner.levels[l].iter().enumerate() {
            let o = self.owners[l][i];
            let po = self.owners[l - 1][ch.parent_idx];
            if o == po {
                continue;
            }
            if o == me {
                let blob = sends.entry(po).or_insert_with(|| vec![self.seq as f64]);
                push_field_interior(blob, &ch.u, ng, ch.n);
                blob.extend_from_slice(&ch.acc[0].to_array());
                blob.extend_from_slice(&ch.acc[1].to_array());
            } else if po == me {
                recv_patches.entry(o).or_default().push(i);
            }
        }
        if sends.is_empty() && recv_patches.is_empty() {
            return Ok(());
        }
        let recvs: BTreeMap<usize, usize> = recv_patches
            .iter()
            .map(|(&src, list)| {
                let len: usize = list
                    .iter()
                    .map(|&i| NCOMP * self.inner.levels[l][i].n + 2 * NCOMP)
                    .sum();
                (src, len)
            })
            .collect();
        let got = self.run_exchange(
            rank,
            AMR_REFLUX_TAG_BASE + l as u64,
            ExKind::Reflux,
            sends,
            &recvs,
        )?;
        for (src, msg) in got {
            let mut off = 1;
            for &i in &recv_patches[&src] {
                let p = &mut self.inner.levels[l][i];
                let n = p.n;
                read_field_interior(&msg[off..off + NCOMP * n], &mut p.u, ng, n);
                off += NCOMP * n;
                let mut a = [0.0; NCOMP];
                a.copy_from_slice(&msg[off..off + NCOMP]);
                p.acc[0] = Cons::from_array(a);
                off += NCOMP;
                a.copy_from_slice(&msg[off..off + NCOMP]);
                p.acc[1] = Cons::from_array(a);
                off += NCOMP;
            }
        }
        Ok(())
    }

    /// Fully replicate the composite state: every owner ships all its `u`
    /// interiors to every other live rank.
    fn allgather_state(&mut self, rank: &mut Rank, kind: ExKind) -> Result<(), SolverError> {
        let live: Vec<usize> = rank.live_ranks().to_vec();
        let me = rank.rank();
        let ng = self.inner.ng;
        let mut plan: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        for (l, ps) in self.inner.levels.iter().enumerate() {
            for i in 0..ps.len() {
                plan.entry(self.owners[l][i]).or_default().push((l, i));
            }
        }
        let mut sends: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        let mut recvs: BTreeMap<usize, usize> = BTreeMap::new();
        for (&src, list) in &plan {
            let payload: usize = list
                .iter()
                .map(|&(l, i)| NCOMP * self.inner.levels[l][i].n)
                .sum();
            if src == me {
                let mut blob = Vec::with_capacity(payload + 1);
                blob.push(self.seq as f64);
                for &(l, i) in list {
                    let p = &self.inner.levels[l][i];
                    push_field_interior(&mut blob, &p.u, ng, p.n);
                }
                for &d in &live {
                    if d != me {
                        sends.insert(d, blob.clone());
                    }
                }
            } else {
                recvs.insert(src, payload);
            }
        }
        let got = self.run_exchange(rank, AMR_REGRID_TAG, kind, sends, &recvs)?;
        for (src, msg) in got {
            let mut off = 1;
            for &(l, i) in &plan[&src] {
                let p = &mut self.inner.levels[l][i];
                let n = p.n;
                read_field_interior(&msg[off..off + NCOMP * n], &mut p.u, ng, n);
                off += NCOMP * n;
            }
        }
        Ok(())
    }

    // ----- owner-computes stepping ---------------------------------------

    /// One Berger–Oliger step of level `l`: the serial
    /// `AmrSolver::step_level` arithmetic verbatim, restricted to owned
    /// patches, with descend/reflux exchanges splicing in the off-rank
    /// coupling. Every rank walks the same recursion tree (exchanges are
    /// cooperative); non-owners skip the per-patch compute.
    fn dist_step_level(
        &mut self,
        rank: &mut Rank,
        l: usize,
        dt: f64,
        frac: f64,
    ) -> Result<(), SolverError> {
        let me = rank.rank();
        self.inner.frac[l] = frac;
        let (stages, weights, ctimes) = rk_tables(self.inner.rk);
        let ng = self.inner.ng;
        let scheme = self.inner.scheme;
        for (i, p) in self.inner.levels[l].iter_mut().enumerate() {
            if self.owners[l][i] != me {
                continue;
            }
            p.base.raw_mut().copy_from_slice(p.u.raw());
            p.stage.raw_mut().copy_from_slice(p.u.raw());
        }
        if l + 1 < self.inner.levels.len() {
            for ch in &mut self.inner.levels[l + 1] {
                ch.acc = [Cons::ZERO; 2];
                ch.acc_parent = [Cons::ZERO; 2];
            }
        }
        for (si, &(a, b, c)) in stages.iter().enumerate() {
            // Ghost prolongation is pure local arithmetic over replicated
            // ancestor interiors; ghost bands of shadow patches come out
            // garbage but are never read by owned compute.
            self.inner.fill_ghosts_lerp(l, ctimes[si]);
            for (i, p) in self.inner.levels[l].iter_mut().enumerate() {
                if self.owners[l][i] != me {
                    continue;
                }
                recover_prims(&scheme, &p.u, &mut p.prim)?;
                rhs_1d_with_fluxes(&scheme, &p.prim, &mut p.rhs, &mut p.flux);
            }
            // Parent-side interface fluxes for children whose parent this
            // rank owns (the reflux runs on the parent owner).
            if l + 1 < self.inner.levels.len() {
                let w = weights[si];
                let (left, right) = self.inner.levels.split_at_mut(l + 1);
                let parents = &left[l];
                for ch in right[0].iter_mut() {
                    if self.owners[l][ch.parent_idx] != me {
                        continue;
                    }
                    let par = &parents[ch.parent_idx];
                    ch.acc_parent[0] += par.flux[ng + ch.lo / 2 - par.lo] * w;
                    ch.acc_parent[1] += par.flux[ng + (ch.lo + ch.n) / 2 - par.lo] * w;
                }
            }
            if l > 0 {
                let w = 0.5 * weights[si];
                for (i, p) in self.inner.levels[l].iter_mut().enumerate() {
                    if self.owners[l][i] != me {
                        continue;
                    }
                    p.acc[0] += p.flux[ng] * w;
                    p.acc[1] += p.flux[ng + p.n] * w;
                }
            }
            for (i, p) in self.inner.levels[l].iter_mut().enumerate() {
                if self.owners[l][i] != me {
                    continue;
                }
                for gi in ng..ng + p.n {
                    let v = p.stage.get_cons(gi, 0, 0) * a
                        + p.u.get_cons(gi, 0, 0) * b
                        + p.rhs.get_cons(gi, 0, 0) * (c * dt);
                    p.u.set_cons(gi, 0, 0, v);
                }
                apply_conserved_floors(&mut p.u, &scheme.c2p);
                self.inner.updates[l] += p.n as u64;
            }
        }
        if l + 1 < self.inner.levels.len() && !self.inner.levels[l + 1].is_empty() {
            self.exchange_down(rank, l, ExKind::Descend)?;
            self.dist_step_level(rank, l + 1, 0.5 * dt, 0.0)?;
            self.dist_step_level(rank, l + 1, 0.5 * dt, 0.5)?;
            self.exchange_reflux(rank, l + 1)?;
            let t0 = Instant::now();
            let k = dt / self.inner.level_dx(l);
            let mut corrections = 0u64;
            {
                let (left, right) = self.inner.levels.split_at_mut(l + 1);
                let parents = &mut left[l];
                for ch in right[0].iter() {
                    if self.owners[l][ch.parent_idx] != me {
                        continue;
                    }
                    let par = &mut parents[ch.parent_idx];
                    restrict_onto(&ch.u, &mut par.u, ng, ng, ch.n, ch.lo / 2 - par.lo);
                }
                for ch in right[0].iter() {
                    if self.owners[l][ch.parent_idx] != me {
                        continue;
                    }
                    let par = &mut parents[ch.parent_idx];
                    let il = ng + ch.lo / 2 - par.lo - 1;
                    let v = par.u.get_cons(il, 0, 0) + (ch.acc_parent[0] - ch.acc[0]) * k;
                    par.u.set_cons(il, 0, 0, v);
                    let ir = ng + (ch.lo + ch.n) / 2 - par.lo;
                    let v = par.u.get_cons(ir, 0, 0) + (ch.acc[1] - ch.acc_parent[1]) * k;
                    par.u.set_cons(ir, 0, 0, v);
                    corrections += 2;
                }
                for (i, p) in parents.iter_mut().enumerate() {
                    if self.owners[l][i] != me {
                        continue;
                    }
                    apply_conserved_floors(&mut p.u, &scheme.c2p);
                }
            }
            self.inner.reflux_corrections += corrections;
            rank.trace_span("amr.dist.reflux", t0.elapsed().as_nanos() as u64);
            if let Some(m) = &self.metrics {
                m.counter("amr.reflux.corrections").add(corrections);
            }
        }
        Ok(())
    }

    /// Sync the hierarchy (exchange ancestors, fill ghosts, recover owned
    /// primitives) and reduce the globally stable Δt. The reduction is an
    /// exact min, so the result is bit-identical to the serial
    /// `AmrSolver::stable_dt`. Errors are deferred past the reduction —
    /// every rank contributes (∞ on failure) so collective tags stay
    /// aligned across ranks.
    fn dist_stable_dt(&mut self, rank: &mut Rank, cfl: f64) -> Result<f64, SolverError> {
        let local = self.local_dt(rank, cfl);
        let global = rank.allreduce_min(*local.as_ref().unwrap_or(&f64::INFINITY));
        local.map(|_| global)
    }

    fn local_dt(&mut self, rank: &mut Rank, cfl: f64) -> Result<f64, SolverError> {
        let me = rank.rank();
        let scheme = self.inner.scheme;
        for m in 0..self.inner.levels.len() {
            if m > 0 && self.inner.levels[m].is_empty() {
                break;
            }
            self.exchange_down(rank, m, ExKind::Sync)?;
            self.inner.fill_ghosts_sync_level(m);
            for (i, p) in self.inner.levels[m].iter_mut().enumerate() {
                if self.owners[m][i] != me {
                    continue;
                }
                recover_prims(&scheme, &p.u, &mut p.prim)?;
            }
        }
        let mut dt = f64::INFINITY;
        for (l, ps) in self.inner.levels.iter().enumerate() {
            let scale = (1u64 << l) as f64;
            for (i, p) in ps.iter().enumerate() {
                if self.owners[l][i] != me {
                    continue;
                }
                dt = dt.min(scale * max_dt(&scheme, &p.prim, cfl));
            }
        }
        Ok(dt)
    }

    // ----- regridding and migration --------------------------------------

    /// Comm-atomic distributed regrid: allgather the composite state, pass
    /// a pre-mutation agreement barrier (nobody rebuilds unless everybody
    /// has the full state), then rebuild the hierarchy locally —
    /// deterministic and identical on every rank — and reassign ownership.
    /// A rank killed inside the allgather window dies *before* any
    /// mutation, so survivors either all regrid or all abort the attempt.
    fn dist_regrid(&mut self, rank: &mut Rank) -> Result<bool, SolverError> {
        let t0 = Instant::now();
        let res = self.allgather_state(rank, ExKind::Regrid);
        if matches!(res, Err(SolverError::RankFailed { .. })) {
            // Own injected crash: go silent, skip the barrier.
            return res.map(|()| false);
        }
        let flag = if rank.evicted().is_some()
            || rank.suspected_mask() != 0
            || matches!(res, Err(SolverError::PeerSuspect { .. }))
        {
            SUSPECT_FLAG
        } else if res.is_err() {
            1.0
        } else {
            0.0
        };
        if rank.agree_max(flag) >= 1.0 {
            // Someone is missing data: nobody mutates. Surface the local
            // error (or a stand-in for a peer's) to the attempt loop.
            return Err(res.err().unwrap_or(SolverError::HaloMismatch {
                expected: 1,
                got: 0,
            }));
        }
        let old: BTreeMap<(usize, usize, usize), usize> = self
            .inner
            .levels
            .iter()
            .enumerate()
            .flat_map(|(l, ps)| {
                let owners = &self.owners[l];
                ps.iter()
                    .enumerate()
                    .map(move |(i, p)| ((l, p.lo, p.n), owners[i]))
            })
            .collect();
        self.inner.regrid()?;
        self.reassign_owners(rank.live_ranks(), &old);
        rank.trace_span("amr.dist.regrid", t0.elapsed().as_nanos() as u64);
        Ok(true)
    }

    /// Post-regrid ownership: surviving patches keep their owner, new
    /// patches inherit their parent's; if the inherited layout is
    /// imbalanced past [`DistAmrConfig::rebalance_threshold`], re-cut the
    /// SFC partition from scratch. Patch *data* needs no migration either
    /// way — the pre-regrid allgather already replicated it everywhere.
    fn reassign_owners(&mut self, live: &[usize], old: &BTreeMap<(usize, usize, usize), usize>) {
        let mut inherited: Vec<Vec<usize>> = self
            .inner
            .levels
            .iter()
            .map(|ps| vec![0; ps.len()])
            .collect();
        for l in 0..self.inner.levels.len() {
            for (i, p) in self.inner.levels[l].iter().enumerate() {
                let kept = old
                    .get(&(l, p.lo, p.n))
                    .copied()
                    .filter(|o| live.contains(o));
                inherited[l][i] = match kept {
                    Some(o) => o,
                    None if l == 0 => live[0],
                    None => inherited[l - 1][p.parent_idx],
                };
            }
        }
        let mut cost_of = BTreeMap::new();
        let mut total = 0.0;
        for (l, ps) in self.inner.levels.iter().enumerate() {
            for (i, p) in ps.iter().enumerate() {
                let c = patch_cost(l, p.n);
                *cost_of.entry(inherited[l][i]).or_insert(0.0) += c;
                total += c;
            }
        }
        let ideal = total / live.len() as f64;
        let maxc = cost_of.values().cloned().fold(0.0, f64::max);
        let imbalance = if ideal > 0.0 { maxc / ideal } else { 1.0 };
        let chosen = if imbalance > self.cfg.rebalance_threshold {
            self.stats.rebalances += 1;
            if let Some(m) = &self.metrics {
                m.counter("amr.dist.rebalances").inc();
            }
            assign_owners(&self.inner, live)
        } else {
            inherited.clone()
        };
        let moved: u64 = chosen
            .iter()
            .zip(&inherited)
            .map(|(a, b)| a.iter().zip(b).filter(|(x, y)| x != y).count() as u64)
            .sum();
        self.stats.migrations += moved;
        if let Some(m) = &self.metrics {
            m.counter("amr.dist.migrations").add(moved);
        }
        self.owners = chosen;
    }

    // ----- checkpointing and gathered views -------------------------------

    /// Allgather, then serialize the (now fully replicated) hierarchy.
    /// Every rank returns an identical checkpoint.
    pub fn to_checkpoint_gathered(
        &mut self,
        rank: &mut Rank,
        time: f64,
    ) -> Result<AmrCheckpoint, SolverError> {
        self.allgather_state(rank, ExKind::Gather)?;
        Ok(self.inner.to_checkpoint(time))
    }

    /// Allgather, then compute the composite conserved totals (identical
    /// on every rank).
    pub fn composite_totals_gathered(
        &mut self,
        rank: &mut Rank,
    ) -> Result<[f64; NCOMP], SolverError> {
        self.allgather_state(rank, ExKind::Gather)?;
        Ok(self.inner.composite_totals())
    }

    /// Allgather and have the first live rank write the shared v4 AMR
    /// checkpoint slot (rotating `latest` → `prev`).
    fn save_gathered(
        &mut self,
        rank: &mut Rank,
        slots: &CheckpointSlots,
        t: f64,
    ) -> Result<(), SolverError> {
        self.allgather_state(rank, ExKind::Gather)?;
        if rank.rank() == rank.live_ranks()[0] {
            slots
                .save_amr(&self.inner.to_checkpoint(t))
                .map_err(ck_err)?;
        }
        self.stats.checkpoints_saved += 1;
        if let Some(m) = &self.metrics {
            m.counter("amr.dist.checkpoints").inc();
            m.counter("ckp.tier.disk.save").inc();
        }
        // The state is already fully replicated: refreshing the memory
        // tier here costs only the serialization, no extra messages.
        self.freeze_memory(rank, t);
        Ok(())
    }

    /// Allgather and freeze the diskless memory tier (no disk I/O) — the
    /// faster-cadence L1 save.
    fn save_memory(&mut self, rank: &mut Rank, t: f64) -> Result<(), SolverError> {
        self.allgather_state(rank, ExKind::Gather)?;
        self.freeze_memory(rank, t);
        Ok(())
    }

    /// Serialize the (replicated) hierarchy into the frozen memory slot,
    /// applying any injected snapshot rot *after* the FNV stamp so the
    /// scrub/restore verifies can catch it.
    fn freeze_memory(&mut self, rank: &Rank, t: f64) {
        let mut snap = MemorySnapshot::new(
            self.inner.steps,
            t,
            encode_amr(&self.inner.to_checkpoint(t)),
        );
        if let Some(inj) = &self.injector {
            if let Some(sel) = inj.should_flip_snapshot_bit(SnapshotTarget::Local) {
                snap.flip_bit(sel);
                rank.trace_instant("amr.dist.snapshot_rot_injected", 0.0);
            }
        }
        self.mem_ckp = Some(snap);
        self.stats.local_snapshots += 1;
        if let Some(m) = &self.metrics {
            m.counter("ckp.tier.local.save").inc();
        }
    }

    /// Verify the frozen snapshot against its stamped FNV hash, dropping
    /// it if the bits have rotted (so a later restore round never offers
    /// a corrupt copy).
    fn scrub_memory(&mut self, rank: &Rank) {
        if let Some(m) = &self.metrics {
            m.counter("sdc.scrubs").inc();
        }
        if self.mem_ckp.as_ref().is_some_and(|s| !s.verify()) {
            self.mem_ckp = None;
            self.stats.snapshots_rotted += 1;
            rank.trace_instant("amr.dist.snapshot_rot_detected", 0.0);
            if let Some(m) = &self.metrics {
                m.counter("sdc.snapshot_rot").inc();
            }
        }
    }

    /// Collective memory-tier restore. Returns `Ok(None)` when the tier
    /// cannot serve a globally consistent state — a rank's copy is
    /// missing, rotted, or from a different capture round — in which case
    /// the caller falls through to the shared disk slot. Every snapshot is
    /// a full-hierarchy checkpoint, so this also serves shrinking
    /// recoveries: survivors restore and re-partition with zero disk I/O.
    fn restore_memory(&mut self, rank: &mut Rank) -> Result<Option<f64>, SolverError> {
        let valid = self.mem_ckp.as_ref().is_some_and(|s| s.verify());
        let contrib = match &self.mem_ckp {
            Some(s) if valid => [s.step as f64, -(s.step as f64)],
            _ => [f64::INFINITY, f64::INFINITY],
        };
        let steps = rank.allreduce(&contrib, f64::min);
        let all_valid = rank.allreduce_min(if valid { 1.0 } else { 0.0 }) > 0.5;
        if !all_valid || !steps[0].is_finite() || steps[0] != -steps[1] {
            return Ok(None);
        }
        let snap = self.mem_ckp.take().expect("validated above");
        let decoded = decode_amr_trusted(snap.bytes()).ok();
        self.mem_ckp = Some(snap);
        // Decode before committing anywhere; a half-restored universe is
        // worse than falling through to disk on every rank.
        let all_decoded = rank.allreduce_min(if decoded.is_some() { 1.0 } else { 0.0 }) > 0.5;
        let Some(ck) = decoded.filter(|_| all_decoded) else {
            return Ok(None);
        };
        self.restore(rank, &ck)?;
        self.stats.local_restores += 1;
        rank.trace_instant("amr.dist.memory_restore", ck.step as f64);
        if let Some(m) = &self.metrics {
            m.counter("ckp.tier.local.restore").inc();
        }
        Ok(Some(ck.time))
    }

    /// Load the newest readable shared slot (falling back past a torn
    /// `latest`) and restore + re-partition over the current live set.
    /// Returns the restored time.
    fn restore_newest(
        &mut self,
        rank: &mut Rank,
        slots: &CheckpointSlots,
    ) -> Result<f64, SolverError> {
        let loaded = slots.load_newest_amr();
        // Everyone reads the same shared file, but agree anyway so a
        // one-rank I/O failure cannot desynchronize the tiers.
        let all_ok = rank.allreduce_min(if loaded.is_ok() { 1.0 } else { 0.0 }) > 0.5;
        let (ck, fell_back) = match (loaded, all_ok) {
            (Ok(v), true) => v,
            (loaded, _) => {
                return Err(loaded.err().map(ck_err).unwrap_or(SolverError::Checkpoint {
                    msg: "AMR checkpoint restore failed on a peer rank".into(),
                }))
            }
        };
        if fell_back {
            self.stats.ckpt_fallbacks += 1;
        }
        self.restore(rank, &ck)?;
        Ok(ck.time)
    }

    // ----- the resilient advance loop ------------------------------------

    /// One attempt of a resilient step: sync + Δt reduction on the
    /// pre-regrid hierarchy (matching the serial solver's order), the
    /// regrid window when due, a rollback snapshot, then the recursive
    /// owner-computes step. Returns the committed Δt.
    fn try_step(
        &mut self,
        rank: &mut Rank,
        t: f64,
        t_end: f64,
        cfl_eff: f64,
    ) -> Result<f64, SolverError> {
        let dt_res = self.dist_stable_dt(rank, cfl_eff);
        if matches!(dt_res, Err(SolverError::RankFailed { .. })) && rank.evicted().is_none() {
            return dt_res;
        }
        // The regrid window is reached whenever it is due — even if the Δt
        // phase failed locally — so its barrier stays collectively aligned.
        let due = self.inner.cfg.regrid_interval > 0
            && self.inner.steps > 0
            && self
                .inner
                .steps
                .is_multiple_of(self.inner.cfg.regrid_interval as u64)
            && self.last_regrid_step != Some(self.inner.steps);
        if due {
            let regridded = self.dist_regrid(rank)?;
            if regridded {
                self.last_regrid_step = Some(self.inner.steps);
            }
        }
        let mut dt = dt_res?;
        // Negated form deliberately catches NaN as a collapse.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(dt > 1e-14) {
            return Err(SolverError::TimestepCollapse { dt });
        }
        if t + dt > t_end {
            dt = t_end - t;
        }
        self.snapshot_u();
        self.dist_step_level(rank, 0, dt, 0.0)?;
        Ok(dt)
    }

    fn snapshot_u(&mut self) {
        self.snapshot = self
            .inner
            .levels
            .iter()
            .map(|ps| ps.iter().map(|p| p.u.raw().to_vec()).collect())
            .collect();
        self.snapshot_ok = true;
    }

    fn rollback(&mut self) {
        if !self.snapshot_ok {
            return;
        }
        let shapes_match = self.snapshot.len() == self.inner.levels.len()
            && self
                .snapshot
                .iter()
                .zip(&self.inner.levels)
                .all(|(ss, ps)| {
                    ss.len() == ps.len()
                        && ss
                            .iter()
                            .zip(ps.iter())
                            .all(|(s, p)| s.len() == p.u.raw().len())
                });
        if !shapes_match {
            self.snapshot_ok = false;
            return;
        }
        for (ps, ss) in self.inner.levels.iter_mut().zip(&self.snapshot) {
            for (p, s) in ps.iter_mut().zip(ss) {
                p.u.raw_mut().copy_from_slice(s);
            }
        }
    }

    /// Advance to `t_end` under CFL control with the full recovery ladder:
    /// in-place retries with halved CFL, checkpoint restores, and — on a
    /// confirmed rank death — a shrinking recovery that re-partitions the
    /// hierarchy over the survivors. Mirrors the block driver's
    /// `advance_to_with_restart` control flow.
    pub fn advance_to(
        &mut self,
        rank: &mut Rank,
        t0: f64,
        t_end: f64,
        cfl: f64,
    ) -> Result<DistAmrStats, SolverError> {
        self.injector = rank.fault_injector().cloned();
        let slots = match &self.cfg.checkpoint_dir {
            Some(dir) => Some(CheckpointSlots::new(dir.clone()).map_err(ck_err)?),
            None => None,
        };
        let mut t = t0;
        let mut cfl_scale = 1.0f64;
        let mut restores_left = self.cfg.max_restores;
        self.cur_step = self.inner.steps;
        if let Some(slots) = &slots {
            // Always write an initial checkpoint so a shrink/restore
            // target exists from the very first step (this also freezes
            // the initial memory-tier snapshot).
            self.save_gathered(rank, slots, t)?;
        } else if self.cfg.local_interval > 0 {
            // Diskless runs still arm the memory tier from step 0.
            self.save_memory(rank, t)?;
        }
        while t < t_end - 1e-14 {
            self.cur_step = self.inner.steps;
            // Rank-level crash injection at the classic step site: the
            // victim stops participating with no farewell message.
            self.check_crash(rank, RankSite::Step)?;
            let mut attempt = 0usize;
            'attempts: loop {
                self.seq += 1;
                let scale = cfl_scale * 0.5f64.powi(attempt as i32);
                let outcome = self.try_step(rank, t, t_end, cfl * scale);
                if matches!(outcome, Err(SolverError::RankFailed { .. }))
                    && rank.evicted().is_none()
                {
                    // Own injected crash inside the step: go silent.
                    return Err(outcome.unwrap_err());
                }
                // 0 = clean, 1 = step failure (retry/restore tier),
                // ≥ SUSPECT_FLAG = a peer looks dead (consensus tier).
                let flag = if rank.evicted().is_some()
                    || rank.suspected_mask() != 0
                    || matches!(outcome, Err(SolverError::PeerSuspect { .. }))
                {
                    SUSPECT_FLAG
                } else if outcome.is_err() {
                    1.0
                } else {
                    0.0
                };
                let agreed = rank.agree_max(flag);
                if agreed >= SUSPECT_FLAG {
                    self.rollback();
                    let newly_dead =
                        rank.suspicion_consensus()
                            .map_err(|_| SolverError::RankFailed {
                                step: self.cur_step,
                            })?;
                    if newly_dead != 0 {
                        self.stats.shrinks += 1;
                        self.stats.ranks_lost += u64::from(newly_dead.count_ones());
                        // Memory tier first: every survivor holds a full
                        // replicated checkpoint, so a shrink needs no disk.
                        t = match self.restore_memory(rank)? {
                            Some(t) => t,
                            None => {
                                let slots_ref =
                                    slots.as_ref().ok_or_else(|| SolverError::Checkpoint {
                                        msg: "rank death confirmed but neither the memory \
                                              tier nor a checkpoint directory can serve a \
                                              shrinking recovery"
                                            .into(),
                                    })?;
                                if let Some(m) = &self.metrics {
                                    m.counter("ckp.tier.disk.restore").inc();
                                }
                                self.restore_newest(rank, slots_ref)?
                            }
                        };
                        self.cur_step = self.inner.steps;
                        cfl_scale = 0.25;
                        rank.trace_instant("amr.dist.shrink", newly_dead.count_ones() as f64);
                        if let Some(m) = &self.metrics {
                            m.counter("amr.dist.shrinks").inc();
                            m.counter("amr.dist.ranks_lost")
                                .add(u64::from(newly_dead.count_ones()));
                        }
                        break 'attempts;
                    }
                    self.stats.false_suspicions += 1;
                    rank.trace_instant("amr.dist.false_suspicion", self.cur_step as f64);
                    if let Some(m) = &self.metrics {
                        m.counter("amr.dist.false_suspicions").inc();
                    }
                }
                let failed = agreed >= 1.0;
                match outcome {
                    Ok(dt) if !failed => {
                        t += dt;
                        self.inner.steps += 1;
                        self.stats.steps += 1;
                        self.snapshot_ok = false;
                        self.inner.flush_metrics();
                        // A reduced CFL ramps back up as steps succeed.
                        cfl_scale = if attempt > 0 { scale } else { cfl_scale };
                        cfl_scale = (cfl_scale * 2.0).min(1.0);
                        let iv = self.cfg.checkpoint_interval as u64;
                        let liv = self.cfg.local_interval as u64;
                        let disk_due =
                            iv > 0 && self.inner.steps.is_multiple_of(iv) && slots.is_some();
                        let mem_due = liv > 0 && self.inner.steps.is_multiple_of(liv);
                        // A disk save refreshes the memory tier for free
                        // (the allgather already replicated the state), so
                        // the standalone memory save runs only when the
                        // slower disk cadence is not also due.
                        let saved = if disk_due {
                            self.save_gathered(rank, slots.as_ref().expect("disk_due"), t)
                        } else if mem_due {
                            self.save_memory(rank, t)
                        } else {
                            Ok(())
                        };
                        match saved {
                            Ok(()) => {}
                            // A peer died mid-gather: the latched
                            // suspicion routes into the next
                            // step's consensus tier.
                            Err(SolverError::PeerSuspect { .. }) => {}
                            Err(e) => return Err(e),
                        }
                        let sv = self.cfg.scrub_interval as u64;
                        if sv > 0 && self.inner.steps.is_multiple_of(sv) {
                            self.scrub_memory(rank);
                        }
                        break 'attempts;
                    }
                    outcome => {
                        self.rollback();
                        if attempt < self.cfg.max_step_retries {
                            attempt += 1;
                            self.stats.retries += 1;
                            rank.trace_instant("amr.dist.retry", attempt as f64);
                            if let Some(m) = &self.metrics {
                                m.counter("amr.dist.retries").inc();
                            }
                            continue;
                        }
                        // Retries exhausted: restore, memory tier first.
                        // The restore counter marches in lockstep on every
                        // rank, so this decision is collective; whether the
                        // memory tier can serve is agreed inside
                        // `restore_memory` itself.
                        if restores_left == 0 {
                            return Err(outcome.err().unwrap_or(SolverError::Checkpoint {
                                msg: "step failed on a peer rank; retries and restores \
                                      exhausted"
                                    .into(),
                            }));
                        }
                        restores_left -= 1;
                        t = match self.restore_memory(rank)? {
                            Some(t) => t,
                            None => {
                                let slots_ref = match &slots {
                                    Some(s) => s,
                                    None => {
                                        return Err(SolverError::Checkpoint {
                                            msg: "memory tier rotted and no checkpoint \
                                                  directory is configured"
                                                .into(),
                                        })
                                    }
                                };
                                if let Some(m) = &self.metrics {
                                    m.counter("ckp.tier.disk.restore").inc();
                                }
                                self.restore_newest(rank, slots_ref)?
                            }
                        };
                        self.cur_step = self.inner.steps;
                        self.stats.restores += 1;
                        cfl_scale = 0.25;
                        if let Some(m) = &self.metrics {
                            m.counter("amr.dist.restores").inc();
                        }
                        break 'attempts;
                    }
                }
            }
        }
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problems::Problem;
    use rhrsc_comm::{run, run_with_faults, NetworkModel};
    use rhrsc_grid::{bc, Bc};
    use rhrsc_runtime::fault::FaultPlan;
    use std::time::Duration;

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    fn pulse_ic(x: [f64; 3]) -> Prim {
        let g = (-((x[0] - 0.5) / 0.08).powi(2)).exp();
        Prim::new_1d(1.0 + 2.0 * g, 0.0, 1.0 + 20.0 * g)
    }

    #[test]
    fn partitioner_is_contiguous_and_balanced() {
        let costs = [64.0, 8.0, 12.0, 4.0, 40.0, 2.0];
        for nparts in 1..=6 {
            let parts = partition_contiguous(&costs, nparts);
            assert_eq!(parts.len(), costs.len());
            for w in parts.windows(2) {
                assert!(w[0] <= w[1], "parts must be non-decreasing: {parts:?}");
            }
            assert!(parts.iter().all(|&p| p < nparts));
            let total: f64 = costs.iter().sum();
            let maxc = costs.iter().cloned().fold(0.0, f64::max);
            let mut per = vec![0.0; nparts];
            for (i, &p) in parts.iter().enumerate() {
                per[p] += costs[i];
            }
            let bound = total / nparts as f64 + maxc + 1e-9;
            for (p, &c) in per.iter().enumerate() {
                assert!(c <= bound, "part {p} carries {c} > bound {bound}");
            }
        }
    }

    /// The acceptance pin: a no-fault distributed run is bit-identical to
    /// the serial AMR solver on the f12 accuracy problem, across rank
    /// counts, with real cross-rank coupling exercised.
    #[test]
    fn no_fault_distributed_matches_serial_bitwise() {
        let prob = Problem::sod();
        let amr_cfg = AmrConfig {
            max_levels: 2,
            ..AmrConfig::default()
        };
        let t_end = 0.15;
        let mut gold = AmrSolver::new(
            scheme(),
            prob.bcs,
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            amr_cfg.clone(),
        );
        gold.init(&|x| (prob.ic)(x));
        gold.advance_to(0.0, t_end, 0.4).unwrap();
        let want = gold.to_checkpoint(t_end);

        for nranks in [2usize, 4] {
            let prob = prob.clone();
            let cfg = DistAmrConfig {
                amr: amr_cfg.clone(),
                ..DistAmrConfig::default()
            };
            let outs = run(nranks, NetworkModel::ideal(), |rank| {
                let mut d =
                    DistAmrSolver::new(scheme(), prob.bcs, RkOrder::Rk3, 64, 0.0, 1.0, cfg.clone());
                d.init(rank, &|x| (prob.ic)(x));
                d.advance_to(rank, 0.0, t_end, 0.4).unwrap();
                let ck = d.to_checkpoint_gathered(rank, t_end).unwrap();
                (ck, d.stats())
            });
            for (r, (ck, stats)) in outs.into_iter().enumerate() {
                assert_eq!(
                    ck.patches.len(),
                    want.patches.len(),
                    "rank {r}/{nranks}: patch count"
                );
                for (a, b) in ck.patches.iter().zip(&want.patches) {
                    assert_eq!((a.level, a.lo, a.n), (b.level, b.lo, b.n));
                    for (x, y) in a.data.iter().zip(&b.data) {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "rank {r}/{nranks}: level {} patch at {} diverged",
                            a.level,
                            a.lo
                        );
                    }
                }
                // A rank owning only coarse patches sends descend/sync
                // traffic; one owning only fine patches sends reflux.
                assert!(
                    stats.halo_msgs + stats.reflux_msgs > 0,
                    "rank {r}/{nranks}: cross-rank coupling never exercised"
                );
            }
        }
    }

    /// All AMR message classes ride the fault-injected halo tag space, so
    /// in-flight corruption is caught by the CRC-32 trailer and healed by
    /// the modeled link-level retransmit: a lossy run stays bit-identical
    /// to the clean serial solution instead of silently accepting damage.
    #[test]
    fn corrupted_amr_traffic_is_detected_and_retried() {
        let prob = Problem::sod();
        let amr_cfg = AmrConfig {
            max_levels: 2,
            ..AmrConfig::default()
        };
        let t_end = 0.1;
        let mut gold = AmrSolver::new(
            scheme(),
            prob.bcs,
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            amr_cfg.clone(),
        );
        gold.init(&|x| (prob.ic)(x));
        gold.advance_to(0.0, t_end, 0.4).unwrap();
        let want = gold.to_checkpoint(t_end);

        let plan = FaultPlan {
            seed: 21,
            msg_truncate_prob: 0.05,
            ..FaultPlan::disabled()
        };
        let model = NetworkModel::ideal().with_crc_retries(16);
        let cfg = DistAmrConfig {
            amr: amr_cfg,
            ..DistAmrConfig::default()
        };
        let outs = run_with_faults(4, model, Some(plan), |rank| {
            let mut d =
                DistAmrSolver::new(scheme(), prob.bcs, RkOrder::Rk3, 64, 0.0, 1.0, cfg.clone());
            d.init(rank, &|x| (prob.ic)(x));
            d.advance_to(rank, 0.0, t_end, 0.4).unwrap();
            let ck = d.to_checkpoint_gathered(rank, t_end).unwrap();
            (ck, rank.liveness_stats().crc_retries)
        });
        let total_retries: u64 = outs.iter().map(|(_, r)| r).sum();
        assert!(
            total_retries > 0,
            "the lossy link never corrupted an AMR message"
        );
        for (ck, _) in &outs {
            assert_eq!(ck.patches.len(), want.patches.len());
            for (a, b) in ck.patches.iter().zip(&want.patches) {
                assert_eq!((a.level, a.lo, a.n), (b.level, b.lo, b.n));
                for (x, y) in a.data.iter().zip(&b.data) {
                    assert_eq!(x.to_bits(), y.to_bits(), "corruption slipped through");
                }
            }
        }
    }

    /// Kill a rank inside the regrid window: survivors must evict it,
    /// restore from the shared v4 checkpoint, re-partition, and finish
    /// with composite conservation intact.
    #[test]
    fn crash_during_regrid_shrinks_and_conserves() {
        let dir = std::env::temp_dir().join("rhrsc-amr-dist-regrid-crash");
        let _ = std::fs::remove_dir_all(&dir);
        let amr_cfg = AmrConfig {
            threshold: 0.08,
            ..AmrConfig::default()
        };
        let cfg = DistAmrConfig {
            amr: amr_cfg,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 2,
            ..DistAmrConfig::default()
        };
        let t_end = 0.15;
        let plan = FaultPlan {
            seed: 9,
            crash_rank: Some(1),
            crash_step: 8,
            crash_site: RankSite::Regrid,
            ..FaultPlan::disabled()
        };
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
        let outs = run_with_faults(4, model, Some(plan), |rank| {
            let mut d = DistAmrSolver::new(
                scheme(),
                bc::uniform(Bc::Periodic),
                RkOrder::Rk3,
                64,
                0.0,
                1.0,
                cfg.clone(),
            );
            d.init(rank, &pulse_ic);
            let before = d.composite_totals_gathered(rank).unwrap();
            match d.advance_to(rank, 0.0, t_end, 0.4) {
                Ok(stats) => {
                    let after = d.composite_totals_gathered(rank).unwrap();
                    Some((stats, before, after))
                }
                Err(SolverError::RankFailed { .. }) => None,
                Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
            }
        });
        assert!(outs[1].is_none(), "the victim must die");
        let survivors: Vec<_> = outs.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3, "all survivors must finish");
        for (stats, before, after) in &survivors {
            assert_eq!(stats.shrinks, 1, "exactly one shrinking recovery");
            assert_eq!(stats.ranks_lost, 1);
            for c in 0..NCOMP {
                assert!(
                    (after[c] - before[c]).abs() <= 1e-11 * before[c].abs().max(1.0),
                    "component {c}: {} -> {}",
                    before[c],
                    after[c]
                );
            }
        }
    }

    /// Satellite: a v4 checkpoint written by a 4-rank run restores onto a
    /// 2-rank run; a torn `latest` slot falls back to `prev` and the
    /// redistribution still completes cleanly.
    #[test]
    fn changed_rank_count_restore_survives_torn_latest() {
        let dir = std::env::temp_dir().join("rhrsc-amr-dist-rerank");
        let _ = std::fs::remove_dir_all(&dir);
        let amr_cfg = AmrConfig {
            threshold: 0.08,
            ..AmrConfig::default()
        };
        let cfg = DistAmrConfig {
            amr: amr_cfg,
            checkpoint_dir: Some(dir.clone()),
            checkpoint_interval: 2,
            ..DistAmrConfig::default()
        };
        // Phase 1: a 4-rank run writes the shared slots.
        {
            let cfg = cfg.clone();
            run(4, NetworkModel::ideal(), |rank| {
                let mut d = DistAmrSolver::new(
                    scheme(),
                    bc::uniform(Bc::Periodic),
                    RkOrder::Rk3,
                    64,
                    0.0,
                    1.0,
                    cfg.clone(),
                );
                d.init(rank, &pulse_ic);
                d.advance_to(rank, 0.0, 0.08, 0.4).unwrap();
            });
        }
        // Tear the newest slot: truncate its last byte.
        let slots = CheckpointSlots::new(dir.clone()).unwrap();
        let latest = slots.amr_latest_path();
        let bytes = std::fs::read(&latest).unwrap();
        std::fs::write(&latest, &bytes[..bytes.len() - 1]).unwrap();
        assert!(slots.amr_prev_path().exists(), "prev slot must exist");
        // Phase 2: a 2-rank run restores (falling back to prev) and
        // continues; the redistributed hierarchy must keep conserving.
        let outs = run(2, NetworkModel::ideal(), |rank| {
            let slots = CheckpointSlots::new(dir.clone()).unwrap();
            let (ck, fell_back) = slots.load_newest_amr().unwrap();
            assert!(fell_back, "torn latest must fall back to prev");
            let mut d = DistAmrSolver::new(
                scheme(),
                bc::uniform(Bc::Periodic),
                RkOrder::Rk3,
                64,
                0.0,
                1.0,
                cfg.clone(),
            );
            d.init(rank, &pulse_ic);
            d.restore(rank, &ck).unwrap();
            let before = d.composite_totals_gathered(rank).unwrap();
            d.advance_to(rank, ck.time, 0.12, 0.4).unwrap();
            let after = d.composite_totals_gathered(rank).unwrap();
            let me = rank.rank();
            assert!(
                d.owned_patches(me) > 0,
                "rank {me} owns nothing after restore"
            );
            (before, after)
        });
        for (before, after) in outs {
            for c in 0..NCOMP {
                assert!(
                    (after[c] - before[c]).abs() <= 1e-11 * before[c].abs().max(1.0),
                    "component {c}: {} -> {}",
                    before[c],
                    after[c]
                );
            }
        }
    }
}
