//! SSP Runge–Kutta time integration on a single patch.

use crate::scheme::{
    apply_conserved_floors, max_dt, recover_prims, recover_prims_par, Scheme, SolverError,
};
use crate::step::compute_rhs;
use rhrsc_grid::{fill_ghosts, BcSet, Field, PatchGeom};
use rhrsc_runtime::WorkStealingPool;

/// Strong-stability-preserving Runge–Kutta order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RkOrder {
    /// Forward Euler.
    Rk1,
    /// Two-stage SSP-RK2 (Heun).
    Rk2,
    /// Three-stage SSP-RK3 (Shu–Osher).
    Rk3,
}

impl RkOrder {
    /// All orders, for convergence sweeps.
    pub const ALL: [RkOrder; 3] = [RkOrder::Rk1, RkOrder::Rk2, RkOrder::Rk3];

    /// Number of stages.
    pub fn stages(&self) -> usize {
        match self {
            RkOrder::Rk1 => 1,
            RkOrder::Rk2 => 2,
            RkOrder::Rk3 => 3,
        }
    }
}

/// Statistics accumulated while advancing a patch.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepStats {
    /// Time steps taken.
    pub steps: usize,
    /// RK stages evaluated.
    pub stages: usize,
    /// Interior zone-updates performed (cells × stages).
    pub zone_updates: u64,
    /// Cells touched by the conserved-variable limiter (0 in healthy
    /// runs; nonzero near vacuum cores).
    pub floored_cells: u64,
}

/// Serial/gang single-patch integrator with owned scratch storage.
pub struct PatchSolver {
    /// Numerical scheme.
    pub scheme: Scheme,
    /// Physical boundary conditions.
    pub bcs: BcSet,
    /// Runge–Kutta order.
    pub rk: RkOrder,
    prim: Field,
    rhs: Field,
    u_stage: Field,
    stats: StepStats,
}

impl PatchSolver {
    /// Create a solver for patches with geometry `geom`.
    pub fn new(scheme: Scheme, bcs: BcSet, rk: RkOrder, geom: PatchGeom) -> Self {
        assert!(
            geom.ng >= scheme.required_ghosts(),
            "geometry has {} ghosts, scheme needs {}",
            geom.ng,
            scheme.required_ghosts()
        );
        PatchSolver {
            scheme,
            bcs,
            rk,
            prim: Field::new(geom, 5),
            rhs: Field::cons(geom),
            u_stage: Field::cons(geom),
            stats: StepStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> StepStats {
        self.stats
    }

    /// Largest stable Δt for the current state at `cfl`.
    pub fn stable_dt(&mut self, u: &mut Field, cfl: f64) -> Result<f64, SolverError> {
        fill_ghosts(u, &self.bcs);
        recover_prims(&self.scheme, u, &mut self.prim)?;
        Ok(max_dt(&self.scheme, &self.prim, cfl))
    }

    /// Evaluate `rhs = L(u)` (ghost fill + recovery + residual).
    fn eval_rhs(
        &mut self,
        u: &mut Field,
        pool: Option<&WorkStealingPool>,
    ) -> Result<(), SolverError> {
        fill_ghosts(u, &self.bcs);
        recover_prims_par(&self.scheme, u, &mut self.prim, pool)?;
        compute_rhs(&self.scheme, &self.prim, &mut self.rhs, pool);
        self.stats.stages += 1;
        self.stats.zone_updates += u.geom().interior_len() as u64;
        Ok(())
    }

    /// Advance `u` by one step of size `dt`.
    pub fn step(
        &mut self,
        u: &mut Field,
        dt: f64,
        pool: Option<&WorkStealingPool>,
    ) -> Result<(), SolverError> {
        match self.rk {
            RkOrder::Rk1 => {
                self.eval_rhs(u, pool)?;
                axpy_interior(u, 1.0, &self.rhs, dt);
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
            }
            RkOrder::Rk2 => {
                // u1 = u0 + dt L(u0); u = 1/2 u0 + 1/2 (u1 + dt L(u1)).
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(u, pool)?;
                axpy_interior(u, 1.0, &self.rhs, dt);
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
                self.eval_rhs(u, pool)?;
                combine_interior(u, 0.5, &self.u_stage, 0.5, &self.rhs, 0.5 * dt);
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
            }
            RkOrder::Rk3 => {
                // Shu–Osher SSP-RK3.
                self.u_stage.raw_mut().copy_from_slice(u.raw());
                self.eval_rhs(u, pool)?;
                // u <- u0 + dt L(u0)
                axpy_interior(u, 1.0, &self.rhs, dt);
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
                self.eval_rhs(u, pool)?;
                // u <- 3/4 u0 + 1/4 (u + dt L(u))
                combine_interior(u, 0.25, &self.u_stage, 0.75, &self.rhs, 0.25 * dt);
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
                self.eval_rhs(u, pool)?;
                // u <- 1/3 u0 + 2/3 (u + dt L(u))
                combine_interior(
                    u,
                    2.0 / 3.0,
                    &self.u_stage,
                    1.0 / 3.0,
                    &self.rhs,
                    2.0 / 3.0 * dt,
                );
                self.stats.floored_cells += apply_conserved_floors(u, &self.scheme.c2p) as u64;
            }
        }
        self.stats.steps += 1;
        Ok(())
    }

    /// Advance `u` from `t` to `t_end` under CFL control; returns the
    /// number of steps taken.
    pub fn advance_to(
        &mut self,
        u: &mut Field,
        t: f64,
        t_end: f64,
        cfl: f64,
        pool: Option<&WorkStealingPool>,
    ) -> Result<usize, SolverError> {
        let mut t = t;
        let mut steps = 0;
        while t < t_end - 1e-14 {
            let mut dt = self.stable_dt(u, cfl)?;
            // Negated form deliberately catches NaN as a collapse.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(dt > 1e-14) {
                return Err(SolverError::TimestepCollapse { dt });
            }
            if t + dt > t_end {
                dt = t_end - t;
            }
            self.step(u, dt, pool)?;
            t += dt;
            steps += 1;
        }
        Ok(steps)
    }
}

/// `u[int] = scale_u * u[int] + k * r[int]` over interior cells.
fn axpy_interior(u: &mut Field, scale_u: f64, r: &Field, k: f64) {
    let geom = *u.geom();
    for (i, j, k3) in geom.interior_iter() {
        let v = u.get_cons(i, j, k3) * scale_u + r.get_cons(i, j, k3) * k;
        u.set_cons(i, j, k3, v);
    }
}

/// `u[int] = a*u0[int] + b*u[int] + c*r[int]` over interior cells.
fn combine_interior(u: &mut Field, b: f64, u0: &Field, a: f64, r: &Field, c: f64) {
    let geom = *u.geom();
    for (i, j, k3) in geom.interior_iter() {
        let v = u0.get_cons(i, j, k3) * a + u.get_cons(i, j, k3) * b + r.get_cons(i, j, k3) * c;
        u.set_cons(i, j, k3, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::init_cons;
    use rhrsc_grid::{bc::uniform, Bc, PatchGeom};
    use rhrsc_srhd::{Prim, NCOMP};

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    fn advect_ic(x: [f64; 3]) -> Prim {
        Prim::new_1d(
            1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
            0.5,
            1.0,
        )
    }

    #[test]
    fn uniform_state_is_steady() {
        let s = scheme();
        let geom = PatchGeom::line(32, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::new_1d(1.0, 0.4, 2.0));
        let before = u.clone();
        let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        solver.advance_to(&mut u, 0.0, 0.1, 0.5, None).unwrap();
        let d = before.interior_l2_distance(&u);
        assert!(d < 1e-10, "uniform state drifted by {d}");
    }

    #[test]
    fn conservation_under_periodic_bcs() {
        let s = scheme();
        let geom = PatchGeom::line(64, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &advect_ic);
        let before: Vec<f64> = (0..NCOMP).map(|c| u.interior_integral(c)).collect();
        let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        solver.advance_to(&mut u, 0.0, 0.5, 0.5, None).unwrap();
        for (c, b) in before.iter().enumerate() {
            let after = u.interior_integral(c);
            assert!(
                (after - b).abs() < 1e-12 * b.abs().max(1.0),
                "component {c}: {b} -> {after}"
            );
        }
    }

    #[test]
    fn density_wave_advects_correctly() {
        // Uniform v, p: exact solution is rho(x - v t). One period later
        // the profile returns home; measure the L1 error.
        let s = scheme();
        let geom = PatchGeom::line(128, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &advect_ic);
        let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        // One full crossing at v=0.5 takes t=2.
        solver.advance_to(&mut u, 0.0, 2.0, 0.4, None).unwrap();
        let mut prim = Field::new(geom, 5);
        recover_prims(&s, &u, &mut prim).unwrap();
        let mut l1 = 0.0;
        for (i, j, k) in geom.interior_iter() {
            let exact = advect_ic(geom.center(i, j, k)).rho;
            l1 += (prim.at(0, i, j, k) - exact).abs();
        }
        l1 /= geom.interior_len() as f64;
        assert!(l1 < 5e-3, "L1 density error after one period: {l1}");
    }

    #[test]
    fn rk_orders_converge_with_resolution() {
        let s = scheme();
        let err_at = |rk: RkOrder, n: usize| -> f64 {
            let geom = PatchGeom::line(n, 0.0, 1.0, 3);
            let mut u = init_cons(geom, &s.eos, &advect_ic);
            let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), rk, geom);
            solver.advance_to(&mut u, 0.0, 0.4, 0.4, None).unwrap();
            let mut prim = Field::new(geom, 5);
            recover_prims(&s, &u, &mut prim).unwrap();
            let mut l1 = 0.0;
            for (i, j, k) in geom.interior_iter() {
                let mut x = geom.center(i, j, k);
                x[0] -= 0.5 * 0.4; // advected by v t
                l1 += (prim.at(0, i, j, k) - advect_ic(x).rho).abs();
            }
            l1 / geom.interior_len() as f64
        };
        // RK3+PPM should show at least ~2.5 observed order on this smooth
        // advection problem (limiter effects at extrema reduce it from 3).
        let e1 = err_at(RkOrder::Rk3, 64);
        let e2 = err_at(RkOrder::Rk3, 128);
        let order = (e1 / e2).log2();
        assert!(
            order > 2.0,
            "observed order {order:.2} (e1={e1:.2e} e2={e2:.2e})"
        );
        // RK1 is noticeably worse than RK3 at the same resolution.
        assert!(err_at(RkOrder::Rk1, 64) > e1);
    }

    #[test]
    fn advance_lands_exactly_on_t_end() {
        let s = scheme();
        let geom = PatchGeom::line(32, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &advect_ic);
        let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk2, geom);
        let d0 = u.interior_integral(0);
        // t_end chosen to not be a multiple of the CFL dt.
        let steps = solver.advance_to(&mut u, 0.0, 0.0537, 0.45, None).unwrap();
        assert!(steps > 0);
        // Conservation still intact (final partial step was consistent).
        let total_d = u.interior_integral(0);
        assert!((total_d - d0).abs() < 1e-12, "D total {total_d} vs {d0}");
    }

    #[test]
    fn stats_count_stages() {
        let s = scheme();
        let geom = PatchGeom::line(16, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &advect_ic);
        let mut solver = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        solver.step(&mut u, 1e-3, None).unwrap();
        solver.step(&mut u, 1e-3, None).unwrap();
        let st = solver.stats();
        assert_eq!(st.steps, 2);
        assert_eq!(st.stages, 6);
        assert_eq!(st.zone_updates, 6 * 16);
    }

    #[test]
    #[should_panic(expected = "ghosts")]
    fn rejects_insufficient_ghosts() {
        let s = scheme(); // PPM needs 3
        let geom = PatchGeom::line(16, 0.0, 1.0, 2);
        let _ = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk2, geom);
    }

    #[test]
    fn gang_parallel_step_bitwise_matches_serial() {
        let s = scheme();
        let geom = PatchGeom::rect([24, 24], [0.0; 2], [1.0; 2], 3);
        let ic = |x: [f64; 3]| Prim {
            rho: 1.0 + 0.4 * (6.0 * x[0]).sin() * (4.0 * x[1]).cos(),
            vel: [0.3, -0.2, 0.0],
            p: 1.0,
        };
        let mut u_serial = init_cons(geom, &s.eos, &ic);
        let mut u_par = u_serial.clone();
        let mut solver1 = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        let mut solver2 = PatchSolver::new(s, uniform(Bc::Periodic), RkOrder::Rk3, geom);
        let pool = WorkStealingPool::new(4);
        for _ in 0..3 {
            solver1.step(&mut u_serial, 1e-3, None).unwrap();
            solver2.step(&mut u_par, 1e-3, Some(&pool)).unwrap();
        }
        assert_eq!(u_serial.raw(), u_par.raw());
    }
}
