//! The numerical scheme bundle and field-level primitive recovery.

use rhrsc_grid::{Field, PatchGeom};
use rhrsc_runtime::metrics::Histogram;
use rhrsc_srhd::recon::Recon;
use rhrsc_srhd::riemann::RiemannSolver;
use rhrsc_srhd::{cons_to_prim, cons_to_prim_counted, Con2PrimError, Con2PrimParams, Eos, Prim};

/// Coordinate geometry of the (first) grid dimension.
///
/// Curvilinear options treat `x` as the radius `r > 0` of a
/// symmetry-reduced problem and add the corresponding geometric source
/// terms to the residual: `S = −(α/r)·F_adv` with `α = 1` (cylindrical)
/// or `α = 2` (spherical), where `F_adv` is the radial flux *without* the
/// pressure term. Only meaningful for 1D problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// Plain Cartesian coordinates (any dimensionality).
    Cartesian,
    /// 1D cylindrical radial coordinate (axial symmetry).
    CylindricalRadial,
    /// 1D spherical radial coordinate (spherical symmetry).
    SphericalRadial,
}

impl Geometry {
    /// The geometric factor α (0 for Cartesian).
    pub fn alpha(&self) -> f64 {
        match self {
            Geometry::Cartesian => 0.0,
            Geometry::CylindricalRadial => 1.0,
            Geometry::SphericalRadial => 2.0,
        }
    }
}

/// Everything that defines the numerical method, independent of the grid.
#[derive(Debug, Clone, Copy)]
pub struct Scheme {
    /// Equation of state.
    pub eos: Eos,
    /// Spatial reconstruction.
    pub recon: Recon,
    /// Interface Riemann solver.
    pub riemann: RiemannSolver,
    /// Conservative→primitive recovery parameters.
    pub c2p: Con2PrimParams,
    /// Coordinate geometry (Cartesian unless symmetry-reduced).
    pub geometry: Geometry,
}

impl Scheme {
    /// A sensible production default: ideal gas Γ, PPM + HLLC.
    pub fn default_with_gamma(gamma: f64) -> Self {
        Scheme {
            eos: Eos::ideal(gamma),
            recon: Recon::Ppm,
            riemann: RiemannSolver::Hllc,
            c2p: Con2PrimParams::default(),
            geometry: Geometry::Cartesian,
        }
    }

    /// Ghost zones required by the reconstruction stencil.
    pub fn required_ghosts(&self) -> usize {
        self.recon.ghost()
    }

    /// Clamp a reconstructed primitive state back into the physical
    /// regime: positive density/pressure, subluminal velocity.
    /// Reconstruction operates componentwise on (ρ, v, p) and can
    /// overshoot at strong discontinuities.
    #[inline]
    pub fn sanitize(&self, mut w: Prim) -> Prim {
        w.rho = w.rho.max(self.c2p.rho_floor);
        w.p = w.p.max(self.c2p.p_floor);
        let v2 = w.vsq();
        const V2_MAX: f64 = 1.0 - 1e-12;
        if v2 >= V2_MAX {
            let scale = (V2_MAX / v2).sqrt();
            for v in &mut w.vel {
                *v *= scale;
            }
        }
        w
    }
}

/// Error raised by the solver, locating the offending cell.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// Primitive recovery failed at a cell.
    Con2Prim {
        /// Ghost-inclusive cell indices.
        cell: (usize, usize, usize),
        /// Underlying recovery error.
        err: Con2PrimError,
    },
    /// The time step collapsed below a sane minimum.
    TimestepCollapse {
        /// The offending Δt.
        dt: f64,
    },
    /// A coasted (cached) Δt exceeded this rank's freshly scanned local
    /// CFL bound. Recoverable: the resilient driver rolls the step back,
    /// invalidates the Δt cache, and retries with a fresh allreduce.
    CflViolation {
        /// The Δt the step was taken with.
        dt: f64,
        /// The local CFL bound it exceeded.
        bound: f64,
    },
    /// A halo message did not have the expected length (truncated or
    /// corrupted in flight). Recoverable: the step can be rolled back and
    /// retried, which resends the exchange.
    HaloMismatch {
        /// Expected payload length, in doubles.
        expected: usize,
        /// Received payload length, in doubles.
        got: usize,
    },
    /// Checkpoint I/O failed during a resilient advance.
    Checkpoint {
        /// Human-readable cause.
        msg: String,
    },
    /// A halo payload failed its CRC check (corrupted in flight beyond
    /// what sender-side retransmission repaired). Recoverable like
    /// [`SolverError::HaloMismatch`]: roll back and retry the step.
    HaloCorrupt {
        /// Communicator rank the corrupt payload came from.
        from: usize,
    },
    /// A peer rank went silent past the liveness deadline (or sent an
    /// unrepairable payload). Recoverable: the driver runs a suspicion
    /// consensus and either retries (false alarm) or shrinks onto the
    /// survivors.
    PeerSuspect {
        /// Communicator rank of the suspected peer.
        rank: usize,
    },
    /// This rank was injected with (or detected) a fatal rank-level fault
    /// and must stop participating; survivors will evict it.
    RankFailed {
        /// The step at which the failure fired.
        step: u64,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::Con2Prim { cell, err } => {
                write!(f, "primitive recovery failed at cell {cell:?}: {err}")
            }
            SolverError::TimestepCollapse { dt } => write!(f, "time step collapsed to {dt:.3e}"),
            SolverError::CflViolation { dt, bound } => {
                write!(
                    f,
                    "cached time step {dt:.3e} exceeded the local CFL bound {bound:.3e}"
                )
            }
            SolverError::HaloMismatch { expected, got } => {
                write!(
                    f,
                    "halo message length mismatch: expected {expected}, got {got}"
                )
            }
            SolverError::Checkpoint { msg } => write!(f, "checkpoint failure: {msg}"),
            SolverError::HaloCorrupt { from } => {
                write!(f, "halo payload from rank {from} failed its CRC check")
            }
            SolverError::PeerSuspect { rank } => {
                write!(f, "peer rank {rank} suspected dead (liveness deadline)")
            }
            SolverError::RankFailed { step } => {
                write!(f, "rank failed at step {step}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// How the solver responds to primitive-recovery failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Propagate the first failure as a [`SolverError`] (the seed
    /// behavior, and the default: failures are loud).
    #[default]
    Strict,
    /// Repair failed cells through the tiered cascade — relaxed
    /// tolerances, then neighbor-averaged primitives, then the atmosphere
    /// floor — counting each tier in [`RecoveryStats`].
    Cascade,
}

/// Per-tier counters of the recovery cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Cells recovered by retrying with relaxed tolerances.
    pub relaxed_tol: u64,
    /// Cells replaced by the average of their recoverable face neighbors.
    pub neighbor_avg: u64,
    /// Cells reset to the atmosphere floor (last resort).
    pub atmosphere: u64,
}

impl RecoveryStats {
    /// Total cells repaired by any tier.
    pub fn total(&self) -> u64 {
        self.relaxed_tol + self.neighbor_avg + self.atmosphere
    }

    /// Accumulate another batch of counters.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.relaxed_tol += other.relaxed_tol;
        self.neighbor_avg += other.neighbor_avg;
        self.atmosphere += other.atmosphere;
    }
}

/// Primitive component layout in a primitive [`Field`]:
/// `(ρ, v_x, v_y, v_z, p)`.
pub const PRIM_RHO: usize = 0;
/// Velocity component `v_x`.
pub const PRIM_VX: usize = 1;
/// Velocity component `v_y`.
pub const PRIM_VY: usize = 2;
/// Velocity component `v_z`.
pub const PRIM_VZ: usize = 3;
/// Pressure.
pub const PRIM_P: usize = 4;

/// Read a [`Prim`] from a primitive field at ghost-inclusive `(i, j, k)`.
#[inline]
pub fn prim_at(prim: &Field, i: usize, j: usize, k: usize) -> Prim {
    Prim {
        rho: prim.at(PRIM_RHO, i, j, k),
        vel: [
            prim.at(PRIM_VX, i, j, k),
            prim.at(PRIM_VY, i, j, k),
            prim.at(PRIM_VZ, i, j, k),
        ],
        p: prim.at(PRIM_P, i, j, k),
    }
}

/// Write a [`Prim`] into a primitive field at `(i, j, k)`.
#[inline]
pub fn set_prim(prim: &mut Field, i: usize, j: usize, k: usize, w: &Prim) {
    prim.set(PRIM_RHO, i, j, k, w.rho);
    prim.set(PRIM_VX, i, j, k, w.vel[0]);
    prim.set(PRIM_VY, i, j, k, w.vel[1]);
    prim.set(PRIM_VZ, i, j, k, w.vel[2]);
    prim.set(PRIM_P, i, j, k, w.p);
}

/// Initialize a conserved field (including ghost zones) from a pointwise
/// primitive initial condition.
pub fn init_cons(geom: PatchGeom, eos: &Eos, ic: &dyn Fn([f64; 3]) -> Prim) -> Field {
    let mut u = Field::cons(geom);
    for k in 0..geom.ntot(2) {
        for j in 0..geom.ntot(1) {
            for i in 0..geom.ntot(0) {
                let w = ic(geom.center(i, j, k));
                debug_assert!(w.is_physical(), "unphysical IC at ({i},{j},{k})");
                u.set_cons(i, j, k, w.to_cons(eos));
            }
        }
    }
    u
}

/// Recover primitives over every cell (interior + ghosts) of a conserved
/// field.
pub fn recover_prims(scheme: &Scheme, u: &Field, prim: &mut Field) -> Result<(), SolverError> {
    recover_prims_par(scheme, u, prim, None)
}

/// Recover primitives over every cell, optionally gang-parallel over
/// z-slabs (or y-rows in 2D). Results are bit-identical to the serial
/// path: every cell's root solve is independent and deterministic.
pub fn recover_prims_par(
    scheme: &Scheme,
    u: &Field,
    prim: &mut Field,
    pool: Option<&rhrsc_runtime::WorkStealingPool>,
) -> Result<(), SolverError> {
    let geom = *u.geom();
    let (n0, n1, n2) = (geom.ntot(0), geom.ntot(1), geom.ntot(2));
    match pool {
        Some(pool) if n1 * n2 > 1 => {
            // Parallelize over (j, k) rows; each row writes disjoint prim
            // cells, so shared mutable access through a raw pointer is
            // sound. The first error (if any) is captured.
            let err = parking_lot::Mutex::new(None::<SolverError>);
            let raw = RawPrim {
                ptr: prim.raw_mut().as_mut_ptr(),
                comp_stride: geom.len(),
            };
            // Capture the wrapper (not its raw-pointer field) so the
            // closure is Sync via `unsafe impl Sync for RawPrim`.
            let raw = &raw;
            pool.par_for(n1 * n2, 1, &|row| {
                let j = row % n1;
                let k = row / n1;
                for i in 0..n0 {
                    let cons = u.get_cons(i, j, k);
                    match cons_to_prim(&scheme.eos, &cons, None, &scheme.c2p) {
                        Ok(w) => {
                            let ix = geom.idx(i, j, k);
                            let vals = [w.rho, w.vel[0], w.vel[1], w.vel[2], w.p];
                            for (c, v) in vals.into_iter().enumerate() {
                                // SAFETY: rows are disjoint across tasks.
                                unsafe { *raw.ptr.add(c * raw.comp_stride + ix) = v };
                            }
                        }
                        Err(e) => {
                            let mut g = err.lock();
                            g.get_or_insert(SolverError::Con2Prim {
                                cell: (i, j, k),
                                err: e,
                            });
                            return;
                        }
                    }
                }
            });
            err.into_inner().map_or(Ok(()), Err)
        }
        _ => {
            for k in 0..n2 {
                for j in 0..n1 {
                    for i in 0..n0 {
                        recover_cell(scheme, u, prim, i, j, k)?;
                    }
                }
            }
            Ok(())
        }
    }
}

/// Raw pointer to primitive storage for row-disjoint parallel recovery.
#[derive(Clone, Copy)]
struct RawPrim {
    ptr: *mut f64,
    comp_stride: usize,
}

unsafe impl Send for RawPrim {}
unsafe impl Sync for RawPrim {}

/// Recover a single cell's primitives (shared by full-field and region
/// recovery paths).
///
/// Deliberately *cold-starts* the root solve from a deterministic seed
/// derived from the conserved state alone (never from the previous
/// pressure): warm starts land on slightly different iterates, which would
/// break the bit-identity guarantees between the serial, gang-parallel,
/// distributed, and device execution paths.
#[inline]
pub fn recover_cell(
    scheme: &Scheme,
    u: &Field,
    prim: &mut Field,
    i: usize,
    j: usize,
    k: usize,
) -> Result<(), SolverError> {
    recover_cell_metered(scheme, u, prim, i, j, k, None)
}

/// [`recover_cell`] that also histograms the root-solve iteration count
/// (`iters`, when profiling is on). The metered path calls the counted
/// con2prim variant, whose iterates — and therefore whose result — are
/// bit-identical to the plain one.
#[inline]
pub fn recover_cell_metered(
    scheme: &Scheme,
    u: &Field,
    prim: &mut Field,
    i: usize,
    j: usize,
    k: usize,
    iters: Option<&Histogram>,
) -> Result<(), SolverError> {
    let cons = u.get_cons(i, j, k);
    match cons_to_prim_counted(&scheme.eos, &cons, None, &scheme.c2p) {
        Ok((w, n)) => {
            if let Some(h) = iters {
                h.record(n as u64);
            }
            set_prim(prim, i, j, k, &w);
            Ok(())
        }
        Err(err) => Err(SolverError::Con2Prim {
            cell: (i, j, k),
            err,
        }),
    }
}

/// Recover primitives over an explicit cell set with cascade repair: cells
/// whose strict recovery fails are repaired in a second pass (so tier 2
/// can read the successfully recovered neighbors) and never abort the
/// run. Repairs that synthesize a new state (tiers 2–3) also rewrite the
/// conserved field to keep `u` and `prim` consistent.
pub fn recover_cells_resilient(
    scheme: &Scheme,
    u: &mut Field,
    prim: &mut Field,
    cells: impl IntoIterator<Item = (usize, usize, usize)>,
    stats: &mut RecoveryStats,
) {
    recover_cells_resilient_metered(scheme, u, prim, cells, stats, None)
}

/// [`recover_cells_resilient`] with optional iteration-count metering of
/// the strict first pass.
pub fn recover_cells_resilient_metered(
    scheme: &Scheme,
    u: &mut Field,
    prim: &mut Field,
    cells: impl IntoIterator<Item = (usize, usize, usize)>,
    stats: &mut RecoveryStats,
    iters: Option<&Histogram>,
) {
    let mut failed = Vec::new();
    for (i, j, k) in cells {
        if recover_cell_metered(scheme, u, prim, i, j, k, iters).is_err() {
            failed.push((i, j, k));
        }
    }
    if failed.is_empty() {
        return;
    }
    let bad: std::collections::HashSet<(usize, usize, usize)> = failed.iter().copied().collect();
    for &(i, j, k) in &failed {
        cascade_cell(scheme, u, prim, i, j, k, &bad, stats);
    }
}

/// Resilient variant of [`recover_prims`]: every cell (interior + ghosts),
/// cascade repair instead of failure.
pub fn recover_prims_resilient(
    scheme: &Scheme,
    u: &mut Field,
    prim: &mut Field,
    stats: &mut RecoveryStats,
) {
    recover_prims_resilient_metered(scheme, u, prim, stats, None)
}

/// [`recover_prims_resilient`] with optional iteration-count metering.
pub fn recover_prims_resilient_metered(
    scheme: &Scheme,
    u: &mut Field,
    prim: &mut Field,
    stats: &mut RecoveryStats,
    iters: Option<&Histogram>,
) {
    let geom = *u.geom();
    let (n0, n1, n2) = (geom.ntot(0), geom.ntot(1), geom.ntot(2));
    let cells =
        (0..n2).flat_map(move |k| (0..n1).flat_map(move |j| (0..n0).map(move |i| (i, j, k))));
    recover_cells_resilient_metered(scheme, u, prim, cells, stats, iters);
}

/// Serial [`recover_prims`] with optional iteration-count metering
/// (the distributed driver's strict path; bit-identical to the plain
/// recovery).
pub fn recover_prims_metered(
    scheme: &Scheme,
    u: &Field,
    prim: &mut Field,
    iters: Option<&Histogram>,
) -> Result<(), SolverError> {
    let geom = *u.geom();
    let (n0, n1, n2) = (geom.ntot(0), geom.ntot(1), geom.ntot(2));
    for k in 0..n2 {
        for j in 0..n1 {
            for i in 0..n0 {
                recover_cell_metered(scheme, u, prim, i, j, k, iters)?;
            }
        }
    }
    Ok(())
}

/// Repair one unrecoverable cell through the cascade tiers.
#[allow(clippy::too_many_arguments)]
fn cascade_cell(
    scheme: &Scheme,
    u: &mut Field,
    prim: &mut Field,
    i: usize,
    j: usize,
    k: usize,
    bad: &std::collections::HashSet<(usize, usize, usize)>,
    stats: &mut RecoveryStats,
) {
    // Tier 1: the state may be merely stiff, not lost — retry the root
    // solve with relaxed tolerances and widened iteration budgets. The
    // conserved state is untouched.
    let cons = u.get_cons(i, j, k);
    if cons.is_finite() {
        if let Ok(w) = cons_to_prim(&scheme.eos, &cons, None, &scheme.c2p.relaxed()) {
            set_prim(prim, i, j, k, &w);
            stats.relaxed_tol += 1;
            return;
        }
    }
    // Tier 2: synthesize the cell from the average of its recoverable
    // face neighbors, then overwrite both prim and cons so the repair
    // persists (locally non-conservative, like any floor).
    if let Some(w) = neighbor_average(u.geom(), prim, i, j, k, bad) {
        let w = scheme.sanitize(w);
        set_prim(prim, i, j, k, &w);
        u.set_cons(i, j, k, w.to_cons(&scheme.eos));
        stats.neighbor_avg += 1;
        return;
    }
    // Tier 3: atmosphere floor — the cell is surrounded by failures.
    let w = Prim::at_rest(
        scheme.c2p.rho_floor.max(1e-300),
        scheme.c2p.p_floor.max(1e-300),
    );
    set_prim(prim, i, j, k, &w);
    u.set_cons(i, j, k, w.to_cons(&scheme.eos));
    stats.atmosphere += 1;
}

/// Average of the physical primitives among a cell's face neighbors,
/// skipping neighbors that themselves failed recovery this pass.
fn neighbor_average(
    geom: &PatchGeom,
    prim: &Field,
    i: usize,
    j: usize,
    k: usize,
    bad: &std::collections::HashSet<(usize, usize, usize)>,
) -> Option<Prim> {
    let cell = [i, j, k];
    let mut sum = Prim {
        rho: 0.0,
        vel: [0.0; 3],
        p: 0.0,
    };
    let mut count = 0usize;
    for d in 0..3 {
        if !geom.active(d) {
            continue;
        }
        for delta in [-1isize, 1] {
            let c = cell[d] as isize + delta;
            if c < 0 || c as usize >= geom.ntot(d) {
                continue;
            }
            let mut nb = cell;
            nb[d] = c as usize;
            if bad.contains(&(nb[0], nb[1], nb[2])) {
                continue;
            }
            let w = prim_at(prim, nb[0], nb[1], nb[2]);
            let finite =
                w.rho.is_finite() && w.p.is_finite() && w.vel.iter().all(|v| v.is_finite());
            if !finite || !w.is_physical() {
                continue;
            }
            sum.rho += w.rho;
            sum.p += w.p;
            for a in 0..3 {
                sum.vel[a] += w.vel[a];
            }
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    let inv = 1.0 / count as f64;
    sum.rho *= inv;
    sum.p *= inv;
    for a in 0..3 {
        sum.vel[a] *= inv;
    }
    Some(sum)
}

/// Conserved-variable limiter applied after each stage update.
///
/// Evolved conserved states can leave the physical region near vacuum
/// cores and strong rarefactions (negative τ, `|S|² > τ(τ+2D)`), after
/// which no primitive state exists and the recovery rightly fails. This
/// limiter — the standard production safeguard — restores admissibility
/// with minimal intervention:
///
/// * `D ≥ rho_floor`, `τ ≥ p_floor`,
/// * `|S|² ≤ (1−ε) τ(τ+2D)` (the `p ≥ 0, |v| < 1` admissibility bound),
///   enforced by rescaling the momentum.
///
/// Returns the number of cells touched (a diagnostic: nonzero counts mean
/// the scheme is running at its robustness margin, and conservation is
/// locally violated by the floors).
pub fn apply_conserved_floors(u: &mut Field, params: &Con2PrimParams) -> usize {
    let geom = *u.geom();
    let mut touched = 0;
    for (i, j, k) in geom.interior_iter() {
        let mut c = u.get_cons(i, j, k);
        let mut dirty = false;
        if !c.is_finite() {
            // Let the recovery report non-finite states; flooring NaNs
            // would mask genuine scheme failures.
            continue;
        }
        if c.d < params.rho_floor {
            c.d = params.rho_floor;
            dirty = true;
        }
        if c.tau < params.p_floor {
            c.tau = params.p_floor;
            dirty = true;
        }
        // Admissibility (p ≥ 0, |v| < 1) requires |S|² ≤ τ(τ+2D); but
        // rescaling exactly onto that boundary leaves |v| → 1 states
        // (W can reach (τ+D)/D ≫ 1) that destabilize their neighbors.
        // Cap the recovered Lorentz factor instead: with p ≥ 0,
        // |v| = |S|/(τ+D+p) ≤ |S|/(τ+D), so |S| ≤ v_cap (τ+D) bounds W.
        let v_cap2 = 1.0 - 1.0 / (params.w_cap * params.w_cap);
        let e0 = c.tau + c.d;
        let s2_max = ((1.0 - 1e-12) * c.tau * (c.tau + 2.0 * c.d)).min(v_cap2 * e0 * e0);
        let s2 = c.ssq();
        if s2 > s2_max {
            let scale = (s2_max / s2).sqrt();
            for sc in &mut c.s {
                *sc *= scale;
            }
            dirty = true;
        }
        if dirty {
            u.set_cons(i, j, k, c);
            touched += 1;
        }
    }
    touched
}

/// Largest stable time step on a patch under the unsplit method-of-lines
/// CFL condition: `dt = cfl / max_cells Σ_d (λ_max,d / dx_d)`.
///
/// The per-dimension bound `min_d(dx_d / λ_d)` familiar from dimensionally
/// *split* schemes is not sufficient here: the residual sums flux
/// differences from every dimension in one stage, so the signal speeds
/// add. In 3D the difference is up to a factor of three — using the split
/// bound drives strong multi-dimensional blasts unstable.
pub fn max_dt(scheme: &Scheme, prim: &Field, cfl: f64) -> f64 {
    let geom = prim.geom();
    let mut max_rate = 0.0f64;
    for (i, j, k) in geom.interior_iter() {
        let w = prim_at(prim, i, j, k);
        let mut rate = 0.0;
        for d in 0..3 {
            if !geom.active(d) {
                continue;
            }
            let dir = rhrsc_srhd::Dir::ALL[d];
            let (lm, lp) = rhrsc_srhd::flux::signal_speeds(&scheme.eos, &w, dir);
            rate += lm.abs().max(lp.abs()) / geom.dx[d];
        }
        max_rate = max_rate.max(rate);
    }
    cfl / max_rate.max(1e-30)
}

/// Δt from a per-cell wave-rate bank filled by the fused RHS scan
/// ([`crate::step::accumulate_rhs_region_scan`]).
///
/// The bank holds `Σ_d max(|λ−|,|λ+|)/Δx_d` per interior cell (ghost
/// slots stay zero), so the fold and the final `cfl / max(rate, 1e-30)`
/// reproduce [`max_dt`] bitwise: `f64::max` is insensitive to the extra
/// zeros and to fold order for the non-NaN rates both paths produce.
pub fn dt_from_rates(cfl: f64, rates: &[f64]) -> f64 {
    let mut max_rate = 0.0f64;
    for &r in rates {
        max_rate = max_rate.max(r);
    }
    cfl / max_rate.max(1e-30)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_grid::PatchGeom;

    fn scheme() -> Scheme {
        Scheme::default_with_gamma(5.0 / 3.0)
    }

    #[test]
    fn init_then_recover_roundtrip() {
        let s = scheme();
        let geom = PatchGeom::line(16, 0.0, 1.0, 3);
        let ic = |x: [f64; 3]| Prim::new_1d(1.0 + 0.5 * (x[0] * 6.0).sin(), 0.3, 2.0);
        let u = init_cons(geom, &s.eos, &ic);
        let mut prim = Field::new(geom, 5);
        recover_prims(&s, &u, &mut prim).unwrap();
        for k in 0..geom.ntot(2) {
            for i in 0..geom.ntot(0) {
                let w = prim_at(&prim, i, 0, k);
                let expected = ic(geom.center(i, 0, k));
                assert!((w.rho - expected.rho).abs() < 1e-9, "cell {i}");
                assert!((w.vel[0] - 0.3).abs() < 1e-9, "cell {i}");
                assert!((w.p - 2.0).abs() < 1e-9, "cell {i}");
            }
        }
    }

    #[test]
    fn sanitize_restores_physicality() {
        let s = scheme();
        let bad = Prim {
            rho: -1.0,
            vel: [0.9, 0.9, 0.9],
            p: -2.0,
        };
        let fixed = s.sanitize(bad);
        assert!(fixed.is_physical());
        // Velocity direction is preserved.
        assert!(fixed.vel[0] > 0.0 && (fixed.vel[0] - fixed.vel[1]).abs() < 1e-12);
    }

    #[test]
    fn sanitize_is_identity_on_physical_states() {
        let s = scheme();
        let w = Prim::new_1d(1.0, 0.5, 2.0);
        assert_eq!(s.sanitize(w), w);
    }

    #[test]
    fn max_dt_scales_with_resolution() {
        let s = scheme();
        let dt_of = |n: usize| {
            let geom = PatchGeom::line(n, 0.0, 1.0, 3);
            let u = init_cons(geom, &s.eos, &|_| Prim::at_rest(1.0, 1.0));
            let mut prim = Field::new(geom, 5);
            recover_prims(&s, &u, &mut prim).unwrap();
            max_dt(&s, &prim, 0.5)
        };
        let d64 = dt_of(64);
        let d128 = dt_of(128);
        assert!((d64 / d128 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn max_dt_subluminal_bound() {
        // Even ultrarelativistic flow cannot demand dt below cfl*dx/c.
        let s = scheme();
        let geom = PatchGeom::line(8, 0.0, 1.0, 3);
        let u = init_cons(geom, &s.eos, &|_| Prim::new_1d(1.0, 0.999999, 1e3));
        let mut prim = Field::new(geom, 5);
        recover_prims(&s, &u, &mut prim).unwrap();
        let dt = max_dt(&s, &prim, 1.0);
        let dx = geom.dx[0];
        assert!(dt >= dx * 0.999, "dt {dt} vs dx {dx}");
    }

    #[test]
    fn conserved_floors_are_noop_on_healthy_states() {
        let s = scheme();
        let geom = PatchGeom::line(16, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &|x| {
            Prim::new_1d(1.0 + 0.5 * (x[0] * 7.0).sin(), 0.5, 2.0)
        });
        let before = u.clone();
        assert_eq!(apply_conserved_floors(&mut u, &s.c2p), 0);
        assert_eq!(u.raw(), before.raw());
    }

    #[test]
    fn conserved_floors_repair_inadmissible_states() {
        let s = scheme();
        let geom = PatchGeom::line(4, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::at_rest(1.0, 1.0));
        // Poison: negative tau, excessive momentum, sub-floor density.
        u.set_cons(
            2,
            0,
            0,
            rhrsc_srhd::Cons {
                d: 1.0,
                s: [5.0, 0.0, 0.0],
                tau: -0.5,
            },
        );
        u.set_cons(
            3,
            0,
            0,
            rhrsc_srhd::Cons {
                d: 1e-20,
                s: [0.0; 3],
                tau: 1.0,
            },
        );
        let touched = apply_conserved_floors(&mut u, &s.c2p);
        assert_eq!(touched, 2);
        // Every interior state must now recover.
        let mut prim = Field::new(geom, 5);
        for (i, j, k) in geom.interior_iter() {
            recover_cell(&s, &u, &mut prim, i, j, k)
                .unwrap_or_else(|e| panic!("cell ({i},{j},{k}) still bad: {e}"));
        }
    }

    #[test]
    fn conserved_floors_leave_nan_for_recovery_to_report() {
        let s = scheme();
        let geom = PatchGeom::line(4, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::at_rest(1.0, 1.0));
        u.set(0, 3, 0, 0, f64::NAN);
        apply_conserved_floors(&mut u, &s.c2p);
        assert!(
            u.at(0, 3, 0, 0).is_nan(),
            "NaN must not be silently floored"
        );
    }

    #[test]
    fn recovery_error_carries_cell() {
        let s = scheme();
        let geom = PatchGeom::line(4, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::at_rest(1.0, 1.0));
        // Poison one interior cell.
        u.set(0, 3, 0, 0, f64::NAN);
        let mut prim = Field::new(geom, 5);
        let err = recover_prims(&s, &u, &mut prim).unwrap_err();
        match err {
            SolverError::Con2Prim { cell, .. } => assert_eq!(cell, (3, 0, 0)),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn cascade_tier1_relaxed_tolerances() {
        // Starve the strict iteration budgets so every cell fails tier 0;
        // the cascade must recover all of them via relaxed tolerances
        // without touching the conserved state.
        let mut s = scheme();
        s.c2p.max_newton = 0;
        s.c2p.max_bisect = 0;
        let geom = PatchGeom::line(8, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::new_1d(1.0, 0.9, 0.1));
        let before = u.clone();
        let mut prim = Field::new(geom, 5);
        assert!(recover_prims(&s, &u, &mut prim).is_err());
        let mut stats = RecoveryStats::default();
        recover_prims_resilient(&s, &mut u, &mut prim, &mut stats);
        assert_eq!(stats.relaxed_tol, geom.len() as u64);
        assert_eq!(stats.neighbor_avg, 0);
        assert_eq!(stats.atmosphere, 0);
        assert_eq!(u.raw(), before.raw(), "tier 1 must not modify cons");
        for (i, j, k) in geom.interior_iter() {
            let w = prim_at(&prim, i, j, k);
            assert!((w.rho - 1.0).abs() < 1e-3, "rho at {i}: {}", w.rho);
            assert!((w.p - 0.1).abs() < 1e-3, "p at {i}: {}", w.p);
        }
    }

    #[test]
    fn cascade_tier2_neighbor_average() {
        let s = scheme();
        let geom = PatchGeom::line(8, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|x| Prim::new_1d(1.0 + x[0], 0.2, 2.0));
        // A NaN cell fails even relaxed recovery; its neighbors are fine.
        u.set(0, 5, 0, 0, f64::NAN);
        let mut prim = Field::new(geom, 5);
        let mut stats = RecoveryStats::default();
        recover_prims_resilient(&s, &mut u, &mut prim, &mut stats);
        assert_eq!(stats.neighbor_avg, 1);
        assert_eq!(stats.relaxed_tol, 0);
        assert_eq!(stats.atmosphere, 0);
        // The repaired cell interpolates its neighbors and the conserved
        // state was rewritten to something recoverable.
        let w = prim_at(&prim, 5, 0, 0);
        let wl = prim_at(&prim, 4, 0, 0);
        let wr = prim_at(&prim, 6, 0, 0);
        assert!((w.rho - 0.5 * (wl.rho + wr.rho)).abs() < 1e-12);
        assert!(u.get_cons(5, 0, 0).is_finite());
        assert!(recover_cell(&s, &u, &mut prim, 5, 0, 0).is_ok());
    }

    #[test]
    fn cascade_tier3_atmosphere() {
        let s = scheme();
        let geom = PatchGeom::line(4, 0.0, 1.0, 2);
        let mut u = init_cons(geom, &s.eos, &|_| Prim::at_rest(1.0, 1.0));
        // Poison every cell (ghosts included): no neighbor is usable, so
        // the cascade bottoms out at the atmosphere floor.
        for v in u.raw_mut() {
            *v = f64::NAN;
        }
        let mut prim = Field::new(geom, 5);
        let mut stats = RecoveryStats::default();
        recover_prims_resilient(&s, &mut u, &mut prim, &mut stats);
        assert_eq!(stats.atmosphere, geom.len() as u64);
        for (i, j, k) in geom.interior_iter() {
            let w = prim_at(&prim, i, j, k);
            assert_eq!(w.vel, [0.0; 3]);
            assert!(w.rho > 0.0 && w.p > 0.0);
            assert!(u.get_cons(i, j, k).is_finite());
        }
    }

    #[test]
    fn cascade_noop_on_healthy_field() {
        let s = scheme();
        let geom = PatchGeom::line(16, 0.0, 1.0, 3);
        let mut u = init_cons(geom, &s.eos, &|x| {
            Prim::new_1d(1.0 + 0.5 * (x[0] * 6.0).sin(), 0.3, 2.0)
        });
        let mut prim_strict = Field::new(geom, 5);
        recover_prims(&s, &u, &mut prim_strict).unwrap();
        let before = u.clone();
        let mut prim = Field::new(geom, 5);
        let mut stats = RecoveryStats::default();
        recover_prims_resilient(&s, &mut u, &mut prim, &mut stats);
        assert_eq!(stats, RecoveryStats::default());
        assert_eq!(u.raw(), before.raw());
        assert_eq!(
            prim.raw(),
            prim_strict.raw(),
            "healthy path is bit-identical"
        );
    }
}
