//! Criterion micro-benchmarks of the HRSC kernels.
//!
//! These complement the table/figure regeneration binaries: they track the
//! per-kernel costs (conservative→primitive recovery, Riemann fluxes,
//! reconstruction, full 1D/2D steps) that the throughput experiments build
//! on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rhrsc_grid::{bc, Bc, PatchGeom};
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use rhrsc_srhd::riemann::exact::ExactRiemann;
use rhrsc_srhd::riemann::RiemannSolver;
use rhrsc_srhd::{cons_to_prim, Con2PrimParams, Dir, Eos, Prim};

fn bench_con2prim(c: &mut Criterion) {
    let eos = Eos::ideal(5.0 / 3.0);
    let params = Con2PrimParams::default();
    let mut g = c.benchmark_group("con2prim");
    for (name, prim) in [
        (
            "moderate",
            Prim {
                rho: 1.0,
                vel: [0.3, 0.2, -0.1],
                p: 0.5,
            },
        ),
        ("cold_fast", Prim::new_1d(1.0, 0.99, 1e-6)),
        ("hot", Prim::at_rest(1.0, 1e4)),
        ("w100", Prim::new_1d(1.0, (1.0f64 - 1e-4).sqrt(), 0.1)),
    ] {
        let u = prim.to_cons(&eos);
        g.bench_function(name, |b| {
            b.iter(|| cons_to_prim(&eos, black_box(&u), None, &params).unwrap())
        });
    }
    // Taub-Mathews EOS pays an extra closed-form inversion per iteration.
    let tm = Eos::TaubMathews;
    let u = Prim::new_1d(1.0, 0.9, 0.5).to_cons(&tm);
    g.bench_function("moderate_tm", |b| {
        b.iter(|| cons_to_prim(&tm, black_box(&u), None, &params).unwrap())
    });
    g.finish();
}

fn bench_riemann(c: &mut Criterion) {
    let eos = Eos::ideal(5.0 / 3.0);
    let l = Prim::new_1d(1.0, 0.2, 1.0);
    let r = Prim::new_1d(0.125, -0.1, 0.1);
    let mut g = c.benchmark_group("riemann_flux");
    for rs in RiemannSolver::ALL {
        g.bench_function(rs.name(), |b| {
            b.iter(|| rs.flux(&eos, black_box(&l), black_box(&r), Dir::X))
        });
    }
    g.bench_function("exact_solve", |b| {
        b.iter(|| ExactRiemann::solve(black_box(&l), black_box(&r), 5.0 / 3.0).unwrap())
    });
    g.finish();
}

fn bench_recon(c: &mut Criterion) {
    let n = 128;
    let q: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.3).sin() + if i > 64 { 1.0 } else { 0.0 })
        .collect();
    let mut ql = vec![0.0; n + 1];
    let mut qr = vec![0.0; n + 1];
    let mut g = c.benchmark_group("reconstruction");
    g.throughput(Throughput::Elements(n as u64));
    for r in [
        Recon::Pc,
        Recon::Plm(Limiter::Mc),
        Recon::Ppm,
        Recon::Ceno3,
        Recon::Mp5,
        Recon::Weno5,
    ] {
        let gh = r.ghost();
        g.bench_function(r.name(), |b| {
            b.iter(|| r.pencil(black_box(&q), gh, n + 1 - gh, &mut ql, &mut qr))
        });
    }
    g.finish();
}

fn bench_step(c: &mut Criterion) {
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let bcs = bc::uniform(Bc::Periodic);
    let mut g = c.benchmark_group("full_step");
    g.sample_size(20);

    let ic = |x: [f64; 3]| Prim {
        rho: 1.0 + 0.3 * (6.0 * x[0]).sin() * (4.0 * x[1]).cos(),
        vel: [0.3, -0.2, 0.1],
        p: 1.0,
    };

    // 1D, N = 1024.
    {
        let geom = PatchGeom::line(1024, 0.0, 1.0, scheme.required_ghosts());
        let u0 = init_cons(geom, &scheme.eos, &ic);
        g.throughput(Throughput::Elements(1024 * 3));
        g.bench_function(BenchmarkId::new("rk3", "1d_1024"), |b| {
            b.iter_batched(
                || {
                    (
                        u0.clone(),
                        PatchSolver::new(scheme, bcs, RkOrder::Rk3, geom),
                    )
                },
                |(mut u, mut solver)| solver.step(&mut u, 1e-4, None).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }

    // 2D, 64².
    {
        let geom = PatchGeom::rect([64, 64], [0.0; 2], [1.0; 2], scheme.required_ghosts());
        let u0 = init_cons(geom, &scheme.eos, &ic);
        g.throughput(Throughput::Elements(64 * 64 * 3));
        g.bench_function(BenchmarkId::new("rk3", "2d_64x64"), |b| {
            b.iter_batched(
                || {
                    (
                        u0.clone(),
                        PatchSolver::new(scheme, bcs, RkOrder::Rk3, geom),
                    )
                },
                |(mut u, mut solver)| solver.step(&mut u, 1e-4, None).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_con2prim,
    bench_riemann,
    bench_recon,
    bench_step
);
criterion_main!(benches);
